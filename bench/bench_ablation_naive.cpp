// Ablation: the paper's Fig. 2 — media control WITHOUT the primitives.
//
// "It is standard behavior for a server receiving a signal that does not
// concern itself to forward the signal untouched... because the servers are
// not coordinated, they forward all media signals that they receive."
//
// This bench rebuilds the running example at the protocol level with
// *naive* servers: the PBX and PC forward every tunnel signal blindly
// between their slots, and express their feature intentions by injecting
// the paper's raw signals (protocol-independent: "send media to X" =
// describe(X's descriptor), "stop sending" = describe(noMedia)). The
// endpoints A, B, C, V run the real goal machinery.
//
// The three pathologies of Fig. 2 then appear exactly where the paper puts
// them, and the bench REPORTS THEM AS FAILURES on purpose — the same checks
// that pass in bench_scenario_correctness (E7) with flowlink-based servers:
//
//   P1  snapshot 3: the PBX's "stop sending", forwarded untouched by PC,
//       silences C toward V — one-way media;
//   P2  snapshot 4: PC's reconnect signals, forwarded untouched by the
//       PBX, switch A to C without A's (PBX's) permission;
//   P3  snapshot 4: B is left transmitting to an endpoint that throws the
//       packets away.
#include <cstdio>
#include <deque>
#include <map>

#include "bench_util.hpp"
#include "core/goal.hpp"
#include "endpoints/media_sync.hpp"

namespace {

using namespace cmc;

// A synchronous protocol-level world: endpoints with real goals, naive
// servers that forward blindly, and FIFO wires between slots. Media is
// judged from the endpoints' descriptor/selector state (sendStateOf), which
// is the paper's own definition of when media moves.
class NaiveWorld {
 public:
  struct Endpoint {
    SlotEndpoint slot;
    EndpointGoal goal;
    MediaAddress addr;
  };

  // Create an endpoint with its goal; wires attach later.
  Endpoint& addEndpoint(const std::string& name, const std::string& ip,
                        GoalKind kind) {
    auto& endpoint = endpoints_[name];
    endpoint.addr = MediaAddress::parse(ip, 5000);
    endpoint.slot = SlotEndpoint{SlotId{next_slot_++}, /*initiator=*/false};
    MediaIntent intent =
        MediaIntent::endpoint(endpoint.addr, {Codec::g711u, Codec::g726});
    if (kind == GoalKind::openSlot) {
      endpoint.goal = OpenSlotGoal{Medium::audio, intent,
                                   DescriptorFactory{next_slot_ * 101}};
    } else {
      endpoint.goal = HoldSlotGoal{intent, DescriptorFactory{next_slot_ * 101}};
    }
    return endpoint;
  }

  // A naive server slot: whatever arrives here is re-emitted, untouched, on
  // `forward_to` (another server slot's wire or an endpoint wire).
  SlotId addServerSlot() { return SlotId{next_slot_++}; }

  // Wire: signals sent "from" a slot appear at its peer.
  void wire(SlotId a, SlotId b) {
    peer_[a] = b;
    peer_[b] = a;
  }
  void forwardPair(SlotId a, SlotId b) {  // naive server: a <-> b
    forward_[a] = b;
    forward_[b] = a;
  }

  void attach(const std::string& name) {
    Endpoint& e = endpoints_[name];
    Outbox out;
    cmc::attach(e.goal, e.slot, out);
    emit(e.slot.id(), std::move(out));
  }

  // Inject a raw server-originated signal traveling out of server slot `s`.
  void inject(SlotId from, Signal signal) {
    queue_.push_back({peer_.at(from), std::move(signal)});
  }

  // Pump until quiescent.
  void run() {
    int guard = 0;
    while (!queue_.empty() && ++guard < 10000) {
      auto item = std::move(queue_.front());
      queue_.pop_front();
      const SlotId slot = item.first;
      const Signal& signal = item.second;
      // Endpoint slot?
      bool handled = false;
      for (auto& [name, e] : endpoints_) {
        if (e.slot.id() != slot) continue;
        const DeliverResult r = e.slot.deliver(signal);
        Outbox out;
        if (r.autoReply) out.send(slot, *r.autoReply);
        onEvent(e.goal, e.slot, r.event, out);
        emit(slot, std::move(out));
        handled = true;
        break;
      }
      if (handled) continue;
      // Server slot: cache descriptors passing through, forward untouched.
      if (const Descriptor* d = descriptorOf(signal)) cache_[slot] = *d;
      auto fwd = forward_.find(slot);
      if (fwd != forward_.end()) {
        queue_.push_back({peer_.at(fwd->second), signal});
      }
    }
  }

  [[nodiscard]] const Descriptor* cached(SlotId slot) const {
    auto it = cache_.find(slot);
    return it == cache_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] Endpoint& endpoint(const std::string& name) {
    return endpoints_.at(name);
  }

  // Where is this endpoint currently sending media (per its own
  // descriptor/selector state)?
  [[nodiscard]] std::optional<MediaAddress> sendsTo(const std::string& name) {
    auto state = sendStateOf(endpoints_.at(name).slot);
    if (!state || isNoMedia(state->codec)) return std::nullopt;
    return state->target;
  }

  [[nodiscard]] Descriptor freshNoMedia() {
    return makeDescriptor(DescriptorId{999900 + next_slot_++}, MediaAddress{}, {},
                          true);
  }

 private:
  void emit(SlotId from, Outbox&& out) {
    for (auto& item : out.take()) {
      queue_.push_back({peer_.at(item.slot), std::move(item.signal)});
    }
    (void)from;
  }

  std::map<std::string, Endpoint> endpoints_;
  std::map<SlotId, SlotId> peer_;     // wire connectivity
  std::map<SlotId, SlotId> forward_;  // naive-server pairing
  std::map<SlotId, Descriptor> cache_;
  std::deque<std::pair<SlotId, Signal>> queue_;
  std::uint64_t next_slot_ = 1;
};

}  // namespace

int main() {
  bench::banner(
      "ABLATION: uncoordinated servers — the paper's Fig. 2 reproduced",
      "without the primitives, blind forwarding yields one-way media, "
      "hijacked endpoints, and wasted streams");
  bench::note(
      "each FAIL below is an expected, reproduced Fig. 2 pathology; the "
      "identical checks PASS in bench_scenario_correctness (E7)");
  std::printf("\n");

  NaiveWorld world;
  // Endpoints: A, B, C phones; V voice resource. A and C originate (open),
  // B and V answer (hold).
  world.addEndpoint("A", "10.0.0.1", GoalKind::openSlot);
  world.addEndpoint("B", "10.0.0.2", GoalKind::holdSlot);
  world.addEndpoint("C", "10.0.0.3", GoalKind::openSlot);
  world.addEndpoint("V", "10.0.0.9", GoalKind::holdSlot);

  // Naive PBX with slots toward A, B, PC; naive PC with slots toward PBX,
  // C, V.
  const SlotId pbx_a = world.addServerSlot();
  const SlotId pbx_b = world.addServerSlot();
  const SlotId pbx_pc = world.addServerSlot();
  const SlotId pc_pbx = world.addServerSlot();
  const SlotId pc_c = world.addServerSlot();
  const SlotId pc_v = world.addServerSlot();
  world.wire(world.endpoint("A").slot.id(), pbx_a);
  world.wire(world.endpoint("B").slot.id(), pbx_b);
  world.wire(pbx_pc, pc_pbx);
  world.wire(world.endpoint("C").slot.id(), pc_c);
  world.wire(world.endpoint("V").slot.id(), pc_v);

  const auto a_addr = world.endpoint("A").addr;
  const auto c_addr = world.endpoint("C").addr;
  const auto v_addr = world.endpoint("V").addr;
  auto sends = [&world](const char* who, const MediaAddress& to) {
    return world.sendsTo(who) == std::optional<MediaAddress>(to);
  };

  // --- history: A talks to B through the PBX ------------------------------
  world.forwardPair(pbx_a, pbx_b);
  world.attach("A");
  world.attach("B");
  world.run();

  // --- C dials the prepaid service; PC answers to prompt for the card ----
  world.forwardPair(pc_c, pc_pbx);
  world.attach("C");
  world.run();  // C's open is cached along the way
  world.inject(pc_c, OackSignal{world.freshNoMedia()});  // PC's card prompt
  world.run();

  // --- Fig. 2 snapshot 1: A switches to the incoming call ----------------
  // The PBX re-points A at its PC side and re-describes both parties from
  // its caches. Nobody tells B anything (no coordination!).
  world.forwardPair(pbx_a, pbx_pc);
  world.inject(pbx_a, DescribeSignal{*world.cached(pbx_pc)});  // "A: send to C"
  world.inject(pbx_pc, DescribeSignal{*world.cached(pbx_a)});  // "C: send to A"
  world.run();

  if (sends("A", c_addr) && sends("C", a_addr)) {
    bench::note("snapshot 1: A <-> C established (as in Fig. 2)");
  }
  const bool b_wasting_early = sends("B", a_addr);
  if (b_wasting_early) {
    bench::note("snapshot 1: B was never told to stop — already streaming at "
                "a deaf endpoint");
  }

  // --- Fig. 2 snapshot 2: funds exhausted --------------------------------
  // PC sends three signals: "A: stop", "V: send to C", "C: send to V".
  world.attach("V");
  world.inject(pc_pbx, DescribeSignal{world.freshNoMedia()});  // toward A
  world.forwardPair(pc_c, pc_v);
  world.inject(pc_v, OpenSignal{Medium::audio, *world.cached(pc_c)});
  world.run();
  world.inject(pc_c, DescribeSignal{*world.cached(pc_v)});  // "C: send to V"
  world.run();
  if (sends("C", v_addr) && sends("V", c_addr)) {
    bench::note("snapshot 2: C <-> V established for fund collection");
  }

  // --- Fig. 2 snapshot 3: the PBX switches A back to B -------------------
  // Its three signals: "A: send to B", "B: send to A", and toward its PC
  // side "stop sending" — which PC forwards untouched to C.
  world.forwardPair(pbx_a, pbx_b);
  world.inject(pbx_a, DescribeSignal{*world.cached(pbx_b)});
  world.inject(pbx_b, DescribeSignal{*world.cached(pbx_a)});
  world.inject(pbx_pc, DescribeSignal{world.freshNoMedia()});
  world.run();

  const bool c_still_feeds_v = sends("C", v_addr);
  const bool v_still_feeds_c = sends("V", c_addr);
  bench::verdict(c_still_feeds_v,
                 "P1: C still sends to V after the PBX switch");
  if (!c_still_feeds_v && v_still_feeds_c) {
    bench::note("  -> Fig. 2 snapshot 3 reproduced: the forwarded 'stop "
                "sending' cut C's audio; media C <-> V is now ONE-WAY");
  }

  // --- Fig. 2 snapshot 4: V verified the funds; PC reconnects C and A ----
  // PC's signals pass through the PBX untouched (its stale forwarding entry
  // still points at A — blind is blind).
  world.forwardPair(pc_c, pc_pbx);
  world.inject(pc_pbx, DescribeSignal{*world.cached(pc_c)});  // -> A, blindly
  world.inject(pc_c, DescribeSignal{*world.cached(pc_pbx)});  // "C: send to A"
  world.inject(pc_v, DescribeSignal{world.freshNoMedia()});   // "V: stop"
  world.run();

  const bool a_hijacked = sends("A", c_addr);
  bench::verdict(!a_hijacked,
                 "P2: A still sends to B (the PBX's choice is respected)");
  if (a_hijacked) {
    bench::note("  -> Fig. 2 snapshot 4 reproduced: PC's forwarded signals "
                "switched A to C WITHOUT A's (PBX's) permission");
  }

  const bool b_wasting = sends("B", a_addr);
  bench::verdict(!b_wasting, "P3: B is not streaming at a deaf endpoint");
  if (b_wasting && a_hijacked) {
    bench::note("  -> Fig. 2 snapshot 4 reproduced: B keeps transmitting to "
                "A, which now talks to C and throws B's packets away");
  }

  std::printf("\n");
  bench::note("conclusion: the pathologies are not hypothetical — they fall "
              "straight out of standard forward-untouched server behavior; "
              "the four primitives exist to prevent exactly this");
  return 0;
}
