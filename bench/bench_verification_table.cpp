// Experiment E1 (paper Section VIII-A): the 12-model verification table.
//
// The paper model-checked 12 signaling paths — the six path types with no
// flowlink and the same six with one flowlink — against a safety property
// and their Section V temporal specifications, starting from chaotic
// initial phases. This bench re-runs that campaign with our explicit-state
// checker over the real C++ goal objects and prints one row per model.
//
// Absolute state counts differ from the paper's Spin runs (different
// modeling granularity, descriptor domains, machine); what must reproduce
// is: every model passes both checks, and one flowlink inflates the state
// space by orders of magnitude (see bench_statespace_growth).
#include <algorithm>
#include <cstdio>
#include <thread>

#include "bench_util.hpp"
#include "mc/verification.hpp"

int main() {
  using namespace cmc;
  bench::banner(
      "E1: verification of the 12 path models (Section VIII-A)",
      "all six path types, with 0 and 1 flowlinks, satisfy safety and "
      "their <>[] / []<> specifications from every chaotic initial state");

  ExploreLimits limits;
  limits.chaos_budget = 1;   // chaotic prefix actions per goal object
  limits.modify_budget = 1;  // user mute perturbations after attach
  limits.max_states = 4'000'000;
  // Verdicts and counts are thread-count invariant, so use every core.
  limits.threads = std::max(1u, std::thread::hardware_concurrency());
  std::printf("  explorer threads: %zu\n", limits.threads);

  std::printf(
      "  %-10s %-10s %-6s %-34s %10s %12s %9s %8s %7s %6s\n", "left", "right",
      "links", "specification", "states", "transitions", "MB(canon)", "time(s)",
      "safety", "spec");

  bool all_ok = true;
  for (const auto& config : paperVerificationSuite()) {
    const VerificationOutcome o = verifyPath(config, limits);
    all_ok = all_ok && o.ok();
    std::printf("  %-10s %-10s %-6zu %-34s %10zu %12zu %9.1f %8.2f %7s %6s\n",
                std::string(toString(config.left)).c_str(),
                std::string(toString(config.right)).c_str(), config.flowlinks,
                std::string(toString(o.spec)).c_str(), o.states, o.transitions,
                static_cast<double>(o.bytes) / (1024.0 * 1024.0), o.seconds,
                o.safety_ok ? "pass" : "FAIL", o.spec_ok ? "pass" : "FAIL");
    if (!o.failure.empty()) {
      std::printf("      counterexample: %s\n", o.failure.c_str());
    }
    char config_label[64];
    std::snprintf(config_label, sizeof(config_label), "%s/%s/%zu",
                  std::string(toString(config.left)).c_str(),
                  std::string(toString(config.right)).c_str(),
                  config.flowlinks);
    bench::exploreStats(o.stats, "verification_table", config_label);
  }
  bench::verdict(all_ok,
                 "all 12 models pass safety + specification (paper: same)");

  // Faulty column (docs/FAULTS.md): the same 12 models re-verified with an
  // adversarial message-fault budget — the scheduler may drop or duplicate
  // two in-flight signals anywhere along the path, and the parties run in
  // stabilization mode. Because the remaining budget is part of the
  // canonical state, every cycle the temporal checks examine is fault-free:
  // a pass means "after injection ceases, the path self-stabilizes to its
  // Section V specification". Chaos/modify budgets are zeroed so the column
  // isolates the fault dimension.
  std::printf("\n  faulty column: fault_budget=2, chaos=0, modify=0\n");
  ExploreLimits faulty;
  faulty.chaos_budget = 0;
  faulty.modify_budget = 0;
  faulty.fault_budget = 2;
  faulty.max_states = 4'000'000;
  faulty.threads = limits.threads;

  bool faulty_ok = true;
  for (const auto& config : paperVerificationSuite()) {
    const VerificationOutcome o = verifyPath(config, faulty);
    faulty_ok = faulty_ok && o.ok();
    std::printf("  %-10s %-10s %-6zu %-34s %10zu %12zu %9.1f %8.2f %7s %6s\n",
                std::string(toString(config.left)).c_str(),
                std::string(toString(config.right)).c_str(), config.flowlinks,
                std::string(toString(o.spec)).c_str(), o.states, o.transitions,
                static_cast<double>(o.bytes) / (1024.0 * 1024.0), o.seconds,
                o.safety_ok ? "pass" : "FAIL", o.spec_ok ? "pass" : "FAIL");
    if (!o.failure.empty()) {
      std::printf("      counterexample: %s\n", o.failure.c_str());
    }
    char config_label[80];
    std::snprintf(config_label, sizeof(config_label), "%s/%s/%zu/faulty",
                  std::string(toString(config.left)).c_str(),
                  std::string(toString(config.right)).c_str(),
                  config.flowlinks);
    bench::exploreStats(o.stats, "verification_table", config_label);
  }
  bench::verdict(faulty_ok,
                 "all 12 models self-stabilize under a 2-fault budget");
  return (all_ok && faulty_ok) ? 0 : 1;
}
