// Shared table-printing helpers for the experiment benches. Every bench
// regenerates one evaluation claim of the paper and prints paper-vs-measured
// rows; EXPERIMENTS.md records the outputs. Machine-readable payloads
// (explorer stats, metrics dumps, convergence histograms) all go through
// jsonLine() so harnesses can scrape one uniform "  TAG {json}" shape.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "mc/explore_stats.hpp"

namespace cmc::bench {

inline void banner(const std::string& experiment, const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper claim: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

inline void row(const std::string& label, double paper, double measured,
                const std::string& unit) {
  std::printf("  %-44s paper=%10.1f %-4s  measured=%10.1f %-4s  ratio=%5.2f\n",
              label.c_str(), paper, unit.c_str(), measured, unit.c_str(),
              paper > 0 ? measured / paper : 0.0);
}

inline void note(const std::string& text) { std::printf("  %s\n", text.c_str()); }

inline void verdict(bool ok, const std::string& what) {
  std::printf("  [%s] %s\n", ok ? "OK " : "FAIL", what.c_str());
}

// Every jsonLine() payload is also appended as one {"tag":...,"data":...}
// JSONL record to CMC_BENCH_RESULTS (default "bench_results.json" in the
// working directory — build/ when the benches run from there, which is the
// file CI uploads as an artifact). Set CMC_BENCH_RESULTS="" to disable.
inline void appendResult(const std::string& tag, const std::string& json) {
  static FILE* out = []() -> FILE* {
    const char* path = std::getenv("CMC_BENCH_RESULTS");
    if (path != nullptr && *path == '\0') return nullptr;
    return std::fopen(path != nullptr ? path : "bench_results.json", "a");
  }();
  if (out == nullptr) return;
  std::fprintf(out, "{\"tag\":\"%s\",\"data\":%s}\n", tag.c_str(), json.c_str());
  std::fflush(out);
}

// One machine-readable line: two-space indent, TAG, one JSON object.
inline void jsonLine(const std::string& tag, const std::string& json) {
  std::printf("  %s %s\n", tag.c_str(), json.c_str());
  appendResult(tag, json);
}

inline void exploreStats(const ExploreStats& stats, const std::string& bench,
                         const std::string& config) {
  jsonLine("EXPLORE_STATS", stats.json(bench, config));
}

}  // namespace cmc::bench
