// Shared table-printing helpers for the experiment benches. Every bench
// regenerates one evaluation claim of the paper and prints paper-vs-measured
// rows; EXPERIMENTS.md records the outputs.
#pragma once

#include <cstdio>
#include <string>

namespace cmc::bench {

inline void banner(const std::string& experiment, const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper claim: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

inline void row(const std::string& label, double paper, double measured,
                const std::string& unit) {
  std::printf("  %-44s paper=%10.1f %-4s  measured=%10.1f %-4s  ratio=%5.2f\n",
              label.c_str(), paper, unit.c_str(), measured, unit.c_str(),
              paper > 0 ? measured / paper : 0.0);
}

inline void note(const std::string& text) { std::printf("  %s\n", text.c_str()); }

inline void verdict(bool ok, const std::string& what) {
  std::printf("  [%s] %s\n", ok ? "OK " : "FAIL", what.c_str());
}

}  // namespace cmc::bench
