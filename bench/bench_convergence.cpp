// Experiment E9 (paper Section VIII-B, Fig. 13): the convergence argument.
//
// "After a signaling path stabilizes, eventually the descriptor of an
// endpoint will propagate along the entire signaling path as the most
// recent descriptor from that end. When it reaches the other end, the other
// end will respond with a new selector... the selector will be accepted and
// forwarded by each box in the path."
//
// This bench replays the Fig. 13 moment (PBX and PC relink concurrently)
// and prints the actual message-sequence chart observed on the wire,
// followed by checks that the final descriptors/selectors propagated end
// to end. Compare the shape to the paper's Fig. 13: superseded noMedia
// describes, then the real descriptors, then matching selects.
#include <cstdio>

#include "apps/pbx.hpp"
#include "apps/prepaid.hpp"
#include "bench_util.hpp"
#include "endpoints/resources.hpp"
#include "endpoints/user_device.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace cmc;
  using namespace cmc::literals;
  bench::banner(
      "E9: descriptor/selector convergence under concurrent relink (Fig. 13)",
      "the final endpoint descriptors propagate end to end and the "
      "answering selectors are forwarded by every box");

  Simulator sim(TimingModel::paperDefaults(), 7);
  auto& a = sim.addBox<UserDeviceBox>("A", sim.mediaNetwork(), sim.loop(),
                                      MediaAddress::parse("10.0.0.1", 5000));
  sim.addBox<UserDeviceBox>("B", sim.mediaNetwork(), sim.loop(),
                            MediaAddress::parse("10.0.0.2", 5000));
  auto& c = sim.addBox<UserDeviceBox>("C", sim.mediaNetwork(), sim.loop(),
                                      MediaAddress::parse("10.0.0.3", 5000));
  auto& v = sim.addBox<VoiceResourceBox>("V", sim.mediaNetwork(), sim.loop(),
                                         MediaAddress::parse("10.0.0.9", 5900));
  v.authorizeAfter = 60_s;
  sim.addBox<PbxBox>("PBX", "A");
  auto& pc = sim.addBox<PrepaidCardBox>("PC", "PBX", "V", 3_s);
  sim.connect("A", "PBX");

  sim.inject("A", [](Box& bx) { static_cast<UserDeviceBox&>(bx).callOnLine(); });
  sim.runFor(500_ms);
  sim.inject("PBX", [](Box& bx) { static_cast<PbxBox&>(bx).dial("B"); });
  sim.runFor(1_s);
  sim.inject("C", [](Box& bx) { static_cast<UserDeviceBox&>(bx).placeCall("PC"); });
  sim.runFor(1_s);
  sim.inject("PBX", [](Box& bx) { static_cast<PbxBox&>(bx).switchTo("PC"); });
  sim.runFor(4_s);  // includes the talk-time expiry -> collecting
  sim.inject("PBX", [](Box& bx) { static_cast<PbxBox&>(bx).switchTo("B"); });
  sim.runFor(2_s);
  if (pc.state() != PrepaidCardBox::State::collecting) {
    bench::verdict(false, "setup failed");
    return 1;
  }

  // Record the message-sequence chart from the concurrent change onward.
  struct Line {
    double t;
    std::string text;
  };
  std::vector<Line> chart;
  const SimTime start = sim.now();
  sim.onSignalDelivered = [&](const std::string& from, const std::string& to,
                              const Signal& signal, SimTime at) {
    std::ostringstream oss;
    oss << from << " -> " << to << " : " << signal;
    chart.push_back(Line{(at - start).count() / 1000.0, oss.str()});
  };
  sim.inject("PC", [](Box& bx) {
    bx.deliverMeta(ChannelId{}, MetaSignal{MetaKind::custom, "paid", ""});
  });
  sim.inject("PBX", [](Box& bx) { static_cast<PbxBox&>(bx).switchTo("PC"); });
  sim.runFor(1500_ms);
  sim.onSignalDelivered = nullptr;

  std::printf("\n  message-sequence chart (t=0 at the concurrent change):\n");
  for (const auto& line : chart) {
    std::printf("   %8.1f ms  %s\n", line.t, line.text.c_str());
  }

  std::printf("\n  convergence checks:\n");
  bool ok = true;
  auto check = [&](bool condition, const std::string& what) {
    bench::verdict(condition, what);
    ok = ok && condition;
  };
  check(a.media().sendingState() &&
            a.media().sendingState()->target == c.media().address(),
        "A's selector answers C's descriptor (sends to C's address)");
  check(c.media().sendingState() &&
            c.media().sendingState()->target == a.media().address(),
        "C's selector answers A's descriptor (sends to A's address)");
  a.media().resetStats();
  c.media().resetStats();
  sim.runFor(1_s);
  check(a.media().hears(c.media().id()) && c.media().hears(a.media().id()),
        "media flows A <-> C after convergence");
  return ok ? 0 : 1;
}
