// Extension beyond the paper: verification of paths with TWO flowlinks.
//
// Paper Section VIII-A: "checking a path with two flowlinks might take
// something like 900 Gb of memory and 300 hours... these numbers are still
// forbidding", and Section VIII-B proposes (as future work) an inductive
// proof built from segments with at most one interior flowlink.
//
// Our state encoding is leaner than the paper's Promela model, so the
// two-flowlink configurations become directly checkable: this bench runs
// all six path types with two flowlink boxes and the same chaotic initial
// phases as E1 (modify perturbations dropped to keep the run under a
// minute).
#include <cstdio>

#include "bench_util.hpp"
#include "mc/verification.hpp"

int main() {
  using namespace cmc;
  bench::banner(
      "EXT: verification of 2-flowlink paths (paper: projected infeasible)",
      "paper projected ~900 GB / ~300 h for one such check in Spin; the "
      "leaner direct-C++ encoding brings them into reach");

  ExploreLimits limits;
  limits.chaos_budget = 1;   // full chaotic initial phases, as in E1
  limits.modify_budget = 0;  // drop user perturbations to stay in seconds
  limits.max_states = 8'000'000;

  std::printf("  %-10s %-10s %-34s %10s %12s %8s %7s %6s\n", "left", "right",
              "specification", "states", "transitions", "time(s)", "safety",
              "spec");
  bool all_ok = true;
  const auto suite = paperVerificationSuite();
  for (std::size_t i = 0; i < 6; ++i) {
    VerificationCase config = suite[i];
    config.flowlinks = 2;
    const VerificationOutcome o = verifyPath(config, limits);
    all_ok = all_ok && o.ok();
    std::printf("  %-10s %-10s %-34s %10zu %12zu %8.2f %7s %6s\n",
                std::string(toString(config.left)).c_str(),
                std::string(toString(config.right)).c_str(),
                std::string(toString(o.spec)).c_str(), o.states, o.transitions,
                o.seconds, o.safety_ok ? "pass" : "FAIL",
                o.spec_ok ? "pass" : "FAIL");
    if (!o.failure.empty()) std::printf("      %s\n", o.failure.c_str());
  }
  bench::verdict(all_ok, "all six 2-flowlink models pass safety + spec");
  return all_ok ? 0 : 1;
}
