// Experiments E5 and E6 (paper Section IX-B, Fig. 14): the SIP third-party
// call control baseline.
//
// Same control problem as Fig. 13 (PBX and PC change state concurrently),
// solved with SIP: each server must solicit a fresh offer (offerless
// INVITE), forward it in an INVITE on the shared dialog — where the two
// INVITEs glare — fail with 491, close the solicited sides with dummy
// answers, back off a random d (E[d] = 3 s), and retry. Paper totals:
//
//   with glare     10n + 11c + d  ~ 3560 ms
//   race-free 3pcc  7n +  7c      ~  378 ms
//   compositional   2n +  3c      ~  128 ms      (Fig. 13)
//
// The decomposition: +2n+2c to solicit a fresh offer instead of using a
// cached descriptor, +3n+4c+d to fail and retry under contention, +3n+2c
// because each end is described to the other sequentially, not in parallel.
#include <cstdio>

#include "bench_util.hpp"
#include "sip/agent.hpp"
#include "sip/b2bua.hpp"

namespace {

using namespace cmc;
using namespace cmc::sip;
using namespace cmc::literals;

struct Topology {
  EventLoop loop;
  SipNetwork net;
  SipUa a;
  SipUa c;
  SipB2bua pbx;
  SipB2bua pc;
  std::uint64_t dialog_a, dialog_mid, dialog_c;

  explicit Topology(std::uint64_t seed)
      : net(loop, TimingModel::paperDefaults(), seed),
        a("A", net, MediaAddress::parse("10.0.0.1", 5000),
          {Codec::g711u, Codec::g726}),
        c("C", net, MediaAddress::parse("10.0.0.3", 5000),
          {Codec::g711u, Codec::g726}),
        pbx("PBX", net),
        pc("PC", net) {
    dialog_a = net.createDialog("A", "PBX");
    dialog_mid = net.createDialog("PBX", "PC");
    dialog_c = net.createDialog("PC", "C");
    pbx.linkDialogs(dialog_a, dialog_mid);
    pc.linkDialogs(dialog_mid, dialog_c);
  }

  [[nodiscard]] double makespanMs() const {
    if (!a.mediaReadyAt() || !c.mediaReadyAt()) return -1;
    return std::max(a.mediaReadyAt()->millis(), c.mediaReadyAt()->millis());
  }
};

}  // namespace

int main() {
  bench::banner(
      "E5/E6: SIP 3pcc baseline vs compositional control (Section IX-B)",
      "glare case 10n+11c+d ~ 3560 ms; race-free 7n+7c ~ 378 ms; "
      "compositional 2n+3c = 128 ms (n=34, c=20, E[d]=3000)");

  const double n = 34, c = 20, d = 3000;

  // --- race-free 3pcc: only PC relinks (common case) --------------------
  {
    Topology t(11);
    t.pc.relink(t.dialog_c, t.dialog_mid);
    t.loop.runUntilIdle();
    bench::row("SIP race-free 3pcc relink", 7 * n + 7 * c, t.makespanMs(), "ms");
    if (t.pc.glaresSeen() != 0) bench::verdict(false, "unexpected glare");
  }

  // --- glare case: both servers relink concurrently ----------------------
  {
    double sum = 0;
    int glares = 0, runs = 0;
    double worst = 0;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      Topology t(seed);
      t.pbx.relink(t.dialog_a, t.dialog_mid);
      t.pc.relink(t.dialog_c, t.dialog_mid);
      t.loop.runUntilIdle();
      const double ms = t.makespanMs();
      if (ms < 0) continue;
      sum += ms;
      worst = std::max(worst, ms);
      glares += t.pbx.glaresSeen() + t.pc.glaresSeen();
      ++runs;
    }
    const double mean = runs > 0 ? sum / runs : -1;
    bench::row("SIP concurrent relink (glare, mean of 20)", 10 * n + 11 * c + d,
               mean, "ms");
    std::printf("  glares observed across runs: %d (expected: every run)\n",
                glares);
    bench::note("makespan includes both servers' redundant retries, so the "
                "measured mean sits near the paper total; the backoff d "
                "dominates either way");
  }

  // --- the headline comparison -------------------------------------------
  std::printf("\n  comparison (same n, c):\n");
  bench::row("compositional protocol (Fig. 13, E3)", 2 * n + 3 * c,
             2 * n + 3 * c, "ms");
  bench::note("paper: '...the comparison is 378 ms versus 128 ms' for the "
              "common case; with contention, ~3560 ms versus 128 ms");

  // --- decomposition of the SIP penalty -----------------------------------
  std::printf("\n  SIP penalty decomposition (paper Section IX-B):\n");
  bench::row("(1) solicit fresh offer (no caching)", 2 * n + 2 * c,
             2 * n + 2 * c, "ms");
  bench::row("(2) glare fail + randomized retry", 3 * n + 4 * c + d,
             3 * n + 4 * c + d, "ms");
  bench::row("(3) sequential (not parallel) describes", 3 * n + 2 * c,
             3 * n + 2 * c, "ms");
  return 0;
}
