// Experiment E2 (paper Section VIII-A): cost of verifying flowlinks.
//
// Paper: "adding a flowlink causes the memory to grow by a factor of 300 on
// the average, and the time to grow by a factor of 1000 on the average",
// which is why paths with two flowlinks were out of reach (projected 900 GB
// / 300 hours). This bench measures the same growth factors on our checker:
// the multiplicative blow-up per flowlink is the reproduced shape.
#include <cmath>
#include <cstdio>
#include <thread>

#include "bench_util.hpp"
#include "mc/verification.hpp"

int main() {
  using namespace cmc;
  bench::banner(
      "E2: state-space growth per flowlink (Section VIII-A)",
      "one flowlink multiplies memory ~300x and time ~1000x on average; "
      "two flowlinks were projected infeasible (~900 GB, ~300 h)");

  ExploreLimits limits;
  limits.chaos_budget = 1;
  limits.modify_budget = 0;  // keep the 1-link runs quick
  limits.max_states = 4'000'000;

  const auto suite = paperVerificationSuite();
  std::printf("  %-22s %12s %12s %12s %10s\n", "path type", "states(0fl)",
              "states(1fl)", "state growth", "time growth");

  double geo_state_growth = 1, geo_time_growth = 1;
  int rows = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    const auto& flat_config = suite[i];
    const auto& linked_config = suite[i + 6];
    const auto flat = explorePath(flat_config.left, flat_config.right, 0, limits);
    const auto linked =
        explorePath(linked_config.left, linked_config.right, 1, limits);
    const double sgrowth = static_cast<double>(linked.states()) /
                           static_cast<double>(flat.states());
    const double tgrowth =
        linked.seconds > 0 && flat.seconds > 0
            ? linked.seconds / std::max(flat.seconds, 1e-6)
            : 0.0;
    std::printf("  %-10s/%-11s %12zu %12zu %11.1fx %9.1fx\n",
                std::string(toString(flat_config.left)).c_str(),
                std::string(toString(flat_config.right)).c_str(), flat.states(),
                linked.states(), sgrowth, tgrowth);
    geo_state_growth *= sgrowth;
    geo_time_growth *= std::max(tgrowth, 1.0);
    ++rows;
  }
  const double mean_state = std::pow(geo_state_growth, 1.0 / rows);
  const double mean_time = std::pow(geo_time_growth, 1.0 / rows);
  bench::row("geometric-mean state growth per flowlink", 300.0, mean_state, "x");
  bench::row("geometric-mean time growth per flowlink", 1000.0, mean_time, "x");
  bench::note(
      "absolute factors depend on model granularity; the reproduced claim "
      "is the multiplicative explosion that makes >=2 flowlinks infeasible");
  bench::verdict(mean_state > 10.0,
                 "adding one flowlink inflates the state space by >10x");

  // --- parallel explorer scaling on the largest configuration -------------
  // openSlot/openSlot with one flowlink is the biggest model of the suite;
  // run it at 1/2/8 workers. Counts and verdicts must be identical at every
  // thread count (the parallel explorer visits the same reachable graph);
  // wall-clock speedup tracks the machine's real core count.
  std::printf("\n  parallel explorer scaling, openSlot/openSlot + 1 flowlink "
              "(hardware threads: %u)\n",
              std::thread::hardware_concurrency());
  std::printf("  %-8s %12s %12s %10s %9s %8s\n", "threads", "states",
              "transitions", "states/s", "time(s)", "speedup");
  double baseline_seconds = 0;
  std::size_t baseline_states = 0, baseline_transitions = 0;
  bool counts_ok = true;
  double best_speedup = 1.0;
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ExploreLimits plimits = limits;
    plimits.modify_budget = 1;  // E1's full budget: the real largest model
    plimits.threads = threads;
    const auto graph = explorePath(GoalKind::openSlot, GoalKind::openSlot, 1,
                                   plimits);
    if (threads == 1) {
      baseline_seconds = graph.seconds;
      baseline_states = graph.states();
      baseline_transitions = graph.transitions;
    } else {
      counts_ok = counts_ok && graph.states() == baseline_states &&
                  graph.transitions == baseline_transitions;
    }
    const double speedup =
        graph.seconds > 0 ? baseline_seconds / graph.seconds : 0.0;
    best_speedup = std::max(best_speedup, speedup);
    std::printf("  %-8zu %12zu %12zu %10.0f %9.2f %7.2fx\n", threads,
                graph.states(), graph.transitions,
                graph.stats.statesPerSecond(), graph.seconds, speedup);
    bench::exploreStats(graph.stats, "statespace_growth", "openSlot/openSlot/1");
  }
  bench::verdict(counts_ok,
                 "identical state/transition counts at every thread count");
  if (std::thread::hardware_concurrency() >= 4) {
    bench::verdict(best_speedup >= 2.0,
                   ">=2x speedup at 8 workers over the sequential explorer");
  } else {
    bench::note("speedup verdict skipped: fewer than 4 hardware threads");
  }
  return counts_ok ? 0 : 1;
}
