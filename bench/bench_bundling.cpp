// Experiment EXT2 (paper Section IX-B, third difference): media bundling.
//
// "Each SIP signal for controlling media refers to all media channels of
// the path simultaneously... Because of media bundling, a transaction to
// control a video channel contends with a transaction to control an audio
// channel on the same signaling path. If the channels were controlled by
// signals in separate tunnels, as in our protocol, this contention could
// not occur."
//
// Both sides of one audio+video session modify *different* media at the
// same instant:
//   * SIP: one dialog, one bundled SDP -> the two re-INVITEs glare; both
//     fail and pay the randomized backoff d;
//   * this protocol: two tunnels -> the describes cross without touching.
#include <cstdio>

#include "bench_util.hpp"
#include "endpoints/av_device.hpp"
#include "sim/simulator.hpp"
#include "sip/agent.hpp"

namespace {

using namespace cmc;
using namespace cmc::literals;

// Ours: concurrent audio/video modifies on separate tunnels.
double oursMs() {
  Simulator sim(TimingModel::paperDefaults(), 41);
  auto& a = sim.addBox<AvDeviceBox>(
      "A", sim.mediaNetwork(), sim.loop(), MediaAddress::parse("10.4.0.1", 5000),
      std::vector<AvDeviceBox::StreamSpec>{
          {Medium::audio, {Codec::g711u}}, {Medium::video, {Codec::h263}}});
  auto& b = sim.addBox<AvDeviceBox>(
      "B", sim.mediaNetwork(), sim.loop(), MediaAddress::parse("10.4.0.2", 5000),
      std::vector<AvDeviceBox::StreamSpec>{
          {Medium::audio, {Codec::g711u}}, {Medium::video, {Codec::h263}}});
  const ChannelId ch = sim.connect("A", "B", 2);
  sim.inject("A", [](Box& bx) {
    static_cast<AvDeviceBox&>(bx).openStream(0);
    static_cast<AvDeviceBox&>(bx).openStream(1);
  });
  sim.runFor(3_s);

  const SimTime start = sim.now();
  sim.inject("A", [ch](Box& bx) {
    bx.setSlotMute(bx.slotsOf(ch)[0], false, true);  // A: audio change
  });
  sim.inject("B", [ch](Box& bx) {
    bx.setSlotMute(bx.slotsOf(ch)[1], false, true);  // B: video change
  });
  // Completion: both modifies acknowledged end to end (the peers received
  // the new selectors).
  for (int ms = 0; ms < 5000; ++ms) {
    sim.runFor(1_ms);
    const auto& audio_a = a.slot(a.slotsOf(ch)[0]);
    const auto& video_b = b.slot(b.slotsOf(ch)[1]);
    const bool audio_done = audio_a.lastSelectorReceived() &&
                            audio_a.lastSelectorReceived()->answersDescriptor ==
                                audio_a.lastDescriptorSent();
    const bool video_done = video_b.lastSelectorReceived() &&
                            video_b.lastSelectorReceived()->answersDescriptor ==
                                video_b.lastDescriptorSent();
    // The describes changed nothing structural; treat one full round trip
    // of describe+select on each tunnel as completion.
    if (audio_done && video_done && (sim.now() - start) > 100_ms) {
      return (sim.now() - start).count() / 1000.0;
    }
  }
  return -1;
}

// SIP: the same two concurrent changes on one bundled dialog.
double sipMs(std::uint64_t seed) {
  EventLoop loop;
  sip::SipNetwork net(loop, TimingModel::paperDefaults(), seed);
  sip::SipUa a("A", net, MediaAddress::parse("10.4.0.1", 5000),
               {Codec::g711u, Codec::h263});
  sip::SipUa b("B", net, MediaAddress::parse("10.4.0.2", 5000),
               {Codec::g711u, Codec::h263});
  const auto dialog = net.createDialog("A", "B");
  // Established session first.
  a.reinvite(dialog);
  loop.runUntilIdle();
  const double established = a.mediaReadyAt() ? a.mediaReadyAt()->millis() : 0;

  // Both sides re-INVITE at the same moment (audio change at A, video
  // change at B — but SIP has ONE bundled body, so they collide).
  a.reinvite(dialog);
  b.reinvite(dialog);
  loop.runUntilIdle();
  const double a_done = a.mediaReadyAt()->millis();
  const double b_done = b.mediaReadyAt()->millis();
  return std::max(a_done, b_done) - established;
}

}  // namespace

int main() {
  bench::banner(
      "EXT2: media bundling contention (Section IX-B)",
      "concurrent audio/video changes cannot contend on separate tunnels; "
      "in SIP the bundled re-INVITEs glare and pay the ~3 s backoff");

  const double ours = oursMs();
  double sip_sum = 0;
  int sip_runs = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const double ms = sipMs(seed);
    if (ms > 0) {
      sip_sum += ms;
      ++sip_runs;
    }
  }
  const double sip_mean = sip_runs ? sip_sum / sip_runs : -1;

  bench::row("tunnels: concurrent audio+video modify", 2 * 34 + 2 * 20, ours,
             "ms");
  bench::row("SIP bundled: concurrent modifies (glare, mean of 10)",
             3 * 34 + 4 * 20 + 3000, sip_mean, "ms");
  bench::note("the tunnel design removes a whole class of glare: changes to "
              "different media never meet in one transaction");
  bench::verdict(ours > 0 && sip_mean > 5 * ours,
                 "separate tunnels beat bundling by well over 5x under "
                 "concurrent modification");
  return 0;
}
