// Experiment E7 (paper Sections II-A and II-C, Figs. 2 and 3): the running
// example, checked snapshot by snapshot.
//
// Figure 2 catalogues what goes wrong when uncoordinated servers blindly
// forward media signals; Figure 3 shows the compositional solution. This
// bench replays the scenario on the simulator and verifies, for each
// snapshot, that the Fig. 2 pathology is absent:
//   S1  A<->C two-way; B held AND told to stop sending
//   S2  C<->V two-way (not one-way!)
//   S3  A<->B restored; C<->V untouched by the PBX's switch
//   S4  PC reconnects C toward A, but the PBX still links A to B:
//       proximity confers priority — A is not hijacked
#include <cstdio>

#include "apps/pbx.hpp"
#include "apps/prepaid.hpp"
#include "bench_util.hpp"
#include "endpoints/resources.hpp"
#include "endpoints/user_device.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace cmc;
  using namespace cmc::literals;
  bench::banner(
      "E7: correctness of the running example (Figs. 2 vs 3)",
      "with compositional control, none of Fig. 2's erroneous media states "
      "occur at any snapshot");

  Simulator sim(TimingModel::paperDefaults(), 7);
  obs::MetricsRegistry registry;
  sim.attachMetrics(&registry);
  auto& a = sim.addBox<UserDeviceBox>("A", sim.mediaNetwork(), sim.loop(),
                                      MediaAddress::parse("10.0.0.1", 5000));
  auto& b = sim.addBox<UserDeviceBox>("B", sim.mediaNetwork(), sim.loop(),
                                      MediaAddress::parse("10.0.0.2", 5000));
  auto& c = sim.addBox<UserDeviceBox>("C", sim.mediaNetwork(), sim.loop(),
                                      MediaAddress::parse("10.0.0.3", 5000));
  auto& v = sim.addBox<VoiceResourceBox>("V", sim.mediaNetwork(), sim.loop(),
                                         MediaAddress::parse("10.0.0.9", 5900));
  v.authorizeAfter = 6_s;  // authorization spans snapshots 2-3
  sim.addBox<PbxBox>("PBX", "A");
  auto& pc = sim.addBox<PrepaidCardBox>("PC", "PBX", "V", 20_s);
  sim.connect("A", "PBX");

  auto clear = [&]() {
    a.media().resetStats();
    b.media().resetStats();
    c.media().resetStats();
    v.media().resetStats();
  };
  bool all_ok = true;
  auto check = [&](bool condition, const std::string& what) {
    bench::verdict(condition, what);
    all_ok = all_ok && condition;
  };

  // History: A talks to B; C calls in through PC; A switches to C.
  sim.inject("A", [](Box& bx) { static_cast<UserDeviceBox&>(bx).callOnLine(); });
  sim.runFor(500_ms);
  sim.inject("PBX", [](Box& bx) { static_cast<PbxBox&>(bx).dial("B"); });
  sim.runFor(1_s);
  sim.inject("C", [](Box& bx) { static_cast<UserDeviceBox&>(bx).placeCall("PC"); });
  sim.runFor(1_s);
  sim.inject("PBX", [](Box& bx) { static_cast<PbxBox&>(bx).switchTo("PC"); });
  sim.runFor(1_s);

  std::printf("\n  Snapshot 1 (A switched to the prepaid call):\n");
  clear();
  sim.runFor(1_s);
  check(a.media().hears(c.media().id()) && c.media().hears(a.media().id()),
        "A <-> C media flows both ways");
  check(!b.media().hears(a.media().id()), "held B hears nothing");
  check(!b.media().sendingNow(),
        "B stopped sending (Fig. 2: B kept transmitting to a deaf endpoint)");

  std::printf("\n  Snapshot 2 (prepaid funds exhausted):\n");
  // Drive the talk-time expiry directly so snapshot timing stays readable.
  sim.inject("PC", [](Box& bx) { bx.fireTimer("funds"); });
  sim.runFor(1_s);
  clear();
  sim.runFor(1_s);
  check(pc.state() == PrepaidCardBox::State::collecting,
        "PC switched to collecting");
  check(c.media().hears(v.media().id()) && v.media().hears(c.media().id()),
        "C <-> V media flows BOTH ways (Fig. 2: V lost C's audio)");
  check(!a.media().hears(c.media().id()), "A no longer hears C");

  std::printf("\n  Snapshot 3 (A switches back to B during collection):\n");
  sim.inject("PBX", [](Box& bx) { static_cast<PbxBox&>(bx).switchTo("B"); });
  sim.runFor(1_s);
  clear();
  sim.runFor(1_s);
  check(a.media().hears(b.media().id()) && b.media().hears(a.media().id()),
        "A <-> B media restored");
  check(v.media().hears(c.media().id()),
        "C -> V audio UNAFFECTED by the PBX switch (Fig. 2: it was cut)");

  std::printf("\n  Snapshot 4 (V verifies funds; PC reconnects C toward A):\n");
  for (int i = 0; i < 15 && pc.state() != PrepaidCardBox::State::talking; ++i) {
    sim.runFor(1_s);  // wait for V's audio-signaling authorization
  }
  clear();
  sim.runFor(1_s);
  check(pc.state() == PrepaidCardBox::State::talking, "PC back in talking");
  check(a.media().hears(b.media().id()) && b.media().hears(a.media().id()),
        "A still talks to B: proximity confers priority");
  check(!a.media().hears(c.media().id()) && !c.media().hears(a.media().id()),
        "A NOT hijacked by PC (Fig. 2: A was switched without permission)");
  check(!v.media().hears(c.media().id()), "V released");

  std::printf("\n");
  bench::jsonLine("OBS_METRICS", registry.json());
  bench::verdict(all_ok, "all four snapshots correct (paper Fig. 3)");
  return all_ok ? 0 : 1;
}
