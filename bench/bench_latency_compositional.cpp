// Experiment E3 (paper Section VIII-C, Fig. 13): latency of compositional
// media control when two servers relink concurrently.
//
// Scenario: from snapshot 3 of the running example (A talking to B, prepaid
// caller C talking to the voice resource V), the prepaid server PC
// completes authorization and relinks c<->a at the same instant as A's PBX
// switches back to the prepaid call. The paper derives an average media-
// setup latency of 2n + 3c for each endpoint, = 128 ms with the measured
// n = 34 ms and typical c = 20 ms.
#include <cstdio>

#include "apps/pbx.hpp"
#include "apps/prepaid.hpp"
#include "bench_util.hpp"
#include "endpoints/resources.hpp"
#include "endpoints/user_device.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace cmc;
using namespace cmc::literals;

struct Result {
  double a_ready_ms;
  double c_ready_ms;
};

Result runScenario(TimingModel timing, std::uint64_t seed) {
  Simulator sim(timing, seed);
  auto& a = sim.addBox<UserDeviceBox>("A", sim.mediaNetwork(), sim.loop(),
                                      MediaAddress::parse("10.0.0.1", 5000));
  sim.addBox<UserDeviceBox>("B", sim.mediaNetwork(), sim.loop(),
                            MediaAddress::parse("10.0.0.2", 5000));
  auto& c = sim.addBox<UserDeviceBox>("C", sim.mediaNetwork(), sim.loop(),
                                      MediaAddress::parse("10.0.0.3", 5000));
  auto& v = sim.addBox<VoiceResourceBox>("V", sim.mediaNetwork(), sim.loop(),
                                         MediaAddress::parse("10.0.0.9", 5900));
  v.authorizeAfter = 60_s;  // we drive "paid" by hand for exact timing
  sim.addBox<PbxBox>("PBX", "A");
  auto& pc = sim.addBox<PrepaidCardBox>("PC", "PBX", "V", 3_s);
  sim.connect("A", "PBX");

  // Reach snapshot 3: A<->B held history, C talking to V, PBX linked to B.
  sim.inject("A", [](Box& b) { static_cast<UserDeviceBox&>(b).callOnLine(); });
  sim.runFor(500_ms);
  sim.inject("PBX", [](Box& b) { static_cast<PbxBox&>(b).dial("B"); });
  sim.runFor(1_s);
  sim.inject("C", [](Box& b) { static_cast<UserDeviceBox&>(b).placeCall("PC"); });
  sim.runFor(1_s);
  sim.inject("PBX", [](Box& b) { static_cast<PbxBox&>(b).switchTo("PC"); });
  sim.runFor(1_s);
  sim.runFor(3_s);  // prepaid timer fires -> collecting
  sim.inject("PBX", [](Box& b) { static_cast<PbxBox&>(b).switchTo("B"); });
  sim.runFor(2_s);
  if (pc.state() != PrepaidCardBox::State::collecting) return {-1, -1};

  // The Fig. 13 moment: both servers change state concurrently.
  const SimTime start = sim.now();
  sim.inject("PC", [](Box& b) {
    b.deliverMeta(ChannelId{}, MetaSignal{MetaKind::custom, "paid", ""});
  });
  sim.inject("PBX", [](Box& b) { static_cast<PbxBox&>(b).switchTo("PC"); });

  const MediaAddress a_addr = a.media().address();
  const MediaAddress c_addr = c.media().address();
  double a_ready = -1, c_ready = -1;
  for (int ms = 0; ms < 3000 && (a_ready < 0 || c_ready < 0); ++ms) {
    sim.runFor(1_ms);
    if (a_ready < 0 && a.media().sendingState() &&
        a.media().sendingState()->target == c_addr &&
        !isNoMedia(a.media().sendingState()->codec)) {
      a_ready = (sim.now() - start).count() / 1000.0;
    }
    if (c_ready < 0 && c.media().sendingState() &&
        c.media().sendingState()->target == a_addr &&
        !isNoMedia(c.media().sendingState()->codec)) {
      c_ready = (sim.now() - start).count() / 1000.0;
    }
  }
  return {a_ready, c_ready};
}

}  // namespace

int main() {
  using namespace cmc;
  bench::banner(
      "E3: compositional relink latency (Section VIII-C, Fig. 13)",
      "with n = 34 ms, c = 20 ms, both endpoints can transmit after an "
      "average of 2n + 3c = 128 ms from the concurrent state change");

  TimingModel timing = TimingModel::paperDefaults();
  const double n = 34, cc = 20;
  const double paper = 2 * n + 3 * cc;

  const Result r = runScenario(timing, 7);
  if (r.a_ready_ms < 0 || r.c_ready_ms < 0) {
    bench::verdict(false, "scenario did not converge");
    return 1;
  }
  bench::row("A ready to transmit toward C", paper, r.a_ready_ms, "ms");
  bench::row("C ready to transmit toward A", paper, r.c_ready_ms, "ms");
  bench::note("(the 1 ms polling grid and retry pacing add small quantization)");

  // Sensitivity: the law is linear in n and c.
  std::printf("\n  sensitivity sweep (2n+3c law):\n");
  for (double n_ms : {10.0, 34.0, 60.0, 100.0}) {
    TimingModel t;
    t.network = SimDuration{static_cast<SimDuration::rep>(n_ms * 1000)};
    t.processing = 20_ms;
    const Result s = runScenario(t, 7);
    const double formula = 2 * n_ms + 3 * 20;
    bench::row("n=" + std::to_string(static_cast<int>(n_ms)) + "ms, c=20ms",
               formula, std::max(s.a_ready_ms, s.c_ready_ms), "ms");
  }

  const double worst = std::max(r.a_ready_ms, r.c_ready_ms);
  bench::verdict(worst > 0.7 * paper && worst < 1.5 * paper,
                 "measured latency matches the 2n+3c law within 50%");
  return 0;
}
