// Experiment: self-stabilization time vs. signal drop rate (docs/FAULTS.md).
//
// For each drop rate, run many seeded FaultPlan schedules against a direct
// two-device call and measure — on the simulator's virtual clock — how long
// the path takes to reach two-way flowing after the call is placed, while
// opens/oacks/selects are being dropped, duplicated, and reordered. The
// paper proves the Section V liveness specs assuming a reliable FIFO
// channel; this bench quantifies the price of violating that assumption:
// stabilization time grows with drop rate (each lost signal costs one
// refresh-tick round trip), but every schedule converges.
//
// Machine-readable: one "FAULT_STABILIZATION {json}" line per drop rate
// with p50/p99 stabilization time (ms) and fault counters.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "endpoints/user_device.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace cmc;
  using namespace cmc::literals;

  bench::banner(
      "fault injection: stabilization time vs. signal drop rate",
      "Section V liveness is proven for reliable channels; under seeded "
      "drop/duplicate/reorder faults every schedule must still converge, "
      "with latency degrading smoothly in the drop rate");

  constexpr int kRunsPerRate = 60;
  const double drop_rates[] = {0.00, 0.05, 0.10, 0.20, 0.30, 0.40};

  std::printf("  %-10s %6s %6s %10s %10s %10s %9s %9s\n", "drop_rate", "runs",
              "conv", "p50(ms)", "p90(ms)", "p99(ms)", "dropped", "dup");

  bool all_converged = true;
  for (const double drop_rate : drop_rates) {
    obs::Histogram latency_us;
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    int converged = 0;
    for (int run = 0; run < kRunsPerRate; ++run) {
      Simulator sim(TimingModel::paperDefaults(), 42);
      auto& media = sim.mediaNetwork();
      auto& a = sim.addBox<UserDeviceBox>(
          "A", media, sim.loop(), MediaAddress::parse("10.0.0.1", 5000));
      auto& b = sim.addBox<UserDeviceBox>(
          "B", media, sim.loop(), MediaAddress::parse("10.0.0.2", 5000));

      FaultSpec spec;
      spec.drop_rate = drop_rate;
      spec.duplicate_rate = drop_rate / 2;
      spec.reorder_rate = drop_rate / 2;
      spec.active_for = 30_s;  // outlasts every convergence below
      FaultPlan plan(1000 + static_cast<std::uint64_t>(run), spec);
      sim.installFaultPlan(&plan);

      sim.inject("A", [](Box& box) {
        static_cast<UserDeviceBox&>(box).placeCall("B");
      });
      sim.armStabilizationProbe(
          "call", [&] { return a.inCall() && b.inCall(); });
      sim.run(120_s);

      dropped += plan.counters().dropped;
      duplicated += plan.counters().duplicated;
      if (const auto us = sim.probes().latencyUs("call")) {
        latency_us.observe(*us);
        ++converged;
      }
    }
    all_converged = all_converged && converged == kRunsPerRate;

    const double p50 = latency_us.quantile(0.50) / 1000.0;
    const double p90 = latency_us.quantile(0.90) / 1000.0;
    const double p99 = latency_us.quantile(0.99) / 1000.0;
    std::printf("  %-10.2f %6d %6d %10.1f %10.1f %10.1f %9llu %9llu\n",
                drop_rate, kRunsPerRate, converged, p50, p90, p99,
                static_cast<unsigned long long>(dropped),
                static_cast<unsigned long long>(duplicated));

    char json[256];
    std::snprintf(json, sizeof(json),
                  "{\"drop_rate\":%.2f,\"runs\":%d,\"converged\":%d,"
                  "\"p50_ms\":%.1f,\"p90_ms\":%.1f,\"p99_ms\":%.1f,"
                  "\"dropped\":%llu,\"duplicated\":%llu}",
                  drop_rate, kRunsPerRate, converged, p50, p90, p99,
                  static_cast<unsigned long long>(dropped),
                  static_cast<unsigned long long>(duplicated));
    bench::jsonLine("FAULT_STABILIZATION", json);
  }

  bench::verdict(all_converged,
                 "every fault schedule self-stabilized to bothFlowing");
  return all_converged ? 0 : 1;
}
