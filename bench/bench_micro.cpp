// Micro-benchmarks (google-benchmark): throughput of the building blocks —
// signal serialization, slot FSM steps, flowlink event handling, whole-path
// convergence, state canonicalization/fingerprinting, and explorer speed.
// These are engineering numbers (no paper counterpart): they bound how many
// media-control operations a single application server built on this
// library could sustain.
//
// Each benchmark runs with a thread-local ProfileTable installed, which (a)
// lets the replacement operator new/delete attribute allocations, reported
// as allocs/op and bytes/op next to google-benchmark's timing columns, and
// (b) exercises the hot-path timing sites — so these are the profiled
// numbers (bench_obs_overhead measures the profiler's own delta). After the
// benchmarks, one profiled explorer run prints a PROF attribution line
// (ns/op, allocs/op per site + wall-time coverage).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/path.hpp"
#include "mc/state_graph.hpp"
#include "obs/profiler.hpp"
#include "sim/event_loop.hpp"
#include "sim/simulator.hpp"

namespace cmc {
namespace {

Descriptor benchDescriptor(std::uint64_t id) {
  const Codec codecs[] = {Codec::g711u, Codec::g726};
  return makeDescriptor(DescriptorId{id}, MediaAddress::parse("10.0.0.1", 5000),
                        codecs, false);
}

// Installs a fresh thread profiler for one benchmark; report() divides the
// table's allocation totals by the iteration count into per-op counters.
class AllocScope {
 public:
  AllocScope() { obs::setThreadProfiler(&table_); }
  ~AllocScope() { obs::setThreadProfiler(nullptr); }

  void report(benchmark::State& state) {
    obs::setThreadProfiler(nullptr);
    const obs::ProfileTotals totals = table_.report().totals();
    const auto iters = state.iterations() > 0 ? state.iterations() : 1;
    state.counters["allocs/op"] =
        static_cast<double>(totals.allocs) / static_cast<double>(iters);
    state.counters["bytes/op"] =
        static_cast<double>(totals.alloc_bytes) / static_cast<double>(iters);
  }

 private:
  obs::ProfileTable table_{"bench_micro"};
};

void BM_SignalSerializeOpen(benchmark::State& state) {
  AllocScope allocs;
  const Signal signal = OpenSignal{Medium::audio, benchDescriptor(1)};
  for (auto _ : state) {
    ByteWriter w;
    serialize(signal, w);
    benchmark::DoNotOptimize(w.bytes().data());
  }
  allocs.report(state);
}
BENCHMARK(BM_SignalSerializeOpen);

void BM_SignalRoundTripOpen(benchmark::State& state) {
  AllocScope allocs;
  const Signal signal = OpenSignal{Medium::audio, benchDescriptor(1)};
  ByteWriter w;
  serialize(signal, w);
  for (auto _ : state) {
    ByteReader r{w.bytes()};
    auto out = deserializeSignal(r);
    benchmark::DoNotOptimize(out);
  }
  allocs.report(state);
}
BENCHMARK(BM_SignalRoundTripOpen);

void BM_SlotFsmOpenAcceptClose(benchmark::State& state) {
  AllocScope allocs;
  for (auto _ : state) {
    SlotEndpoint slot{SlotId{1}, true};
    benchmark::DoNotOptimize(slot.sendOpen(Medium::audio, benchDescriptor(1)));
    benchmark::DoNotOptimize(slot.deliver(OackSignal{benchDescriptor(2)}));
    benchmark::DoNotOptimize(slot.sendClose());
    benchmark::DoNotOptimize(slot.deliver(CloseAckSignal{}));
  }
  allocs.report(state);
}
BENCHMARK(BM_SlotFsmOpenAcceptClose);

void BM_PathConvergence(benchmark::State& state) {
  AllocScope allocs;
  const auto flowlinks = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    PathSystem path(PathSystem::makeGoal(GoalKind::openSlot, PathEnd::left),
                    PathSystem::makeGoal(GoalKind::openSlot, PathEnd::right),
                    flowlinks);
    benchmark::DoNotOptimize(path.run());
    benchmark::DoNotOptimize(path.bothFlowing());
  }
  state.SetLabel("flowlinks=" + std::to_string(flowlinks));
  allocs.report(state);
}
BENCHMARK(BM_PathConvergence)->Arg(0)->Arg(1)->Arg(4)->Arg(8);

void BM_PathMuteRoundTrip(benchmark::State& state) {
  AllocScope allocs;
  PathSystem path(PathSystem::makeGoal(GoalKind::openSlot, PathEnd::left),
                  PathSystem::makeGoal(GoalKind::openSlot, PathEnd::right), 2);
  path.run();
  bool mute = true;
  for (auto _ : state) {
    path.setMute(PathEnd::left, mute, mute);
    benchmark::DoNotOptimize(path.run());
    mute = !mute;
  }
  allocs.report(state);
}
BENCHMARK(BM_PathMuteRoundTrip);

void BM_PathFingerprint(benchmark::State& state) {
  AllocScope allocs;
  PathSystem path(PathSystem::makeGoal(GoalKind::openSlot, PathEnd::left),
                  PathSystem::makeGoal(GoalKind::openSlot, PathEnd::right), 1);
  path.run();
  for (auto _ : state) {
    benchmark::DoNotOptimize(path.fingerprint());
  }
  allocs.report(state);
}
BENCHMARK(BM_PathFingerprint);

void BM_ExplorerStatesPerSecond(benchmark::State& state) {
  AllocScope allocs;
  ExploreLimits limits;
  limits.chaos_budget = 1;
  limits.modify_budget = 0;
  std::size_t states = 0;
  for (auto _ : state) {
    auto graph = explorePath(GoalKind::openSlot, GoalKind::holdSlot, 0, limits);
    states += graph.states();
    benchmark::DoNotOptimize(graph.transitions);
  }
  state.counters["states/s"] = benchmark::Counter(
      static_cast<double>(states), benchmark::Counter::kIsRate);
  allocs.report(state);
}
BENCHMARK(BM_ExplorerStatesPerSecond);

void BM_EventLoopPooledDispatch(benchmark::State& state) {
  // Per-event cost of the pooled event loop: schedule one small-capture
  // handler and drain it. The slab/free-list pool plus InlineFn storage make
  // the steady state allocation-free — the allocs/op column is the proof
  // (the slab's one-time growth amortizes to ~0 over the iterations).
  AllocScope allocs;
  EventLoop loop;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    loop.schedule(SimDuration{10}, [&sink]() { ++sink; });
    loop.runUntilIdle(std::chrono::seconds(1));
  }
  benchmark::DoNotOptimize(sink);
  allocs.report(state);
}
BENCHMARK(BM_EventLoopPooledDispatch);

void BM_EventLoopBatchedBurst(benchmark::State& state) {
  // A burst of same-timestamp events drains in one wakeup (drainBatch):
  // time cost is per event, but wakeup bookkeeping is per batch.
  AllocScope allocs;
  EventLoop loop;
  std::uint64_t sink = 0;
  const int burst = static_cast<int>(state.range(0));
  for (auto _ : state) {
    for (int i = 0; i < burst; ++i) {
      loop.schedule(SimDuration{10}, [&sink]() { ++sink; });
    }
    loop.runUntilIdle(std::chrono::seconds(1));
  }
  state.SetItemsProcessed(state.iterations() * burst);
  state.SetLabel("burst=" + std::to_string(burst));
  benchmark::DoNotOptimize(sink);
  allocs.report(state);
}
BENCHMARK(BM_EventLoopBatchedBurst)->Arg(8)->Arg(64);

void BM_SimStimulus(benchmark::State& state) {
  // ns/stimulus through the full simulator path: inject -> serial-server
  // scheduling -> pooled dispatch -> stimulus execution -> output drain.
  // This is the row the hot-path memory model targets: the injection
  // std::function is the only remaining per-op allocation candidate; the
  // stimulate/dispatch machinery itself contributes none.
  AllocScope allocs;
  Simulator sim;
  sim.addBox<Box>("b");
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sim.inject("b", [&sink](Box&) { ++sink; });
    sim.run();
  }
  benchmark::DoNotOptimize(sink);
  allocs.report(state);
}
BENCHMARK(BM_SimStimulus);

void BM_DescriptorChoice(benchmark::State& state) {
  AllocScope allocs;
  const Descriptor d = benchDescriptor(1);
  const Codec sendable[] = {Codec::g726, Codec::g711u};
  for (auto _ : state) {
    benchmark::DoNotOptimize(chooseCodec(d, sendable, false));
  }
  allocs.report(state);
}
BENCHMARK(BM_DescriptorChoice);

}  // namespace
}  // namespace cmc

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // One profiled explorer run for site-scoped attribution: which hot paths
  // the explorer's wall time and allocations actually land in (ns/op and
  // allocs/op per site, plus coverage of the measured wall time).
  using namespace cmc;
  obs::ProfileTable table("bench_micro");
  obs::setThreadProfiler(&table);
  const std::int64_t start_ns = obs::prof::nowNs();
  ExploreLimits limits;
  limits.chaos_budget = 1;
  limits.modify_budget = 0;
  auto graph = explorePath(GoalKind::openSlot, GoalKind::holdSlot, 0, limits);
  const std::int64_t wall_ns = obs::prof::nowNs() - start_ns;
  obs::setThreadProfiler(nullptr);
  std::printf("explorer: %zu states\n", graph.states());
  bench::jsonLine("PROF", table.report().attributionJson(wall_ns));
  return 0;
}
