// Micro-benchmarks (google-benchmark): throughput of the building blocks —
// signal serialization, slot FSM steps, flowlink event handling, whole-path
// convergence, state canonicalization/fingerprinting, and explorer speed.
// These are engineering numbers (no paper counterpart): they bound how many
// media-control operations a single application server built on this
// library could sustain.
#include <benchmark/benchmark.h>

#include "core/path.hpp"
#include "mc/state_graph.hpp"

namespace cmc {
namespace {

Descriptor benchDescriptor(std::uint64_t id) {
  const Codec codecs[] = {Codec::g711u, Codec::g726};
  return makeDescriptor(DescriptorId{id}, MediaAddress::parse("10.0.0.1", 5000),
                        codecs, false);
}

void BM_SignalSerializeOpen(benchmark::State& state) {
  const Signal signal = OpenSignal{Medium::audio, benchDescriptor(1)};
  for (auto _ : state) {
    ByteWriter w;
    serialize(signal, w);
    benchmark::DoNotOptimize(w.bytes().data());
  }
}
BENCHMARK(BM_SignalSerializeOpen);

void BM_SignalRoundTripOpen(benchmark::State& state) {
  const Signal signal = OpenSignal{Medium::audio, benchDescriptor(1)};
  ByteWriter w;
  serialize(signal, w);
  for (auto _ : state) {
    ByteReader r{w.bytes()};
    auto out = deserializeSignal(r);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_SignalRoundTripOpen);

void BM_SlotFsmOpenAcceptClose(benchmark::State& state) {
  for (auto _ : state) {
    SlotEndpoint slot{SlotId{1}, true};
    benchmark::DoNotOptimize(slot.sendOpen(Medium::audio, benchDescriptor(1)));
    benchmark::DoNotOptimize(slot.deliver(OackSignal{benchDescriptor(2)}));
    benchmark::DoNotOptimize(slot.sendClose());
    benchmark::DoNotOptimize(slot.deliver(CloseAckSignal{}));
  }
}
BENCHMARK(BM_SlotFsmOpenAcceptClose);

void BM_PathConvergence(benchmark::State& state) {
  const auto flowlinks = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    PathSystem path(PathSystem::makeGoal(GoalKind::openSlot, PathEnd::left),
                    PathSystem::makeGoal(GoalKind::openSlot, PathEnd::right),
                    flowlinks);
    benchmark::DoNotOptimize(path.run());
    benchmark::DoNotOptimize(path.bothFlowing());
  }
  state.SetLabel("flowlinks=" + std::to_string(flowlinks));
}
BENCHMARK(BM_PathConvergence)->Arg(0)->Arg(1)->Arg(4)->Arg(8);

void BM_PathMuteRoundTrip(benchmark::State& state) {
  PathSystem path(PathSystem::makeGoal(GoalKind::openSlot, PathEnd::left),
                  PathSystem::makeGoal(GoalKind::openSlot, PathEnd::right), 2);
  path.run();
  bool mute = true;
  for (auto _ : state) {
    path.setMute(PathEnd::left, mute, mute);
    benchmark::DoNotOptimize(path.run());
    mute = !mute;
  }
}
BENCHMARK(BM_PathMuteRoundTrip);

void BM_PathFingerprint(benchmark::State& state) {
  PathSystem path(PathSystem::makeGoal(GoalKind::openSlot, PathEnd::left),
                  PathSystem::makeGoal(GoalKind::openSlot, PathEnd::right), 1);
  path.run();
  for (auto _ : state) {
    benchmark::DoNotOptimize(path.fingerprint());
  }
}
BENCHMARK(BM_PathFingerprint);

void BM_ExplorerStatesPerSecond(benchmark::State& state) {
  ExploreLimits limits;
  limits.chaos_budget = 1;
  limits.modify_budget = 0;
  std::size_t states = 0;
  for (auto _ : state) {
    auto graph = explorePath(GoalKind::openSlot, GoalKind::holdSlot, 0, limits);
    states += graph.states();
    benchmark::DoNotOptimize(graph.transitions);
  }
  state.counters["states/s"] = benchmark::Counter(
      static_cast<double>(states), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExplorerStatesPerSecond);

void BM_DescriptorChoice(benchmark::State& state) {
  const Descriptor d = benchDescriptor(1);
  const Codec sendable[] = {Codec::g726, Codec::g711u};
  for (auto _ : state) {
    benchmark::DoNotOptimize(chooseCodec(d, sendable, false));
  }
}
BENCHMARK(BM_DescriptorChoice);

}  // namespace
}  // namespace cmc

BENCHMARK_MAIN();
