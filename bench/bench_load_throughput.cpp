// Load throughput: the compositional model's scaling claim, measured.
//
// The paper's architecture composes per-call paths that share no state, so
// call-processing capacity should scale with worker shards until the
// machine runs out of cores. This bench drives the same randomized
// workload (src/load) through 1/2/4/8 shards and reports wall-clock
// calls/sec plus the convergence-latency distribution — which, by the
// determinism contract, must not move with shard count (the rollups are
// byte-identical; only the wall clock changes). When a cmc_load_worker
// binary is discoverable, one more row runs the same workload as a real
// multi-process fleet (2 workers × 4 shards over the framed-TCP dist
// plane) and holds its merged rollup to the same byte-identity bar.
//
//   LOAD_THROUGHPUT {"shards":[...],"calls_per_s":[...],...}
//
// Knobs: LOAD_BENCH_CALLS (default 2000), LOAD_BENCH_SEED (default 7).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "load/dist/driver.hpp"
#include "load/sharded_runtime.hpp"
#include "load/workload.hpp"

using namespace cmc;
using namespace cmc::load;

int main() {
  std::size_t calls = 2000;
  if (const char* env = std::getenv("LOAD_BENCH_CALLS")) {
    calls = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }
  std::uint64_t seed = 7;
  if (const char* env = std::getenv("LOAD_BENCH_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }

  WorkloadSpec workload;
  workload.master_seed = seed;
  workload.calls = calls;
  workload.arrivals_per_s = 200.0;
  workload.flowlink_fraction = 0.5;

  bench::banner(
      "E-LOAD: call throughput vs worker shards (" +
          std::to_string(calls) + " calls)",
      "independent per-call paths share nothing, so calls/sec scales with "
      "shards while per-call convergence latency stays put");

  const unsigned cores = std::thread::hardware_concurrency();
  bench::note("hardware_concurrency = " + std::to_string(cores));

  const std::vector<std::size_t> shard_counts{1, 2, 4, 8};
  std::vector<double> rates;
  std::vector<double> p50s, p99s;
  std::string first_rollup;
  bool rollups_identical = true;

  for (std::size_t shards : shard_counts) {
    LoadConfig config;
    config.shards = shards;
    ShardedRuntime runtime(config);
    runtime.run(workload);

    const double rate =
        runtime.wallSeconds() > 0 ? calls / runtime.wallSeconds() : 0.0;
    const double p50 = runtime.setupLatency().quantile(0.50) / 1000.0;
    const double p99 = runtime.setupLatency().quantile(0.99) / 1000.0;
    rates.push_back(rate);
    p50s.push_back(p50);
    p99s.push_back(p99);
    if (first_rollup.empty()) {
      first_rollup = runtime.metricsJson();
    } else if (runtime.metricsJson() != first_rollup) {
      rollups_identical = false;
    }

    std::printf(
        "  shards=%zu  calls/s=%10.0f  converged=%zu/%zu  "
        "setup p50=%7.1fms p99=%7.1fms  wall=%6.3fs\n",
        shards, rate, runtime.convergedCount(), calls,
        p50, p99, runtime.wallSeconds());
    if (runtime.convergedCount() != calls ||
        runtime.cleanTeardownCount() != calls) {
      bench::verdict(false, "every call converges and tears down cleanly");
      return 1;
    }
  }

  bench::verdict(rollups_identical,
                 "metrics rollup is byte-identical across shard counts "
                 "(determinism contract)");

  // Multi-process row: the same workload through a 2-worker × 4-shard fleet
  // of spawned cmc_load_worker subprocesses. The merged rollup must land on
  // the same bytes as every in-process row above.
  double dist_rate = -1.0;
  bool dist_identical = false;
  const std::string worker_binary = dist::findWorkerBinary();
  if (worker_binary.empty()) {
    bench::note("  -> no cmc_load_worker binary found; skipping the "
                "multi-process row (build the examples to enable it)");
  } else {
    dist::DriverConfig dcfg;
    dcfg.workers = 2;
    dcfg.shards = 4;
    dcfg.worker_binary = worker_binary;
    dist::DistDriver driver(std::move(dcfg));
    const dist::DistResult result = driver.run(workload);
    if (!result.ok) {
      bench::verdict(false, "distributed 2x4 run completes: " + result.error);
      return 1;
    }
    dist_rate = result.wall_seconds > 0
                    ? static_cast<double>(calls) / result.wall_seconds
                    : 0.0;
    dist_identical = result.rollup_json == first_rollup;
    std::printf(
        "  2 procs x 4 shards  calls/s=%10.0f  converged=%zu/%zu  "
        "setup p50=%7.1fms p99=%7.1fms  wall=%6.3fs\n",
        dist_rate, result.converged, calls, result.setup_p50_us / 1000.0,
        result.setup_p99_us / 1000.0, result.wall_seconds);
    bench::verdict(dist_identical,
                   "multi-process merged rollup is byte-identical to the "
                   "in-process rollups");
    if (!dist_identical) return 1;
  }

  const double scaling = rates[0] > 0 ? rates[2] / rates[0] : 0.0;
  std::printf("  scaling 1 -> 4 shards: %.2fx\n", scaling);
  if (cores >= 4) {
    bench::verdict(scaling > 2.0, "calls/sec scales >2x from 1 to 4 shards");
  } else {
    bench::note("  -> fewer than 4 cores: shards time-slice one CPU, so the "
                ">2x scaling verdict is not meaningful on this machine "
                "(rerun on >=4 cores)");
  }

  std::string json = "{\"bench\":\"load_throughput\",\"calls\":" +
                     std::to_string(calls) + ",\"cores\":" +
                     std::to_string(cores) + ",\"shards\":[";
  for (std::size_t i = 0; i < shard_counts.size(); ++i) {
    json += (i ? "," : "") + std::to_string(shard_counts[i]);
  }
  json += "],\"calls_per_s\":[";
  for (std::size_t i = 0; i < rates.size(); ++i) {
    json += (i ? "," : "") + std::to_string(rates[i]);
  }
  json += "],\"setup_p50_ms\":[";
  for (std::size_t i = 0; i < p50s.size(); ++i) {
    json += (i ? "," : "") + std::to_string(p50s[i]);
  }
  json += "],\"setup_p99_ms\":[";
  for (std::size_t i = 0; i < p99s.size(); ++i) {
    json += (i ? "," : "") + std::to_string(p99s[i]);
  }
  json += "],\"scaling_1_to_4\":" + std::to_string(scaling) +
          ",\"rollup_identical\":" + (rollups_identical ? "true" : "false") +
          ",\"dist_calls_per_s\":" + std::to_string(dist_rate) +
          ",\"dist_rollup_identical\":" + (dist_identical ? "true" : "false") +
          "}";
  bench::jsonLine("LOAD_THROUGHPUT", json);

  // Profiled row: the same 1-shard workload with the hot-path profiler on.
  // Two claims: (a) profiling is additive-only — the rollup lands on the
  // same bytes as the unprofiled rows; (b) the site tree attributes >=90%
  // of the shard thread's wall time (the ISSUE acceptance bar).
  {
    LoadConfig config;
    config.shards = 1;
    config.profile = true;
    ShardedRuntime runtime(config);
    runtime.run(workload);
    bench::verdict(runtime.metricsJson() == first_rollup,
                   "profiled rollup is byte-identical to the unprofiled rows");
    const std::int64_t thread_wall_ns = runtime.threadWallNs();
    const std::string prof =
        runtime.profileReport().attributionJson(thread_wall_ns);
    bench::jsonLine("PROF", prof);
    const std::string::size_type cov = prof.find("\"coverage\":");
    const double coverage =
        cov != std::string::npos
            ? std::strtod(prof.c_str() + cov + sizeof("\"coverage\":") - 1,
                          nullptr)
            : 0.0;
    bench::verdict(coverage >= 0.9,
                   "profile attributes >=90% of shard wall time (coverage=" +
                       std::to_string(coverage) + ")");
    if (runtime.metricsJson() != first_rollup || coverage < 0.9) return 1;

    // Hot-path allocation verdicts: the small-buffer/interning/pooled-loop
    // memory model brought sim.deliver_tunnel from ~3.6 to ~0 allocs/signal
    // and sim.process_output from ~3.0 to ~0 allocs/run. Hold the line at
    // <=1.0 (same budget as tests/alloc_budget_test.cpp) so a capture-size
    // or string-key regression fails the bench, not just the unit gate.
    bool alloc_budget_ok = true;
    for (const char* site : {"sim.deliver_tunnel", "sim.process_output"}) {
      std::uint64_t site_calls = 0;
      std::uint64_t site_allocs = 0;
      for (const auto& node : runtime.profileReport().nodes()) {
        if (node.site == site) {
          site_calls += node.calls;
          site_allocs += node.allocs;
        }
      }
      const double per_op =
          site_calls ? static_cast<double>(site_allocs) /
                           static_cast<double>(site_calls)
                     : 0.0;
      std::printf("  %s: %.3f allocs/op (%llu allocs / %llu ops)\n", site,
                  per_op, static_cast<unsigned long long>(site_allocs),
                  static_cast<unsigned long long>(site_calls));
      if (site_calls == 0 || per_op > 1.0) alloc_budget_ok = false;
    }
    bench::verdict(alloc_budget_ok,
                   "signal hot path stays within 1 alloc/op on "
                   "sim.deliver_tunnel and sim.process_output");
    if (!alloc_budget_ok) return 1;
  }
  return 0;
}
