// Experiment E4 (paper Section VIII-C): the general latency law.
//
// "The latency of providing media flow from a signaling path should be
// measured from the moment that the last flowlink in the path is
// initialized... the average signaling delay after that moment will be
// p*n + (p+1)*c, where p is the number of hops between the last flowlink
// and its farther endpoint."
//
// Setup: devices A and B at the ends of a chain of k patch (application
// server) boxes. Every box except the one next to A is pre-linked; both
// devices have opened their tunnels, so both half-paths are up (muted) and
// waiting. Initializing the last flowlink (the box adjacent to A) then
// completes the path; its farther endpoint is B at p = k hops.
//
// Measurement runs through obs::ConvergenceProbes: the probe is armed at
// the instant the flowlink initializes and the simulator re-evaluates it
// after every completed box stimulus, so the recorded latency is the exact
// virtual time of quiescence — no polling granularity.
#include <cstdio>

#include "bench_util.hpp"
#include "endpoints/user_device.hpp"
#include "obs/critical_path.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace cmc;
using namespace cmc::literals;

// Measured latency (ms) from linking the box adjacent to A until B is ready
// to transmit toward A, for a chain of `k` boxes. `hops_ok` reports the
// hop-by-hop check: the causal critical path from the link injection to B
// must be exactly k+1 stimulus spans, each charged c of processing and (for
// every hop after the root) n of tunnel transit — the latency law read off
// the trace instead of the probe.
double measure(std::size_t k, TimingModel timing, obs::MetricsRegistry* reg,
               bool& hops_ok) {
  Simulator sim(timing, 3);
  if (reg != nullptr) sim.attachMetrics(reg);
  obs::TraceRecorder rec;
  sim.attachTrace(&rec);
  sim.addBox<UserDeviceBox>("A", sim.mediaNetwork(), sim.loop(),
                            MediaAddress::parse("10.9.0.1", 5000));
  auto& b = sim.addBox<UserDeviceBox>("B", sim.mediaNetwork(), sim.loop(),
                                      MediaAddress::parse("10.9.0.2", 5000));
  std::vector<Box*> patches;
  for (std::size_t i = 0; i < k; ++i) {
    patches.push_back(&sim.addBox<Box>("P" + std::to_string(i + 1)));
  }
  // Chain: A - P1 - P2 - ... - Pk - B.
  std::vector<ChannelId> channels;
  channels.push_back(sim.connect("A", "P1"));
  for (std::size_t i = 0; i + 1 < k; ++i) {
    channels.push_back(
        sim.connect("P" + std::to_string(i + 1), "P" + std::to_string(i + 2)));
  }
  channels.push_back(sim.connect("P" + std::to_string(k), "B"));

  // Pre-link every box except P1; P1 holds both its slots (so each side's
  // open is answered and the half-paths reach flowing, muted).
  DescriptorFactory hold_ids{77};
  for (std::size_t i = 0; i < k; ++i) {
    Box& box = *patches[i];
    const SlotId left = box.slotsOf(channels[i]).front();
    const SlotId right = box.slotsOf(channels[i + 1]).front();
    if (i == 0) {
      box.setGoal(left, HoldSlotGoal{MediaIntent::server(), hold_ids});
      box.setGoal(right, HoldSlotGoal{MediaIntent::server(), hold_ids});
    } else {
      box.linkSlots(left, right);
    }
  }

  // Both devices go off hook; their opens propagate to P1 from both sides.
  sim.inject("A", [](Box& bx) { static_cast<UserDeviceBox&>(bx).callOnLine(); });
  sim.inject("B", [](Box& bx) { static_cast<UserDeviceBox&>(bx).callOnLine(); });
  sim.runFor(20_s);

  // The last flowlink initializes: P1 links its two (flowing) slots. Arm the
  // quiescence probe at the same instant: B sends real (non-muted) media
  // toward A. Retain only the measured cascade in the trace window and turn
  // causal propagation on so the critical path can be extracted afterwards.
  rec.clear();
  rec.setPropagation(true);
  const MediaAddress a_addr =
      static_cast<UserDeviceBox&>(sim.box("A")).media().address();
  const std::string probe = "path_p" + std::to_string(k);
  const std::int64_t armed_at = sim.nowUs();
  sim.probes().arm(probe, probe, armed_at, [&b, a_addr]() {
    const auto& st = b.media().sendingState();
    return st && st->target == a_addr && !isNoMedia(st->codec);
  });
  sim.inject("P1", [&channels](Box& bx) {
    bx.linkSlots(bx.slotsOf(channels[0]).front(),
                 bx.slotsOf(channels[1]).front());
  });
  sim.runFor(30_s);

  const auto latency = sim.probes().latencyUs(probe);
  if (!latency) return -1;
  bench::jsonLine("CONVERGENCE", sim.probes().json());

  obs::CriticalPathOptions opts;
  opts.end_actor = "B";
  opts.end_at_us = armed_at + *latency;
  const obs::CriticalPathReport path = obs::criticalPath(rec.snapshot(), opts);
  bench::jsonLine("CRITICAL_PATH", path.json());
  const std::int64_t proc_us =
      std::chrono::duration_cast<std::chrono::microseconds>(timing.processing)
          .count();
  const std::int64_t transit_us =
      std::chrono::duration_cast<std::chrono::microseconds>(timing.network)
          .count();
  hops_ok = path.complete && path.hops.size() == k + 1;
  for (std::size_t i = 0; hops_ok && i < path.hops.size(); ++i) {
    hops_ok = path.hops[i].proc_us == proc_us &&
              path.hops[i].transit_us == (i == 0 ? 0 : transit_us) &&
              path.hops[i].queue_us == 0;
  }
  hops_ok = hops_ok && path.total_us == *latency;
  return static_cast<double>(*latency) / 1000.0;
}

}  // namespace

int main() {
  using namespace cmc;
  bench::banner(
      "E4: latency vs path length (Section VIII-C)",
      "after the last flowlink initializes, media setup toward the farther "
      "endpoint takes p*n + (p+1)*c (n=34 ms, c=20 ms)");

  obs::MetricsRegistry registry;
  const double n = 34, c = 20;
  std::printf("  %-8s %-26s %-14s\n", "hops p", "paper p*n+(p+1)*c (ms)",
              "measured (ms)");
  bool ok = true;
  bool all_hops_ok = true;
  for (std::size_t k : {1u, 2u, 3u, 4u, 5u, 6u, 8u}) {
    const double paper = static_cast<double>(k) * n + (k + 1) * c;
    bool hops_ok = false;
    const double measured =
        measure(k, TimingModel::paperDefaults(), &registry, hops_ok);
    std::printf("  %-8zu %-26.1f %-14.1f\n", k, paper, measured);
    ok = ok && measured > 0 && measured > 0.7 * paper && measured < 1.6 * paper;
    all_hops_ok = all_hops_ok && hops_ok;
  }
  bench::note(
      "hop count p counts signaling hops from the last flowlink (adjacent "
      "to A) to the farther endpoint B");
  bench::jsonLine("OBS_METRICS", registry.json());
  bench::verdict(ok, "latency grows linearly as p*n + (p+1)*c");
  bench::verdict(all_hops_ok,
                 "causal critical path attributes every hop exactly: "
                 "transit n, processing c, zero queueing");
  return ok && all_hops_ok ? 0 : 1;
}
