// Observability overhead: what tracing actually costs per stimulus.
//
// The obs layer promises to be branch-cheap when off (one relaxed pointer
// load per site) and cheap enough when on to leave on in every simulation
// run. This bench puts numbers on that promise by timing the canonical
// two-phone call in three configurations:
//
//   off          — no recorder installed (every site takes the null branch);
//   trace        — TraceRecorder attached, causal propagation off (PR-3
//                  behaviour: events recorded, no context stamping);
//   propagation  — recorder attached and in-band trace-context propagation
//                  on (id allocation, thread-local scopes, adoption);
//   metrics      — MetricsRegistry attached (atomic bumps, no tracing);
//   sampler      — metrics plus a live sampler thread snapshotting the
//                  registry every millisecond (the telemetry plane of
//                  obs/snapshot.hpp) — its cost over plain metrics is the
//                  price of watching a run live, and must stay ~free.
//
// The per-stimulus cost is wall time divided by the stimulus count of the
// deterministic call (identical across modes by recorder transparency).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_util.hpp"
#include "endpoints/user_device.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace cmc;
using namespace cmc::literals;

enum class Mode { off, trace, propagation, metrics, sampler };

void runCall(std::uint64_t seed, obs::TraceRecorder* rec,
             obs::MetricsRegistry* reg) {
  Simulator sim(TimingModel::paperDefaults(), seed);
  if (rec != nullptr) sim.attachTrace(rec);
  if (reg != nullptr) sim.attachMetrics(reg);
  sim.addBox<UserDeviceBox>("A", sim.mediaNetwork(), sim.loop(),
                            MediaAddress::parse("10.0.0.1", 5000));
  sim.addBox<UserDeviceBox>("B", sim.mediaNetwork(), sim.loop(),
                            MediaAddress::parse("10.0.0.2", 5000));
  sim.inject("A",
             [](Box& box) { static_cast<UserDeviceBox&>(box).placeCall("B"); });
  sim.runFor(2_s);
}

// Stimulus count of one call, read off a metrics-instrumented calibration
// run. Deterministic per seed and mode-independent.
std::uint64_t stimuliPerCall() {
  obs::MetricsRegistry reg;
  runCall(/*seed=*/1, nullptr, &reg);
  const obs::Counter* stimuli = reg.findCounter("sim.stimuli");
  return stimuli != nullptr ? stimuli->value() : 0;
}

double nsPerStimulus(Mode mode, int reps, std::uint64_t stimuli_per_call) {
  using clock = std::chrono::steady_clock;
  // The sampler is a long-lived thread in real hosts (one per soak, not one
  // per call); spawn it once around the whole rep loop so the measurement
  // captures its steady-state interference, not thread start-up.
  obs::MetricsRegistry sampled_reg;
  std::atomic<bool> done{false};
  obs::SnapshotSeries series(64);
  std::thread sampler;
  if (mode == Mode::sampler) {
    sampler = std::thread([&]() {
      std::int64_t tick = 0;
      while (!done.load(std::memory_order_relaxed)) {
        series.push(obs::MetricsSnapshot::capture(sampled_reg, ++tick));
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  const clock::time_point start = clock::now();
  for (int rep = 0; rep < reps; ++rep) {
    if (mode == Mode::off) {
      runCall(static_cast<std::uint64_t>(rep), nullptr, nullptr);
    } else if (mode == Mode::metrics) {
      obs::MetricsRegistry reg;
      runCall(static_cast<std::uint64_t>(rep), nullptr, &reg);
    } else if (mode == Mode::sampler) {
      runCall(static_cast<std::uint64_t>(rep), nullptr, &sampled_reg);
    } else {
      obs::TraceRecorder rec;
      if (mode == Mode::propagation) rec.setPropagation(true);
      runCall(static_cast<std::uint64_t>(rep), &rec, nullptr);
    }
  }
  const double total_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - start)
          .count());
  if (mode == Mode::sampler) {
    done.store(true, std::memory_order_relaxed);
    sampler.join();
  }
  return total_ns / (static_cast<double>(reps) *
                     static_cast<double>(stimuli_per_call));
}

}  // namespace

int main() {
  using namespace cmc;
  bench::banner(
      "obs overhead: tracing cost per stimulus",
      "observability is off-by-default and cheap enough to leave on: the "
      "recorder and causal propagation add bounded per-stimulus cost");

  const std::uint64_t stimuli = stimuliPerCall();
  if (stimuli == 0) {
    bench::verdict(false, "calibration run recorded no stimuli");
    return 1;
  }
  constexpr int kReps = 50;
  // Warm-up pass so allocator and cache state do not bias the first mode.
  (void)nsPerStimulus(Mode::propagation, 5, stimuli);

  const double off_ns = nsPerStimulus(Mode::off, kReps, stimuli);
  const double trace_ns = nsPerStimulus(Mode::trace, kReps, stimuli);
  const double prop_ns = nsPerStimulus(Mode::propagation, kReps, stimuli);
  const double metrics_ns = nsPerStimulus(Mode::metrics, kReps, stimuli);
  const double sampler_ns = nsPerStimulus(Mode::sampler, kReps, stimuli);

  std::printf("  %-22s %-18s %-18s\n", "mode", "ns/stimulus", "vs off");
  std::printf("  %-22s %-18.0f %-18s\n", "off", off_ns, "1.00x");
  std::printf("  %-22s %-18.0f %.2fx\n", "trace", trace_ns,
              off_ns > 0 ? trace_ns / off_ns : 0.0);
  std::printf("  %-22s %-18.0f %.2fx\n", "trace+propagation", prop_ns,
              off_ns > 0 ? prop_ns / off_ns : 0.0);
  std::printf("  %-22s %-18.0f %.2fx\n", "metrics", metrics_ns,
              off_ns > 0 ? metrics_ns / off_ns : 0.0);
  std::printf("  %-22s %-18.0f %.2fx\n", "metrics+sampler", sampler_ns,
              off_ns > 0 ? sampler_ns / off_ns : 0.0);
  bench::note(
      "per-stimulus wall cost of the two-phone call; stimulus count is "
      "identical across modes by recorder transparency. The sampler row is "
      "the live telemetry plane: a 1ms-period snapshot thread reading the "
      "registry while the call runs — its delta over the metrics row is "
      "what watching a run live costs the hot path");

  char json[640];
  std::snprintf(json, sizeof(json),
                "{\"stimuli_per_call\":%llu,\"reps\":%d,\"off_ns\":%.0f,"
                "\"trace_ns\":%.0f,\"propagation_ns\":%.0f,"
                "\"metrics_ns\":%.0f,\"sampler_ns\":%.0f,"
                "\"trace_overhead_ns\":%.0f,\"propagation_overhead_ns\":%.0f,"
                "\"sampler_overhead_ns\":%.0f}",
                static_cast<unsigned long long>(stimuli), kReps, off_ns,
                trace_ns, prop_ns, metrics_ns, sampler_ns, trace_ns - off_ns,
                prop_ns - off_ns, sampler_ns - metrics_ns);
  bench::jsonLine("OBS_OVERHEAD", json);

  const bool ok = off_ns > 0 && trace_ns > 0 && prop_ns > 0 &&
                  metrics_ns > 0 && sampler_ns > 0;
  bench::verdict(ok, "tracing modes measured; see OBS_OVERHEAD line");
  return ok ? 0 : 1;
}
