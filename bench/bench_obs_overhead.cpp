// Observability overhead: what tracing actually costs per stimulus.
//
// The obs layer promises to be branch-cheap when off (one relaxed pointer
// load per site) and cheap enough when on to leave on in every simulation
// run. This bench puts numbers on that promise by timing the canonical
// two-phone call in three configurations:
//
//   off          — no recorder installed (every site takes the null branch);
//   trace        — TraceRecorder attached, causal propagation off (PR-3
//                  behaviour: events recorded, no context stamping);
//   propagation  — recorder attached and in-band trace-context propagation
//                  on (id allocation, thread-local scopes, adoption);
//   metrics      — MetricsRegistry attached (atomic bumps, no tracing);
//   sampler      — metrics plus a live sampler thread snapshotting the
//                  registry every millisecond (the telemetry plane of
//                  obs/snapshot.hpp) — its cost over plain metrics is the
//                  price of watching a run live, and must stay ~free;
//   profiler     — a thread-local ProfileTable installed (obs/profiler.hpp):
//                  every CMC_PROF_SCOPE site times itself and operator
//                  new/delete attribute allocations.
//
// The per-stimulus cost is wall time divided by the stimulus count of the
// deterministic call (identical across modes by recorder transparency).
//
// The profiler's off-mode promise — compiled-in sites cost one thread-local
// load when no table is installed — is measured directly: a tight loop over
// a disabled site gives ns/visit, and (site visits per call x that cost)
// over the off-mode call time is the disabled-profiler overhead, which must
// stay under 1%.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_util.hpp"
#include "endpoints/user_device.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace cmc;
using namespace cmc::literals;

enum class Mode { off, trace, propagation, metrics, sampler, profiler };

void runCall(std::uint64_t seed, obs::TraceRecorder* rec,
             obs::MetricsRegistry* reg) {
  Simulator sim(TimingModel::paperDefaults(), seed);
  if (rec != nullptr) sim.attachTrace(rec);
  if (reg != nullptr) sim.attachMetrics(reg);
  sim.addBox<UserDeviceBox>("A", sim.mediaNetwork(), sim.loop(),
                            MediaAddress::parse("10.0.0.1", 5000));
  sim.addBox<UserDeviceBox>("B", sim.mediaNetwork(), sim.loop(),
                            MediaAddress::parse("10.0.0.2", 5000));
  sim.inject("A",
             [](Box& box) { static_cast<UserDeviceBox&>(box).placeCall("B"); });
  sim.runFor(2_s);
}

// Stimulus count of one call, read off a metrics-instrumented calibration
// run. Deterministic per seed and mode-independent.
std::uint64_t stimuliPerCall() {
  obs::MetricsRegistry reg;
  runCall(/*seed=*/1, nullptr, &reg);
  const obs::Counter* stimuli = reg.findCounter("sim.stimuli");
  return stimuli != nullptr ? stimuli->value() : 0;
}

double nsPerStimulus(Mode mode, int reps, std::uint64_t stimuli_per_call) {
  using clock = std::chrono::steady_clock;
  // The sampler is a long-lived thread in real hosts (one per soak, not one
  // per call); spawn it once around the whole rep loop so the measurement
  // captures its steady-state interference, not thread start-up.
  obs::MetricsRegistry sampled_reg;
  obs::ProfileTable prof_table("bench_obs");
  if (mode == Mode::profiler) obs::setThreadProfiler(&prof_table);
  std::atomic<bool> done{false};
  obs::SnapshotSeries series(64);
  std::thread sampler;
  if (mode == Mode::sampler) {
    sampler = std::thread([&]() {
      std::int64_t tick = 0;
      while (!done.load(std::memory_order_relaxed)) {
        series.push(obs::MetricsSnapshot::capture(sampled_reg, ++tick));
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  const clock::time_point start = clock::now();
  for (int rep = 0; rep < reps; ++rep) {
    if (mode == Mode::off) {
      runCall(static_cast<std::uint64_t>(rep), nullptr, nullptr);
    } else if (mode == Mode::metrics) {
      obs::MetricsRegistry reg;
      runCall(static_cast<std::uint64_t>(rep), nullptr, &reg);
    } else if (mode == Mode::sampler) {
      runCall(static_cast<std::uint64_t>(rep), nullptr, &sampled_reg);
    } else if (mode == Mode::profiler) {
      runCall(static_cast<std::uint64_t>(rep), nullptr, nullptr);
    } else {
      obs::TraceRecorder rec;
      if (mode == Mode::propagation) rec.setPropagation(true);
      runCall(static_cast<std::uint64_t>(rep), &rec, nullptr);
    }
  }
  const double total_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - start)
          .count());
  if (mode == Mode::sampler) {
    done.store(true, std::memory_order_relaxed);
    sampler.join();
  }
  if (mode == Mode::profiler) obs::setThreadProfiler(nullptr);
  return total_ns / (static_cast<double>(reps) *
                     static_cast<double>(stimuli_per_call));
}

// Cost of visiting one disabled profiling site: the ctor loads the
// thread-local table pointer, sees nullptr, and skips everything else.
double offSiteVisitNs() {
  using clock = std::chrono::steady_clock;
  obs::setThreadProfiler(nullptr);
  constexpr int kIters = 1 << 22;
  // Baseline: the same loop with only the optimization barrier, subtracted
  // so the result is the site's own cost, not the loop scaffolding.
  clock::time_point start = clock::now();
  for (int i = 0; i < kIters; ++i) {
    asm volatile("" ::: "memory");
  }
  const double base_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - start)
          .count());
  start = clock::now();
  for (int i = 0; i < kIters; ++i) {
    CMC_PROF_SCOPE("bench.off_site");
    asm volatile("" ::: "memory");
  }
  const double total_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - start)
          .count());
  const double per_visit = (total_ns - base_ns) / static_cast<double>(kIters);
  return per_visit > 0.0 ? per_visit : 0.0;
}

// Profiling-site visits in one call (span enters; value sites excluded from
// the span count), read off a profiled calibration run.
std::uint64_t siteVisitsPerCall() {
  obs::ProfileTable table("calibration");
  obs::setThreadProfiler(&table);
  runCall(/*seed=*/1, nullptr, nullptr);
  obs::setThreadProfiler(nullptr);
  return table.report().totals().span_calls;
}

}  // namespace

int main() {
  using namespace cmc;
  bench::banner(
      "obs overhead: tracing cost per stimulus",
      "observability is off-by-default and cheap enough to leave on: the "
      "recorder and causal propagation add bounded per-stimulus cost");

  const std::uint64_t stimuli = stimuliPerCall();
  if (stimuli == 0) {
    bench::verdict(false, "calibration run recorded no stimuli");
    return 1;
  }
  constexpr int kReps = 50;
  // Warm-up pass so allocator and cache state do not bias the first mode.
  (void)nsPerStimulus(Mode::propagation, 5, stimuli);

  const double off_ns = nsPerStimulus(Mode::off, kReps, stimuli);
  const double trace_ns = nsPerStimulus(Mode::trace, kReps, stimuli);
  const double prop_ns = nsPerStimulus(Mode::propagation, kReps, stimuli);
  const double metrics_ns = nsPerStimulus(Mode::metrics, kReps, stimuli);
  const double sampler_ns = nsPerStimulus(Mode::sampler, kReps, stimuli);
  const double prof_ns = nsPerStimulus(Mode::profiler, kReps, stimuli);
  const double off_site_ns = offSiteVisitNs();
  const std::uint64_t site_visits = siteVisitsPerCall();
  // Disabled-profiler tax on the off row: every compiled-in site still pays
  // the null-check, so (visits/call x ns/visit) of the call's wall time.
  const double off_call_ns = off_ns * static_cast<double>(stimuli);
  const double prof_off_pct =
      off_call_ns > 0
          ? 100.0 * static_cast<double>(site_visits) * off_site_ns / off_call_ns
          : 100.0;

  std::printf("  %-22s %-18s %-18s\n", "mode", "ns/stimulus", "vs off");
  std::printf("  %-22s %-18.0f %-18s\n", "off", off_ns, "1.00x");
  std::printf("  %-22s %-18.0f %.2fx\n", "trace", trace_ns,
              off_ns > 0 ? trace_ns / off_ns : 0.0);
  std::printf("  %-22s %-18.0f %.2fx\n", "trace+propagation", prop_ns,
              off_ns > 0 ? prop_ns / off_ns : 0.0);
  std::printf("  %-22s %-18.0f %.2fx\n", "metrics", metrics_ns,
              off_ns > 0 ? metrics_ns / off_ns : 0.0);
  std::printf("  %-22s %-18.0f %.2fx\n", "metrics+sampler", sampler_ns,
              off_ns > 0 ? sampler_ns / off_ns : 0.0);
  std::printf("  %-22s %-18.0f %.2fx\n", "profiler", prof_ns,
              off_ns > 0 ? prof_ns / off_ns : 0.0);
  std::printf("  disabled profiling site: %.2f ns/visit x %llu visits/call "
              "= %.3f%% of the off-mode call\n",
              off_site_ns, static_cast<unsigned long long>(site_visits),
              prof_off_pct);
  bench::note(
      "per-stimulus wall cost of the two-phone call; stimulus count is "
      "identical across modes by recorder transparency. The sampler row is "
      "the live telemetry plane: a 1ms-period snapshot thread reading the "
      "registry while the call runs — its delta over the metrics row is "
      "what watching a run live costs the hot path");

  char json[896];
  std::snprintf(json, sizeof(json),
                "{\"stimuli_per_call\":%llu,\"reps\":%d,\"off_ns\":%.0f,"
                "\"trace_ns\":%.0f,\"propagation_ns\":%.0f,"
                "\"metrics_ns\":%.0f,\"sampler_ns\":%.0f,\"profiler_ns\":%.0f,"
                "\"trace_overhead_ns\":%.0f,\"propagation_overhead_ns\":%.0f,"
                "\"sampler_overhead_ns\":%.0f,\"profiler_overhead_ns\":%.0f,"
                "\"prof_off_site_ns\":%.2f,\"prof_site_visits_per_call\":%llu,"
                "\"prof_off_overhead_pct\":%.3f}",
                static_cast<unsigned long long>(stimuli), kReps, off_ns,
                trace_ns, prop_ns, metrics_ns, sampler_ns, prof_ns,
                trace_ns - off_ns, prop_ns - off_ns, sampler_ns - metrics_ns,
                prof_ns - off_ns, off_site_ns,
                static_cast<unsigned long long>(site_visits), prof_off_pct);
  bench::jsonLine("OBS_OVERHEAD", json);

  const bool ok = off_ns > 0 && trace_ns > 0 && prop_ns > 0 &&
                  metrics_ns > 0 && sampler_ns > 0 && prof_ns > 0;
  bench::verdict(ok, "tracing modes measured; see OBS_OVERHEAD line");
  bench::verdict(prof_off_pct <= 1.0,
                 "disabled profiler costs <=1% of the uninstrumented run");
  return ok && prof_off_pct <= 1.0 ? 0 : 1;
}
