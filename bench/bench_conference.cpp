// Experiment E10 (paper Section IV-B, Fig. 7): conference muting modes.
//
// Full muting is done with the primitives (replace a flowlink by two
// holdslots); partial muting belongs to the bridge's mix matrix, set via
// standardized meta-signals. For each of the paper's scenarios this bench
// prints the resulting audibility matrix (rows = listener, columns =
// speaker) and checks it against the required one.
#include <cstdio>

#include "apps/conference.hpp"
#include "bench_util.hpp"
#include "endpoints/bridge_box.hpp"
#include "endpoints/user_device.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace cmc;
using namespace cmc::literals;

using Matrix = std::array<std::array<bool, 3>, 3>;

void printMatrix(const Matrix& m) {
  std::printf("        hears A  hears B  hears C\n");
  const char* names[3] = {"A", "B", "C"};
  for (int listener = 0; listener < 3; ++listener) {
    std::printf("     %s", names[listener]);
    for (int speaker = 0; speaker < 3; ++speaker) {
      std::printf("%9s", m[listener][speaker] ? "yes" : "-");
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  bench::banner(
      "E10: conference muting modes (Section IV-B, Fig. 7)",
      "full muting via holdslots; business / emergency / whisper modes via "
      "the bridge's mix matrix");

  Simulator sim(TimingModel::paperDefaults(), 21);
  auto& a = sim.addBox<UserDeviceBox>("A", sim.mediaNetwork(), sim.loop(),
                                      MediaAddress::parse("10.2.0.1", 5000));
  auto& b = sim.addBox<UserDeviceBox>("B", sim.mediaNetwork(), sim.loop(),
                                      MediaAddress::parse("10.2.0.2", 5000));
  auto& c = sim.addBox<UserDeviceBox>("C", sim.mediaNetwork(), sim.loop(),
                                      MediaAddress::parse("10.2.0.3", 5000));
  sim.addBox<BridgeBox>("bridge", sim.mediaNetwork(), sim.loop(),
                        MediaAddress::parse("10.2.0.100", 6000));
  auto& conf = sim.addBox<ConferenceServerBox>("conf", "bridge");

  sim.inject("conf", [](Box& bx) {
    auto& server = static_cast<ConferenceServerBox&>(bx);
    server.invite("A");
    server.invite("B");
    server.invite("C");
  });
  sim.runFor(3_s);

  UserDeviceBox* devices[3] = {&a, &b, &c};
  auto measure = [&]() {
    for (auto* d : devices) d->media().resetStats();
    sim.runFor(1_s);
    Matrix m{};
    for (int listener = 0; listener < 3; ++listener) {
      for (int speaker = 0; speaker < 3; ++speaker) {
        m[listener][speaker] =
            devices[listener]->media().hears(devices[speaker]->media().id());
      }
    }
    return m;
  };
  bool all_ok = true;
  auto scenario = [&](const std::string& name, const Matrix& want) {
    std::printf("\n  %s:\n", name.c_str());
    Matrix got = measure();
    printMatrix(got);
    const bool ok = got == want;
    bench::verdict(ok, "matrix matches the paper's requirement");
    all_ok = all_ok && ok;
  };

  scenario("full mesh (default conference)",
           Matrix{{{false, true, true}, {true, false, true}, {true, true, false}}});

  sim.inject("conf", [&](Box& bx) {
    static_cast<ConferenceServerBox&>(bx).setMode(
        "business:" + std::to_string(conf.legOf("A")));
  });
  sim.runFor(500_ms);
  scenario("business meeting (only speaker A audible)",
           Matrix{{{false, false, false},
                   {true, false, false},
                   {true, false, false}}});

  sim.inject("conf", [&](Box& bx) {
    static_cast<ConferenceServerBox&>(bx).setMode(
        "emergency:" + std::to_string(conf.legOf("B")));
  });
  sim.runFor(500_ms);
  scenario("emergency services (caller B kept audible, hears nothing)",
           Matrix{{{false, true, true},
                   {false, false, false},
                   {true, true, false}}});

  sim.inject("conf", [&](Box& bx) {
    static_cast<ConferenceServerBox&>(bx).setMode(
        "whisper:" + std::to_string(conf.legOf("A")) + "," +
        std::to_string(conf.legOf("B")) + "," + std::to_string(conf.legOf("C")));
  });
  sim.runFor(500_ms);
  scenario("whisper training (agent A, customer B, coach C)",
           Matrix{{{false, true, true},
                   {true, false, false},
                   {true, true, false}}});

  sim.inject("conf", [](Box& bx) {
    static_cast<ConferenceServerBox&>(bx).setMode("full");
  });
  sim.inject("conf", [](Box& bx) {
    static_cast<ConferenceServerBox&>(bx).muteParty("C");
  });
  sim.runFor(1_s);
  scenario("full muting of C via two holdslots (primitives only)",
           Matrix{{{false, true, false},
                   {true, false, false},
                   {false, false, false}}});

  std::printf("\n");
  bench::verdict(all_ok, "all muting scenarios produce the required mixes");
  return all_ok ? 0 : 1;
}
