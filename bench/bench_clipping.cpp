// Experiment E8 (paper Sections VI-A and VI-B, footnote 5): media clipping
// under relaxed synchronization.
//
// "Media clipping results when media packets are lost because they arrive
// at an endpoint before the endpoint is set up to receive them... It is
// easier for an endpoint to wait for select signals and risk the loss of a
// few packets that arrive before their corresponding selectors."
//
// Signaling crosses application servers (hops of n + c each) while media
// travels directly; the faster the media path relative to signaling, the
// more packets are clipped at setup. This bench sweeps the media-plane
// latency and the signaling path length and reports clipped packet counts
// at call setup.
#include <cstdio>

#include "bench_util.hpp"
#include "endpoints/user_device.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace cmc;
using namespace cmc::literals;

// Returns packets clipped at B during a call A->B across `patch_boxes`
// transparent servers.
std::uint64_t clippedAtSetup(std::size_t patch_boxes, TimingModel timing) {
  Simulator sim(timing, 5);
  sim.addBox<UserDeviceBox>("A", sim.mediaNetwork(), sim.loop(),
                            MediaAddress::parse("10.8.0.1", 5000));
  auto& b = sim.addBox<UserDeviceBox>("B", sim.mediaNetwork(), sim.loop(),
                                      MediaAddress::parse("10.8.0.2", 5000));
  std::vector<ChannelId> channels;
  std::string previous = "A";
  for (std::size_t i = 0; i < patch_boxes; ++i) {
    const std::string name = "P" + std::to_string(i + 1);
    sim.addBox<Box>(name);
    channels.push_back(sim.connect(previous, name));
    previous = name;
  }
  channels.push_back(sim.connect(previous, "B"));
  for (std::size_t i = 0; i < patch_boxes; ++i) {
    Box& box = sim.box("P" + std::to_string(i + 1));
    box.linkSlots(box.slotsOf(channels[i]).front(),
                  box.slotsOf(channels[i + 1]).front());
  }
  sim.inject("A", [](Box& bx) { static_cast<UserDeviceBox&>(bx).callOnLine(); });
  sim.runFor(10_s);
  return b.media().packetsClipped();
}

}  // namespace

int main() {
  bench::banner(
      "E8: clipping under relaxed signaling/media synchronization "
      "(Section VI, footnote 5)",
      "packets that arrive before their selector are clipped; clipping "
      "grows with signaling path length and shrinks as media latency "
      "approaches signaling latency");

  std::printf("  sweep: signaling hops (media latency fixed at 10 ms):\n");
  std::printf("  %-18s %-18s\n", "servers on path", "clipped at callee");
  for (std::size_t boxes : {0u, 1u, 2u, 3u, 4u}) {
    std::printf("  %-18zu %-18zu\n", boxes,
                static_cast<std::size_t>(
                    clippedAtSetup(boxes, TimingModel::paperDefaults())));
  }
  bench::note("more servers = selects arrive later = more clipped packets");
  bench::note("clipping is bounded and small: the paper's trade-off of "
              "accepting minor loss over extra synchronization holds");
  return 0;
}
