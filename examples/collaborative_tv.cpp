// Collaborative television (paper Fig. 8): a family TV and a daughter's
// laptop share one movie through collaboration boxes — five media streams
// (TV video + audio, French audio for headphones, laptop video + audio)
// all tied to one time pointer. A pause pauses everyone. Then the daughter
// leaves the collaboration and fast-forwards her own view.
//
// Build & run:   ./build/examples/collaborative_tv
#include <cstdio>

#include "apps/collab_tv.hpp"
#include "endpoints/av_device.hpp"
#include "endpoints/movie_server.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace cmc;
  using namespace cmc::literals;

  Simulator sim(TimingModel::paperDefaults(), 31);
  auto& tv = sim.addBox<AvDeviceBox>(
      "TV", sim.mediaNetwork(), sim.loop(), MediaAddress::parse("10.3.0.1", 5000),
      std::vector<AvDeviceBox::StreamSpec>{
          {Medium::video, {Codec::mpeg2, Codec::h263}},
          {Medium::audio, {Codec::g711u}}});
  auto& phones = sim.addBox<AvDeviceBox>(
      "phones", sim.mediaNetwork(), sim.loop(),
      MediaAddress::parse("10.3.0.2", 5000),
      std::vector<AvDeviceBox::StreamSpec>{{Medium::audio, {Codec::g726}}});
  auto& laptop = sim.addBox<AvDeviceBox>(
      "laptop", sim.mediaNetwork(), sim.loop(),
      MediaAddress::parse("10.3.0.3", 5000),
      std::vector<AvDeviceBox::StreamSpec>{
          {Medium::video, {Codec::h263}},
          {Medium::audio, {Codec::g711u, Codec::g726}}});
  auto& server = sim.addBox<MovieServerBox>("movies", sim.mediaNetwork(),
                                            sim.loop(),
                                            MediaAddress::parse("10.3.0.100", 7000));
  auto& collab_a = sim.addBox<CollabTvBox>("collabA", "movies");
  auto& collab_c = sim.addBox<CollabTvBox>("collabC", "movies");

  const ChannelId tv_ch = sim.connect("collabA", "TV", 2);
  const ChannelId phones_ch = sim.connect("collabA", "phones", 1);
  const ChannelId laptop_ch = sim.connect("collabC", "laptop", 2);
  const ChannelId peer_ch = sim.connect("collabC", "collabA", 2);

  std::printf("== the family room starts 'big-movie' with 5 streams ==\n");
  sim.inject("collabA", [](Box& b) {
    static_cast<CollabTvBox&>(b).startMovie("big-movie", 5);
  });
  sim.runFor(500_ms);
  sim.inject("collabA", [&](Box& b) {
    auto& collab = static_cast<CollabTvBox&>(b);
    collab.routeStream(0, tv_ch, 0);      // video -> TV (MPEG-2)
    collab.routeStream(1, tv_ch, 1);      // English audio -> TV
    collab.routeStream(2, phones_ch, 0);  // French audio -> headphones
    collab.routeStream(3, peer_ch, 0);    // video -> daughter's box (H.263)
    collab.routeStream(4, peer_ch, 1);    // audio -> daughter's box
  });
  sim.runFor(500_ms);
  sim.inject("collabC", [&](Box& b) {
    auto& collab = static_cast<CollabTvBox&>(b);
    collab.linkSlots(collab.slotsOf(peer_ch)[0], collab.slotsOf(laptop_ch)[0]);
    collab.linkSlots(collab.slotsOf(peer_ch)[1], collab.slotsOf(laptop_ch)[1]);
  });
  sim.runFor(300_ms);
  sim.inject("TV", [](Box& b) {
    static_cast<AvDeviceBox&>(b).openStream(0);
    static_cast<AvDeviceBox&>(b).openStream(1);
  });
  sim.inject("phones", [](Box& b) { static_cast<AvDeviceBox&>(b).openStream(0); });
  sim.inject("laptop", [](Box& b) {
    static_cast<AvDeviceBox&>(b).openStream(0);
    static_cast<AvDeviceBox&>(b).openStream(1);
  });
  sim.runFor(3_s);
  std::printf("  streams: TV video %zu pkts, TV audio %zu, French audio %zu, "
              "laptop video %zu, laptop audio %zu\n",
              static_cast<std::size_t>(tv.stream(0).packetsReceived()),
              static_cast<std::size_t>(tv.stream(1).packetsReceived()),
              static_cast<std::size_t>(phones.stream(0).packetsReceived()),
              static_cast<std::size_t>(laptop.stream(0).packetsReceived()),
              static_cast<std::size_t>(laptop.stream(1).packetsReceived()));
  std::printf("  shared time pointer: %.1f s\n",
              server.positionOf(collab_a.movieChannel()));

  std::printf("\n== somebody pauses: every stream freezes together ==\n");
  sim.inject("collabA", [](Box& b) { static_cast<CollabTvBox&>(b).pause(); });
  sim.runFor(500_ms);
  tv.stream(0).resetStats();
  laptop.stream(0).resetStats();
  sim.runFor(1_s);
  std::printf("  during pause: TV video %zu pkts, laptop video %zu pkts, "
              "pointer %.1f s\n",
              static_cast<std::size_t>(tv.stream(0).packetsReceived()),
              static_cast<std::size_t>(laptop.stream(0).packetsReceived()),
              server.positionOf(collab_a.movieChannel()));
  sim.inject("collabA", [](Box& b) { static_cast<CollabTvBox&>(b).play(); });
  sim.runFor(1_s);

  std::printf("\n== the daughter leaves and fast-forwards to the end ==\n");
  sim.inject("collabC", [&](Box& b) {
    static_cast<CollabTvBox&>(b).leaveAndSplit("collabA", "big-movie", 2, 5000.0);
  });
  sim.runFor(500_ms);
  sim.inject("collabC", [&](Box& b) {
    auto& collab = static_cast<CollabTvBox&>(b);
    collab.routeStream(0, laptop_ch, 0);
    collab.routeStream(1, laptop_ch, 1);
  });
  sim.runFor(2_s);
  std::printf("  family pointer: %.1f s   daughter's pointer: %.1f s\n",
              server.positionOf(collab_a.movieChannel()),
              server.positionOf(collab_c.movieChannel()));
  tv.stream(0).resetStats();
  laptop.stream(0).resetStats();
  sim.runFor(1_s);
  std::printf("  both views streaming: TV %zu pkts, laptop %zu pkts\n",
              static_cast<std::size_t>(tv.stream(0).packetsReceived()),
              static_cast<std::size_t>(laptop.stream(0).packetsReceived()));
  std::printf("done\n");
  return 0;
}
