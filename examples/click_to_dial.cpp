// Click-to-Dial (paper Fig. 6): a user browsing a web site clicks a
// "click-to-dial" link; the feature box calls the user's own phone first,
// plays ringback from a tone resource while the far party's phone rings,
// and finally flowlinks the two flowing calls so the users talk directly.
//
// Run twice: once with user 2 answering, once busy (busy tone).
//
// Build & run:   ./build/examples/click_to_dial
#include <cstdio>

#include "apps/click_to_dial.hpp"
#include "endpoints/resources.hpp"
#include "endpoints/user_device.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace cmc;
using namespace cmc::literals;

const char* stateName(ClickToDialBox::State s) {
  switch (s) {
    case ClickToDialBox::State::start: return "start";
    case ClickToDialBox::State::oneCall: return "oneCall";
    case ClickToDialBox::State::twoCalls: return "twoCalls";
    case ClickToDialBox::State::busyTone: return "busyTone";
    case ClickToDialBox::State::ringback: return "ringback";
    case ClickToDialBox::State::connected: return "connected";
    case ClickToDialBox::State::done: return "done";
  }
  return "?";
}

void run(bool callee_answers) {
  Simulator sim(TimingModel::paperDefaults(), 11);
  auto& user1 = sim.addBox<UserDeviceBox>("user1", sim.mediaNetwork(),
                                          sim.loop(),
                                          MediaAddress::parse("10.1.0.1", 5000));
  auto& user2 = sim.addBox<UserDeviceBox>(
      "user2", sim.mediaNetwork(), sim.loop(),
      MediaAddress::parse("10.1.0.2", 5000),
      UserDeviceBox::AcceptPolicy::manual);
  auto& tone = sim.addBox<ToneGeneratorBox>("tone", sim.mediaNetwork(),
                                            sim.loop(),
                                            MediaAddress::parse("10.1.0.9", 5900));
  auto& ctd = sim.addBox<ClickToDialBox>("CTD", "tone");

  std::printf("\n== user 1 clicks the web link (callee will %s) ==\n",
              callee_answers ? "answer" : "decline");
  sim.inject("CTD", [](Box& b) {
    static_cast<ClickToDialBox&>(b).click("user1", "user2");
  });
  sim.runFor(2_s);
  std::printf("  CTD state: %-10s user1 hears ringback tone: %d\n",
              stateName(ctd.state()), user1.media().hears(tone.toneId()));

  if (callee_answers) {
    std::printf("  user 2 answers...\n");
    sim.inject("user2",
               [](Box& b) { static_cast<UserDeviceBox&>(b).acceptCall(); });
  } else {
    std::printf("  user 2 declines...\n");
    sim.inject("user2",
               [](Box& b) { static_cast<UserDeviceBox&>(b).declineCall(); });
  }
  sim.runFor(2_s);
  user1.media().resetStats();
  user2.media().resetStats();
  sim.runFor(1_s);
  std::printf("  CTD state: %-10s\n", stateName(ctd.state()));
  std::printf("  user1 <-> user2 media: %d/%d   user1 hears tone: %d\n",
              user1.media().hears(user2.media().id()),
              user2.media().hears(user1.media().id()),
              user1.media().hears(tone.toneId()));
}

}  // namespace

int main() {
  std::printf("click-to-dial (paper Fig. 6)\n");
  run(/*callee_answers=*/true);
  run(/*callee_answers=*/false);
  std::printf("\ndone\n");
  return 0;
}
