// Quickstart: the smallest complete use of the library.
//
// Two telephones and nothing else: A calls B, the devices run openSlot /
// holdSlot goals over one signaling channel, the protocol exchanges
// open / oack / select, and simulated RTP flows both ways. Then A mutes
// its microphone (a modify event -> new selector) and finally hangs up.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "endpoints/user_device.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace cmc;
  using namespace cmc::literals;

  // A simulated world with the paper's timing constants: n = 34 ms network
  // latency per signaling hop, c = 20 ms processing per stimulus.
  Simulator sim(TimingModel::paperDefaults(), /*seed=*/1);

  auto& alice = sim.addBox<UserDeviceBox>("alice", sim.mediaNetwork(),
                                          sim.loop(),
                                          MediaAddress::parse("10.0.0.1", 5000));
  auto& bob = sim.addBox<UserDeviceBox>("bob", sim.mediaNetwork(), sim.loop(),
                                        MediaAddress::parse("10.0.0.2", 5000));

  std::printf("quickstart: alice calls bob\n");
  sim.inject("alice",
             [](Box& box) { static_cast<UserDeviceBox&>(box).placeCall("bob"); });
  sim.runFor(1_s);

  std::printf("  t=%.0f ms  in call: alice=%d bob=%d\n", sim.now().millis(),
              alice.inCall(), bob.inCall());
  std::printf("  alice hears bob: %d   bob hears alice: %d\n",
              alice.media().hears(bob.media().id()),
              bob.media().hears(alice.media().id()));
  std::printf("  packets: alice sent %zu / received %zu, bob sent %zu / "
              "received %zu (clipped %zu)\n",
              static_cast<std::size_t>(alice.media().packetsSent()),
              static_cast<std::size_t>(alice.media().packetsReceived()),
              static_cast<std::size_t>(bob.media().packetsSent()),
              static_cast<std::size_t>(bob.media().packetsReceived()),
              static_cast<std::size_t>(bob.media().packetsClipped()));

  std::printf("\nalice mutes her microphone (modify event)\n");
  sim.inject("alice", [](Box& box) {
    static_cast<UserDeviceBox&>(box).setMute(/*in=*/false, /*out=*/true);
  });
  sim.runFor(500_ms);
  bob.media().resetStats();
  sim.runFor(1_s);
  std::printf("  bob received %zu packets in the last second (muted)\n",
              static_cast<std::size_t>(bob.media().packetsReceived()));

  std::printf("\nalice unmutes and hangs up\n");
  sim.inject("alice", [](Box& box) {
    static_cast<UserDeviceBox&>(box).setMute(false, false);
  });
  sim.runFor(500_ms);
  sim.inject("alice", [](Box& box) { static_cast<UserDeviceBox&>(box).hangUp(); });
  sim.runFor(1_s);
  std::printf("  in call: alice=%d bob=%d\n", alice.inCall(), bob.inCall());
  std::printf("done\n");
  return 0;
}
