// cmc_load_worker: one rank of a distributed load run (docs/LOAD.md).
//
// Spawned by a DistDriver (load_soak --workers N does this) or launched by
// hand against a driver's printed port. The whole protocol lives in
// load/dist — this is just argv plumbing around DistWorker.
//
//   cmc_load_worker --port P --rank R [--host H] [--timeout-ms T]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "load/dist/worker.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --port P --rank R [--host H] [--timeout-ms T]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  cmc::load::dist::WorkerConfig config;
  bool have_port = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      config.port = static_cast<std::uint16_t>(std::atoi(next()));
      have_port = true;
    } else if (arg == "--rank") {
      config.rank = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (arg == "--host") {
      config.host = next();
    } else if (arg == "--timeout-ms") {
      config.io_timeout_ms = std::atoll(next());
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (!have_port) {
    usage(argv[0]);
    return 2;
  }

  cmc::load::dist::DistWorker worker(config);
  const int rc = worker.run();
  if (rc != 0) {
    std::fprintf(stderr, "cmc_load_worker rank %u: %s\n", config.rank,
                 worker.error().c_str());
  }
  return rc;
}
