// cmc_top: live view of a sharded load run, top(1)-style.
//
//   cmc_top --port P [--host 127.0.0.1] [--interval-ms 500] [--once]
//
// Connects to the ops endpoint a load host exposes (e.g.
// `load_soak --ops-port 0`) and renders a refreshing per-shard table —
// arrivals, teardowns, armed probes, windowed setup p50/p99, fault and
// trace-drop counters — plus the SLO health line. The endpoint's `shards`
// and `health` verbs are line-oriented key=value records precisely so this
// tool (and shell scripts) need no JSON parser.
//
// Exits 0 when the watched run finishes healthy, 1 when it finished with a
// breached SLO, 2 on usage/connection errors. --once prints a single frame
// (no screen clearing) — handy in CI logs.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/ops_server.hpp"

using namespace cmc;

namespace {

// Pull "key=value" out of a line of the shards/health exposition.
std::string field(const std::string& line, const std::string& key) {
  const std::string needle = key + "=";
  std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return {};
  pos += needle.size();
  const std::size_t end = line.find(' ', pos);
  return line.substr(pos, end == std::string::npos ? std::string::npos
                                                   : end - pos);
}

std::vector<std::string> lines(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    if (end > start) out.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = -1;
  long interval_ms = 500;
  bool once = false;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--port") == 0) {
      port = static_cast<int>(std::strtol(next(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--host") == 0) {
      host = next();
    } else if (std::strcmp(argv[i], "--interval-ms") == 0) {
      interval_ms = std::strtol(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--once") == 0) {
      once = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (port <= 0) {
    std::fprintf(stderr,
                 "usage: cmc_top --port P [--host H] [--interval-ms MS] "
                 "[--once]\n");
    return 2;
  }

  auto client = obs::OpsClient::connect(host, static_cast<std::uint16_t>(port));
  if (client == nullptr) {
    std::fprintf(stderr, "cmc_top: cannot connect to %s:%d\n", host.c_str(),
                 port);
    return 2;
  }

  bool saw_final = false;
  bool breached = false;
  while (true) {
    auto health = client->request("health");
    auto shards = client->request("shards");
    if (!health || !shards) {
      // Host went away: report what we last knew.
      std::printf("cmc_top: host closed the connection\n");
      break;
    }

    if (!once) std::printf("\033[2J\033[H");  // clear + home
    const std::vector<std::string> hlines = lines(health->body);
    const std::string& status = hlines.empty() ? std::string{} : hlines[0];
    std::printf("cmc_top — %s:%d   %s\n", host.c_str(), port, status.c_str());
    std::printf("%-6s %9s %10s %6s %11s %12s %12s %7s %8s\n", "shard",
                "arrivals", "teardowns", "armed", "arriv/s", "p50(us)",
                "p99(us)", "faults", "trdrop");
    for (const std::string& line : lines(shards->body)) {
      std::printf("%-6s %9s %10s %6s %11s %12s %12s %7s %8s\n",
                  field(line, "shard").c_str(),
                  field(line, "arrivals").c_str(),
                  field(line, "teardowns").c_str(),
                  field(line, "armed").c_str(),
                  field(line, "arrivals_per_s").c_str(),
                  field(line, "setup_p50_us").c_str(),
                  field(line, "setup_p99_us").c_str(),
                  field(line, "faults").c_str(),
                  field(line, "trace_dropped").c_str());
    }
    for (std::size_t i = 1; i < hlines.size(); ++i) {
      std::printf("%s\n", hlines[i].c_str());
    }
    std::fflush(stdout);

    breached = field(status, "ever_breached") == "1";
    saw_final = field(status, "final") == "1";
    if (once || saw_final) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  return breached ? 1 : 0;
}
