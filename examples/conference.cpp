// Audio conferencing (paper Fig. 7): a conference server flowlinks each
// participant's tunnel to a leg of a mixing bridge, then walks through the
// paper's muting scenarios — full muting with the four primitives, and the
// three partial-muting mixes (business, emergency services, whisper
// training) delegated to the bridge.
//
// Build & run:   ./build/examples/conference
//
// The run is traced: a Chrome trace of every signal, FSM transition, goal
// change, and box processing span is written to conference_trace.json —
// open it in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
#include <cstdio>
#include <fstream>

#include "apps/conference.hpp"
#include "endpoints/bridge_box.hpp"
#include "endpoints/user_device.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace cmc;
using namespace cmc::literals;

void matrix(Simulator& sim, UserDeviceBox* devices[3], const char* names[3]) {
  for (int i = 0; i < 3; ++i) devices[i]->media().resetStats();
  sim.runFor(1_s);
  std::printf("           hears %s  hears %s  hears %s\n", names[0], names[1],
              names[2]);
  for (int listener = 0; listener < 3; ++listener) {
    std::printf("    %-7s", names[listener]);
    for (int speaker = 0; speaker < 3; ++speaker) {
      const bool hears =
          devices[listener]->media().hears(devices[speaker]->media().id());
      std::printf("%9s", hears ? "yes" : "-");
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  Simulator sim(TimingModel::paperDefaults(), 21);
  obs::TraceRecorder trace;
  // Causal propagation links every stimulus span to the send that caused it
  // and draws Perfetto flow arrows across boxes in the exported trace.
  trace.setPropagation(true);
  obs::MetricsRegistry metrics;
  sim.attachTrace(&trace);
  sim.attachMetrics(&metrics);
  auto& a = sim.addBox<UserDeviceBox>("A", sim.mediaNetwork(), sim.loop(),
                                      MediaAddress::parse("10.2.0.1", 5000));
  auto& b = sim.addBox<UserDeviceBox>("B", sim.mediaNetwork(), sim.loop(),
                                      MediaAddress::parse("10.2.0.2", 5000));
  auto& c = sim.addBox<UserDeviceBox>("C", sim.mediaNetwork(), sim.loop(),
                                      MediaAddress::parse("10.2.0.3", 5000));
  sim.addBox<BridgeBox>("bridge", sim.mediaNetwork(), sim.loop(),
                        MediaAddress::parse("10.2.0.100", 6000));
  auto& conf = sim.addBox<ConferenceServerBox>("conf", "bridge");

  UserDeviceBox* devices[3] = {&a, &b, &c};
  const char* names[3] = {"A", "B", "C"};

  std::printf("== the conference server invites A, B, C ==\n");
  sim.inject("conf", [](Box& bx) {
    auto& server = static_cast<ConferenceServerBox&>(bx);
    server.invite("A");
    server.invite("B");
    server.invite("C");
  });
  sim.runFor(3_s);
  matrix(sim, devices, names);

  std::printf("\n== full muting of C: the flowlink is replaced by two "
              "holdslots ==\n");
  sim.inject("conf",
             [](Box& bx) { static_cast<ConferenceServerBox&>(bx).muteParty("C"); });
  sim.runFor(1_s);
  matrix(sim, devices, names);
  sim.inject("conf", [](Box& bx) {
    static_cast<ConferenceServerBox&>(bx).unmuteParty("C");
  });
  sim.runFor(1_s);

  std::printf("\n== business meeting: only speaker A's input is mixed ==\n");
  sim.inject("conf", [&](Box& bx) {
    static_cast<ConferenceServerBox&>(bx).setMode(
        "business:" + std::to_string(conf.legOf("A")));
  });
  sim.runFor(500_ms);
  matrix(sim, devices, names);

  std::printf("\n== emergency services: caller B is heard but hears nothing "
              "(NENA) ==\n");
  sim.inject("conf", [&](Box& bx) {
    static_cast<ConferenceServerBox&>(bx).setMode(
        "emergency:" + std::to_string(conf.legOf("B")));
  });
  sim.runFor(500_ms);
  matrix(sim, devices, names);

  std::printf("\n== whisper training: agent A, customer B, coach C ==\n");
  sim.inject("conf", [&](Box& bx) {
    static_cast<ConferenceServerBox&>(bx).setMode(
        "whisper:" + std::to_string(conf.legOf("A")) + "," +
        std::to_string(conf.legOf("B")) + "," + std::to_string(conf.legOf("C")));
  });
  sim.runFor(500_ms);
  matrix(sim, devices, names);

  const char* trace_path = "conference_trace.json";
  {
    std::ofstream out(trace_path);
    trace.exportChromeTrace(out);
  }
  std::printf("\ntrace: %s (%llu events, %llu dropped) — load in Perfetto "
              "or chrome://tracing\n",
              trace_path,
              static_cast<unsigned long long>(trace.recorded()),
              static_cast<unsigned long long>(trace.dropped()));
  std::printf("metrics: %s\n", metrics.json().c_str());

  std::printf("\ndone\n");
  return 0;
}
