// Soak the sharded load runtime: sustained call churn across worker shards.
//
//   load_soak [--calls N] [--shards N] [--rate CALLS_PER_S]
//             [--duration SIM_SECONDS] [--faults FRACTION] [--seed S]
//
// Either --calls fixes the call count directly, or --duration derives it
// from the arrival rate (duration * rate). Prints per-shard stats, the
// rollup metrics JSON, and a PASS/FAIL verdict: every call must converge to
// its §V rest state and tear down leak-free (under faults, convergence is
// still required — the windows close before hang-up and stabilization must
// recover every call). CI runs this under tsan as the load-smoke job.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "load/sharded_runtime.hpp"
#include "load/workload.hpp"

using namespace cmc;

int main(int argc, char** argv) {
  load::WorkloadSpec workload;
  workload.master_seed = 7;
  workload.calls = 200;
  workload.arrivals_per_s = 100.0;
  workload.flowlink_fraction = 0.5;

  load::LoadConfig config;
  config.shards = 4;

  double duration_s = 0.0;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--calls") == 0) {
      workload.calls = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      config.shards = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--rate") == 0) {
      workload.arrivals_per_s = std::strtod(next(), nullptr);
    } else if (std::strcmp(argv[i], "--duration") == 0) {
      duration_s = std::strtod(next(), nullptr);
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      workload.fault_fraction = std::strtod(next(), nullptr);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      workload.master_seed = std::strtoull(next(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (duration_s > 0.0) {
    workload.calls =
        static_cast<std::size_t>(duration_s * workload.arrivals_per_s);
  }

  std::printf("load_soak: %zu calls @ %.0f/s over %zu shards (faults %.2f, seed %llu)\n",
              workload.calls, workload.arrivals_per_s, config.shards,
              workload.fault_fraction,
              static_cast<unsigned long long>(workload.master_seed));

  load::ShardedRuntime runtime(config);
  runtime.run(workload);

  for (std::size_t i = 0; i < runtime.shardStats().size(); ++i) {
    const auto& s = runtime.shardStats()[i];
    std::printf(
        "  shard %zu: %zu calls, %llu events, %llu signals, peak queue %zu, "
        "%zu converged, %zu probe failures\n",
        i, s.calls, static_cast<unsigned long long>(s.events_executed),
        static_cast<unsigned long long>(s.signals_delivered), s.peak_pending,
        s.probes_converged, s.probes_failed);
  }

  const auto& latency = runtime.setupLatency();
  std::printf("setup latency us: p50=%.0f p99=%.0f max=%lld (n=%llu)\n",
              latency.quantile(0.50), latency.quantile(0.99),
              static_cast<long long>(latency.max()),
              static_cast<unsigned long long>(latency.count()));
  std::printf("calls/sec (wall): %.0f\n",
              runtime.wallSeconds() > 0.0
                  ? static_cast<double>(workload.calls) / runtime.wallSeconds()
                  : 0.0);
  std::printf("metrics: %s\n", runtime.metricsJson().c_str());

  const std::size_t converged = runtime.convergedCount();
  const std::size_t clean = runtime.cleanTeardownCount();
  const bool ok = converged == workload.calls && clean == workload.calls;
  std::printf("%s: %zu/%zu converged, %zu/%zu clean teardowns\n",
              ok ? "PASS" : "FAIL", converged, workload.calls, clean,
              workload.calls);
  return ok ? 0 : 1;
}
