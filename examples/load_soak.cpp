// Soak the sharded load runtime: sustained call churn across worker shards.
//
//   load_soak [--calls N] [--shards N] [--rate CALLS_PER_S]
//             [--duration SIM_SECONDS] [--faults FRACTION] [--seed S]
//             [--workers N] [--worker-binary PATH]
//             [--ops-port P] [--sample-ms MS] [--ops-linger MS]
//             [--slo-setup-p99-us US] [--flight-dir DIR]
//             [--profile] [--profile-dir DIR]
//
// Either --calls fixes the call count directly, or --duration derives it
// from the arrival rate (duration * rate). Prints per-shard stats, the
// rollup metrics JSON, and a PASS/FAIL verdict: every call must converge to
// its §V rest state and tear down leak-free (under faults, convergence is
// still required — the windows close before hang-up and stabilization must
// recover every call). CI runs this under tsan as the load-smoke job.
//
// --ops-port turns on the live telemetry plane (0 = auto-pick, printed as
// "ops: serving on 127.0.0.1:<port>"): a sampler snapshots every shard
// registry each --sample-ms and serves JSON / Prometheus / windowed series /
// health over framed TCP (watch with cmc_top). A live progress line is
// printed per tick. --slo-setup-p99-us arms a windowed-p99 SLO on call
// setup (default bound: the §VIII-C law for the longest path); breaches
// flip health to degraded and, with --flight-dir, dump a post-mortem
// without stopping the run. The plane is strictly read-only: outcomes and
// the final "metrics:" rollup line are byte-identical with it on or off
// (the ops-smoke CI job asserts exactly that).
//
// --profile installs a per-shard hot-path profiler (docs/OBSERVABILITY.md
// §Profiling) and prints a PROF JSON attribution line (ns/op and allocs/op
// per site, coverage vs. shard thread time). --profile-dir additionally
// writes profile.json / profile.collapsed (flamegraph.pl) /
// profile.speedscope.json there, and enables the `profile` ops verb when
// combined with --ops-port. Profiling is additive-only: the "metrics:"
// rollup line stays byte-identical with it on or off.
//
// --workers N switches to distributed mode (docs/LOAD.md §Distributed): a
// DistDriver spawns N cmc_load_worker subprocesses (auto-located next to
// this binary, or forced with --worker-binary), each running --shards
// shards of its slice. The "metrics:" line is the merged rollup and is
// byte-identical to the single-process line for the same spec — the
// dist-smoke CI job pipes both through cmp to hold that equivalence.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "load/dist/driver.hpp"
#include "load/sharded_runtime.hpp"
#include "load/workload.hpp"
#include "obs/slo.hpp"

using namespace cmc;

int main(int argc, char** argv) {
  load::WorkloadSpec workload;
  workload.master_seed = 7;
  workload.calls = 200;
  workload.arrivals_per_s = 100.0;
  workload.flowlink_fraction = 0.5;

  load::LoadConfig config;
  config.shards = 4;

  double duration_s = 0.0;
  bool ops_on = false;
  double slo_setup_p99_us = -1.0;  // <0: no SLO; 0: paper-law default
  std::size_t workers = 0;         // 0: single-process; N: distributed run
  std::string worker_binary;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--calls") == 0) {
      workload.calls = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      config.shards = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--rate") == 0) {
      workload.arrivals_per_s = std::strtod(next(), nullptr);
    } else if (std::strcmp(argv[i], "--duration") == 0) {
      duration_s = std::strtod(next(), nullptr);
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      workload.fault_fraction = std::strtod(next(), nullptr);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      workload.master_seed = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      workers = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--worker-binary") == 0) {
      worker_binary = next();
    } else if (std::strcmp(argv[i], "--ops-port") == 0) {
      config.ops_port = static_cast<int>(std::strtol(next(), nullptr, 10));
      ops_on = true;
    } else if (std::strcmp(argv[i], "--sample-ms") == 0) {
      config.sample_ms = std::strtol(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--ops-linger") == 0) {
      config.ops_linger_ms = std::strtol(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--slo-setup-p99-us") == 0) {
      slo_setup_p99_us = std::strtod(next(), nullptr);
    } else if (std::strcmp(argv[i], "--flight-dir") == 0) {
      config.flight_dir = next();
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      config.profile = true;
    } else if (std::strcmp(argv[i], "--profile-dir") == 0) {
      config.profile_dir = next();
      config.profile = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (duration_s > 0.0) {
    workload.calls =
        static_cast<std::size_t>(duration_s * workload.arrivals_per_s);
  }

  std::printf("load_soak: %zu calls @ %.0f/s over %zu shards (faults %.2f, seed %llu)\n",
              workload.calls, workload.arrivals_per_s, config.shards,
              workload.fault_fraction,
              static_cast<unsigned long long>(workload.master_seed));

  if (workers > 0) {
    if (worker_binary.empty()) worker_binary = load::dist::findWorkerBinary();
    if (worker_binary.empty()) {
      std::fprintf(stderr,
                   "no cmc_load_worker binary found (build it, or pass "
                   "--worker-binary PATH)\n");
      return 2;
    }
    load::dist::DriverConfig dcfg;
    dcfg.workers = workers;
    dcfg.shards = config.shards;
    dcfg.worker_binary = worker_binary;
    dcfg.setup_grace_us = config.setup_grace.count();
    dcfg.teardown_grace_us = config.teardown_grace.count();
    dcfg.setup_deadline_us = config.setup_deadline_us;
    load::dist::DistDriver driver(std::move(dcfg));
    if (!driver.ok()) {
      std::fprintf(stderr, "failed to bind the driver listener\n");
      return 2;
    }
    std::printf("dist: %zu workers x %zu shards via %s\n", workers,
                config.shards, worker_binary.c_str());
    const load::dist::DistResult result = driver.run(workload);
    for (const auto& report : result.workers) {
      std::printf("  worker %u: %s, %llu calls, %.2fs%s%s\n", report.rank,
                  report.rolled_up ? "rolled up" : "incomplete",
                  static_cast<unsigned long long>(report.calls),
                  report.wall_seconds, report.error.empty() ? "" : " — ",
                  report.error.c_str());
    }
    if (!result.ok) {
      std::printf("FAIL: %s\n", result.error.c_str());
      return 1;
    }
    std::printf("setup latency us: p50=%.0f p99=%.0f\n", result.setup_p50_us,
                result.setup_p99_us);
    std::printf("calls/sec (wall): %.0f\n",
                result.wall_seconds > 0.0
                    ? static_cast<double>(workload.calls) / result.wall_seconds
                    : 0.0);
    // Same line, same bytes, as the single-process path below: the
    // dist-smoke CI job cmp's the two.
    std::printf("metrics: %s\n", result.rollup_json.c_str());
    const bool dist_ok = result.converged == workload.calls &&
                         result.clean_teardowns == workload.calls;
    std::printf("%s: %zu/%zu converged, %zu/%zu clean teardowns\n",
                dist_ok ? "PASS" : "FAIL", result.converged, workload.calls,
                result.clean_teardowns, workload.calls);
    return dist_ok ? 0 : 1;
  }

  if (slo_setup_p99_us >= 0.0) {
    obs::SloRule rule;
    rule.name = "setup_p99";
    rule.histogram = "probe.call_setup_us";
    rule.quantile = 0.99;
    // Default bound: the §VIII-C law for the longest generated path (a
    // relayed call, p = 2 hops) under the configured timing model.
    rule.max_value =
        slo_setup_p99_us > 0.0
            ? slo_setup_p99_us
            : static_cast<double>(obs::latencyLawUs(
                  2, config.timing.network.count(),
                  config.timing.processing.count()));
    rule.min_count = 5;
    config.slos.push_back(rule);
  }
  if (ops_on) {
    config.on_sample = [](const load::TelemetryTick& tick) {
      std::printf("  tick %llu: arrivals=%llu teardowns=%llu armed=%lld "
                  "setup_p99_us=%.0f health=%s\n",
                  static_cast<unsigned long long>(tick.index),
                  static_cast<unsigned long long>(tick.arrivals),
                  static_cast<unsigned long long>(tick.teardowns),
                  static_cast<long long>(tick.armed_probes), tick.setup_p99_us,
                  tick.healthy ? "ok" : "degraded");
      std::fflush(stdout);
    };
  }

  load::ShardedRuntime runtime(config);
  if (ops_on) {
    std::printf("ops: serving on 127.0.0.1:%u\n",
                static_cast<unsigned>(runtime.opsPort()));
    std::fflush(stdout);
  }
  runtime.run(workload);

  for (std::size_t i = 0; i < runtime.shardStats().size(); ++i) {
    const auto& s = runtime.shardStats()[i];
    std::printf(
        "  shard %zu: %zu calls, %llu events, %llu signals, peak queue %zu, "
        "%zu converged, %zu probe failures\n",
        i, s.calls, static_cast<unsigned long long>(s.events_executed),
        static_cast<unsigned long long>(s.signals_delivered), s.peak_pending,
        s.probes_converged, s.probes_failed);
  }

  const auto& latency = runtime.setupLatency();
  std::printf("setup latency us: p50=%.0f p99=%.0f max=%lld (n=%llu)\n",
              latency.quantile(0.50), latency.quantile(0.99),
              static_cast<long long>(latency.max()),
              static_cast<unsigned long long>(latency.count()));
  std::printf("calls/sec (wall): %.0f\n",
              runtime.wallSeconds() > 0.0
                  ? static_cast<double>(workload.calls) / runtime.wallSeconds()
                  : 0.0);
  std::printf("metrics: %s\n", runtime.metricsJson().c_str());
  if (runtime.profiled()) {
    // Coverage denominator: the sum of each shard thread's own lifetime.
    // (wallSeconds * shards would overcount on machines with fewer cores
    // than shards, where the threads time-slice and finish staggered.)
    const std::int64_t thread_wall_ns = runtime.threadWallNs();
    std::printf("PROF %s\n",
                runtime.profileReport().attributionJson(thread_wall_ns).c_str());
    if (!config.profile_dir.empty()) {
      std::printf("profile exports: %s/profile.{json,collapsed,speedscope.json}\n",
                  config.profile_dir.c_str());
    }
  }
  if (const load::LiveTelemetry* live = runtime.telemetry()) {
    std::printf("slo: %s (%llu breaches, %llu dumps)\n",
                live->everBreached() ? "breached" : "ok",
                static_cast<unsigned long long>(live->breaches()),
                static_cast<unsigned long long>(live->sloDumps()));
  }

  const std::size_t converged = runtime.convergedCount();
  const std::size_t clean = runtime.cleanTeardownCount();
  const bool ok = converged == workload.calls && clean == workload.calls;
  std::printf("%s: %zu/%zu converged, %zu/%zu clean teardowns\n",
              ok ? "PASS" : "FAIL", converged, workload.calls, clean,
              workload.calls);
  return ok ? 0 : 1;
}
