// The paper's running example (Sections II-A/II-C, Figs. 2 and 3), played
// out end to end with narration: telephone A behind its PBX switching
// between a held call to B and a prepaid call from C, whose server PC
// connects C to the voice resource V whenever the card runs dry.
//
// Watch for the moments where Fig. 2's uncoordinated version broke:
// B keeps quiet while held, C<->V stays two-way through the PBX's switch,
// and PC can never steal A away from the PBX.
//
// Build & run:   ./build/examples/prepaid_card
#include <cstdio>

#include "apps/pbx.hpp"
#include "apps/prepaid.hpp"
#include "endpoints/resources.hpp"
#include "endpoints/user_device.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace cmc;
using namespace cmc::literals;

void mediaReport(Simulator& sim, UserDeviceBox& a, UserDeviceBox& b,
                 UserDeviceBox& c, VoiceResourceBox& v) {
  a.media().resetStats();
  b.media().resetStats();
  c.media().resetStats();
  v.media().resetStats();
  sim.runFor(1_s);
  auto yn = [](bool x) { return x ? "yes" : "no "; };
  std::printf("    A hears: B=%s C=%s | B hears A=%s | C hears: A=%s V=%s | "
              "V hears C=%s | B sending=%s\n",
              yn(a.media().hears(b.media().id())),
              yn(a.media().hears(c.media().id())),
              yn(b.media().hears(a.media().id())),
              yn(c.media().hears(a.media().id())),
              yn(c.media().hears(v.media().id())),
              yn(v.media().hears(c.media().id())),
              yn(b.media().sendingNow()));
}

}  // namespace

int main() {
  Simulator sim(TimingModel::paperDefaults(), 7);
  auto& a = sim.addBox<UserDeviceBox>("A", sim.mediaNetwork(), sim.loop(),
                                      MediaAddress::parse("10.0.0.1", 5000));
  auto& b = sim.addBox<UserDeviceBox>("B", sim.mediaNetwork(), sim.loop(),
                                      MediaAddress::parse("10.0.0.2", 5000));
  auto& c = sim.addBox<UserDeviceBox>("C", sim.mediaNetwork(), sim.loop(),
                                      MediaAddress::parse("10.0.0.3", 5000));
  auto& v = sim.addBox<VoiceResourceBox>("V", sim.mediaNetwork(), sim.loop(),
                                         MediaAddress::parse("10.0.0.9", 5900));
  v.authorizeAfter = 3_s;
  auto& pbx = sim.addBox<PbxBox>("PBX", "A");
  auto& pc = sim.addBox<PrepaidCardBox>("PC", "PBX", "V", /*talk_time=*/6_s);
  sim.connect("A", "PBX");  // A's permanent line

  std::printf("== A (via its PBX) calls B ==\n");
  sim.inject("A", [](Box& bx) { static_cast<UserDeviceBox&>(bx).callOnLine(); });
  sim.runFor(500_ms);
  sim.inject("PBX", [](Box& bx) { static_cast<PbxBox&>(bx).dial("B"); });
  mediaReport(sim, a, b, c, v);

  std::printf("== C dials the prepaid-card service; PC routes the call toward "
              "A's PBX ==\n");
  sim.inject("C", [](Box& bx) { static_cast<UserDeviceBox&>(bx).placeCall("PC"); });
  sim.runFor(1_s);
  std::printf("== A sees the incoming call and switches to it (snapshot 1) ==\n");
  sim.inject("PBX", [](Box& bx) { static_cast<PbxBox&>(bx).switchTo("PC"); });
  mediaReport(sim, a, b, c, v);

  std::printf("== prepaid talk time expires: PC connects C to the voice "
              "resource V (snapshot 2) ==\n");
  sim.runFor(6_s);
  std::printf("   PC state: %s\n",
              pc.state() == PrepaidCardBox::State::collecting ? "collecting"
                                                              : "talking");
  mediaReport(sim, a, b, c, v);

  std::printf("== meanwhile A switches back to B (snapshot 3) ==\n");
  sim.inject("PBX", [](Box& bx) { static_cast<PbxBox&>(bx).switchTo("B"); });
  mediaReport(sim, a, b, c, v);

  std::printf("== V verifies the funds over audio signaling; PC reconnects C "
              "toward A (snapshot 4) ==\n");
  for (int i = 0; i < 10 && pc.state() != PrepaidCardBox::State::talking; ++i) {
    sim.runFor(1_s);
  }
  std::printf("   PC state: %s — but the PBX still links A to B: proximity "
              "confers priority\n",
              pc.state() == PrepaidCardBox::State::talking ? "talking"
                                                           : "collecting");
  mediaReport(sim, a, b, c, v);

  std::printf("== finally A switches back to the prepaid call ==\n");
  sim.inject("PBX", [](Box& bx) { static_cast<PbxBox&>(bx).switchTo("PC"); });
  mediaReport(sim, a, b, c, v);

  std::printf("done; active call at PBX: %s\n", pbx.activeCall().c_str());
  return 0;
}
