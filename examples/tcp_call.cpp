// The media-control protocol over real TCP sockets (loopback).
//
// Two threads play caller and callee; each runs a SlotEndpoint (the Fig. 9
// protocol FSM) driven by an endpoint goal, and the signals travel through
// a genuine TCP connection with length-prefixed frames — the transport the
// paper assumes for signaling channels between physical components.
//
// Build & run:   ./build/examples/tcp_call
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <future>
#include <mutex>
#include <sstream>

#include "core/goal.hpp"
#include "net/tcp_transport.hpp"

int main() {
  using namespace cmc;
  using namespace cmc::net;

  TcpSignalingListener listener(0);
  if (!listener.ok()) {
    std::fprintf(stderr, "could not bind a loopback listener\n");
    return 1;
  }
  std::printf("listening on 127.0.0.1:%u\n", listener.port());

  auto accepted = std::async(std::launch::async,
                             [&listener]() { return listener.acceptOne(); });
  auto caller_peer = TcpSignalingPeer::connect("127.0.0.1", listener.port());
  auto callee_peer = accepted.get();
  if (!caller_peer || !callee_peer) {
    std::fprintf(stderr, "loopback connect failed\n");
    return 1;
  }

  std::mutex mutex;
  std::condition_variable cv;

  SlotEndpoint caller_slot{SlotId{1}, /*channel_initiator=*/true};
  OpenSlotGoal caller{
      Medium::audio,
      MediaIntent::endpoint(MediaAddress::parse("127.0.0.1", 40000),
                            {Codec::g711u, Codec::g726}),
      DescriptorFactory{1}};
  SlotEndpoint callee_slot{SlotId{2}, false};
  HoldSlotGoal callee{
      MediaIntent::endpoint(MediaAddress::parse("127.0.0.1", 40002),
                            {Codec::g711u}),
      DescriptorFactory{2}};

  auto pump = [](TcpSignalingPeer& peer, const char* who, Outbox&& out) {
    for (auto& item : out.take()) {
      std::ostringstream oss;
      oss << item.signal;
      std::printf("  %s sends: %s\n", who, oss.str().c_str());
      peer.send(TunnelSignal{0, std::move(item.signal)});
    }
  };

  callee_peer->start([&](const ChannelMessage& m) {
    std::lock_guard<std::mutex> lock(mutex);
    const auto& ts = std::get<TunnelSignal>(m);
    auto result = callee_slot.deliver(ts.signal);
    Outbox out;
    if (result.autoReply) out.send(callee_slot.id(), *result.autoReply);
    callee.onEvent(callee_slot, result.event, out);
    pump(*callee_peer, "callee", std::move(out));
    cv.notify_one();
  });
  caller_peer->start([&](const ChannelMessage& m) {
    std::lock_guard<std::mutex> lock(mutex);
    const auto& ts = std::get<TunnelSignal>(m);
    auto result = caller_slot.deliver(ts.signal);
    Outbox out;
    if (result.autoReply) out.send(caller_slot.id(), *result.autoReply);
    caller.onEvent(caller_slot, result.event, out);
    pump(*caller_peer, "caller", std::move(out));
    cv.notify_one();
  });

  std::printf("caller opens an audio channel...\n");
  {
    std::lock_guard<std::mutex> lock(mutex);
    Outbox out;
    caller.attach(caller_slot, out);
    pump(*caller_peer, "caller", std::move(out));
  }

  {
    std::unique_lock<std::mutex> lock(mutex);
    const bool ok = cv.wait_for(lock, std::chrono::seconds(5), [&]() {
      return caller_slot.state() == ProtocolState::flowing &&
             callee_slot.state() == ProtocolState::flowing &&
             caller_slot.lastSelectorReceived().has_value();
    });
    if (!ok) {
      std::fprintf(stderr, "did not converge\n");
      return 1;
    }
    std::ostringstream remote;
    remote << caller_slot.remoteDescriptor()->addr;
    std::printf("\nflowing! caller will send %s to %s\n",
                "G.711u", remote.str().c_str());
    std::printf("negotiated codec toward caller: %s\n",
                std::string(info(caller_slot.lastSelectorReceived()->codec).name)
                    .c_str());
  }

  std::printf("caller hangs up...\n");
  {
    std::lock_guard<std::mutex> lock(mutex);
    Outbox out;
    out.send(caller_slot.id(), caller_slot.sendClose());
    pump(*caller_peer, "caller", std::move(out));
  }
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait_for(lock, std::chrono::seconds(5), [&]() {
      return caller_slot.state() == ProtocolState::closed;
    });
  }
  std::printf("closed cleanly over TCP. done\n");
  return 0;
}
