// Feature chaining, DFC style (the paper's Section II-B motivation):
// independent feature boxes composed in a signaling pipeline, none aware of
// the others, each simple — the property compositional media control
// exists to protect.
//
// Alice calls Bob; Bob's call-forwarding box is in the path. When Bob is
// busy, the call lands on Carol's forwarding box, which in turn forwards to
// Dave — two features chained, and the media plane follows the call through
// both without either feature knowing about the other.
//
// Build & run:   ./build/examples/feature_chaining
#include <cstdio>

#include "apps/forwarding.hpp"
#include "endpoints/user_device.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace cmc;
  using namespace cmc::literals;

  Simulator sim(TimingModel::paperDefaults(), 37);
  auto& alice = sim.addBox<UserDeviceBox>("alice", sim.mediaNetwork(),
                                          sim.loop(),
                                          MediaAddress::parse("10.5.1.1", 5000));
  auto& bob = sim.addBox<UserDeviceBox>("bob", sim.mediaNetwork(), sim.loop(),
                                        MediaAddress::parse("10.5.1.2", 5000));
  auto& carol = sim.addBox<UserDeviceBox>("carol", sim.mediaNetwork(),
                                          sim.loop(),
                                          MediaAddress::parse("10.5.1.3", 5000));
  auto& dave = sim.addBox<UserDeviceBox>("dave", sim.mediaNetwork(), sim.loop(),
                                         MediaAddress::parse("10.5.1.4", 5000));
  auto& fwd_bob = sim.addBox<CallForwardingBox>("fwd-bob", "bob", "fwd-carol");
  auto& fwd_carol = sim.addBox<CallForwardingBox>("fwd-carol", "carol", "dave");

  auto report = [&](const char* when) {
    alice.media().resetStats();
    sim.runFor(1_s);
    auto yn = [](bool x) { return x ? "yes" : "no"; };
    std::printf("  %-28s alice hears: bob=%-3s carol=%-3s dave=%-3s\n", when,
                yn(alice.media().hears(bob.media().id())),
                yn(alice.media().hears(carol.media().id())),
                yn(alice.media().hears(dave.media().id())));
  };

  std::printf("== scenario 1: everyone available ==\n");
  sim.inject("alice", [](Box& b) {
    static_cast<UserDeviceBox&>(b).placeCall("fwd-bob");
  });
  sim.runFor(2_s);
  report("call lands on bob:");
  sim.inject("alice", [](Box& b) { static_cast<UserDeviceBox&>(b).hangUp(); });
  sim.runFor(2_s);

  std::printf("\n== scenario 2: bob busy -> carol ==\n");
  sim.inject("bob", [](Box& b) { static_cast<UserDeviceBox&>(b).setBusy(true); });
  sim.runFor(100_ms);
  sim.inject("alice", [](Box& b) {
    static_cast<UserDeviceBox&>(b).placeCall("fwd-bob");
  });
  sim.runFor(3_s);
  report("forwarded once:");
  std::printf("    fwd-bob forwarded: %s\n", fwd_bob.forwarded() ? "yes" : "no");
  sim.inject("alice", [](Box& b) { static_cast<UserDeviceBox&>(b).hangUp(); });
  sim.runFor(2_s);

  std::printf("\n== scenario 3: bob AND carol busy -> dave (two chained "
              "features) ==\n");
  sim.inject("carol",
             [](Box& b) { static_cast<UserDeviceBox&>(b).setBusy(true); });
  sim.runFor(100_ms);
  sim.inject("alice", [](Box& b) {
    static_cast<UserDeviceBox&>(b).placeCall("fwd-bob");
  });
  sim.runFor(4_s);
  report("forwarded twice:");
  std::printf("    fwd-bob forwarded: %s, fwd-carol forwarded: %s\n",
              fwd_bob.forwarded() ? "yes" : "no",
              fwd_carol.forwarded() ? "yes" : "no");
  std::printf("    dave hears alice: %s\n",
              dave.media().hears(alice.media().id()) ? "yes" : "no");
  std::printf("done\n");
  return 0;
}
