// Outbox: signals a goal object decided to send, in order.
//
// Goal objects are pure state machines: they never perform I/O. Every step
// appends (slot, signal) pairs to an Outbox and the surrounding runtime
// (simulator, TCP loop, or model checker) moves them onto the tunnels.
// Order within the outbox is the order signals must appear on the wire.
#pragma once

#include <utility>
#include <vector>

#include "protocol/signal.hpp"
#include "util/ids.hpp"

namespace cmc {

struct OutSignal {
  SlotId slot;
  Signal signal;
};

class Outbox {
 public:
  void send(SlotId slot, Signal signal) {
    signals_.push_back(OutSignal{slot, std::move(signal)});
  }

  [[nodiscard]] const std::vector<OutSignal>& signals() const noexcept {
    return signals_;
  }
  [[nodiscard]] std::vector<OutSignal> take() noexcept { return std::move(signals_); }
  [[nodiscard]] bool empty() const noexcept { return signals_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return signals_.size(); }

 private:
  std::vector<OutSignal> signals_;
};

}  // namespace cmc
