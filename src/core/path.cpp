#include "core/path.hpp"

#include <sstream>
#include <stdexcept>

namespace cmc {

std::string PathAction::toString() const {
  std::ostringstream oss;
  switch (kind) {
    case Kind::deliver:
      oss << "deliver(ch" << channel << "->" << towards << ')';
      break;
    case Kind::retry:
      oss << "retry(p" << party << ')';
      break;
    case Kind::modifyMute:
      oss << "modify(p" << party << ",in=" << muteIn << ",out=" << muteOut << ')';
      break;
    case Kind::attach:
      oss << "attach(p" << party << ')';
      break;
    case Kind::chaos:
      oss << "chaos(p" << party << ",s" << int(chaosSlot) << ','
          << cmc::toString(chaosSignal) << ",v" << int(chaosVariant) << ')';
      break;
    case Kind::dropHead:
      oss << "drop(ch" << channel << "->" << towards << ')';
      break;
    case Kind::dupHead:
      oss << "dup(ch" << channel << "->" << towards << ')';
      break;
    case Kind::refresh:
      oss << "refresh()";
      break;
  }
  return oss.str();
}

PathSystem::PathSystem(EndpointGoal left, EndpointGoal right,
                       std::size_t flowlinks, bool defer_attach) {
  ends_[0].goal = std::move(left);
  ends_[1].goal = std::move(right);
  channels_.reserve(flowlinks + 1);
  for (std::size_t i = 0; i <= flowlinks; ++i) {
    channels_.emplace_back(ChannelId{i + 1}, /*tunnel_count=*/1);
  }
  // Party i sits at Side::A of channel i (the channel initiator) and
  // Side::B of channel i-1.
  ends_[0].slot = SlotEndpoint(slot_ids_.next(), /*channel_initiator=*/true);
  links_.resize(flowlinks);
  for (std::size_t i = 0; i < flowlinks; ++i) {
    links_[i].left = SlotEndpoint(slot_ids_.next(), /*channel_initiator=*/false);
    links_[i].right = SlotEndpoint(slot_ids_.next(), /*channel_initiator=*/true);
  }
  ends_[1].slot = SlotEndpoint(slot_ids_.next(), /*channel_initiator=*/false);
  chaos_budget_.assign(partyCount(), 0);
  if (!defer_attach) {
    for (std::uint32_t p = 0; p < partyCount(); ++p) attachParty(p);
  }
}

EndpointGoal PathSystem::makeGoal(GoalKind kind, PathEnd end, Medium medium) {
  const auto e = static_cast<std::uint64_t>(end);
  MediaIntent intent = MediaIntent::endpoint(
      MediaAddress::parse(end == PathEnd::left ? "10.0.0.1" : "10.0.1.1",
                          static_cast<std::uint16_t>(6000 + e)),
      {Codec::g711u, Codec::g726});
  DescriptorFactory ids{e};
  switch (kind) {
    case GoalKind::openSlot: return OpenSlotGoal{medium, std::move(intent), ids};
    case GoalKind::holdSlot: return HoldSlotGoal{std::move(intent), ids};
    case GoalKind::closeSlot: return CloseSlotGoal{};
    case GoalKind::flowLink: break;
  }
  throw std::logic_error("makeGoal: flowLink is not an endpoint goal");
}

bool PathSystem::partyAttached(std::uint32_t party) const noexcept {
  if (party == 0) return ends_[0].attached;
  if (party == partyCount() - 1) return ends_[1].attached;
  return links_[party - 1].attached;
}

bool PathSystem::quiescent() const noexcept {
  for (const auto& ch : channels_) {
    if (!ch.empty()) return false;
  }
  return true;
}

bool PathSystem::bothClosed() const noexcept {
  return ends_[0].slot.state() == ProtocolState::closed &&
         ends_[1].slot.state() == ProtocolState::closed;
}

bool PathSystem::bothFlowing() const noexcept {
  const SlotEndpoint& l = ends_[0].slot;
  const SlotEndpoint& r = ends_[1].slot;
  if (l.state() != ProtocolState::flowing || r.state() != ProtocolState::flowing) {
    return false;
  }
  if (!l.medium() || !r.medium() || *l.medium() != *r.medium()) return false;
  // Descriptor agreement: each end holds the other's most recent
  // descriptor. Flowlinks forward descriptors unchanged, so id equality
  // means the very same descriptor propagated end to end.
  if (!l.remoteDescriptor() || l.remoteDescriptor()->id != r.lastDescriptorSent()) {
    return false;
  }
  if (!r.remoteDescriptor() || r.remoteDescriptor()->id != l.lastDescriptorSent()) {
    return false;
  }
  // Selector agreement: each end has received a selector answering its own
  // most recent descriptor.
  if (!l.lastSelectorReceived() ||
      l.lastSelectorReceived()->answersDescriptor != l.lastDescriptorSent()) {
    return false;
  }
  if (!r.lastSelectorReceived() ||
      r.lastSelectorReceived()->answersDescriptor != r.lastDescriptorSent()) {
    return false;
  }
  return true;
}

bool PathSystem::mediaEnabled(PathEnd sender) const noexcept {
  const SlotEndpoint& s = ends_[idx(sender)].slot;
  if (s.state() != ProtocolState::flowing) return false;
  if (!s.remoteDescriptor() || !s.lastSelectorSent()) return false;
  return s.lastSelectorSent()->answersDescriptor == s.remoteDescriptor()->id &&
         !s.lastSelectorSent()->isNoMedia();
}

std::vector<PathAction> PathSystem::enabledActions() const {
  std::vector<PathAction> actions;
  for (std::uint32_t ch = 0; ch < channels_.size(); ++ch) {
    for (Side towards : {Side::A, Side::B}) {
      if (channels_[ch].hasMessageToward(towards)) {
        PathAction a;
        a.kind = PathAction::Kind::deliver;
        a.channel = ch;
        a.towards = towards;
        actions.push_back(a);
        if (fault_budget_ > 0) {
          a.kind = PathAction::Kind::dropHead;
          actions.push_back(a);
          a.kind = PathAction::Kind::dupHead;
          actions.push_back(a);
        }
      }
    }
  }
  // The global stabilization action: only from quiescent, fully-attached
  // states, and only when it would actually send something — an enabled
  // no-op would be a self-loop the liveness checks could spin on forever.
  if (stabilize_ && allAttached() && quiescent() && refreshWouldEmit()) {
    PathAction a;
    a.kind = PathAction::Kind::refresh;
    actions.push_back(a);
  }
  for (std::uint32_t party = 0; party < partyCount(); ++party) {
    if (!partyAttached(party)) {
      PathAction a;
      a.kind = PathAction::Kind::attach;
      a.party = party;
      actions.push_back(a);
      if (chaos_budget_[party] > 0) appendChaosActions(party, actions);
      continue;
    }
    if (!isEndpointParty(party)) continue;
    const PathEnd end = endOfParty(party);
    const End& e = ends_[idx(end)];
    // A retry is enabled only when it can actually act (slot closed);
    // otherwise the action would be a no-op self-loop, which would read as
    // an unfair livelock to the temporal checks.
    if (retryPending(e.goal) && e.slot.state() == ProtocolState::closed) {
      PathAction a;
      a.kind = PathAction::Kind::retry;
      a.party = party;
      actions.push_back(a);
    }
    if (modify_budget_[idx(end)] > 0 && kindOf(e.goal) != GoalKind::closeSlot) {
      // Enumerate the mute combinations that differ from the current one.
      const MediaIntent* intent = nullptr;
      if (const auto* open = std::get_if<OpenSlotGoal>(&e.goal)) {
        intent = &open->intent();
      } else if (const auto* hold = std::get_if<HoldSlotGoal>(&e.goal)) {
        intent = &hold->intent();
      }
      for (bool in : {false, true}) {
        for (bool outv : {false, true}) {
          if (intent != nullptr && intent->muteIn == in && intent->muteOut == outv) {
            continue;
          }
          PathAction a;
          a.kind = PathAction::Kind::modifyMute;
          a.party = party;
          a.muteIn = in;
          a.muteOut = outv;
          actions.push_back(a);
        }
      }
    }
  }
  return actions;
}

void PathSystem::apply(const PathAction& action) {
  switch (action.kind) {
    case PathAction::Kind::deliver:
      deliverInto(action.channel, action.towards);
      break;
    case PathAction::Kind::retry:
      fireRetry(endOfParty(action.party));
      break;
    case PathAction::Kind::modifyMute: {
      const PathEnd end = endOfParty(action.party);
      auto& budget = modify_budget_[idx(end)];
      if (budget == 0) throw std::logic_error("modify budget exhausted");
      --budget;
      setMute(end, action.muteIn, action.muteOut);
      break;
    }
    case PathAction::Kind::attach:
      attachParty(action.party);
      break;
    case PathAction::Kind::chaos:
      applyChaos(action);
      break;
    case PathAction::Kind::dropHead:
      if (fault_budget_ == 0) throw std::logic_error("fault budget exhausted");
      --fault_budget_;
      channels_[action.channel].dropHead(action.towards);
      break;
    case PathAction::Kind::dupHead:
      if (fault_budget_ == 0) throw std::logic_error("fault budget exhausted");
      --fault_budget_;
      channels_[action.channel].duplicateHead(action.towards);
      break;
    case PathAction::Kind::refresh:
      stabilize();
      break;
  }
}

std::size_t PathSystem::run(std::size_t max_steps) {
  std::size_t steps = 0;
  bool progressed = true;
  while (progressed && steps < max_steps) {
    progressed = false;
    for (std::uint32_t ch = 0; ch < channels_.size(); ++ch) {
      for (Side towards : {Side::A, Side::B}) {
        if (channels_[ch].hasMessageToward(towards)) {
          deliverInto(ch, towards);
          ++steps;
          progressed = true;
        }
      }
    }
  }
  return steps;
}

void PathSystem::fireRetry(PathEnd end) {
  End& e = ends_[idx(end)];
  Outbox out;
  retry(e.goal, e.slot, out);
  flush(end == PathEnd::left ? "L" : "R", std::move(out));
}

void PathSystem::setMute(PathEnd end, bool mute_in, bool mute_out) {
  End& e = ends_[idx(end)];
  Outbox out;
  cmc::setMute(e.goal, mute_in, mute_out, e.slot, out);
  flush(end == PathEnd::left ? "L" : "R", std::move(out));
}

void PathSystem::replaceGoal(PathEnd end, EndpointGoal goal) {
  End& e = ends_[idx(end)];
  e.goal = std::move(goal);
  e.attached = false;
  attachParty(end == PathEnd::left ? 0
                                   : static_cast<std::uint32_t>(partyCount() - 1));
}

void PathSystem::setChaosBudget(std::uint32_t steps) {
  chaos_budget_.assign(partyCount(), steps);
}

void PathSystem::enableStabilization(bool on) {
  stabilize_ = on;
  ends_[0].slot.setStabilizing(on);
  ends_[1].slot.setStabilizing(on);
  for (LinkBox& box : links_) {
    box.left.setStabilizing(on);
    box.right.setStabilizing(on);
  }
}

bool PathSystem::allAttached() const noexcept {
  for (std::uint32_t p = 0; p < partyCount(); ++p) {
    if (!partyAttached(p)) return false;
  }
  return true;
}

bool PathSystem::refreshWouldEmit() const {
  // Dry-run on a copy: cheap because the gate only fires in quiescent
  // states, and exact — gating on converged() alone could still enable a
  // refresh that sends nothing (e.g. a closing-mode link already drained).
  PathSystem probe = *this;
  return probe.stabilize();
}

bool PathSystem::stabilize() {
  if (!stabilize_) return false;
  bool emitted = false;
  for (std::uint32_t p = 0; p < partyCount(); ++p) {
    if (!partyAttached(p)) continue;
    Outbox out;
    if (isEndpointParty(p)) {
      End& e = ends_[idx(endOfParty(p))];
      if (!converged(e.goal, e.slot)) refresh(e.goal, e.slot, out);
      if (!out.empty()) emitted = true;
      flush(p == 0 ? "L" : "R", std::move(out));
    } else {
      LinkBox& box = links_[p - 1];
      if (!box.link.converged(box.left, box.right)) {
        box.link.stabilize(box.left, box.right, out);
      }
      if (!out.empty()) emitted = true;
      flush("F", std::move(out));
    }
  }
  return emitted;
}

void PathSystem::attachParty(std::uint32_t party) {
  Outbox out;
  if (isEndpointParty(party)) {
    End& e = ends_[idx(endOfParty(party))];
    if (e.attached) return;
    e.attached = true;
    attach(e.goal, e.slot, out);
    flush(party == 0 ? "L" : "R", std::move(out));
  } else {
    LinkBox& box = links_[party - 1];
    if (box.attached) return;
    box.attached = true;
    box.link.attach(box.left, box.right, out);
    flush("F", std::move(out));
  }
}

Descriptor PathSystem::chaosDescriptor(std::uint32_t party, std::uint8_t chaos_slot,
                                       std::uint8_t variant) const {
  // Fixed pool: ids below 1<<20 never collide with DescriptorFactory ids.
  const std::uint64_t id = 1 + party * 8 + chaos_slot * 4 + variant;
  const MediaAddress addr{0x0a000000u + party * 256 + chaos_slot, 7000};
  if (variant == 1) return makeDescriptor(DescriptorId{id}, addr, {}, /*muteIn=*/true);
  const Codec codecs[] = {Codec::g711u, Codec::g726};
  return makeDescriptor(DescriptorId{id}, addr, codecs, /*muteIn=*/false);
}

SlotEndpoint& PathSystem::chaosTarget(std::uint32_t party, std::uint8_t chaos_slot) {
  if (party == 0) return ends_[0].slot;
  if (party == partyCount() - 1) return ends_[1].slot;
  return chaos_slot == 0 ? links_[party - 1].left : links_[party - 1].right;
}

void PathSystem::appendChaosSendsFor(const SlotEndpoint& slot, std::uint32_t party,
                                     std::uint8_t chaos_slot,
                                     std::vector<PathAction>& actions) const {
  auto add = [&](SignalKind sig, std::uint8_t variant) {
    PathAction a;
    a.kind = PathAction::Kind::chaos;
    a.party = party;
    a.chaosSlot = chaos_slot;
    a.chaosSignal = sig;
    a.chaosVariant = variant;
    actions.push_back(a);
  };
  switch (slot.state()) {
    case ProtocolState::closed:
      add(SignalKind::open, 0);
      add(SignalKind::open, 1);
      break;
    case ProtocolState::opening:
      add(SignalKind::close, 0);
      break;
    case ProtocolState::opened:
      add(SignalKind::oack, 0);
      add(SignalKind::oack, 1);
      add(SignalKind::close, 0);
      break;
    case ProtocolState::flowing:
      add(SignalKind::describe, 0);
      add(SignalKind::describe, 1);
      add(SignalKind::select, 0);
      add(SignalKind::select, 1);
      add(SignalKind::close, 0);
      break;
    case ProtocolState::closing:
      break;
  }
}

void PathSystem::appendChaosActions(std::uint32_t party,
                                    std::vector<PathAction>& actions) const {
  if (isEndpointParty(party)) {
    appendChaosSendsFor(ends_[idx(endOfParty(party))].slot, party, 0, actions);
  } else {
    appendChaosSendsFor(links_[party - 1].left, party, 0, actions);
    appendChaosSendsFor(links_[party - 1].right, party, 1, actions);
  }
}

void PathSystem::applyChaos(const PathAction& action) {
  auto& budget = chaos_budget_[action.party];
  if (budget == 0) throw std::logic_error("chaos budget exhausted");
  if (partyAttached(action.party)) throw std::logic_error("chaos after attach");
  --budget;
  SlotEndpoint& slot = chaosTarget(action.party, action.chaosSlot);
  const Descriptor desc = chaosDescriptor(action.party, action.chaosSlot,
                                          action.chaosVariant);
  Outbox out;
  switch (action.chaosSignal) {
    case SignalKind::open:
      out.send(slot.id(), slot.sendOpen(Medium::audio, desc));
      break;
    case SignalKind::oack:
      out.send(slot.id(), slot.sendOack(desc));
      break;
    case SignalKind::close:
      out.send(slot.id(), slot.sendClose());
      break;
    case SignalKind::describe:
      out.send(slot.id(), slot.sendDescribe(desc));
      break;
    case SignalKind::select: {
      // Answer the current remote descriptor; variant 1 refuses media.
      const auto& remote = slot.remoteDescriptor();
      if (!remote) return;
      Selector sel;
      sel.answersDescriptor = remote->id;
      sel.sender = desc.addr;
      sel.codec = Codec::noMedia;
      if (action.chaosVariant == 0) {
        for (Codec c : remote->codecs) {
          if (c != Codec::noMedia) {
            sel.codec = c;
            break;
          }
        }
      }
      out.send(slot.id(), slot.sendSelect(sel));
      break;
    }
    case SignalKind::closeack:
      throw std::logic_error("chaos cannot send bare closeack");
  }
  flush("chaos", std::move(out));
}

void PathSystem::deliverInto(std::uint32_t channel_index, Side towards) {
  ChannelMessage message = channels_[channel_index].pop(towards);
  auto* tunnel_signal = std::get_if<TunnelSignal>(&message);
  if (tunnel_signal == nullptr) return;  // paths carry no meta-signals
  ++delivered_;

  // Resolve the receiving party and slot. Channel i connects party i
  // (Side::A) with party i+1 (Side::B).
  const std::uint32_t party =
      towards == Side::A ? channel_index : channel_index + 1;

  SlotEndpoint* slot = nullptr;
  SlotEndpoint* other = nullptr;
  if (party == 0) {
    slot = &ends_[0].slot;
  } else if (party == partyCount() - 1) {
    slot = &ends_[1].slot;
  } else {
    LinkBox& box = links_[party - 1];
    if (towards == Side::B) {
      slot = &box.left;
      other = &box.right;
    } else {
      slot = &box.right;
      other = &box.left;
    }
  }

  const DeliverResult result = slot->deliver(tunnel_signal->signal);
  if (result.autoReply) {
    pushSignal("auto", channel_index, opposite(towards), *result.autoReply);
  }
  if (!partyAttached(party)) return;  // chaotic phase: absorb silently

  Outbox out;
  if (party == 0) {
    onEvent(ends_[0].goal, *slot, result.event, out);
    flush("L", std::move(out));
  } else if (party == partyCount() - 1) {
    onEvent(ends_[1].goal, *slot, result.event, out);
    flush("R", std::move(out));
  } else {
    links_[party - 1].link.onEvent(*slot, *other, result.event,
                                   tunnel_signal->signal, out);
    flush("F", std::move(out));
  }
}

PathSystem::SlotRoute PathSystem::routeOf(SlotId slot) const {
  if (slot == ends_[0].slot.id()) return {0, Side::B};
  if (slot == ends_[1].slot.id()) {
    return {static_cast<std::uint32_t>(channels_.size() - 1), Side::A};
  }
  for (std::uint32_t i = 0; i < links_.size(); ++i) {
    if (slot == links_[i].left.id()) return {i, Side::A};
    if (slot == links_[i].right.id()) return {i + 1, Side::B};
  }
  throw std::logic_error("routeOf: unknown slot");
}

void PathSystem::flush(const char* box_name, Outbox&& out) {
  for (auto& item : out.take()) {
    const SlotRoute route = routeOf(item.slot);
    pushSignal(box_name, route.channel, route.towards, std::move(item.signal));
  }
}

void PathSystem::pushSignal(const char* box_name, std::uint32_t channel_index,
                            Side towards, Signal signal) {
  if (trace_enabled_) {
    std::ostringstream oss;
    oss << signal;
    trace_.push_back(TraceEntry{box_name, channel_index, towards, oss.str()});
  }
  channels_[channel_index].push(towards, TunnelSignal{0, std::move(signal)});
}

void PathSystem::canonicalize(ByteWriter& w) const {
  for (const End& e : ends_) {
    w.boolean(e.attached);
    e.slot.canonicalize(w);
    cmc::canonicalize(e.goal, w);
  }
  w.u32(static_cast<std::uint32_t>(links_.size()));
  for (const LinkBox& box : links_) {
    w.boolean(box.attached);
    box.left.canonicalize(w);
    box.right.canonicalize(w);
    box.link.canonicalize(w);
  }
  for (const ChannelState& ch : channels_) ch.canonicalize(w);
  for (std::uint32_t b : chaos_budget_) w.u32(b);
  w.u32(modify_budget_[0]);
  w.u32(modify_budget_[1]);
  w.u32(fault_budget_);
  w.boolean(stabilize_);
}

std::uint64_t PathSystem::fingerprint() const {
  ByteWriter w;
  canonicalize(w);
  return fnv1a(w.bytes());
}

}  // namespace cmc
