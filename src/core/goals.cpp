#include "core/goals.hpp"

namespace cmc {

std::string_view toString(GoalKind kind) noexcept {
  switch (kind) {
    case GoalKind::openSlot: return "openSlot";
    case GoalKind::closeSlot: return "closeSlot";
    case GoalKind::holdSlot: return "holdSlot";
    case GoalKind::flowLink: return "flowLink";
  }
  return "?goal";
}

namespace {

// Accept an offered channel by sending oack with our own receiver
// description, then select answering the opener's descriptor (the
// !oack / !select sequence of Fig. 9). A stabilizing endpoint re-accepts a
// redundant open while already flowing; the oack is then a re-send.
void acceptOffered(SlotEndpoint& slot, const MediaIntent& intent,
                   const Descriptor& self, Outbox& out) {
  const Descriptor remote = *slot.remoteDescriptor();  // set by the open
  out.send(slot.id(), slot.state() == ProtocolState::flowing
                          ? slot.resendOack(self)
                          : slot.sendOack(self));
  out.send(slot.id(), slot.sendSelect(intent.answer(remote)));
}

// Answer the most recent remote descriptor with a fresh selector.
void answerRemote(SlotEndpoint& slot, const MediaIntent& intent, Outbox& out) {
  if (slot.remoteDescriptor()) {
    out.send(slot.id(), slot.sendSelect(intent.answer(*slot.remoteDescriptor())));
  }
}

// After gaining control of a slot that is already flowing (possible for any
// goal after the model checker's chaotic phase, and for holdSlot at any
// time), re-assert our receiver description and re-answer the remote one.
// Idempotent by protocol design (Section VI-C).
void refreshFlowing(SlotEndpoint& slot, const MediaIntent& intent,
                    const Descriptor& self, Outbox& out) {
  out.send(slot.id(), slot.sendDescribe(self));
  answerRemote(slot, intent, out);
}

void signalMuteChange(bool changed_in, bool changed_out, SlotEndpoint& slot,
                      const MediaIntent& intent, const Descriptor& self,
                      Outbox& out) {
  if (!slot.canModify()) return;  // picked up at the next open/accept
  if (changed_in) out.send(slot.id(), slot.sendDescribe(self));
  if (changed_out) answerRemote(slot, intent, out);
}

// The media handshake at a flowing slot is fully settled from this end's
// view: we hold the peer's descriptor, our selector answers it, and the
// peer's selector answers the descriptor we most recently sent. Anything
// less means a signal may have been lost and a refresh could help.
bool flowingComplete(const SlotEndpoint& slot) noexcept {
  return slot.state() == ProtocolState::flowing && slot.remoteDescriptor() &&
         slot.lastSelectorSent() &&
         slot.lastSelectorSent()->answersDescriptor ==
             slot.remoteDescriptor()->id &&
         slot.lastSelectorReceived() &&
         slot.lastSelectorReceived()->answersDescriptor ==
             slot.lastDescriptorSent();
}

// Unilateral codec re-selection (Section VI-B): legal at any time after the
// first selector, provided the codec is on the remote descriptor's list.
bool reselectCodec(Codec codec, SlotEndpoint& slot, const MediaIntent& intent,
                   Outbox& out) {
  if (!slot.canModify() || !slot.remoteDescriptor()) return false;
  const Descriptor& remote = *slot.remoteDescriptor();
  if (std::find(remote.codecs.begin(), remote.codecs.end(), codec) ==
      remote.codecs.end()) {
    return false;
  }
  out.send(slot.id(),
           slot.sendSelect(Selector{remote.id, intent.addr, codec}));
  return true;
}

}  // namespace

// ---------------------------------------------------------------- openSlot

const Descriptor& OpenSlotGoal::selfDescriptor() {
  if (!self_desc_) self_desc_ = intent_.describeSelf(ids_);
  return *self_desc_;
}

void OpenSlotGoal::attach(SlotEndpoint& slot, Outbox& out) {
  retry_pending_ = false;
  switch (slot.state()) {
    case ProtocolState::closed:
      out.send(slot.id(), slot.sendOpen(medium_, selfDescriptor()));
      break;
    case ProtocolState::opened:
      accept(slot, out);
      break;
    case ProtocolState::flowing:
      refreshFlowing(slot, intent_, selfDescriptor(), out);
      break;
    case ProtocolState::opening:
      // An open is already in flight; adopt it and wait for the answer.
      break;
    case ProtocolState::closing:
      // Wait for closeack; fullyClosed will trigger a (re)open.
      retry_pending_ = true;
      break;
  }
}

void OpenSlotGoal::onEvent(SlotEndpoint& slot, SlotEvent event, Outbox& out) {
  switch (event) {
    case SlotEvent::openReceived:
    case SlotEvent::becameAcceptor:
      // The far end asked first (or won an open/open race): take the
      // opportunity — an openslot pushes toward flowing however it can.
      accept(slot, out);
      break;
    case SlotEvent::oackReceived:
      // If the accepted open was inherited from a previous controller (the
      // goal attached while the slot was already opening), the descriptor
      // it carried was not ours: re-describe so the far end sends to this
      // party, not to whatever the old controller advertised.
      if (slot.lastDescriptorSent() != selfDescriptor().id) {
        out.send(slot.id(), slot.sendDescribe(selfDescriptor()));
      }
      answerRemote(slot, intent_, out);
      break;
    case SlotEvent::descriptorReceived:
      answerRemote(slot, intent_, out);
      break;
    case SlotEvent::closedByPeer:
    case SlotEvent::fullyClosed:
      // Rejected or torn down: the goal persists, so try again (paper:
      // "If an openslot sends open and receives reject, it sends open
      // again"). Pacing is the runtime's business.
      retry_pending_ = true;
      break;
    case SlotEvent::selectorReceived:
    case SlotEvent::none:
    case SlotEvent::ignored:
      break;
  }
}

void OpenSlotGoal::setMute(bool mute_in, bool mute_out, SlotEndpoint& slot,
                           Outbox& out) {
  const bool changed_in = intent_.muteIn != mute_in;
  const bool changed_out = intent_.muteOut != mute_out;
  intent_.muteIn = mute_in;
  intent_.muteOut = mute_out;
  if (changed_in) self_desc_.reset();  // receiver description changed
  signalMuteChange(changed_in, changed_out, slot, intent_, selfDescriptor(), out);
}

void OpenSlotGoal::setAddress(MediaAddress addr, SlotEndpoint& slot,
                              Outbox& out) {
  if (intent_.addr == addr) return;
  intent_.addr = addr;
  self_desc_.reset();  // the receiver description changed
  if (slot.canModify()) out.send(slot.id(), slot.sendDescribe(selfDescriptor()));
}

bool OpenSlotGoal::reselect(Codec codec, SlotEndpoint& slot, Outbox& out) {
  return reselectCodec(codec, slot, intent_, out);
}

void OpenSlotGoal::retry(SlotEndpoint& slot, Outbox& out) {
  if (!retry_pending_) return;
  if (slot.state() == ProtocolState::closed) {
    retry_pending_ = false;
    out.send(slot.id(), slot.sendOpen(medium_, selfDescriptor()));
  }
}

void OpenSlotGoal::accept(SlotEndpoint& slot, Outbox& out) {
  retry_pending_ = false;
  acceptOffered(slot, intent_, selfDescriptor(), out);
}

void OpenSlotGoal::refresh(SlotEndpoint& slot, Outbox& out) {
  switch (slot.state()) {
    case ProtocolState::closed:
      // A pending rejection is the retry timer's business; anything else
      // means the attach-time open was lost.
      if (!retry_pending_) {
        out.send(slot.id(), slot.sendOpen(medium_, selfDescriptor()));
      }
      break;
    case ProtocolState::opening:
      out.send(slot.id(), slot.resendOpen(selfDescriptor()));
      break;
    case ProtocolState::opened:
      accept(slot, out);
      break;
    case ProtocolState::flowing:
      if (!flowingComplete(slot)) {
        refreshFlowing(slot, intent_, selfDescriptor(), out);
      }
      break;
    case ProtocolState::closing:
      out.send(slot.id(), slot.resendClose());
      break;
  }
}

bool OpenSlotGoal::converged(const SlotEndpoint& slot) const noexcept {
  if (slot.state() == ProtocolState::closed) return retry_pending_;
  return flowingComplete(slot);
}

void OpenSlotGoal::canonicalize(ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(kind));
  w.u8(static_cast<std::uint8_t>(medium_));
  intent_.canonicalize(w);
  ids_.canonicalize(w);
  w.boolean(self_desc_.has_value());
  if (self_desc_) w.u64(self_desc_->id.value());
  w.boolean(retry_pending_);
}

// --------------------------------------------------------------- closeSlot

void CloseSlotGoal::attach(SlotEndpoint& slot, Outbox& out) {
  switch (slot.state()) {
    case ProtocolState::opening:
    case ProtocolState::opened:
    case ProtocolState::flowing:
      out.send(slot.id(), slot.sendClose());
      break;
    case ProtocolState::closing:
    case ProtocolState::closed:
      break;  // already where we want it (or on the way)
  }
}

void CloseSlotGoal::onEvent(SlotEndpoint& slot, SlotEvent event, Outbox& out) {
  switch (event) {
    case SlotEvent::openReceived:
    case SlotEvent::becameAcceptor:
      // Reject immediately: close plays the role of reject (Section VI-B).
      out.send(slot.id(), slot.sendClose());
      break;
    case SlotEvent::oackReceived:
    case SlotEvent::descriptorReceived:
      // Can only mean the slot is somehow live; push it back down.
      if (isLive(slot.state())) out.send(slot.id(), slot.sendClose());
      break;
    case SlotEvent::closedByPeer:
    case SlotEvent::fullyClosed:
    case SlotEvent::selectorReceived:
    case SlotEvent::none:
    case SlotEvent::ignored:
      break;
  }
}

void CloseSlotGoal::refresh(SlotEndpoint& slot, Outbox& out) {
  if (isLive(slot.state())) {
    out.send(slot.id(), slot.sendClose());
  } else if (slot.state() == ProtocolState::closing) {
    out.send(slot.id(), slot.resendClose());
  }
}

bool CloseSlotGoal::converged(const SlotEndpoint& slot) const noexcept {
  return slot.state() == ProtocolState::closed;
}

void CloseSlotGoal::canonicalize(ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(kind));
}

// ---------------------------------------------------------------- holdSlot

const Descriptor& HoldSlotGoal::selfDescriptor() {
  if (!self_desc_) self_desc_ = intent_.describeSelf(ids_);
  return *self_desc_;
}

void HoldSlotGoal::attach(SlotEndpoint& slot, Outbox& out) {
  switch (slot.state()) {
    case ProtocolState::opened:
      accept(slot, out);
      break;
    case ProtocolState::flowing:
      refreshFlowing(slot, intent_, selfDescriptor(), out);
      break;
    case ProtocolState::closed:
    case ProtocolState::opening:
    case ProtocolState::closing:
      // Wait: a holdslot never originates anything.
      break;
  }
}

void HoldSlotGoal::onEvent(SlotEndpoint& slot, SlotEvent event, Outbox& out) {
  switch (event) {
    case SlotEvent::openReceived:
    case SlotEvent::becameAcceptor:
      accept(slot, out);
      break;
    case SlotEvent::oackReceived:
      // An earlier controller's open was accepted; its descriptor was not
      // ours, so re-describe before answering (see OpenSlotGoal).
      if (slot.lastDescriptorSent() != selfDescriptor().id) {
        out.send(slot.id(), slot.sendDescribe(selfDescriptor()));
      }
      answerRemote(slot, intent_, out);
      break;
    case SlotEvent::descriptorReceived:
      answerRemote(slot, intent_, out);
      break;
    case SlotEvent::closedByPeer:
    case SlotEvent::fullyClosed:
      break;  // stay closed until the other end asks to open
    case SlotEvent::selectorReceived:
    case SlotEvent::none:
    case SlotEvent::ignored:
      break;
  }
}

void HoldSlotGoal::setMute(bool mute_in, bool mute_out, SlotEndpoint& slot,
                           Outbox& out) {
  const bool changed_in = intent_.muteIn != mute_in;
  const bool changed_out = intent_.muteOut != mute_out;
  intent_.muteIn = mute_in;
  intent_.muteOut = mute_out;
  if (changed_in) self_desc_.reset();
  signalMuteChange(changed_in, changed_out, slot, intent_, selfDescriptor(), out);
}

void HoldSlotGoal::setAddress(MediaAddress addr, SlotEndpoint& slot,
                              Outbox& out) {
  if (intent_.addr == addr) return;
  intent_.addr = addr;
  self_desc_.reset();
  if (slot.canModify()) out.send(slot.id(), slot.sendDescribe(selfDescriptor()));
}

bool HoldSlotGoal::reselect(Codec codec, SlotEndpoint& slot, Outbox& out) {
  return reselectCodec(codec, slot, intent_, out);
}

void HoldSlotGoal::accept(SlotEndpoint& slot, Outbox& out) {
  acceptOffered(slot, intent_, selfDescriptor(), out);
}

void HoldSlotGoal::refresh(SlotEndpoint& slot, Outbox& out) {
  switch (slot.state()) {
    case ProtocolState::opened:
      accept(slot, out);
      break;
    case ProtocolState::flowing:
      if (!flowingComplete(slot)) {
        refreshFlowing(slot, intent_, selfDescriptor(), out);
      }
      break;
    case ProtocolState::opening:
      // A holdslot never originates an open, so an in-flight one was
      // inherited from an earlier controller; under loss nothing will
      // resolve it. Retreat to closed — the stabilization-mode exception to
      // "a holdslot never sends close" (docs/FAULTS.md): the peer that
      // wants media will simply open again.
      out.send(slot.id(), slot.sendClose());
      break;
    case ProtocolState::closing:
      out.send(slot.id(), slot.resendClose());
      break;
    case ProtocolState::closed:
      break;
  }
}

bool HoldSlotGoal::converged(const SlotEndpoint& slot) const noexcept {
  return slot.state() == ProtocolState::closed || flowingComplete(slot);
}

void HoldSlotGoal::canonicalize(ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(kind));
  intent_.canonicalize(w);
  ids_.canonicalize(w);
  w.boolean(self_desc_.has_value());
  if (self_desc_) w.u64(self_desc_->id.value());
}

}  // namespace cmc
