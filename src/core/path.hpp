// PathSystem: a complete signaling path as a single value.
//
// A signaling path (paper Section III-A) is a maximal chain of tunnels and
// flowlinks meeting at slots:
//
//   [L endpoint] ==ch0== [flowlink box] ==ch1== ... ==chF== [R endpoint]
//
// PathSystem holds every piece of such a path — the two endpoint goals, any
// number of flowlink boxes, and the FIFO channels between them — as one
// copyable, hashable value. Three clients share it:
//
//   * unit/integration tests step it deterministically and inspect states;
//   * the model checker (src/mc) enumerates its enabled actions and
//     fingerprints its canonical bytes;
//   * latency benchmarks replay its signal exchanges under the simulator's
//     timing model.
//
// Every mutation is an *action*: delivering the head-of-queue message of one
// channel direction, firing an openslot retry, a user modify event, a goal
// attach, or — before a party's goal attaches — an arbitrary legal "chaos"
// send (the nondeterministic initial phase of the paper's verification,
// Section VIII-A). Actions are deterministic; nondeterminism is only in
// which action fires next, which is exactly what the model checker explores.
//
// Parties are numbered along the path: party 0 is the left endpoint,
// parties 1..F are the flowlink boxes, party F+1 is the right endpoint.
// Channel i connects party i (its Side::A, the channel initiator) with
// party i+1 (its Side::B).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "channel/channel.hpp"
#include "core/goal.hpp"
#include "core/intent.hpp"

namespace cmc {

// Which end of the path.
enum class PathEnd : std::uint8_t { left = 0, right = 1 };

[[nodiscard]] constexpr PathEnd oppositeEnd(PathEnd e) noexcept {
  return e == PathEnd::left ? PathEnd::right : PathEnd::left;
}

// One enabled action of the path system.
struct PathAction {
  enum class Kind : std::uint8_t {
    deliver,     // deliver channels[channel]'s head-of-queue toward `towards`
    retry,       // fire the pending openslot retry at endpoint party `party`
    modifyMute,  // user modify at endpoint `party`: set flags to (muteIn, muteOut)
    attach,      // attach party `party`'s goal (ends its chaotic phase)
    chaos,       // unattached party performs an arbitrary legal send
    dropHead,    // fault: lose channels[channel]'s head-of-queue toward `towards`
    dupHead,     // fault: duplicate that head-of-queue message in place
    refresh,     // stabilization: every party re-asserts its unconverged goals
  };

  Kind kind = Kind::deliver;
  std::uint32_t channel = 0;  // deliver
  Side towards = Side::B;     // deliver
  std::uint32_t party = 0;    // retry / modifyMute / attach / chaos
  bool muteIn = false;        // modifyMute
  bool muteOut = false;       // modifyMute
  std::uint8_t chaosSlot = 0; // chaos at a flowlink party: 0 = left, 1 = right
  SignalKind chaosSignal = SignalKind::open;
  std::uint8_t chaosVariant = 0;  // 0 = real media, 1 = muted/noMedia

  friend bool operator==(const PathAction&, const PathAction&) = default;

  [[nodiscard]] std::string toString() const;
};

class PathSystem {
 public:
  // A path with `flowlinks` interior flowlink boxes. Goals attach
  // immediately unless defer_attach is true (the model checker defers so
  // chaotic phases can run first).
  PathSystem(EndpointGoal left, EndpointGoal right, std::size_t flowlinks,
             bool defer_attach = false);

  // Conventional endpoint goal for tests/benches/model checking: address
  // 10.0.<end>.1, audio codecs {G.711u, G.726}, descriptor-id space = end.
  [[nodiscard]] static EndpointGoal makeGoal(GoalKind kind, PathEnd end,
                                             Medium medium = Medium::audio);

  // --- Introspection -----------------------------------------------------
  [[nodiscard]] std::size_t flowlinkCount() const noexcept { return links_.size(); }
  [[nodiscard]] std::size_t channelCount() const noexcept { return channels_.size(); }
  [[nodiscard]] std::size_t partyCount() const noexcept { return links_.size() + 2; }

  [[nodiscard]] const SlotEndpoint& endpointSlot(PathEnd end) const noexcept {
    return ends_[idx(end)].slot;
  }
  [[nodiscard]] const EndpointGoal& endpointGoal(PathEnd end) const noexcept {
    return ends_[idx(end)].goal;
  }
  [[nodiscard]] const FlowLink& flowlink(std::size_t i) const noexcept {
    return links_[i].link;
  }
  [[nodiscard]] const SlotEndpoint& flowlinkSlot(std::size_t i, Side side) const noexcept {
    return side == Side::A ? links_[i].left : links_[i].right;
  }
  [[nodiscard]] const ChannelState& channel(std::size_t i) const noexcept {
    return channels_[i];
  }
  [[nodiscard]] bool partyAttached(std::uint32_t party) const noexcept;

  // All in-flight messages drained.
  [[nodiscard]] bool quiescent() const noexcept;

  // --- Path-state predicates (paper Section V) ---------------------------
  // bothClosed: both endpoint slots closed.
  [[nodiscard]] bool bothClosed() const noexcept;
  // bothFlowing in the history-variable formulation used for model checking
  // (Section VIII-A): both endpoint slots flowing, each end has most
  // recently received the descriptor most recently sent by the other end,
  // and each end has received a selector answering its own most recent
  // descriptor.
  [[nodiscard]] bool bothFlowing() const noexcept;
  // Media is ready to travel from `sender` to the other end: sender's slot
  // is flowing and its latest selector answers the latest descriptor it
  // received, with a real codec.
  [[nodiscard]] bool mediaEnabled(PathEnd sender) const noexcept;

  // --- Actions ------------------------------------------------------------
  [[nodiscard]] std::vector<PathAction> enabledActions() const;
  // Applies an action. Throws std::logic_error on a disabled action.
  void apply(const PathAction& action);

  // Convenience: deliver messages in FIFO order until quiescent or the step
  // budget runs out. Pending openslot retries are NOT fired (the
  // close-vs-open path would livelock); returns deliveries performed.
  std::size_t run(std::size_t max_steps = 100000);

  // Fire a pending retry at `end`, if any.
  void fireRetry(PathEnd end);

  // User modify at an endpoint.
  void setMute(PathEnd end, bool mute_in, bool mute_out);

  // Replace the goal at one end (models a box program changing state) and
  // attach the new goal, e.g. switching an end from holdSlot to openSlot.
  void replaceGoal(PathEnd end, EndpointGoal goal);

  // --- Model-checker support ----------------------------------------------
  // Budgets bounding environment nondeterminism: chaos sends are enabled
  // only before a party attaches and while its chaos budget lasts; modify
  // actions only after attach and while the modify budget lasts.
  void setChaosBudget(std::uint32_t steps);
  void setModifyBudget(std::uint32_t steps) noexcept {
    modify_budget_ = {steps, steps};
  }

  // --- Fault injection + stabilization (docs/FAULTS.md) -------------------
  // Budget bounding adversarial message faults (dropHead/dupHead actions).
  void setFaultBudget(std::uint32_t steps) noexcept { fault_budget_ = steps; }
  [[nodiscard]] std::uint32_t faultBudget() const noexcept { return fault_budget_; }
  // Mark every slot stabilizing and enable the global refresh action. The
  // refresh is one action for the whole path (every party re-asserts at
  // once) and is enabled only in quiescent all-attached states where it
  // would actually emit something: per-party refresh actions would hand the
  // adversarial scheduler spurious no-op self-loops that read as livelocks
  // to the temporal checks.
  void enableStabilization(bool on);
  [[nodiscard]] bool stabilizationEnabled() const noexcept { return stabilize_; }
  // Run one global refresh sweep now; returns true if anything was sent.
  // Tests use this directly as the self-stabilization oracle: alternate
  // stabilize()/run() until it returns false, then check the §V predicate.
  bool stabilize();

  void canonicalize(ByteWriter& w) const;
  [[nodiscard]] std::uint64_t fingerprint() const;

  // Trace of every signal emission, in order, if enabled (for tests and the
  // message-sequence benches).
  struct TraceEntry {
    std::string box;
    std::uint32_t channel;
    Side towards;
    std::string signal;
  };
  void enableTrace(bool on) noexcept { trace_enabled_ = on; }
  [[nodiscard]] const std::vector<TraceEntry>& trace() const noexcept { return trace_; }
  [[nodiscard]] std::size_t deliveredCount() const noexcept { return delivered_; }

 private:
  struct End {
    SlotEndpoint slot;
    EndpointGoal goal;
    bool attached = false;
  };
  struct LinkBox {
    SlotEndpoint left;   // slot on the channel toward the left endpoint
    SlotEndpoint right;  // slot on the channel toward the right endpoint
    FlowLink link;
    bool attached = false;
  };

  [[nodiscard]] static std::size_t idx(PathEnd end) noexcept {
    return static_cast<std::size_t>(end);
  }
  [[nodiscard]] PathEnd endOfParty(std::uint32_t party) const noexcept {
    return party == 0 ? PathEnd::left : PathEnd::right;
  }
  [[nodiscard]] bool isEndpointParty(std::uint32_t party) const noexcept {
    return party == 0 || party == partyCount() - 1;
  }

  void attachParty(std::uint32_t party);
  [[nodiscard]] bool allAttached() const noexcept;
  [[nodiscard]] bool refreshWouldEmit() const;
  void applyChaos(const PathAction& action);
  void appendChaosActions(std::uint32_t party, std::vector<PathAction>& actions) const;
  void appendChaosSendsFor(const SlotEndpoint& slot, std::uint32_t party,
                           std::uint8_t chaos_slot,
                           std::vector<PathAction>& actions) const;
  void deliverInto(std::uint32_t channel_index, Side towards);
  void flush(const char* box_name, Outbox&& out);
  void pushSignal(const char* box_name, std::uint32_t channel_index, Side towards,
                  Signal signal);

  // The slot a chaos action operates on.
  [[nodiscard]] SlotEndpoint& chaosTarget(std::uint32_t party, std::uint8_t chaos_slot);

  // Map a slot to the channel and direction its sends travel on.
  struct SlotRoute {
    std::uint32_t channel;
    Side towards;
  };
  [[nodiscard]] SlotRoute routeOf(SlotId slot) const;

  // Fixed descriptor pool for chaos sends: small and reused so the model
  // checker's state space stays bounded. Variant 0 offers real audio,
  // variant 1 is noMedia.
  [[nodiscard]] Descriptor chaosDescriptor(std::uint32_t party,
                                           std::uint8_t chaos_slot,
                                           std::uint8_t variant) const;

  std::array<End, 2> ends_;
  std::vector<LinkBox> links_;
  std::vector<ChannelState> channels_;
  IdAllocator<SlotId> slot_ids_;
  std::vector<std::uint32_t> chaos_budget_;  // per party
  std::array<std::uint32_t, 2> modify_budget_{0, 0};
  std::uint32_t fault_budget_ = 0;
  bool stabilize_ = false;
  bool trace_enabled_ = false;
  std::vector<TraceEntry> trace_;
  std::size_t delivered_ = 0;
};

}  // namespace cmc
