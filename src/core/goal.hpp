// EndpointGoal: whichever of the three single-slot primitives controls a
// path endpoint, with uniform dispatch. (flowLink controls two slots and is
// handled separately.)
#pragma once

#include <variant>

#include "core/flowlink.hpp"
#include "core/goals.hpp"

namespace cmc {

using EndpointGoal = std::variant<OpenSlotGoal, CloseSlotGoal, HoldSlotGoal>;

[[nodiscard]] inline GoalKind kindOf(const EndpointGoal& goal) noexcept {
  return std::visit([](const auto& g) { return g.kind; }, goal);
}

inline void attach(EndpointGoal& goal, SlotEndpoint& slot, Outbox& out) {
  std::visit([&](auto& g) { g.attach(slot, out); }, goal);
}

inline void onEvent(EndpointGoal& goal, SlotEndpoint& slot, SlotEvent event,
                    Outbox& out) {
  std::visit([&](auto& g) { g.onEvent(slot, event, out); }, goal);
}

// User modify event; no-op for closeSlot (a closed channel has no muting).
inline void setMute(EndpointGoal& goal, bool mute_in, bool mute_out,
                    SlotEndpoint& slot, Outbox& out) {
  std::visit(
      [&](auto& g) {
        using T = std::decay_t<decltype(g)>;
        if constexpr (!std::is_same_v<T, CloseSlotGoal>) {
          g.setMute(mute_in, mute_out, slot, out);
        }
      },
      goal);
}

[[nodiscard]] inline bool retryPending(const EndpointGoal& goal) noexcept {
  const auto* open = std::get_if<OpenSlotGoal>(&goal);
  return open != nullptr && open->retryPending();
}

inline void retry(EndpointGoal& goal, SlotEndpoint& slot, Outbox& out) {
  if (auto* open = std::get_if<OpenSlotGoal>(&goal)) open->retry(slot, out);
}

// Stabilization (docs/FAULTS.md): re-assert the goal against the slot after
// possible signal loss. Idempotent; fault-tolerant runtimes only.
inline void refresh(EndpointGoal& goal, SlotEndpoint& slot, Outbox& out) {
  std::visit([&](auto& g) { g.refresh(slot, out); }, goal);
}

// True when a refresh of this goal would send nothing useful.
[[nodiscard]] inline bool converged(const EndpointGoal& goal,
                                    const SlotEndpoint& slot) noexcept {
  return std::visit([&](const auto& g) { return g.converged(slot); }, goal);
}

inline void canonicalize(const EndpointGoal& goal, ByteWriter& w) {
  std::visit([&](const auto& g) { g.canonicalize(w); }, goal);
}

}  // namespace cmc
