// The state-oriented programming API (paper Section IV-A).
//
// "In each state of a box program, annotations or defaults give a static
// description of the programmer's goal for each slot while the program is
// in that state... If the external situation changes so that a slot should
// have a different goal, then the program must change to a state in which
// that slot is annotated differently."
//
// ProgramBox turns that prose into an API: feature authors declare states
// with goal annotations (openSlot / closeSlot / holdSlot / flowLink over
// *symbolic* slot names, bound to real slots at runtime) plus guarded
// transitions. Guards are predicates over the program — the paper's
// isClosed/isOpening/isOpened/isFlowing slot predicates, meta-signal and
// timer events — evaluated when the program enters a state and again on
// every event, so a transition guarded by isFlowing(s) fires as soon as s
// is flowing, whenever that happens.
//
// Annotation continuity matters (paper: "Because the annotation controlling
// slot 2a is the same in both states twoCalls and ringback, the object
// controlling 2a is also the same"): on a state change, slots whose
// annotation is unchanged keep their goal object untouched.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/box.hpp"

namespace cmc {

class ProgramBox : public Box {
 public:
  struct Annotation {
    GoalKind kind = GoalKind::holdSlot;
    std::string slot;   // symbolic slot name
    std::string slot2;  // flowLink: the second slot
    Medium medium = Medium::audio;  // openSlot

    friend bool operator==(const Annotation&, const Annotation&) = default;
  };

  // Annotation constructors, for declarative state tables.
  [[nodiscard]] static Annotation openSlot(std::string slot,
                                           Medium medium = Medium::audio) {
    return Annotation{GoalKind::openSlot, std::move(slot), "", medium};
  }
  [[nodiscard]] static Annotation closeSlot(std::string slot) {
    return Annotation{GoalKind::closeSlot, std::move(slot), "", Medium::audio};
  }
  [[nodiscard]] static Annotation holdSlot(std::string slot) {
    return Annotation{GoalKind::holdSlot, std::move(slot), "", Medium::audio};
  }
  [[nodiscard]] static Annotation flowLink(std::string a, std::string b) {
    return Annotation{GoalKind::flowLink, std::move(a), std::move(b),
                      Medium::audio};
  }

  // The event being processed while guards run.
  struct Event {
    enum class Kind {
      none,         // state entry / re-evaluation
      slotActivity,
      meta,
      timer,
      channelUp,
      channelDown,
    };
    Kind kind = Kind::none;
    SlotId slot;
    ChannelId channel;
    MetaSignal meta;
    std::string timerTag;
    std::string channelTag;
  };

  using Guard = std::function<bool(ProgramBox&)>;
  using Action = std::function<void(ProgramBox&)>;

  ProgramBox(BoxId id, std::string name) : Box(id, std::move(name)) {
    ids_ = DescriptorFactory{id.value()};
  }

  // ---- program definition (before start) -------------------------------
  ProgramBox& addState(std::string name, std::vector<Annotation> annotations) {
    states_[std::move(name)] = std::move(annotations);
    return *this;
  }
  ProgramBox& addTransition(std::string from, std::string to, Guard guard,
                            Action action = nullptr) {
    transitions_.push_back(Transition{std::move(from), std::move(to),
                                      std::move(guard), std::move(action)});
    return *this;
  }
  // Action run when a state is entered (after annotations are applied).
  ProgramBox& onEnter(const std::string& state, Action action) {
    on_enter_[state] = std::move(action);
    return *this;
  }

  void start(const std::string& initial) {
    enterState(initial);
    evaluate();
  }

  // Re-apply the current state's annotations — needed after binding a
  // newly created channel's slot to a symbolic name, so the pending
  // annotation takes effect on the real slot. Slots already under the
  // annotated goal kind are left untouched (annotation continuity).
  void refreshAnnotations() {
    if (!current_.empty()) applyAnnotations(states_[current_], states_[current_]);
  }

  // ---- runtime helpers for guards and actions ---------------------------
  [[nodiscard]] const std::string& currentState() const noexcept {
    return current_;
  }
  [[nodiscard]] bool inState(const std::string& name) const noexcept {
    return current_ == name;
  }
  [[nodiscard]] const Event& event() const noexcept { return event_; }

  void bind(const std::string& name, SlotId slot) { bindings_[name] = slot; }
  [[nodiscard]] bool isBound(const std::string& name) const {
    return bindings_.count(name) != 0 && bindings_.at(name).valid();
  }
  [[nodiscard]] SlotId slotNamed(const std::string& name) const {
    auto it = bindings_.find(name);
    return it == bindings_.end() ? SlotId{} : it->second;
  }

  // The paper's slot predicates, over symbolic names. An unbound name
  // satisfies none of them.
  [[nodiscard]] bool flowing(const std::string& name) const {
    return boundState(name) == ProtocolState::flowing;
  }
  [[nodiscard]] bool closed(const std::string& name) const {
    return boundState(name) == ProtocolState::closed;
  }
  [[nodiscard]] bool opening(const std::string& name) const {
    return boundState(name) == ProtocolState::opening;
  }
  [[nodiscard]] bool opened(const std::string& name) const {
    return boundState(name) == ProtocolState::opened;
  }

  // Guard factories.
  [[nodiscard]] static Guard isFlowing(std::string slot) {
    return [slot](ProgramBox& box) { return box.flowing(slot); };
  }
  [[nodiscard]] static Guard isClosed(std::string slot) {
    return [slot](ProgramBox& box) { return box.closed(slot); };
  }
  [[nodiscard]] static Guard onMetaKind(MetaKind kind) {
    return [kind](ProgramBox& box) {
      return box.event().kind == Event::Kind::meta &&
             box.event().meta.kind == kind;
    };
  }
  [[nodiscard]] static Guard onCustomMeta(std::string tag) {
    return [tag](ProgramBox& box) {
      return box.event().kind == Event::Kind::meta &&
             box.event().meta.kind == MetaKind::custom &&
             box.event().meta.tag == tag;
    };
  }
  [[nodiscard]] static Guard onTimerTag(std::string tag) {
    return [tag](ProgramBox& box) {
      return box.event().kind == Event::Kind::timer &&
             box.event().timerTag == tag;
    };
  }
  [[nodiscard]] static Guard onChannelUpTag(std::string tag) {
    return [tag](ProgramBox& box) {
      return box.event().kind == Event::Kind::channelUp &&
             box.event().channelTag == tag;
    };
  }
  [[nodiscard]] static Guard onChannelDown() {
    return [](ProgramBox& box) {
      return box.event().kind == Event::Kind::channelDown;
    };
  }

  // Action helpers usable inside transitions.
  using Box::destroyChannel;
  using Box::requestChannel;
  using Box::sendMeta;
  using Box::setTimer;

 protected:
  // Box hooks feed the evaluator. Subclasses may override these further but
  // must call the ProgramBox versions.
  void onSlotActivity(SlotId slot) override {
    event_ = Event{};
    event_.kind = Event::Kind::slotActivity;
    event_.slot = slot;
    evaluate();
  }
  void onMeta(ChannelId channel, const MetaSignal& meta) override {
    event_ = Event{};
    event_.kind = Event::Kind::meta;
    event_.channel = channel;
    event_.meta = meta;
    evaluate();
  }
  void onTimer(const std::string& tag) override {
    event_ = Event{};
    event_.kind = Event::Kind::timer;
    event_.timerTag = tag;
    evaluate();
  }
  void onChannelUp(ChannelId channel, const std::string& tag) override {
    event_ = Event{};
    event_.kind = Event::Kind::channelUp;
    event_.channel = channel;
    event_.channelTag = tag;
    evaluate();
  }
  void onChannelDown(ChannelId channel) override {
    for (auto& [name, slot] : bindings_) {
      if (!channelOf(slot).valid()) slot = SlotId{};
    }
    event_ = Event{};
    event_.kind = Event::Kind::channelDown;
    event_.channel = channel;
    evaluate();
  }

 private:
  struct Transition {
    std::string from;
    std::string to;
    Guard guard;
    Action action;
  };

  [[nodiscard]] ProtocolState boundState(const std::string& name) const {
    auto it = bindings_.find(name);
    if (it == bindings_.end() || !it->second.valid()) {
      return ProtocolState::closed;
    }
    if (!channelOf(it->second).valid()) return ProtocolState::closed;
    return slotState(it->second);
  }

  void applyAnnotations(const std::vector<Annotation>& previous,
                        const std::vector<Annotation>& next) {
    for (const Annotation& annotation : next) {
      // Annotation continuity: identical annotation -> same goal object.
      bool unchanged = false;
      for (const Annotation& old : previous) {
        if (old == annotation) {
          unchanged = true;
          break;
        }
      }
      const SlotId a = slotNamed(annotation.slot);
      if (!a.valid()) continue;
      if (annotation.kind == GoalKind::flowLink) {
        const SlotId b = slotNamed(annotation.slot2);
        if (!b.valid()) continue;
        linkSlots(a, b);  // no-op on the same pair by Box contract
        continue;
      }
      if (unchanged && goalKind(a).has_value() &&
          *goalKind(a) == annotation.kind) {
        continue;
      }
      switch (annotation.kind) {
        case GoalKind::openSlot:
          setGoal(a, OpenSlotGoal{annotation.medium, MediaIntent::server(),
                                  ids_});
          break;
        case GoalKind::closeSlot:
          setGoal(a, CloseSlotGoal{});
          break;
        case GoalKind::holdSlot:
          setGoal(a, HoldSlotGoal{MediaIntent::server(), ids_});
          break;
        case GoalKind::flowLink:
          break;
      }
    }
  }

  void enterState(const std::string& name) {
    const auto previous =
        states_.count(current_) ? states_[current_] : std::vector<Annotation>{};
    current_ = name;
    applyAnnotations(previous, states_[name]);
    if (auto it = on_enter_.find(name); it != on_enter_.end() && it->second) {
      it->second(*this);
    }
  }

  void evaluate() {
    if (current_.empty() || evaluating_) return;
    evaluating_ = true;
    // Chain transitions until quiescent; events are consumed by the first
    // round (subsequent rounds see Kind::none re-evaluation).
    for (int depth = 0; depth < 16; ++depth) {
      bool fired = false;
      for (const Transition& transition : transitions_) {
        if (transition.from != current_) continue;
        if (!transition.guard || transition.guard(*this)) {
          if (transition.action) transition.action(*this);
          enterState(transition.to);
          fired = true;
          break;
        }
      }
      event_ = Event{};  // consumed
      if (!fired) break;
    }
    evaluating_ = false;
  }

  DescriptorFactory ids_;
  std::map<std::string, std::vector<Annotation>> states_;
  std::vector<Transition> transitions_;
  std::map<std::string, Action> on_enter_;
  std::map<std::string, SlotId> bindings_;
  std::string current_;
  Event event_;
  bool evaluating_ = false;
};

}  // namespace cmc
