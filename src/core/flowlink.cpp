#include "core/flowlink.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace cmc {

namespace {

// utd bookkeeping changed for `slot` (v0 = new flag, v1 = closing mode).
inline void traceUtd(SlotId slot, bool now_utd, bool closing_mode) {
  if (obs::TraceRecorder* rec = obs::recorder()) {
    obs::TraceEvent ev;
    ev.kind = obs::EventKind::flowlinkUpdate;
    ev.name = now_utd ? "utd_set" : "utd_invalidated";
    ev.actor.assign(obs::currentActor());
    ev.id = slot.value();
    ev.v0 = now_utd ? 1 : 0;
    ev.v1 = closing_mode ? 1 : 0;
    rec->record(std::move(ev));
  }
}

// The flowlink pushed the other side's cached descriptor out on `slot`.
inline void traceRefresh(SlotId slot, std::string_view via) {
  if (obs::TraceRecorder* rec = obs::recorder()) {
    obs::TraceEvent ev;
    ev.kind = obs::EventKind::flowlinkUpdate;
    ev.name.assign(via);
    ev.actor.assign(obs::currentActor());
    ev.aux = "forward_descriptor";
    ev.id = slot.value();
    rec->record(std::move(ev));
  }
  if (obs::MetricsRegistry* m = obs::metrics()) {
    m->counter("flowlink.descriptor_forwards").add();
  }
}

}  // namespace

void FlowLink::attach(SlotEndpoint& a, SlotEndpoint& b, Outbox& out) {
  if (a.medium() && b.medium() && *a.medium() != *b.medium()) {
    throw std::logic_error("flowLink precondition violated: media differ");
  }
  slots_ = {a.id(), b.id()};
  if (slots_[1] < slots_[0]) std::swap(slots_[0], slots_[1]);
  utd_ = {false, false};
  closing_mode_ = false;
  refresh(a, b, out);
}

bool& FlowLink::utd(const SlotEndpoint& slot) noexcept {
  return slot.id() == slots_[0] ? utd_[0] : utd_[1];
}

bool FlowLink::upToDate(const SlotEndpoint& slot) const noexcept {
  return slot.id() == slots_[0] ? utd_[0] : utd_[1];
}

void FlowLink::onEvent(SlotEndpoint& self, SlotEndpoint& other, SlotEvent event,
                       const Signal& signal, Outbox& out) {
  CMC_PROF_SCOPE("flowlink.on_event");
  switch (event) {
    case SlotEvent::openReceived: {
      // A fresh request from self's far side. Its descriptor supersedes
      // whatever the other slot was last told, and whatever self was last
      // told is unrelated to this open.
      closing_mode_ = false;
      utd(self) = false;
      utd(other) = false;
      traceUtd(self.id(), false, closing_mode_);
      traceUtd(other.id(), false, closing_mode_);
      if (self.state() == ProtocolState::flowing && self.stabilizing() &&
          described(other)) {
        // Redundant open on an already-flowing slot (stabilization mode):
        // the re-opening peer is stuck in opening and lost our oack, so the
        // describe that refresh() would send will be ignored there. Answer
        // with the oack it is actually waiting for.
        out.send(self.id(), self.resendOack(*other.remoteDescriptor()));
        utd(self) = true;
        traceRefresh(self.id(), "re-oack");
      }
      refresh(self, other, out);
      break;
    }

    case SlotEvent::becameAcceptor: {
      // We sent open on `self` but lost the open/open race: our open (and
      // the descriptor it carried) is ignored by the peer; the incoming
      // open now governs, exactly as if it had found the slot closed.
      closing_mode_ = false;
      utd(self) = false;
      utd(other) = false;
      traceUtd(self.id(), false, closing_mode_);
      traceUtd(other.id(), false, closing_mode_);
      refresh(self, other, out);
      break;
    }

    case SlotEvent::oackReceived: {
      // Our open on `self` was accepted; the oack carries the far side's
      // descriptor, which the other slot has not seen.
      utd(other) = false;
      traceUtd(other.id(), false, closing_mode_);
      refresh(self, other, out);
      break;
    }

    case SlotEvent::descriptorReceived: {
      // New describe on self: the other slot is no longer up to date.
      utd(other) = false;
      traceUtd(other.id(), false, closing_mode_);
      refresh(self, other, out);
      break;
    }

    case SlotEvent::selectorReceived: {
      // Forward only fresh selectors: the selector must answer the other
      // slot's current descriptor, and the other slot must be in a state
      // that can carry a select (Section VII).
      const auto& selector = std::get<SelectSignal>(signal).selector;
      if (other.remoteDescriptor() &&
          selector.answersDescriptor == other.remoteDescriptor()->id &&
          other.canModify()) {
        out.send(other.id(), other.sendSelect(selector));
      }
      break;
    }

    case SlotEvent::closedByPeer: {
      // Tear the other side down transparently. Suppress the flow bias
      // until the environment asks to open again.
      closing_mode_ = true;
      utd_ = {false, false};
      traceUtd(self.id(), false, closing_mode_);
      traceUtd(other.id(), false, closing_mode_);
      if (isLive(other.state())) out.send(other.id(), other.sendClose());
      break;
    }

    case SlotEvent::fullyClosed: {
      // Our close on self was acknowledged. If this completes a teardown,
      // rest in both-closed; if the other side is live (the closeack ends
      // an old channel while new work arrived), resume matching.
      utd(self) = false;
      traceUtd(self.id(), false, closing_mode_);
      if (!closing_mode_) refresh(self, other, out);
      break;
    }

    case SlotEvent::none:
    case SlotEvent::ignored:
      break;
  }
}

void FlowLink::refresh(SlotEndpoint& a, SlotEndpoint& b, Outbox& out) {
  // Order matters only for signal emission order on distinct tunnels, which
  // is unconstrained; do a then b.
  refreshOne(a, b, out);
  refreshOne(b, a, out);
}

void FlowLink::refreshOne(SlotEndpoint& target, SlotEndpoint& source, Outbox& out) {
  if (upToDate(target) || !described(source)) return;
  const Descriptor& fresh = *source.remoteDescriptor();
  switch (target.state()) {
    case ProtocolState::flowing:
      out.send(target.id(), target.sendDescribe(fresh));
      utd(target) = true;
      traceRefresh(target.id(), "describe");
      break;
    case ProtocolState::opened:
      // Accept the pending open, forwarding the descriptor from the other
      // side of the link. Any selector owed by a previous descriptor is
      // made irrelevant: only fresh selectors matter.
      out.send(target.id(), target.sendOack(fresh));
      utd(target) = true;
      traceRefresh(target.id(), "oack");
      break;
    case ProtocolState::closed:
      if (!closing_mode_ || ablation_ignore_closing_mode) {
        // The flow bias of Fig. 12: extend the live side's channel.
        out.send(target.id(),
                 target.sendOpen(source.medium().value_or(Medium::audio), fresh));
        utd(target) = true;
        traceRefresh(target.id(), "open");
      }
      break;
    case ProtocolState::opening:
    case ProtocolState::closing:
      // In-flight; the answer (oack/close/closeack) will re-trigger refresh.
      break;
  }
}

void FlowLink::stabilize(SlotEndpoint& a, SlotEndpoint& b, Outbox& out) {
  // Closes stuck waiting for a lost closeack are re-sent in every mode.
  if (a.state() == ProtocolState::closing) out.send(a.id(), a.resendClose());
  if (b.state() == ProtocolState::closing) out.send(b.id(), b.resendClose());
  if (closing_mode_) {
    // Teardown under way: the propagated close may have been lost; push the
    // surviving side down again rather than re-opening anything.
    if (isLive(a.state())) out.send(a.id(), a.sendClose());
    if (isLive(b.state())) out.send(b.id(), b.sendClose());
    return;
  }
  // Distrust utd: a forwarded describe/oack/open may never have arrived.
  utd_ = {false, false};
  traceUtd(a.id(), false, closing_mode_);
  traceUtd(b.id(), false, closing_mode_);
  restabilizeOne(a, b, out);
  restabilizeOne(b, a, out);
  refresh(a, b, out);
}

void FlowLink::restabilizeOne(SlotEndpoint& target, SlotEndpoint& source,
                              Outbox& out) {
  // An open we sent may have been lost, leaving `target` stuck in opening
  // (refreshOne deliberately skips in-flight states). Re-assert it — or, if
  // the descriptor that justified it is gone, retreat to closed.
  if (target.state() != ProtocolState::opening) return;
  if (described(source)) {
    out.send(target.id(), target.resendOpen(*source.remoteDescriptor()));
    utd(target) = true;
    traceRefresh(target.id(), "re-open");
  } else {
    out.send(target.id(), target.sendClose());
  }
}

bool FlowLink::converged(const SlotEndpoint& a,
                         const SlotEndpoint& b) const noexcept {
  if (!matched(a, b)) return false;
  if (a.state() == ProtocolState::closed) return true;  // both closed
  return utd_[0] && utd_[1];  // both flowing, both told the latest
}

void FlowLink::canonicalize(ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(kind));
  w.boolean(utd_[0]);
  w.boolean(utd_[1]);
  w.boolean(closing_mode_);
}

}  // namespace cmc
