// The single-slot goal primitives (paper Section IV-A).
//
// Application programmers manipulate media channels by annotating program
// states with *goals* for slots. A goal object reads all signals received
// from its slot and writes all signals sent to it:
//
//   openSlot(s, m)  open a media channel with medium m and push it to the
//                   flowing state; re-sends open if rejected. Emits open and
//                   oack, never close.
//   closeSlot(s)    get the slot to the closed state and keep it there;
//                   rejects incoming opens immediately. Emits close, never
//                   open or oack.
//   holdSlot(s)     accept a channel and push it to flowing, but only if the
//                   other end of the path requests it; if the other end
//                   closes, stay closed until it asks again. Emits oack,
//                   never open or close.
//
// closeSlot and holdSlot have no fixed initial state: a program can switch a
// slot to them at any point of the slot's life, and the object must proceed
// from whatever state the slot is in. (The model checker exploits this: its
// chaotic initial phases hand goals slots in every reachable state.)
//
// All goals are value types stepped by the runtime; signals go out through
// an Outbox.
#pragma once

#include <optional>

#include "core/intent.hpp"
#include "core/outbox.hpp"
#include "protocol/slot_endpoint.hpp"

namespace cmc {

enum class GoalKind : std::uint8_t { openSlot, closeSlot, holdSlot, flowLink };

[[nodiscard]] std::string_view toString(GoalKind kind) noexcept;

class OpenSlotGoal {
 public:
  OpenSlotGoal() = default;
  OpenSlotGoal(Medium medium, MediaIntent intent, DescriptorFactory ids) noexcept
      : medium_(medium), intent_(std::move(intent)), ids_(ids) {}

  static constexpr GoalKind kind = GoalKind::openSlot;

  void attach(SlotEndpoint& slot, Outbox& out);
  void onEvent(SlotEndpoint& slot, SlotEvent event, Outbox& out);

  // User interface: the modify event of Fig. 5. Only media endpoints call
  // this; if the slot is flowing the change is signaled immediately.
  void setMute(bool mute_in, bool mute_out, SlotEndpoint& slot, Outbox& out);

  // Mid-channel modifications beyond muting (paper Section VI-B and
  // footnote 4): change this party's receive address (mobility) — a fresh
  // descriptor goes out in a describe; or unilaterally switch the codec we
  // send, which must be offered by the remote descriptor ("media sources
  // may wish to send using different codecs even within the same media
  // episode"). reselect returns false if the codec is not on offer.
  void setAddress(MediaAddress addr, SlotEndpoint& slot, Outbox& out);
  bool reselect(Codec codec, SlotEndpoint& slot, Outbox& out);

  // After a rejection the openslot wants to send open again. The runtime
  // chooses when (timer-paced in real time, explicit action in the model
  // checker) and calls retry().
  [[nodiscard]] bool retryPending() const noexcept { return retry_pending_; }
  void retry(SlotEndpoint& slot, Outbox& out);

  // Stabilization (docs/FAULTS.md): re-assert whatever the goal still wants
  // from the slot after possible signal loss. Idempotent; only called by
  // fault-tolerant runtimes on stabilizing slots.
  void refresh(SlotEndpoint& slot, Outbox& out);
  // True when the goal is where it wants to be and a refresh would be noise.
  [[nodiscard]] bool converged(const SlotEndpoint& slot) const noexcept;

  [[nodiscard]] Medium medium() const noexcept { return medium_; }
  [[nodiscard]] const MediaIntent& intent() const noexcept { return intent_; }

  void canonicalize(ByteWriter& w) const;

 private:
  void accept(SlotEndpoint& slot, Outbox& out);
  [[nodiscard]] const Descriptor& selfDescriptor();

  Medium medium_ = Medium::audio;
  MediaIntent intent_;
  DescriptorFactory ids_;
  // Current self-description. Descriptors are idempotent, so re-sends reuse
  // the same descriptor (same id); a new one is minted only when the intent
  // changes. This also keeps the model checker's state space finite.
  std::optional<Descriptor> self_desc_;
  bool retry_pending_ = false;
};

class CloseSlotGoal {
 public:
  CloseSlotGoal() = default;

  static constexpr GoalKind kind = GoalKind::closeSlot;

  void attach(SlotEndpoint& slot, Outbox& out);
  void onEvent(SlotEndpoint& slot, SlotEvent event, Outbox& out);

  void refresh(SlotEndpoint& slot, Outbox& out);
  [[nodiscard]] bool converged(const SlotEndpoint& slot) const noexcept;

  void canonicalize(ByteWriter& w) const;
};

class HoldSlotGoal {
 public:
  HoldSlotGoal() = default;
  HoldSlotGoal(MediaIntent intent, DescriptorFactory ids) noexcept
      : intent_(std::move(intent)), ids_(ids) {}

  static constexpr GoalKind kind = GoalKind::holdSlot;

  void attach(SlotEndpoint& slot, Outbox& out);
  void onEvent(SlotEndpoint& slot, SlotEvent event, Outbox& out);

  void setMute(bool mute_in, bool mute_out, SlotEndpoint& slot, Outbox& out);
  void setAddress(MediaAddress addr, SlotEndpoint& slot, Outbox& out);
  bool reselect(Codec codec, SlotEndpoint& slot, Outbox& out);

  [[nodiscard]] const MediaIntent& intent() const noexcept { return intent_; }

  void refresh(SlotEndpoint& slot, Outbox& out);
  [[nodiscard]] bool converged(const SlotEndpoint& slot) const noexcept;

  void canonicalize(ByteWriter& w) const;

 private:
  void accept(SlotEndpoint& slot, Outbox& out);
  [[nodiscard]] const Descriptor& selfDescriptor();

  MediaIntent intent_;
  DescriptorFactory ids_;
  std::optional<Descriptor> self_desc_;
};

}  // namespace cmc
