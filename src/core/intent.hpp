// Media intent: what the owner of a slot is, as a media receiver/sender.
//
// A goal object in a *media endpoint* uses the endpoint's real address and
// codec capabilities, and the user's mute choices. A goal object in an
// *application server* is masquerading as a media endpoint but is not one:
// it can neither send nor receive media packets fruitfully, so when it opens
// or accepts a channel it mutes media flow in both directions (paper
// Section IV-A). MediaIntent::server() captures that case.
#pragma once

#include <cstdint>
#include <vector>

#include "codec/descriptor.hpp"
#include "util/ids.hpp"

namespace cmc {

// Allocates globally unique descriptor ids. Each endpoint (or server goal)
// owns a factory seeded with a distinct namespace so ids never collide.
// Pure value type: the model checker snapshots it with the rest of the state.
class DescriptorFactory {
 public:
  DescriptorFactory() = default;
  explicit DescriptorFactory(std::uint64_t space) noexcept
      : next_((space + 1) << 20) {}

  [[nodiscard]] DescriptorId fresh() noexcept { return DescriptorId{next_++}; }

  void canonicalize(ByteWriter& w) const { w.u64(next_); }

 private:
  std::uint64_t next_ = 1;
};

struct MediaIntent {
  MediaAddress addr;              // where this party receives media
  std::vector<Codec> receivable;  // priority order, best first
  std::vector<Codec> sendable;
  bool muteIn = false;   // user wishes inward flow suspended
  bool muteOut = false;  // user wishes outward flow suspended

  // Intent of a slot inside an application server: no real media endpoint,
  // both directions muted.
  [[nodiscard]] static MediaIntent server() {
    MediaIntent intent;
    intent.muteIn = true;
    intent.muteOut = true;
    return intent;
  }

  // Intent of a media endpoint with symmetric codec capability.
  [[nodiscard]] static MediaIntent endpoint(MediaAddress addr,
                                            std::vector<Codec> codecs) {
    MediaIntent intent;
    intent.addr = addr;
    intent.receivable = codecs;
    intent.sendable = std::move(codecs);
    return intent;
  }

  // Self-description as a receiver: offers `receivable` unless muteIn, in
  // which case the single offered codec is noMedia.
  [[nodiscard]] Descriptor describeSelf(DescriptorFactory& ids) const {
    return makeDescriptor(ids.fresh(), addr, receivable, muteIn);
  }

  // Answer to a received descriptor: unilateral codec choice.
  [[nodiscard]] Selector answer(const Descriptor& received) const {
    return makeSelector(received, addr, sendable, muteOut);
  }

  void canonicalize(ByteWriter& w) const {
    w.u32(addr.ip);
    w.u16(addr.port);
    w.boolean(muteIn);
    w.boolean(muteOut);
    w.u16(static_cast<std::uint16_t>(receivable.size()));
    for (Codec c : receivable) w.u16(static_cast<std::uint16_t>(c));
    w.u16(static_cast<std::uint16_t>(sendable.size()));
    for (Codec c : sendable) w.u16(static_cast<std::uint16_t>(c));
  }
};

}  // namespace cmc
