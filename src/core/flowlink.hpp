// The flowLink goal primitive (paper Sections IV-A and VII).
//
// A flowlink controls two slots of a box and coordinates their signals so
// that, to the rest of the signaling path, the box behaves as if the two
// tunnels were spliced into one: media flows end to end exactly when both
// path endpoints desire it and an unbroken chain of tunnels and flowlinks
// connects them.
//
// The primary organization is *state matching* over the slots' protocol
// states (Fig. 12): live = {opening, opened, flowing}, dead = {closed,
// closing}. From whichever superstate the environment puts it in (both
// live / both dead / mixed), the flowlink works toward one of the two goal
// substates, *both flowing* or *both closed* — with a bias toward media
// flow: a flowlink instantiated on a flowing slot and a closed slot opens
// the closed one rather than closing the flowing one.
//
// The secondary organization is descriptor bookkeeping (Section VII):
//   * cached descriptor of a slot — the most recent descriptor received on
//     it (maintained by the SlotEndpoint itself);
//   * described(s) — s is in the opened or flowing state and therefore has
//     a current descriptor;
//   * utd(s) ("up to date") — the other slot is described and s has been
//     sent that slot's most recent descriptor.
// In any live state the flowlink works to make both utd flags true, sending
// whichever signal the slot state permits: describe if flowing, oack if
// opened (accepting with the forwarded descriptor), open if closed.
//
// Selector handling needs no history (Section VII): only a selector
// answering the other slot's *current* descriptor is fresh; anything else
// is obsolete and dropped.
//
// Close handling: a close received on one slot is propagated to the other
// (tearing the path down transparently); while that teardown is under way
// the flowlink is in "closing mode" and suppresses its flow bias, so it
// does not immediately re-open what the environment just closed. A new
// incoming open clears closing mode.
#pragma once

#include <array>
#include <cstdint>

#include "core/goals.hpp"
#include "core/outbox.hpp"
#include "protocol/slot_endpoint.hpp"

namespace cmc {

class FlowLink {
 public:
  FlowLink() = default;

  static constexpr GoalKind kind = GoalKind::flowLink;

  // Put both slots under this flowlink's control. Precondition (paper
  // Section IV-A): if both slots have a medium defined, the media are the
  // same; violated preconditions throw std::logic_error.
  void attach(SlotEndpoint& a, SlotEndpoint& b, Outbox& out);

  // An event was delivered on slot `self` (the other slot is `other`).
  void onEvent(SlotEndpoint& self, SlotEndpoint& other, SlotEvent event,
               const Signal& signal, Outbox& out);

  // True once both slots sit in a goal substate of Fig. 12.
  [[nodiscard]] static bool matched(const SlotEndpoint& a, const SlotEndpoint& b) noexcept {
    return (a.state() == ProtocolState::flowing && b.state() == ProtocolState::flowing) ||
           (a.state() == ProtocolState::closed && b.state() == ProtocolState::closed);
  }

  [[nodiscard]] bool upToDate(const SlotEndpoint& slot) const noexcept;
  [[nodiscard]] bool closingMode() const noexcept { return closing_mode_; }

  // Stabilization (docs/FAULTS.md): re-assert the link after possible
  // signal loss — re-send stuck closes, re-propagate a teardown, and
  // distrust the utd bookkeeping (the forwarded signal may never have
  // arrived) so descriptors are forwarded again. Idempotent; requires
  // stabilizing slots.
  void stabilize(SlotEndpoint& a, SlotEndpoint& b, Outbox& out);
  // True when the link rests in a goal substate with nothing left to
  // forward; a stabilize() would send nothing useful.
  [[nodiscard]] bool converged(const SlotEndpoint& a,
                               const SlotEndpoint& b) const noexcept;

  // ABLATION KNOB (benchmarks only; defaults off): ignore closing mode, so
  // the flow bias applies even while a teardown initiated by the
  // environment is under way. bench_ablation demonstrates that without the
  // closing-mode rule the flowlink resurrects channels its environment just
  // closed and the ◇□ bothClosed specifications become unsatisfiable.
  bool ablation_ignore_closing_mode = false;

  void canonicalize(ByteWriter& w) const;

 private:
  // Work toward both-flowing: for each slot that is not up to date and
  // whose opposite is described, send the opposite's cached descriptor in
  // whatever signal the slot's state allows.
  void refresh(SlotEndpoint& a, SlotEndpoint& b, Outbox& out);
  void refreshOne(SlotEndpoint& target, SlotEndpoint& source, Outbox& out);
  void restabilizeOne(SlotEndpoint& target, SlotEndpoint& source, Outbox& out);

  [[nodiscard]] static bool described(const SlotEndpoint& slot) noexcept {
    return (slot.state() == ProtocolState::opened ||
            slot.state() == ProtocolState::flowing) &&
           slot.remoteDescriptor().has_value();
  }

  [[nodiscard]] bool& utd(const SlotEndpoint& slot) noexcept;

  // utd_[0] applies to the slot with the smaller SlotId, utd_[1] to the
  // other; the mapping is fixed at attach.
  std::array<SlotId, 2> slots_{};
  std::array<bool, 2> utd_{false, false};
  bool closing_mode_ = false;
};

}  // namespace cmc
