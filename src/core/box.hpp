// Box: a peer module involved in media control (paper Sections III-A, VII).
//
// A box owns the slots of every signaling channel that ends at it, a Maps
// object associating slots with goal objects, and whatever application
// logic the feature needs. The paper's implementation structure is
// preserved: the Box sees meta-signals and drives goals; Slot objects see
// every tunnel signal and maintain protocol state; Goal objects read all
// signals of their slots and write all signals to them, found through Maps
// (goalReceive).
//
// Box performs no I/O. Every entry point (deliverTunnel, deliverMeta,
// fireTimer, ...) appends to an Output that the hosting runtime drains:
// tunnel signals to put on channels, meta-signals, timer requests, channel
// create/destroy requests. This keeps feature code runnable under the
// simulator and over real TCP transports alike.
//
// Subclasses implement features by overriding the on* hooks and calling the
// protected helpers; the media-control heavy lifting is entirely in the
// goal primitives.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "channel/meta.hpp"
#include "core/goal.hpp"
#include "core/intent.hpp"
#include "util/time.hpp"

namespace cmc {

// A request to the runtime to create a new signaling channel from this box
// toward the box addressed by `target` (configuration/routing is outside
// the paper's scope; the runtime resolves names).
struct ChannelRequest {
  std::string target;
  std::uint32_t tunnels = 1;
  std::string tag;  // echoed back in onChannelUp so the box can correlate
};

class Box {
 public:
  Box(BoxId id, std::string name);
  virtual ~Box() = default;

  Box(const Box&) = delete;
  Box& operator=(const Box&) = delete;

  [[nodiscard]] BoxId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  // ------------------------------------------------------------ wiring
  // Called by the runtime when a channel end is established at this box.
  // Returns the ids of the new slots (one per tunnel). `initiator` is true
  // on the side that created the channel (wins open/open races).
  std::vector<SlotId> addChannelEnd(ChannelId channel, std::uint32_t tunnels,
                                    bool initiator, const std::string& tag,
                                    const std::string& peer_name);
  // Called by the runtime when the channel is gone (local destroy or remote
  // teardown). Drops its slots and any goals over them.
  void removeChannel(ChannelId channel);

  [[nodiscard]] bool hasChannel(ChannelId channel) const noexcept;
  [[nodiscard]] std::vector<SlotId> slotsOf(ChannelId channel) const;
  [[nodiscard]] ChannelId channelOf(SlotId slot) const;

  // ------------------------------------------------- goal management (Maps)
  // Bind a single-slot goal to a slot, detaching whatever controlled it.
  void setGoal(SlotId slot, EndpointGoal goal);
  // Bind both slots to one flowlink. If the same (unordered) pair is
  // already flowlinked, this is a no-op: the same goal object keeps
  // control, as the paper requires for unchanged annotations.
  void linkSlots(SlotId a, SlotId b);
  void clearGoal(SlotId slot);
  [[nodiscard]] std::optional<GoalKind> goalKind(SlotId slot) const;

  // Fire pending openslot retries (runtime-paced).
  void fireRetries();
  [[nodiscard]] bool hasPendingRetries() const;

  // ------------------------------------------------------- stabilization
  // Fault-tolerant runtimes (docs/FAULTS.md) mark every slot stabilizing:
  // endpoints then tolerate re-sent signals and goals may re-assert
  // themselves. Off by default — the baseline protocol semantics are
  // unchanged until a fault plan opts in.
  void enableStabilization(bool on);
  [[nodiscard]] bool stabilizationEnabled() const noexcept {
    return stabilization_enabled_;
  }
  // Re-assert every goal that is not where it wants to be (idempotent;
  // runtime-paced, analogous to fireRetries).
  void refreshGoals();
  // True when some goal on this box is not converged and a refresh could
  // make progress toward it.
  [[nodiscard]] bool needsRefresh() const;
  // Crash/restart fault: lose all volatile slot state (protocol states,
  // descriptor caches, in-flight outputs) while keeping channels and goal
  // annotations, then rejoin the path — goals re-attach, and any slot still
  // closed afterwards sends a close-probe forcing its peer to re-converge.
  void crashRestart();

  // ------------------------------------------------------- slot predicates
  [[nodiscard]] const SlotEndpoint& slot(SlotId slot) const;
  [[nodiscard]] ProtocolState slotState(SlotId slot) const;
  // True when the goal controlling `slot` sits in its target quiescent
  // state: openSlot/holdSlot → flowing, closeSlot → closed, flowLink →
  // both slots matched (Fig. 12). Convergence probes build path-quiescence
  // predicates from this.
  [[nodiscard]] bool goalSatisfied(SlotId slot) const;
  [[nodiscard]] bool isClosed(SlotId s) const { return slotState(s) == ProtocolState::closed; }
  [[nodiscard]] bool isOpening(SlotId s) const { return slotState(s) == ProtocolState::opening; }
  [[nodiscard]] bool isOpened(SlotId s) const { return slotState(s) == ProtocolState::opened; }
  [[nodiscard]] bool isFlowing(SlotId s) const { return slotState(s) == ProtocolState::flowing; }

  // Live-resource counts, for leak auditing: after a call's channels are
  // torn down, every box that served it must be back to zero slots and zero
  // goals (single goals + flowlinks). The load runtime checks this per call.
  [[nodiscard]] std::size_t slotCount() const noexcept { return slots_.size(); }
  [[nodiscard]] std::size_t goalCount() const noexcept {
    return single_goals_.size() + links_.size();
  }

  // ------------------------------------------------- runtime entry points
  // Virtual so that bench_ablation's naive-forwarding box (the paper's
  // Fig. 2 pathology model) can bypass the goal machinery entirely.
  virtual void deliverTunnel(SlotId slot, const Signal& signal);
  void deliverMeta(ChannelId channel, const MetaSignal& meta);
  void fireTimer(const std::string& tag);
  // The runtime confirms a ChannelRequest: the channel now exists.
  void channelUp(ChannelId channel, const std::string& tag,
                 const std::vector<SlotId>& slots);

  // ------------------------------------------------------------- outputs
  struct TimerRequest {
    SimDuration delay;
    std::string tag;
  };
  struct Output {
    std::vector<OutSignal> tunnel;
    std::vector<std::pair<ChannelId, MetaSignal>> meta;
    std::vector<TimerRequest> timers;
    std::vector<ChannelRequest> channelRequests;
    std::vector<ChannelId> teardowns;

    [[nodiscard]] bool empty() const noexcept {
      return tunnel.empty() && meta.empty() && timers.empty() &&
             channelRequests.empty() && teardowns.empty();
    }
  };
  // Drain everything the box decided to do since the last drain.
  [[nodiscard]] Output drainOutput();

  // Endpoint modify passthroughs (mute change, address migration, and
  // unilateral codec re-selection); no-ops for slots without a single-slot
  // goal.
  void setSlotMute(SlotId slot, bool mute_in, bool mute_out);
  void setSlotAddress(SlotId slot, MediaAddress addr);
  bool reselectSlotCodec(SlotId slot, Codec codec);

 protected:
  // ------------------------------------------------------ subclass hooks
  // A meta-signal arrived on a channel.
  virtual void onMeta(ChannelId, const MetaSignal&) {}
  // A requested channel is up (tag correlates with requestChannel).
  virtual void onChannelUp(ChannelId, const std::string& /*tag*/) {}
  // A channel created by a peer reached this box.
  virtual void onIncomingChannel(ChannelId, const std::string& /*peer*/) {}
  // A channel went away (remote teardown or local destroy).
  virtual void onChannelDown(ChannelId) {}
  // A timer fired.
  virtual void onTimer(const std::string& /*tag*/) {}
  // A slot's protocol state may have changed (programs re-check guards).
  virtual void onSlotActivity(SlotId) {}
  // The box lost its volatile state in a crash and was restarted
  // (crashRestart); feature code re-syncs anything derived from slot state
  // (e.g. stops media that no longer has a flowing slot).
  virtual void onCrashRestart() {}

  // --------------------------------------------------- subclass helpers
  void sendMeta(ChannelId channel, MetaSignal meta);
  void requestChannel(std::string target, std::uint32_t tunnels, std::string tag);
  void destroyChannel(ChannelId channel);
  void setTimer(SimDuration delay, std::string tag);

 private:
  struct ChannelEnd {
    ChannelId id;
    bool initiator = false;
    std::string peer;
    std::vector<SlotId> slots;
  };

  // One flowlink controlling two slots.
  struct LinkEntry {
    SlotId a;
    SlotId b;
    FlowLink link;
  };

  [[nodiscard]] SlotEndpoint& slotRef(SlotId slot);
  void dispatch(SlotId slot, SlotEvent event, const Signal& signal);
  void flushOutbox(Outbox&& out);
  void detachSlot(SlotId slot);
  void maybeRequestRetryTimer();

  BoxId id_;
  std::string name_;
  IdAllocator<SlotId> slot_ids_;
  std::map<SlotId, SlotEndpoint> slots_;
  std::map<ChannelId, ChannelEnd> channels_;
  std::map<SlotId, EndpointGoal> single_goals_;
  std::vector<std::unique_ptr<LinkEntry>> links_;
  std::map<SlotId, LinkEntry*> link_of_;
  Output output_;
  bool retry_timer_outstanding_ = false;
  bool stabilization_enabled_ = false;

 public:
  // Pacing for openslot retries; runtimes may tune it.
  SimDuration retryDelay{200'000};  // 200 ms
  static constexpr const char* kRetryTimerTag = "__cmc_retry";
};

}  // namespace cmc
