#include "core/box.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace cmc {

namespace {

// Goal lifecycle event (posted/achieved/cancelled). One relaxed load each
// for the recorder and the registry when observability is off.
void traceGoal(obs::EventKind kind, const std::string& box, GoalKind goal,
               SlotId slot) {
  if (obs::TraceRecorder* rec = obs::recorder()) {
    obs::TraceEvent ev;
    ev.kind = kind;
    ev.name.assign(toString(goal));
    ev.actor = box;
    ev.id = slot.value();
    rec->record(std::move(ev));
  }
  if (obs::MetricsRegistry* m = obs::metrics()) {
    switch (kind) {
      case obs::EventKind::goalPosted: m->counter("goal.posted").add(); break;
      case obs::EventKind::goalAchieved: m->counter("goal.achieved").add(); break;
      case obs::EventKind::goalCancelled:
        m->counter("goal.cancelled").add();
        break;
      default: break;
    }
  }
}

}  // namespace

Box::Box(BoxId id, std::string name) : id_(id), name_(std::move(name)) {}

std::vector<SlotId> Box::addChannelEnd(ChannelId channel, std::uint32_t tunnels,
                                       bool initiator, const std::string& tag,
                                       const std::string& peer_name) {
  ChannelEnd end;
  end.id = channel;
  end.initiator = initiator;
  end.peer = peer_name;
  for (std::uint32_t t = 0; t < tunnels; ++t) {
    const SlotId slot = slot_ids_.next();
    auto [it, inserted] = slots_.emplace(slot, SlotEndpoint{slot, initiator});
    it->second.setStabilizing(stabilization_enabled_);
    end.slots.push_back(slot);
  }
  std::vector<SlotId> created = end.slots;
  channels_.emplace(channel, std::move(end));
  if (!initiator) {
    onIncomingChannel(channel, peer_name);
  } else {
    onChannelUp(channel, tag);
  }
  return created;
}

void Box::removeChannel(ChannelId channel) {
  auto it = channels_.find(channel);
  if (it == channels_.end()) return;
  for (SlotId slot : it->second.slots) {
    detachSlot(slot);
    slots_.erase(slot);
  }
  channels_.erase(it);
  onChannelDown(channel);
}

bool Box::hasChannel(ChannelId channel) const noexcept {
  return channels_.count(channel) != 0;
}

std::vector<SlotId> Box::slotsOf(ChannelId channel) const {
  auto it = channels_.find(channel);
  if (it == channels_.end()) return {};
  return it->second.slots;
}

ChannelId Box::channelOf(SlotId slot) const {
  for (const auto& [id, end] : channels_) {
    if (std::find(end.slots.begin(), end.slots.end(), slot) != end.slots.end()) {
      return id;
    }
  }
  return ChannelId{};
}

void Box::setGoal(SlotId slot, EndpointGoal goal) {
  detachSlot(slot);
  auto [it, inserted] = single_goals_.emplace(slot, std::move(goal));
  traceGoal(obs::EventKind::goalPosted, name_, kindOf(it->second), slot);
  Outbox out;
  attach(it->second, slotRef(slot), out);
  flushOutbox(std::move(out));
  maybeRequestRetryTimer();
}

void Box::linkSlots(SlotId a, SlotId b) {
  if (auto it = link_of_.find(a); it != link_of_.end()) {
    LinkEntry* entry = it->second;
    if ((entry->a == a && entry->b == b) || (entry->a == b && entry->b == a)) {
      return;  // same annotation: the same goal object keeps control
    }
  }
  detachSlot(a);
  detachSlot(b);
  auto entry = std::make_unique<LinkEntry>();
  entry->a = a;
  entry->b = b;
  LinkEntry* raw = entry.get();
  links_.push_back(std::move(entry));
  link_of_[a] = raw;
  link_of_[b] = raw;
  traceGoal(obs::EventKind::goalPosted, name_, GoalKind::flowLink, a);
  Outbox out;
  raw->link.attach(slotRef(a), slotRef(b), out);
  flushOutbox(std::move(out));
}

void Box::clearGoal(SlotId slot) { detachSlot(slot); }

std::optional<GoalKind> Box::goalKind(SlotId slot) const {
  if (auto it = single_goals_.find(slot); it != single_goals_.end()) {
    return kindOf(it->second);
  }
  if (link_of_.count(slot) != 0) return GoalKind::flowLink;
  return std::nullopt;
}

void Box::fireRetries() {
  retry_timer_outstanding_ = false;
  for (auto& [slot, goal] : single_goals_) {
    if (retryPending(goal)) {
      Outbox out;
      retry(goal, slotRef(slot), out);
      if (!out.empty()) {
        if (obs::MetricsRegistry* m = obs::metrics()) {
          m->counter("goal.openslot_retries").add();
        }
      }
      flushOutbox(std::move(out));
    }
  }
  maybeRequestRetryTimer();
}

void Box::enableStabilization(bool on) {
  stabilization_enabled_ = on;
  for (auto& [id, slot] : slots_) slot.setStabilizing(on);
}

void Box::refreshGoals() {
  for (auto& [slot_id, goal] : single_goals_) {
    if (converged(goal, slotRef(slot_id))) continue;
    Outbox out;
    refresh(goal, slotRef(slot_id), out);
    if (!out.empty()) {
      if (obs::MetricsRegistry* m = obs::metrics()) {
        m->counter("goal.refreshes").add();
      }
    }
    flushOutbox(std::move(out));
  }
  for (auto& entry : links_) {
    if (entry->link.converged(slotRef(entry->a), slotRef(entry->b))) continue;
    Outbox out;
    entry->link.stabilize(slotRef(entry->a), slotRef(entry->b), out);
    if (!out.empty()) {
      if (obs::MetricsRegistry* m = obs::metrics()) {
        m->counter("goal.refreshes").add();
      }
    }
    flushOutbox(std::move(out));
  }
  maybeRequestRetryTimer();
}

bool Box::needsRefresh() const {
  for (const auto& [slot_id, goal] : single_goals_) {
    if (!converged(goal, slot(slot_id))) return true;
  }
  for (const auto& entry : links_) {
    if (!entry->link.converged(slot(entry->a), slot(entry->b))) return true;
  }
  return false;
}

void Box::crashRestart() {
  // Everything volatile dies with the process: undrained outputs and all
  // protocol endpoint state. Channel wiring and goal annotations survive
  // (configuration, not run-state).
  output_ = Output{};
  for (auto& [channel, end] : channels_) {
    for (SlotId slot_id : end.slots) {
      SlotEndpoint fresh{slot_id, end.initiator};
      fresh.setStabilizing(stabilization_enabled_);
      slots_[slot_id] = fresh;
    }
  }
  for (auto& [slot_id, goal] : single_goals_) {
    Outbox out;
    attach(goal, slotRef(slot_id), out);
    flushOutbox(std::move(out));
  }
  for (auto& entry : links_) {
    Outbox out;
    entry->link.attach(slotRef(entry->a), slotRef(entry->b), out);
    flushOutbox(std::move(out));
  }
  if (stabilization_enabled_) {
    // A peer may still be flowing on a tunnel we no longer remember; it has
    // no reason to ever signal first (it is converged from its own view).
    // Probe every still-closed goal-bound slot with a close so both ends
    // fall back to closed and re-converge from there.
    for (auto& [slot_id, slot] : slots_) {
      if (slot.state() != ProtocolState::closed) continue;
      if (single_goals_.count(slot_id) == 0 && link_of_.count(slot_id) == 0) {
        continue;
      }
      output_.tunnel.push_back(OutSignal{slot_id, slot.probeClose()});
    }
  }
  if (obs::MetricsRegistry* m = obs::metrics()) {
    m->counter("box.crash_restarts").add();
  }
  maybeRequestRetryTimer();
  onCrashRestart();
}

bool Box::hasPendingRetries() const {
  for (const auto& [slot, goal] : single_goals_) {
    if (retryPending(goal)) return true;
  }
  return false;
}

const SlotEndpoint& Box::slot(SlotId slot) const {
  auto it = slots_.find(slot);
  if (it == slots_.end()) throw std::logic_error("unknown slot");
  return it->second;
}

bool Box::goalSatisfied(SlotId slot) const {
  if (auto it = single_goals_.find(slot); it != single_goals_.end()) {
    switch (kindOf(it->second)) {
      case GoalKind::openSlot:
      case GoalKind::holdSlot:
        return slotState(slot) == ProtocolState::flowing;
      case GoalKind::closeSlot:
        return slotState(slot) == ProtocolState::closed;
      case GoalKind::flowLink:
        break;  // unreachable: flowlinks are not single-slot goals
    }
    return false;
  }
  if (auto it = link_of_.find(slot); it != link_of_.end()) {
    return FlowLink::matched(this->slot(it->second->a), this->slot(it->second->b));
  }
  return false;
}

ProtocolState Box::slotState(SlotId slot) const { return this->slot(slot).state(); }

void Box::deliverTunnel(SlotId slot, const Signal& signal) {
  auto it = slots_.find(slot);
  if (it == slots_.end()) return;  // raced with channel teardown
  // Goal-achieved edges (posted goal first reaching its target state) are
  // only detectable across the delivery; evaluate the predicate on both
  // sides when observability is on.
  const bool observing =
      obs::recorder() != nullptr || obs::metrics() != nullptr;
  const bool satisfied_before = observing && goalSatisfied(slot);
  const DeliverResult result = it->second.deliver(signal);
  if (result.autoReply) {
    output_.tunnel.push_back(OutSignal{slot, *result.autoReply});
  }
  dispatch(slot, result.event, signal);
  if (observing && !satisfied_before && goalSatisfied(slot)) {
    if (auto kind = goalKind(slot)) {
      traceGoal(obs::EventKind::goalAchieved, name_, *kind, slot);
    }
  }
  onSlotActivity(slot);
  maybeRequestRetryTimer();
}

void Box::deliverMeta(ChannelId channel, const MetaSignal& meta) {
  if (meta.kind == MetaKind::teardown) {
    removeChannel(channel);
    return;
  }
  onMeta(channel, meta);
}

void Box::fireTimer(const std::string& tag) {
  if (tag == kRetryTimerTag) {
    fireRetries();
    return;
  }
  onTimer(tag);
}

void Box::channelUp(ChannelId channel, const std::string& tag,
                    const std::vector<SlotId>& slots) {
  (void)channel;
  (void)tag;
  (void)slots;
  // addChannelEnd already invoked the hook; method retained for runtimes
  // that separate registration from notification.
}

Box::Output Box::drainOutput() {
  Output out = std::move(output_);
  output_ = Output{};
  return out;
}

void Box::setSlotMute(SlotId slot, bool mute_in, bool mute_out) {
  auto it = single_goals_.find(slot);
  if (it == single_goals_.end()) return;
  Outbox out;
  setMute(it->second, mute_in, mute_out, slotRef(slot), out);
  flushOutbox(std::move(out));
}

void Box::setSlotAddress(SlotId slot, MediaAddress addr) {
  auto it = single_goals_.find(slot);
  if (it == single_goals_.end()) return;
  Outbox out;
  std::visit(
      [&](auto& goal) {
        using T = std::decay_t<decltype(goal)>;
        if constexpr (!std::is_same_v<T, CloseSlotGoal>) {
          goal.setAddress(addr, slotRef(slot), out);
        }
      },
      it->second);
  flushOutbox(std::move(out));
}

bool Box::reselectSlotCodec(SlotId slot, Codec codec) {
  auto it = single_goals_.find(slot);
  if (it == single_goals_.end()) return false;
  Outbox out;
  bool ok = false;
  std::visit(
      [&](auto& goal) {
        using T = std::decay_t<decltype(goal)>;
        if constexpr (!std::is_same_v<T, CloseSlotGoal>) {
          ok = goal.reselect(codec, slotRef(slot), out);
        }
      },
      it->second);
  flushOutbox(std::move(out));
  return ok;
}

void Box::sendMeta(ChannelId channel, MetaSignal meta) {
  output_.meta.emplace_back(channel, std::move(meta));
}

void Box::requestChannel(std::string target, std::uint32_t tunnels,
                         std::string tag) {
  output_.channelRequests.push_back(
      ChannelRequest{std::move(target), tunnels, std::move(tag)});
}

void Box::destroyChannel(ChannelId channel) {
  output_.teardowns.push_back(channel);
  removeChannel(channel);
}

void Box::setTimer(SimDuration delay, std::string tag) {
  output_.timers.push_back(TimerRequest{delay, std::move(tag)});
}

SlotEndpoint& Box::slotRef(SlotId slot) {
  auto it = slots_.find(slot);
  if (it == slots_.end()) throw std::logic_error("unknown slot");
  return it->second;
}

void Box::dispatch(SlotId slot, SlotEvent event, const Signal& signal) {
  if (auto it = single_goals_.find(slot); it != single_goals_.end()) {
    Outbox out;
    onEvent(it->second, slotRef(slot), event, out);
    flushOutbox(std::move(out));
    return;
  }
  if (auto it = link_of_.find(slot); it != link_of_.end()) {
    LinkEntry* entry = it->second;
    const SlotId other = entry->a == slot ? entry->b : entry->a;
    Outbox out;
    entry->link.onEvent(slotRef(slot), slotRef(other), event, signal, out);
    flushOutbox(std::move(out));
    return;
  }
  // No goal bound: the slot absorbs the signal (protocol state still
  // advanced, auto-replies already queued). Feature code typically binds a
  // goal the moment it creates or learns of a slot.
  log::debug("box", name_, ": signal on unbound ", slot);
}

void Box::flushOutbox(Outbox&& out) {
  for (auto& item : out.take()) {
    output_.tunnel.push_back(std::move(item));
  }
}

void Box::detachSlot(SlotId slot) {
  if (auto sit = single_goals_.find(slot); sit != single_goals_.end()) {
    traceGoal(obs::EventKind::goalCancelled, name_, kindOf(sit->second), slot);
    single_goals_.erase(sit);
  }
  auto it = link_of_.find(slot);
  if (it == link_of_.end()) return;
  LinkEntry* entry = it->second;
  traceGoal(obs::EventKind::goalCancelled, name_, GoalKind::flowLink, slot);
  link_of_.erase(entry->a);
  link_of_.erase(entry->b);
  links_.erase(std::remove_if(links_.begin(), links_.end(),
                              [entry](const auto& p) { return p.get() == entry; }),
               links_.end());
}

void Box::maybeRequestRetryTimer() {
  if (retry_timer_outstanding_ || !hasPendingRetries()) return;
  retry_timer_outstanding_ = true;
  setTimer(retryDelay, kRetryTimerTag);
}

}  // namespace cmc
