// Simulated media endpoint: the source/sink half of a user device or media
// resource.
//
// Signaling (the slot protocol) drives two pieces of state here:
//   * sending — set when the endpoint has sent a selector with a real codec
//     answering the current remote descriptor: it then emits one packet per
//     packetInterval to the remote descriptor's address;
//   * listening — which codecs this endpoint currently accepts, set from
//     its own outstanding descriptor; per the paper's relaxed
//     synchronization (Section VI-B), packets that arrive before the
//     endpoint is ready count as *clipped*.
#pragma once

#include <map>
#include <optional>
#include <set>

#include "media/network.hpp"

namespace cmc {

class MediaEndpoint : public MediaSink {
 public:
  MediaEndpoint(EndpointId id, MediaAddress addr, MediaNetwork& network,
                EventLoop& loop)
      : id_(id), addr_(addr), network_(network), loop_(loop) {
    network_.attach(addr_, this);
  }

  ~MediaEndpoint() override { network_.detach(addr_); }

  MediaEndpoint(const MediaEndpoint&) = delete;
  MediaEndpoint& operator=(const MediaEndpoint&) = delete;

  [[nodiscard]] EndpointId id() const noexcept { return id_; }
  [[nodiscard]] const MediaAddress& address() const noexcept { return addr_; }

  // Mobility: move this endpoint to a new address (packets to the old
  // address are dropped from now on, as in a real network).
  void rebind(const MediaAddress& addr) {
    network_.detach(addr_);
    addr_ = addr;
    network_.attach(addr_, this);
  }

  struct SendState {
    MediaAddress target;
    Codec codec = Codec::noMedia;
  };

  // Start/stop transmitting. Passing nullopt stops the packet ticker.
  void setSending(std::optional<SendState> state) {
    sending_ = state;
    if (sending_ && !isNoMedia(sending_->codec)) {
      ++ticker_generation_;
      scheduleTick();
    } else {
      ++ticker_generation_;  // cancels in-flight ticks
    }
  }

  // Start/stop accepting media. Empty codec set = not listening.
  void setListening(std::set<Codec> codecs) { listening_ = std::move(codecs); }

  [[nodiscard]] bool sendingNow() const noexcept {
    return sending_ && !isNoMedia(sending_->codec);
  }
  [[nodiscard]] const std::optional<SendState>& sendingState() const noexcept {
    return sending_;
  }
  [[nodiscard]] bool listeningNow() const noexcept { return !listening_.empty(); }

  void onMediaPacket(const MediaPacket& packet) override {
    if (listening_.count(packet.codec) == 0) {
      ++clipped_;
      return;
    }
    ++received_;
    for (EndpointId src : packet.contributors) {
      last_heard_[src] = loop_.now();
    }
  }

  [[nodiscard]] std::uint64_t packetsSent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t packetsReceived() const noexcept { return received_; }
  [[nodiscard]] std::uint64_t packetsClipped() const noexcept { return clipped_; }

  // Sources heard within the trailing `window` of simulated time.
  [[nodiscard]] std::set<EndpointId> audibleSources(
      SimDuration window = SimDuration{100'000}) const {
    std::set<EndpointId> out;
    for (const auto& [src, when] : last_heard_) {
      if (loop_.now() - when <= window) out.insert(src);
    }
    return out;
  }

  [[nodiscard]] bool hears(EndpointId source,
                           SimDuration window = SimDuration{100'000}) const {
    auto it = last_heard_.find(source);
    return it != last_heard_.end() && loop_.now() - it->second <= window;
  }

  void resetStats() {
    sent_ = received_ = clipped_ = 0;
    last_heard_.clear();
  }

  SimDuration packetInterval{20'000};  // 20 ms, typical audio framing

 private:
  void scheduleTick() {
    const std::uint64_t generation = ticker_generation_;
    loop_.schedule(packetInterval, [this, generation]() {
      if (generation != ticker_generation_ || !sendingNow()) return;
      MediaPacket packet;
      packet.from = addr_;
      packet.to = sending_->target;
      packet.codec = sending_->codec;
      packet.seq = seq_++;
      packet.contributors = {id_};
      ++sent_;
      network_.send(std::move(packet));
      scheduleTick();
    });
  }

  EndpointId id_;
  MediaAddress addr_;
  MediaNetwork& network_;
  EventLoop& loop_;
  std::optional<SendState> sending_;
  std::set<Codec> listening_;
  std::uint64_t ticker_generation_ = 0;
  std::uint32_t seq_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t clipped_ = 0;
  std::map<EndpointId, SimTime> last_heard_;
};

}  // namespace cmc
