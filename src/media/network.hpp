// Media-plane network: routes packets directly between endpoint addresses.
//
// Media packets travel directly between media endpoints — never through
// application servers (paper Section I, Fig. 1); the media network
// therefore knows nothing about boxes or signaling. Delivery is
// best-effort with a fixed small latency: unlike the signaling channel
// (TCP), limited loss is preferable to delay (RTP), so packets addressed
// to nobody are silently dropped, which is exactly the "thrown away"
// behavior of the paper's Fig. 2 pathology.
#pragma once

#include <map>

#include "media/packet.hpp"
#include "sim/event_loop.hpp"

namespace cmc {

class MediaSink {
 public:
  virtual ~MediaSink() = default;
  virtual void onMediaPacket(const MediaPacket& packet) = 0;
};

class MediaNetwork {
 public:
  explicit MediaNetwork(EventLoop& loop, SimDuration latency = SimDuration{10'000})
      : loop_(loop), latency_(latency) {}

  void attach(const MediaAddress& addr, MediaSink* sink) { sinks_[addr] = sink; }
  void detach(const MediaAddress& addr) { sinks_.erase(addr); }

  void send(MediaPacket packet) {
    ++sent_;
    packet.sent_at = loop_.now();
    loop_.schedule(latency_, [this, packet = std::move(packet)]() {
      auto it = sinks_.find(packet.to);
      if (it == sinks_.end()) {
        ++dropped_;  // addressed to nobody: thrown away
        return;
      }
      ++delivered_;
      it->second->onMediaPacket(packet);
    });
  }

  [[nodiscard]] std::uint64_t packetsSent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t packetsDelivered() const noexcept { return delivered_; }
  [[nodiscard]] std::uint64_t packetsDropped() const noexcept { return dropped_; }

 private:
  EventLoop& loop_;
  SimDuration latency_;
  std::map<MediaAddress, MediaSink*> sinks_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace cmc
