// Simulated RTP-like media packets.
//
// The paper's media channels carry RTP between endpoint addresses; here a
// packet carries, instead of audio samples, the set of original sources
// audible in it. That makes the correctness conditions of the paper's
// scenarios directly observable: "B is left transmitting to an endpoint
// that throws the packets away" or "C can hear the whisper of the
// supervisor" become assertions over contributor sets.
#pragma once

#include <cstdint>
#include <vector>

#include "codec/descriptor.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace cmc {

struct MediaPacket {
  MediaAddress from;
  MediaAddress to;
  Codec codec = Codec::noMedia;
  std::uint32_t seq = 0;
  SimTime sent_at;
  // Original media sources mixed into this packet (one entry for a plain
  // endpoint, several after a conference bridge).
  std::vector<EndpointId> contributors;
};

}  // namespace cmc
