// Conference bridge: the media resource that performs audio mixing
// (paper Section IV-B, Fig. 7).
//
// Each *leg* of the bridge is a full media endpoint: toward the bridge an
// audio channel carries the voice of a single user; away from the bridge it
// carries the mix selected by the bridge's mix matrix. The default matrix
// is the standard conference mix — every leg hears every other leg but not
// itself. Partial-muting scenarios (business muting, emergency-services
// muting, whisper training) are just different matrices, set by the
// application server through standardized meta-signals; the bridge applies
// whatever matrix it is told (paper: "they are just different mixes of the
// three audio inputs").
#pragma once

#include <vector>

#include "media/endpoint.hpp"

namespace cmc {

class ConferenceBridge {
 public:
  ConferenceBridge(MediaNetwork& network, EventLoop& loop)
      : network_(network), loop_(loop) {}

  ~ConferenceBridge() {
    for (auto& leg : legs_) network_.detach(leg.addr);
  }

  ConferenceBridge(const ConferenceBridge&) = delete;
  ConferenceBridge& operator=(const ConferenceBridge&) = delete;

  // Add a leg listening at `addr`. Returns the leg index. The mix matrix
  // grows with full-mesh defaults (hear everyone but yourself).
  std::size_t addLeg(MediaAddress addr) {
    const std::size_t index = legs_.size();
    Leg leg;
    leg.addr = addr;
    leg.sink = std::make_unique<Sink>(this, index);
    network_.attach(addr, leg.sink.get());
    legs_.push_back(std::move(leg));
    for (auto& row : mix_) row.push_back(true);
    mix_.emplace_back(legs_.size(), true);
    mix_.back()[index] = false;  // never hear yourself
    return index;
  }

  [[nodiscard]] std::size_t legCount() const noexcept { return legs_.size(); }
  [[nodiscard]] const MediaAddress& legAddress(std::size_t leg) const {
    return legs_[leg].addr;
  }

  // Signaling-driven per-leg state, mirroring MediaEndpoint.
  void setLegSending(std::size_t leg, std::optional<MediaEndpoint::SendState> state) {
    legs_[leg].sending = state;
    if (state && !isNoMedia(state->codec)) startTicker();
  }
  void setLegListening(std::size_t leg, std::set<Codec> codecs) {
    legs_[leg].listening = std::move(codecs);
  }

  // Mix control: can leg `to` hear the input arriving on leg `from`?
  void setAudible(std::size_t from, std::size_t to, bool audible) {
    mix_[to][from] = audible && from != to;
  }
  [[nodiscard]] bool audible(std::size_t from, std::size_t to) const {
    return mix_[to][from];
  }

  [[nodiscard]] std::uint64_t legPacketsIn(std::size_t leg) const {
    return legs_[leg].received;
  }
  [[nodiscard]] std::uint64_t legPacketsOut(std::size_t leg) const {
    return legs_[leg].emitted;
  }

  SimDuration packetInterval{20'000};
  // Inputs older than this fall out of the mix (speaker went silent).
  SimDuration mixWindow{100'000};

 private:
  struct Leg {
    MediaAddress addr;
    std::optional<MediaEndpoint::SendState> sending;
    std::set<Codec> listening;
    // Freshest contribution per original source heard on this leg.
    std::map<EndpointId, SimTime> inputs;
    std::set<EndpointId> everHeard;
    std::uint64_t received = 0;
    std::uint64_t emitted = 0;
    std::unique_ptr<MediaSink> sink;
  };

  struct Sink : MediaSink {
    Sink(ConferenceBridge* bridge, std::size_t leg) : bridge(bridge), leg(leg) {}
    void onMediaPacket(const MediaPacket& packet) override {
      bridge->onLegPacket(leg, packet);
    }
    ConferenceBridge* bridge;
    std::size_t leg;
  };

  void onLegPacket(std::size_t index, const MediaPacket& packet) {
    Leg& leg = legs_[index];
    if (leg.listening.count(packet.codec) == 0) return;  // not negotiated
    ++leg.received;
    for (EndpointId src : packet.contributors) {
      leg.inputs[src] = loop_.now();
      leg.everHeard.insert(src);
    }
  }

  void startTicker() {
    if (ticking_) return;
    ticking_ = true;
    tick();
  }

  void tick() {
    loop_.schedule(packetInterval, [this]() {
      bool any_sending = false;
      for (std::size_t j = 0; j < legs_.size(); ++j) {
        Leg& out = legs_[j];
        if (!out.sending || isNoMedia(out.sending->codec)) continue;
        any_sending = true;
        MediaPacket packet;
        packet.from = out.addr;
        packet.to = out.sending->target;
        packet.codec = out.sending->codec;
        packet.seq = seq_++;
        for (std::size_t i = 0; i < legs_.size(); ++i) {
          if (!mix_[j][i]) continue;
          for (const auto& [src, when] : legs_[i].inputs) {
            if (loop_.now() - when <= mixWindow) packet.contributors.push_back(src);
          }
        }
        if (!packet.contributors.empty()) {
          ++out.emitted;
          network_.send(std::move(packet));
        }
      }
      if (any_sending) {
        tick();
      } else {
        ticking_ = false;
      }
    });
  }

  MediaNetwork& network_;
  EventLoop& loop_;
  std::vector<Leg> legs_;
  // mix_[to][from]: leg `to` hears input of leg `from`.
  std::vector<std::vector<bool>> mix_;
  bool ticking_ = false;
  std::uint32_t seq_ = 0;
};

}  // namespace cmc
