#include "net/tcp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <variant>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace cmc::net {

TcpSignalingPeer::TcpSignalingPeer(int fd) : fd_(fd) {
  // Signaling is latency-sensitive and messages are tiny: disable Nagle.
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

TcpSignalingPeer::~TcpSignalingPeer() {
  close();
  if (reader_.joinable()) reader_.join();
}

void TcpSignalingPeer::start(MessageHandler on_message, ClosedHandler on_closed) {
  on_message_ = std::move(on_message);
  on_closed_ = std::move(on_closed);
  reader_ = std::thread([this]() { readLoop(); });
}

bool TcpSignalingPeer::send(const ChannelMessage& message) {
  if (!open_.load()) return false;
  if (drop_next_.exchange(false)) {
    if (obs::MetricsRegistry* m = obs::metrics()) {
      m->counter("net.frames_dropped").add();
    }
    return true;  // the frame was "sent" — and lost below us
  }
  std::vector<std::uint8_t> frame;
  obs::TraceRecorder* rec = obs::recorder();
  if (rec != nullptr && rec->propagationEnabled()) {
    // Stamp the sender's causal context in-band (frame tag 2/3) unless the
    // caller already attached one; the far end's runtime adopts it when it
    // turns the decoded message into a stimulus.
    ChannelMessage stamped = message;
    obs::TraceContext& ctx = std::visit(
        [](auto& m) -> obs::TraceContext& { return m.ctx; }, stamped);
    if (ctx.empty()) ctx = obs::currentContext();
    frame = encodeFrame(stamped);
  } else {
    frame = encodeFrame(message);
  }
  if (corrupt_next_.exchange(false) && frame.size() > 8) {
    frame.back() ^= 0x5a;  // body byte: header checksum now rejects it
    if (obs::MetricsRegistry* m = obs::metrics()) {
      m->counter("net.frames_corrupted").add();
    }
  }
  std::lock_guard<std::mutex> lock(send_mutex_);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      open_.store(false);
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  if (obs::MetricsRegistry* m = obs::metrics()) {
    m->counter("net.frames_sent").add();
    m->counter("net.bytes_sent").add(frame.size());
  }
  return true;
}

void TcpSignalingPeer::close() {
  bool was_open = open_.exchange(false);
  if (was_open) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
  }
}

void TcpSignalingPeer::readLoop() {
  FrameDecoder decoder;
  std::uint64_t corrupt_seen = 0;
  std::uint8_t chunk[4096];
  while (open_.load()) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    decoder.feed(chunk, static_cast<std::size_t>(n));
    obs::MetricsRegistry* m = obs::metrics();
    if (m != nullptr) m->counter("net.bytes_received").add(static_cast<std::uint64_t>(n));
    while (auto message = decoder.next()) {
      if (m != nullptr) m->counter("net.frames_received").add();
      if (on_message_) on_message_(*message);
    }
    if (decoder.corruptFrames() > corrupt_seen) {
      if (m != nullptr) {
        m->counter("net.frames_rejected_checksum")
            .add(decoder.corruptFrames() - corrupt_seen);
      }
      corrupt_seen = decoder.corruptFrames();
    }
    if (decoder.error()) {
      log::warn("net", "malformed frame; dropping connection");
      break;
    }
  }
  open_.store(false);
  if (on_closed_) on_closed_();
}

std::unique_ptr<TcpSignalingPeer> TcpSignalingPeer::connect(
    const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return nullptr;
  }
  return std::make_unique<TcpSignalingPeer>(fd);
}

TcpSignalingListener::TcpSignalingListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return;
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd_, 8) != 0) {
    ::close(fd_);
    fd_ = -1;
    return;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
}

TcpSignalingListener::~TcpSignalingListener() { close(); }

std::unique_ptr<TcpSignalingPeer> TcpSignalingListener::acceptOne() {
  if (fd_ < 0) return nullptr;
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) return nullptr;
  return std::make_unique<TcpSignalingPeer>(client);
}

void TcpSignalingListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace cmc::net
