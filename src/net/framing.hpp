// Length-prefixed framing of ChannelMessages over a byte stream.
//
// A signaling channel between physical components is typically TCP (paper
// Section III-A): two-way, FIFO, reliable. TCP gives a byte stream, so
// messages are delimited with a 4-byte little-endian length prefix followed
// by the ChannelMessage serialization from src/channel.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "channel/channel.hpp"

namespace cmc::net {

// Encode one message as a frame.
[[nodiscard]] inline std::vector<std::uint8_t> encodeFrame(
    const ChannelMessage& message) {
  ByteWriter body;
  serialize(message, body);
  ByteWriter frame;
  frame.u32(static_cast<std::uint32_t>(body.size()));
  std::vector<std::uint8_t> out = frame.take();
  const auto& b = body.bytes();
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

// Incremental decoder: feed arbitrary byte chunks, pop whole messages.
class FrameDecoder {
 public:
  // Maximum accepted frame size; malformed/hostile lengths are rejected.
  static constexpr std::uint32_t kMaxFrame = 1 << 20;

  void feed(const std::uint8_t* data, std::size_t size) {
    buffer_.insert(buffer_.end(), data, data + size);
  }

  // Returns the next complete message, or nullopt if more bytes are needed.
  // A malformed frame poisons the decoder (error() becomes true): the
  // stream has lost sync and the connection should be dropped.
  [[nodiscard]] std::optional<ChannelMessage> next() {
    if (error_ || buffer_.size() < 4) return std::nullopt;
    std::uint32_t length = 0;
    for (int i = 0; i < 4; ++i) {
      length |= static_cast<std::uint32_t>(buffer_[static_cast<std::size_t>(i)])
                << (8 * i);
    }
    if (length > kMaxFrame) {
      error_ = true;
      return std::nullopt;
    }
    if (buffer_.size() < 4 + static_cast<std::size_t>(length)) return std::nullopt;
    ByteReader reader(buffer_.data() + 4, length);
    auto message = deserializeChannelMessage(reader);
    buffer_.erase(buffer_.begin(), buffer_.begin() + 4 + length);
    if (!message) {
      error_ = true;
      return std::nullopt;
    }
    return message;
  }

  [[nodiscard]] bool error() const noexcept { return error_; }
  [[nodiscard]] std::size_t buffered() const noexcept { return buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
  bool error_ = false;
};

}  // namespace cmc::net
