// Length-prefixed framing of ChannelMessages over a byte stream.
//
// A signaling channel between physical components is typically TCP (paper
// Section III-A): two-way, FIFO, reliable. TCP gives a byte stream, so
// messages are delimited with an 8-byte header — a 4-byte little-endian
// body length and a 4-byte FNV-1a checksum of the body — followed by the
// ChannelMessage serialization from src/channel.
//
// The checksum guards the signaling plane against payload corruption
// (faulty middlebox, bit rot in a relaying component): a frame whose body
// fails the check is discarded as if the network had lost it — the
// protocol already self-stabilizes under loss (docs/FAULTS.md) — rather
// than poisoning the whole connection. Only a header that has plainly lost
// sync (absurd length) or a checksum-valid body that still fails to parse
// (a framing bug, not line noise) kills the stream.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "channel/channel.hpp"
#include "util/bytes.hpp"

namespace cmc::net {

[[nodiscard]] inline std::uint32_t frameChecksum(const std::uint8_t* data,
                                                 std::size_t size) {
  return static_cast<std::uint32_t>(fnv1a(data, size));
}

// Encode one message as a frame: [length u32][checksum u32][body].
[[nodiscard]] inline std::vector<std::uint8_t> encodeFrame(
    const ChannelMessage& message) {
  ByteWriter body;
  serialize(message, body);
  const auto& b = body.bytes();
  ByteWriter frame;
  frame.u32(static_cast<std::uint32_t>(b.size()));
  frame.u32(frameChecksum(b.data(), b.size()));
  std::vector<std::uint8_t> out = frame.take();
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

// Incremental decoder: feed arbitrary byte chunks, pop whole messages.
class FrameDecoder {
 public:
  // Maximum accepted frame size; malformed/hostile lengths are rejected.
  static constexpr std::uint32_t kMaxFrame = 1 << 20;

  void feed(const std::uint8_t* data, std::size_t size) {
    buffer_.insert(buffer_.end(), data, data + size);
  }

  // Returns the next complete message, or nullopt if more bytes are needed.
  // A frame failing its checksum is silently skipped (corruptFrames()
  // counts it) — equivalent to network loss. A malformed frame that passes
  // the checksum, or a hostile length, poisons the decoder (error()
  // becomes true): the stream has lost sync and the connection should be
  // dropped.
  [[nodiscard]] std::optional<ChannelMessage> next() {
    while (!error_ && buffer_.size() >= kHeaderSize) {
      const std::uint32_t length = readU32(0);
      const std::uint32_t checksum = readU32(4);
      if (length > kMaxFrame) {
        error_ = true;
        return std::nullopt;
      }
      if (buffer_.size() < kHeaderSize + static_cast<std::size_t>(length)) {
        return std::nullopt;
      }
      const std::uint8_t* body = buffer_.data() + kHeaderSize;
      if (frameChecksum(body, length) != checksum) {
        // Corrupted in transit: discard and let the protocol's
        // stabilization machinery treat it as a lost signal.
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() + kHeaderSize + length);
        ++corrupt_frames_;
        continue;
      }
      ByteReader reader(body, length);
      auto message = deserializeChannelMessage(reader);
      buffer_.erase(buffer_.begin(), buffer_.begin() + kHeaderSize + length);
      if (!message) {
        error_ = true;
        return std::nullopt;
      }
      return message;
    }
    return std::nullopt;
  }

  [[nodiscard]] bool error() const noexcept { return error_; }
  [[nodiscard]] std::size_t buffered() const noexcept { return buffer_.size(); }
  // Frames discarded for checksum mismatch.
  [[nodiscard]] std::uint64_t corruptFrames() const noexcept {
    return corrupt_frames_;
  }

 private:
  static constexpr std::size_t kHeaderSize = 8;

  [[nodiscard]] std::uint32_t readU32(std::size_t offset) const noexcept {
    std::uint32_t value = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      value |= static_cast<std::uint32_t>(buffer_[offset + i]) << (8 * i);
    }
    return value;
  }

  std::vector<std::uint8_t> buffer_;
  bool error_ = false;
  std::uint64_t corrupt_frames_ = 0;
};

// ---------------------------------------------------------------- raw frames
// The same [length u32][checksum u32][body] header carries protocols other
// than ChannelMessage: the read-only ops/telemetry plane (obs/ops_server)
// frames opaque request/response byte bodies. Semantics match FrameDecoder:
// a checksum mismatch discards the frame as if the network lost it, a
// hostile length poisons the stream.

[[nodiscard]] inline std::vector<std::uint8_t> encodeRawFrame(
    const std::uint8_t* body, std::size_t size) {
  ByteWriter frame;
  frame.u32(static_cast<std::uint32_t>(size));
  frame.u32(frameChecksum(body, size));
  std::vector<std::uint8_t> out = frame.take();
  out.insert(out.end(), body, body + size);
  return out;
}

[[nodiscard]] inline std::vector<std::uint8_t> encodeRawFrame(
    const std::vector<std::uint8_t>& body) {
  return encodeRawFrame(body.data(), body.size());
}

// Incremental decoder for raw-body frames: feed arbitrary byte chunks, pop
// whole bodies. Corrupt frames are skipped and counted; an absurd length
// marks the stream poisoned (error()) — the connection should be dropped.
class RawFrameDecoder {
 public:
  static constexpr std::uint32_t kMaxFrame = FrameDecoder::kMaxFrame;

  void feed(const std::uint8_t* data, std::size_t size) {
    buffer_.insert(buffer_.end(), data, data + size);
  }

  [[nodiscard]] std::optional<std::vector<std::uint8_t>> next() {
    while (!error_ && buffer_.size() >= kHeaderSize) {
      const std::uint32_t length = readU32(0);
      const std::uint32_t checksum = readU32(4);
      if (length > kMaxFrame) {
        error_ = true;
        return std::nullopt;
      }
      if (buffer_.size() < kHeaderSize + static_cast<std::size_t>(length)) {
        return std::nullopt;
      }
      const std::uint8_t* body = buffer_.data() + kHeaderSize;
      if (frameChecksum(body, length) != checksum) {
        buffer_.erase(buffer_.begin(), buffer_.begin() + kHeaderSize + length);
        ++corrupt_frames_;
        continue;
      }
      std::vector<std::uint8_t> out(body, body + length);
      buffer_.erase(buffer_.begin(), buffer_.begin() + kHeaderSize + length);
      return out;
    }
    return std::nullopt;
  }

  [[nodiscard]] bool error() const noexcept { return error_; }
  [[nodiscard]] std::size_t buffered() const noexcept { return buffer_.size(); }
  [[nodiscard]] std::uint64_t corruptFrames() const noexcept {
    return corrupt_frames_;
  }

 private:
  static constexpr std::size_t kHeaderSize = 8;

  [[nodiscard]] std::uint32_t readU32(std::size_t offset) const noexcept {
    std::uint32_t value = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      value |= static_cast<std::uint32_t>(buffer_[offset + i]) << (8 * i);
    }
    return value;
  }

  std::vector<std::uint8_t> buffer_;
  bool error_ = false;
  std::uint64_t corrupt_frames_ = 0;
};

}  // namespace cmc::net
