// TCP realization of a signaling channel (paper Fig. 1: signaling rides a
// reliable transport between boxes in different physical components).
//
// A TcpSignalingPeer owns one connected socket. Sends are synchronous and
// serialized; receives run on a background reader thread that decodes
// frames and hands complete ChannelMessages to the registered callback.
// FIFO and reliability come from TCP itself, satisfying the signaling-
// channel contract of Section III-A.
//
// TcpSignalingListener accepts incoming connections on a loopback/port and
// produces peers. Both are intentionally small: the protocol and goal
// machinery neither know nor care whether their tunnel is an in-process
// deque (ChannelState), a simulated link, or this socket.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "net/framing.hpp"

namespace cmc::net {

class TcpSignalingPeer {
 public:
  using MessageHandler = std::function<void(const ChannelMessage&)>;
  using ClosedHandler = std::function<void()>;

  // Takes ownership of a connected socket fd.
  explicit TcpSignalingPeer(int fd);
  ~TcpSignalingPeer();

  TcpSignalingPeer(const TcpSignalingPeer&) = delete;
  TcpSignalingPeer& operator=(const TcpSignalingPeer&) = delete;

  // Register handlers and start the reader thread. Call once.
  void start(MessageHandler on_message, ClosedHandler on_closed = nullptr);

  // Send a message; thread-safe. Returns false if the connection is gone.
  bool send(const ChannelMessage& message);

  void close();
  [[nodiscard]] bool isOpen() const noexcept { return open_.load(); }

  // ------------------------------------------------- fault-injection hooks
  // Swallow the next send entirely (the frame never reaches the wire),
  // modeling loss below TCP — e.g. a dying relay. Test-only.
  void dropNextFrame() { drop_next_.store(true); }
  // Flip a byte in the next frame's body before sending; the peer's
  // checksum rejects it and counts it as corrupt. Test-only.
  void corruptNextFrame() { corrupt_next_.store(true); }

  // Connect to a listening peer. Returns nullptr on failure.
  [[nodiscard]] static std::unique_ptr<TcpSignalingPeer> connect(
      const std::string& host, std::uint16_t port);

 private:
  void readLoop();

  int fd_;
  std::atomic<bool> open_{true};
  std::atomic<bool> drop_next_{false};
  std::atomic<bool> corrupt_next_{false};
  std::mutex send_mutex_;
  MessageHandler on_message_;
  ClosedHandler on_closed_;
  std::thread reader_;
};

class TcpSignalingListener {
 public:
  // Bind and listen on 127.0.0.1:port (port 0 picks a free port).
  explicit TcpSignalingListener(std::uint16_t port);
  ~TcpSignalingListener();

  TcpSignalingListener(const TcpSignalingListener&) = delete;
  TcpSignalingListener& operator=(const TcpSignalingListener&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] bool ok() const noexcept { return fd_ >= 0; }

  // Block until one connection arrives (or the listener is closed);
  // returns the connected peer or nullptr.
  [[nodiscard]] std::unique_ptr<TcpSignalingPeer> acceptOne();

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace cmc::net
