// FramedConn: one blocking, framed request/response connection.
//
// Two protocols ride the raw [length][checksum][body] frames of
// net/framing.hpp — the read-only ops/telemetry plane (obs/ops_server) and
// the distributed load coordinator (load/dist). Both need the same client
// machinery: connect to a loopback peer, send whole frames (thread-safe, so
// a sampler thread can interleave with the main conversation), and pop
// complete frame bodies off the stream with the decoder state carried
// across reads. This header is that one codepath; OpsClient and the
// driver/worker links are thin protocol layers over it.
//
// Read semantics mirror the decoder contract: a corrupt frame is skipped
// like line noise (counted, never surfaced), a hostile length poisons the
// stream (lastRead() == poisoned; hang up), EOF and receive timeouts are
// reported distinctly so callers can attribute "peer died" vs "peer is
// slow" — the distinction the dist driver's failure reports are built on.
//
// Header-only on purpose: cmc_net links cmc_obs (trace stamping), and
// cmc_obs's OpsClient needs this type, so an out-of-line definition in
// either library would cycle.
#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "net/framing.hpp"

namespace cmc::net {

class FramedConn {
 public:
  enum class ReadStatus {
    none,      // no read attempted yet
    frame,     // last read produced a complete frame
    timeout,   // receive timed out with no complete frame
    closed,    // peer closed (or connection error)
    poisoned,  // hostile length header: stream lost sync, hang up
  };

  // Adopt a connected socket (server side of an accepted link).
  explicit FramedConn(int fd) : fd_(fd) {
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~FramedConn() { close(); }

  FramedConn(const FramedConn&) = delete;
  FramedConn& operator=(const FramedConn&) = delete;

  // Connect to host:port; nullptr on failure. recv_timeout_ms bounds every
  // subsequent read (a response may legitimately never come — the peer
  // discards corrupted request frames as loss — so reads must not hang).
  [[nodiscard]] static std::unique_ptr<FramedConn> connect(
      const std::string& host, std::uint16_t port,
      std::int64_t recv_timeout_ms = 5'000) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return nullptr;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return nullptr;
    }
    auto conn = std::unique_ptr<FramedConn>(new FramedConn(fd));
    conn->setRecvTimeoutMs(recv_timeout_ms);
    return conn;
  }

  void setRecvTimeoutMs(std::int64_t ms) {
    if (fd_ < 0 || ms < 0) return;
    timeval timeout{};
    timeout.tv_sec = ms / 1000;
    timeout.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  }

  // Frame `body` and send it. Thread-safe: sends are serialized, so a
  // background progress stream cannot interleave bytes with the main
  // conversation. Returns false when the connection is gone.
  bool sendFrame(const std::vector<std::uint8_t>& body) {
    return sendBytes(encodeRawFrame(body));
  }

  // Send raw bytes as-is (pre-framed, torn, or garbage — the protocol-abuse
  // tests speak malformed wire through this).
  bool sendBytes(const std::vector<std::uint8_t>& bytes) {
    std::lock_guard<std::mutex> lock(send_mutex_);
    if (fd_ < 0) return false;
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  // Next complete frame body, or nullopt — inspect lastRead() to tell a
  // timeout from EOF from a poisoned stream. Decoder state (including a
  // partially received frame) carries over between calls.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> readFrame() {
    if (fd_ < 0) {
      last_read_ = ReadStatus::closed;
      return std::nullopt;
    }
    std::uint8_t chunk[4096];
    while (true) {
      if (auto frame = decoder_.next()) {
        last_read_ = ReadStatus::frame;
        return frame;
      }
      if (decoder_.error()) {
        last_read_ = ReadStatus::poisoned;
        return std::nullopt;
      }
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n == 0) {
        last_read_ = ReadStatus::closed;
        return std::nullopt;
      }
      if (n < 0) {
        last_read_ = (errno == EAGAIN || errno == EWOULDBLOCK)
                         ? ReadStatus::timeout
                         : ReadStatus::closed;
        return std::nullopt;
      }
      decoder_.feed(chunk, static_cast<std::size_t>(n));
    }
  }

  [[nodiscard]] ReadStatus lastRead() const noexcept { return last_read_; }
  [[nodiscard]] bool isOpen() const noexcept { return fd_ >= 0; }
  [[nodiscard]] std::uint64_t corruptFrames() const noexcept {
    return decoder_.corruptFrames();
  }

  // Wake a reader blocked in readFrame() from another thread (it observes
  // EOF); the fd itself stays owned until close()/destruction.
  void shutdownNow() {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  }

  void close() {
    std::lock_guard<std::mutex> lock(send_mutex_);
    if (fd_ >= 0) {
      ::shutdown(fd_, SHUT_RDWR);
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
  RawFrameDecoder decoder_;
  ReadStatus last_read_ = ReadStatus::none;
  std::mutex send_mutex_;
};

}  // namespace cmc::net
