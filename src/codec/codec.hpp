// Media and codec model (paper Sections III-B and VI-A).
//
// A *medium* is the kind of content a media channel carries (audio, video,
// text, data). A *codec* is a data format for a medium, e.g. G.711 is a
// higher-fidelity, higher-bandwidth audio codec and G.726 a lower one.
// `Codec::noMedia` is the distinguished pseudo-codec indicating no media
// transmission; it is how muting is expressed in descriptors and selectors.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <span>
#include <string_view>

#include "util/small_vec.hpp"

namespace cmc {

enum class Medium : std::uint8_t {
  audio = 0,
  video = 1,
  text = 2,
  data = 3,
};

[[nodiscard]] std::string_view toString(Medium medium) noexcept;
std::ostream& operator<<(std::ostream& os, Medium medium);

// Well-known codecs. The numeric values are the wire encoding, so they are
// stable. noMedia is deliberately 0.
enum class Codec : std::uint16_t {
  noMedia = 0,
  // Audio, in roughly descending fidelity.
  l16 = 1,      // 16-bit linear PCM
  g711u = 2,    // PCM mu-law, toll quality
  g711a = 3,    // PCM A-law, toll quality
  g722 = 4,     // wideband
  g726 = 5,     // ADPCM, lower fidelity / bandwidth
  g729 = 6,     // low bandwidth
  gsmFr = 7,    // GSM full rate
  // Video.
  mpeg2 = 20,
  h263 = 21,
  h261 = 22,
  mjpeg = 23,
  // Text / data.
  t140 = 40,    // real-time text
  rawData = 41,
};

struct CodecInfo {
  Codec codec;
  Medium medium;
  std::string_view name;
  std::uint32_t bandwidth_kbps;  // nominal stream bandwidth
  std::uint8_t fidelity;         // relative rank within a medium; higher is better
};

// Static registry of codec metadata.
//
// info(Codec::noMedia) is valid but has no meaningful medium; callers should
// branch on isNoMedia() first.
[[nodiscard]] const CodecInfo& info(Codec codec) noexcept;
[[nodiscard]] std::optional<Codec> codecFromName(std::string_view name) noexcept;
[[nodiscard]] std::span<const CodecInfo> allCodecs() noexcept;

[[nodiscard]] constexpr bool isNoMedia(Codec codec) noexcept {
  return codec == Codec::noMedia;
}

// True if `codec` is a real codec of the given medium.
[[nodiscard]] bool codecMatchesMedium(Codec codec, Medium medium) noexcept;

std::ostream& operator<<(std::ostream& os, Codec codec);

// A codec list as carried by descriptors: priority order, best first. Lists
// are 1-3 entries in practice, so they live inline (no heap) up to 4; the
// signal hot path copies these on every hop (see DESIGN.md §4.6).
using CodecList = SmallVec<Codec, 4>;

// All real codecs of a medium, best fidelity first. Useful default
// capability set for endpoints. The returned span aliases a static table
// built once per process; the order is stable across calls.
[[nodiscard]] std::span<const Codec> codecsFor(Medium medium);

}  // namespace cmc
