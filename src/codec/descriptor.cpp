#include "codec/descriptor.hpp"

#include <algorithm>
#include <charconv>
#include <sstream>

namespace cmc {

std::string MediaAddress::toString() const {
  std::ostringstream oss;
  oss << ((ip >> 24) & 0xff) << '.' << ((ip >> 16) & 0xff) << '.'
      << ((ip >> 8) & 0xff) << '.' << (ip & 0xff) << ':' << port;
  return oss.str();
}

MediaAddress MediaAddress::parse(std::string_view dotted, std::uint16_t port) {
  std::uint32_t ip = 0;
  std::size_t pos = 0;
  for (int octet = 0; octet < 4; ++octet) {
    std::size_t dot = dotted.find('.', pos);
    std::string_view part = dotted.substr(pos, dot == std::string_view::npos
                                                   ? std::string_view::npos
                                                   : dot - pos);
    unsigned value = 0;
    std::from_chars(part.data(), part.data() + part.size(), value);
    ip = (ip << 8) | (value & 0xff);
    if (dot == std::string_view::npos) break;
    pos = dot + 1;
  }
  return MediaAddress{ip, port};
}

std::ostream& operator<<(std::ostream& os, const MediaAddress& addr) {
  return os << addr.toString();
}

bool Descriptor::wellFormed() const noexcept {
  if (codecs.empty()) return false;
  const bool has_no_media =
      std::find(codecs.begin(), codecs.end(), Codec::noMedia) != codecs.end();
  return !has_no_media || codecs.size() == 1;
}

void Descriptor::serialize(ByteWriter& w) const {
  w.u64(id.value());
  w.u32(addr.ip);
  w.u16(addr.port);
  w.u16(static_cast<std::uint16_t>(codecs.size()));
  for (Codec c : codecs) w.u16(static_cast<std::uint16_t>(c));
}

Descriptor Descriptor::deserialize(ByteReader& r) {
  Descriptor d;
  d.id = DescriptorId{r.u64()};
  d.addr.ip = r.u32();
  d.addr.port = r.u16();
  const std::uint16_t n = r.u16();
  d.codecs.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) {
    d.codecs.push_back(static_cast<Codec>(r.u16()));
  }
  return d;
}

std::ostream& operator<<(std::ostream& os, const Descriptor& d) {
  os << "desc{" << d.id << ' ' << d.addr << " [";
  for (std::size_t i = 0; i < d.codecs.size(); ++i) {
    if (i != 0) os << ' ';
    os << d.codecs[i];
  }
  return os << "]}";
}

void Selector::serialize(ByteWriter& w) const {
  w.u64(answersDescriptor.value());
  w.u32(sender.ip);
  w.u16(sender.port);
  w.u16(static_cast<std::uint16_t>(codec));
}

Selector Selector::deserialize(ByteReader& r) {
  Selector s;
  s.answersDescriptor = DescriptorId{r.u64()};
  s.sender.ip = r.u32();
  s.sender.port = r.u16();
  s.codec = static_cast<Codec>(r.u16());
  return s;
}

std::ostream& operator<<(std::ostream& os, const Selector& s) {
  return os << "sel{answers=" << s.answersDescriptor << " from=" << s.sender
            << ' ' << s.codec << '}';
}

Codec chooseCodec(const Descriptor& received, std::span<const Codec> sendable,
                  bool muteOut) noexcept {
  if (muteOut || received.isNoMedia()) return Codec::noMedia;
  // The descriptor's list is priority-ordered, best first; pick the first
  // entry the sender supports.
  for (Codec offered : received.codecs) {
    if (offered == Codec::noMedia) continue;
    if (std::find(sendable.begin(), sendable.end(), offered) != sendable.end()) {
      return offered;
    }
  }
  return Codec::noMedia;
}

Selector makeSelector(const Descriptor& received, const MediaAddress& sender,
                      std::span<const Codec> sendable, bool muteOut) noexcept {
  return Selector{received.id, sender, chooseCodec(received, sendable, muteOut)};
}

Descriptor makeDescriptor(DescriptorId id, const MediaAddress& addr,
                          std::span<const Codec> receivable, bool muteIn) {
  Descriptor d;
  d.id = id;
  d.addr = addr;
  if (muteIn || receivable.empty()) {
    d.codecs = {Codec::noMedia};
  } else {
    d.codecs.assign(receivable.begin(), receivable.end());
  }
  return d;
}

}  // namespace cmc
