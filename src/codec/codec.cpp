#include "codec/codec.hpp"

#include <algorithm>
#include <array>

namespace cmc {

namespace {

constexpr std::array<CodecInfo, 14> kCodecs{{
    {Codec::noMedia, Medium::data, "noMedia", 0, 0},
    {Codec::l16, Medium::audio, "L16", 256, 7},
    {Codec::g711u, Medium::audio, "G.711u", 64, 6},
    {Codec::g711a, Medium::audio, "G.711a", 64, 6},
    {Codec::g722, Medium::audio, "G.722", 64, 5},
    {Codec::g726, Medium::audio, "G.726", 32, 4},
    {Codec::g729, Medium::audio, "G.729", 8, 3},
    {Codec::gsmFr, Medium::audio, "GSM-FR", 13, 2},
    {Codec::mpeg2, Medium::video, "MPEG-2", 4000, 7},
    {Codec::h263, Medium::video, "H.263", 768, 5},
    {Codec::h261, Medium::video, "H.261", 384, 4},
    {Codec::mjpeg, Medium::video, "MJPEG", 2000, 3},
    {Codec::t140, Medium::text, "T.140", 1, 5},
    {Codec::rawData, Medium::data, "raw", 64, 5},
}};

}  // namespace

std::string_view toString(Medium medium) noexcept {
  switch (medium) {
    case Medium::audio: return "audio";
    case Medium::video: return "video";
    case Medium::text: return "text";
    case Medium::data: return "data";
  }
  return "?medium";
}

std::ostream& operator<<(std::ostream& os, Medium medium) {
  return os << toString(medium);
}

const CodecInfo& info(Codec codec) noexcept {
  for (const auto& ci : kCodecs) {
    if (ci.codec == codec) return ci;
  }
  return kCodecs[0];  // unknown codecs degrade to noMedia metadata
}

std::optional<Codec> codecFromName(std::string_view name) noexcept {
  for (const auto& ci : kCodecs) {
    if (ci.name == name) return ci.codec;
  }
  return std::nullopt;
}

std::span<const CodecInfo> allCodecs() noexcept { return kCodecs; }

bool codecMatchesMedium(Codec codec, Medium medium) noexcept {
  return !isNoMedia(codec) && info(codec).medium == medium;
}

std::ostream& operator<<(std::ostream& os, Codec codec) {
  return os << info(codec).name;
}

std::vector<Codec> codecsFor(Medium medium) {
  std::vector<Codec> out;
  for (const auto& ci : kCodecs) {
    if (ci.codec != Codec::noMedia && ci.medium == medium) out.push_back(ci.codec);
  }
  std::sort(out.begin(), out.end(), [](Codec a, Codec b) {
    return info(a).fidelity > info(b).fidelity;
  });
  return out;
}

}  // namespace cmc
