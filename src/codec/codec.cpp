#include "codec/codec.hpp"

#include <algorithm>
#include <array>
#include <vector>

namespace cmc {

namespace {

constexpr std::array<CodecInfo, 14> kCodecs{{
    {Codec::noMedia, Medium::data, "noMedia", 0, 0},
    {Codec::l16, Medium::audio, "L16", 256, 7},
    {Codec::g711u, Medium::audio, "G.711u", 64, 6},
    {Codec::g711a, Medium::audio, "G.711a", 64, 6},
    {Codec::g722, Medium::audio, "G.722", 64, 5},
    {Codec::g726, Medium::audio, "G.726", 32, 4},
    {Codec::g729, Medium::audio, "G.729", 8, 3},
    {Codec::gsmFr, Medium::audio, "GSM-FR", 13, 2},
    {Codec::mpeg2, Medium::video, "MPEG-2", 4000, 7},
    {Codec::h263, Medium::video, "H.263", 768, 5},
    {Codec::h261, Medium::video, "H.261", 384, 4},
    {Codec::mjpeg, Medium::video, "MJPEG", 2000, 3},
    {Codec::t140, Medium::text, "T.140", 1, 5},
    {Codec::rawData, Medium::data, "raw", 64, 5},
}};

}  // namespace

std::string_view toString(Medium medium) noexcept {
  switch (medium) {
    case Medium::audio: return "audio";
    case Medium::video: return "video";
    case Medium::text: return "text";
    case Medium::data: return "data";
  }
  return "?medium";
}

std::ostream& operator<<(std::ostream& os, Medium medium) {
  return os << toString(medium);
}

const CodecInfo& info(Codec codec) noexcept {
  for (const auto& ci : kCodecs) {
    if (ci.codec == codec) return ci;
  }
  return kCodecs[0];  // unknown codecs degrade to noMedia metadata
}

std::optional<Codec> codecFromName(std::string_view name) noexcept {
  for (const auto& ci : kCodecs) {
    if (ci.name == name) return ci.codec;
  }
  return std::nullopt;
}

std::span<const CodecInfo> allCodecs() noexcept { return kCodecs; }

bool codecMatchesMedium(Codec codec, Medium medium) noexcept {
  return !isNoMedia(codec) && info(codec).medium == medium;
}

std::ostream& operator<<(std::ostream& os, Codec codec) {
  return os << info(codec).name;
}

std::span<const Codec> codecsFor(Medium medium) {
  // Built once; every call afterwards is a table lookup with no allocation.
  // stable_sort keeps registry order among equal-fidelity codecs, matching
  // what the previous per-call sort produced.
  static const std::array<std::vector<Codec>, 4> tables = [] {
    std::array<std::vector<Codec>, 4> t;
    for (const auto& ci : kCodecs) {
      if (ci.codec != Codec::noMedia) {
        t[static_cast<std::size_t>(ci.medium)].push_back(ci.codec);
      }
    }
    for (auto& list : t) {
      std::stable_sort(list.begin(), list.end(), [](Codec a, Codec b) {
        return info(a).fidelity > info(b).fidelity;
      });
    }
    return t;
  }();
  return tables[static_cast<std::size_t>(medium)];
}

}  // namespace cmc
