// Descriptors and selectors (paper Section VI-B).
//
// A *descriptor* is a record in which an endpoint describes itself as a
// receiver of media: IP address, port, and a priority-ordered list of codecs
// it can handle. If the endpoint does not wish to receive media (muteIn),
// the only offered codec is noMedia.
//
// A *selector* is a record in which an endpoint declares its intention to
// send to the endpoint described by a descriptor: the id of the descriptor
// it answers, the sender's IP address and port, and the single codec it will
// use (noMedia if muteOut, or if answering a noMedia descriptor).
//
// Descriptors are *unilateral*: they describe one endpoint independent of
// any other, which is what lets boxes cache and re-use them (Section IX-B).
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <span>
#include <string>

#include "codec/codec.hpp"
#include "util/bytes.hpp"
#include "util/ids.hpp"

namespace cmc {

// IPv4 address + UDP port of a media receiver or sender.
struct MediaAddress {
  std::uint32_t ip = 0;
  std::uint16_t port = 0;

  friend auto operator<=>(const MediaAddress&, const MediaAddress&) = default;

  [[nodiscard]] std::string toString() const;
  [[nodiscard]] static MediaAddress parse(std::string_view dotted, std::uint16_t port);
};

std::ostream& operator<<(std::ostream& os, const MediaAddress& addr);

struct Descriptor {
  DescriptorId id;    // globally unique; selectors answer by this id
  MediaAddress addr;  // where to send media for this receiver
  CodecList codecs;   // priority order, best first; {noMedia} if muted

  [[nodiscard]] bool isNoMedia() const noexcept {
    return codecs.size() == 1 && codecs.front() == Codec::noMedia;
  }

  // A descriptor is well formed if it offers at least one codec and noMedia
  // appears only alone.
  [[nodiscard]] bool wellFormed() const noexcept;

  friend bool operator==(const Descriptor&, const Descriptor&) = default;

  void serialize(ByteWriter& w) const;
  [[nodiscard]] static Descriptor deserialize(ByteReader& r);
};

std::ostream& operator<<(std::ostream& os, const Descriptor& d);

struct Selector {
  DescriptorId answersDescriptor;  // which descriptor this selector responds to
  MediaAddress sender;             // the sender's own media address
  Codec codec = Codec::noMedia;    // the single codec the sender will use

  [[nodiscard]] bool isNoMedia() const noexcept { return codec == Codec::noMedia; }

  friend bool operator==(const Selector&, const Selector&) = default;

  void serialize(ByteWriter& w) const;
  [[nodiscard]] static Selector deserialize(ByteReader& r);
};

std::ostream& operator<<(std::ostream& os, const Selector& s);

// The unilateral codec-choice rule (Section VI-B): the sender chooses the
// highest-priority codec in the receiver's descriptor that it is able
// (`sendable`) and willing (`!muteOut`) to send. The only legal response to
// a noMedia descriptor is a noMedia selector. Returns the chosen codec;
// noMedia also results when there is no common codec (the paper assumes one
// exists, but the implementation must degrade gracefully).
[[nodiscard]] Codec chooseCodec(const Descriptor& received,
                                std::span<const Codec> sendable,
                                bool muteOut) noexcept;

// Build a selector answering `received`, sent from `sender`.
[[nodiscard]] Selector makeSelector(const Descriptor& received,
                                    const MediaAddress& sender,
                                    std::span<const Codec> sendable,
                                    bool muteOut) noexcept;

// Build a receiver descriptor: offers `receivable` unless muteIn, in which
// case the single offered codec is noMedia.
[[nodiscard]] Descriptor makeDescriptor(DescriptorId id,
                                        const MediaAddress& addr,
                                        std::span<const Codec> receivable,
                                        bool muteIn);

}  // namespace cmc
