#include "codec/descriptor_intern.hpp"

namespace cmc {

namespace {

// Field-wise FNV-1a over the logical content — no serialization buffer, so
// hashing a descriptor on the intern hot path allocates nothing.
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void mix(std::uint64_t& h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= static_cast<std::uint8_t>(v >> (8 * i));
    h *= kFnvPrime;
  }
}

}  // namespace

std::uint64_t DescriptorTable::hashOf(const Descriptor& d) noexcept {
  std::uint64_t h = kFnvOffset;
  mix(h, d.id.value());
  mix(h, d.addr.ip);
  mix(h, d.addr.port);
  mix(h, d.codecs.size());
  for (Codec c : d.codecs) mix(h, static_cast<std::uint16_t>(c));
  return h;
}

DescriptorTable& DescriptorTable::instance() {
  static DescriptorTable table;
  return table;
}

InternedDescriptor DescriptorTable::intern(const Descriptor& d) {
  const std::uint64_t h = hashOf(d);
  Shard& shard = shards_[h % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto& chain = shard.buckets[h];
  for (const auto& entry : chain) {
    if (entry->desc == d) return InternedDescriptor(entry.get());
  }
  chain.push_back(std::make_unique<InternedDescriptor::Entry>(
      InternedDescriptor::Entry{d, h}));
  count_.fetch_add(1, std::memory_order_relaxed);
  return InternedDescriptor(chain.back().get());
}

InternedDescriptor& InternedDescriptor::operator=(const Descriptor& d) {
  *this = DescriptorTable::instance().intern(d);
  return *this;
}

}  // namespace cmc
