// Hash-consed descriptors: one copy per distinct descriptor per process.
//
// Descriptors travel in every Open/Oack/Describe signal and get cached by
// every endpoint and flowlink that sees them. Before interning, each cache
// refresh cloned the codec vector; after interning, a cached descriptor is
// one pointer into the process-wide DescriptorTable and copying it is free.
//
// The table is append-only for the life of the process: entries are never
// evicted, so an InternedDescriptor handle is valid forever and two handles
// are equal iff their pointers are equal (hash-consing invariant). Distinct
// descriptors are bounded by distinct DescriptorIds actually observed, so
// growth is linear in calls set up, ~100 bytes each (DESIGN.md §4.6).
//
// InternedDescriptor deliberately mimics std::optional<const Descriptor>:
// has_value / operator bool / operator* / operator-> / reset, plus an
// interning operator=(const Descriptor&). Code that held a
// std::optional<Descriptor> cache compiles unchanged against it.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "codec/descriptor.hpp"

namespace cmc {

class DescriptorTable;

class InternedDescriptor {
 public:
  InternedDescriptor() noexcept = default;

  // Interns into the process-global table.
  InternedDescriptor& operator=(const Descriptor& d);

  [[nodiscard]] bool has_value() const noexcept { return entry_ != nullptr; }
  [[nodiscard]] explicit operator bool() const noexcept {
    return entry_ != nullptr;
  }
  [[nodiscard]] const Descriptor& operator*() const noexcept;
  [[nodiscard]] const Descriptor* operator->() const noexcept;
  void reset() noexcept { entry_ = nullptr; }

  // Cached structural hash of the descriptor (undefined when empty).
  [[nodiscard]] std::uint64_t hash() const noexcept;

  // Hash-consing invariant: equal descriptors intern to the same entry, so
  // handle equality is pointer equality.
  friend bool operator==(const InternedDescriptor&,
                         const InternedDescriptor&) noexcept = default;

 private:
  friend class DescriptorTable;
  struct Entry;
  explicit InternedDescriptor(const Entry* e) noexcept : entry_(e) {}

  const Entry* entry_ = nullptr;
};

class DescriptorTable {
 public:
  [[nodiscard]] static DescriptorTable& instance();

  // Returns the canonical handle for `d`, inserting it on first sight.
  // Thread-safe; lock is per-shard, and a hit performs no allocation.
  [[nodiscard]] InternedDescriptor intern(const Descriptor& d);

  // Number of distinct descriptors interned so far (tests, diagnostics).
  [[nodiscard]] std::size_t size() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  // Structural hash used for consing; exposed so tests can cross-check the
  // cached per-handle hash.
  [[nodiscard]] static std::uint64_t hashOf(const Descriptor& d) noexcept;

  DescriptorTable(const DescriptorTable&) = delete;
  DescriptorTable& operator=(const DescriptorTable&) = delete;

 private:
  DescriptorTable() = default;

  static constexpr std::size_t kShards = 8;
  struct Shard {
    std::mutex mu;
    // hash -> entries with that hash (collision chain scanned by equality).
    std::unordered_map<std::uint64_t,
                       std::vector<std::unique_ptr<InternedDescriptor::Entry>>>
        buckets;
  };

  Shard shards_[kShards];
  std::atomic<std::size_t> count_{0};
};

struct InternedDescriptor::Entry {
  Descriptor desc;
  std::uint64_t hash = 0;
};

inline const Descriptor& InternedDescriptor::operator*() const noexcept {
  return entry_->desc;
}
inline const Descriptor* InternedDescriptor::operator->() const noexcept {
  return &entry_->desc;
}
inline std::uint64_t InternedDescriptor::hash() const noexcept {
  return entry_->hash;
}

}  // namespace cmc
