#include "sim/fault.hpp"

#include <sstream>

namespace cmc {

FaultDecision FaultPlan::decide(const std::string& from, const std::string& to,
                                SimTime now) {
  FaultDecision decision;
  ++counters_.considered;
  if (!activeAt(now)) return decision;
  const FaultSpec& spec = specFor(from, to);
  // One Rng draw per fault class per signal keeps the stream layout stable:
  // adding a burst window (no draws) never shifts drop/dup/reorder
  // decisions for a given seed.
  const bool drop = rng_.chance(spec.drop_rate);
  const bool duplicate = rng_.chance(spec.duplicate_rate);
  const bool reorder = rng_.chance(spec.reorder_rate);
  const auto hold = static_cast<SimDuration::rep>(
      rng_.below(static_cast<std::uint64_t>(
          spec.reorder_window.count() > 0 ? spec.reorder_window.count() : 1)));
  if (drop) {
    decision.drop = true;
    ++counters_.dropped;
    return decision;
  }
  if (duplicate) {
    decision.copies = 2;
    // Space the copy out far enough that it is a distinct stimulus, close
    // enough that it lands while the first copy's effect is fresh.
    decision.copy_spacing = SimDuration{spec.reorder_window.count() / 2 + 1};
    ++counters_.duplicated;
  }
  if (reorder) {
    decision.extra += SimDuration{hold};
    ++counters_.reordered;
  }
  for (const BurstWindow& burst : bursts_) {
    if (now >= burst.at && now < burst.at + burst.duration) {
      decision.extra += burst.extra;
      ++counters_.burst_delayed;
      break;
    }
  }
  return decision;
}

std::string FaultPlan::json() const {
  std::ostringstream oss;
  oss << "{\"seed\":" << seed_ << ",\"considered\":" << counters_.considered
      << ",\"dropped\":" << counters_.dropped
      << ",\"duplicated\":" << counters_.duplicated
      << ",\"reordered\":" << counters_.reordered
      << ",\"burst_delayed\":" << counters_.burst_delayed
      << ",\"crashes\":" << counters_.crashes
      << ",\"dead_box_drops\":" << counters_.dead_box_drops << "}";
  return oss.str();
}

}  // namespace cmc
