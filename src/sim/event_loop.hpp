// Discrete-event loop: the simulator's beating heart.
//
// Events are (time, sequence) ordered; equal-time events fire in scheduling
// order, which keeps simulations deterministic for a fixed seed. Virtual
// time only advances when the loop runs — there is no wall-clock coupling,
// so a simulated hour of signaling finishes in milliseconds of CPU.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "obs/profiler.hpp"
#include "util/time.hpp"

namespace cmc {

class EventLoop {
 public:
  using Handler = std::function<void()>;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  // Schedule `handler` to run `delay` after the current time.
  void schedule(SimDuration delay, Handler handler) {
    queue_.push(Event{now_ + delay, next_seq_++, std::move(handler)});
  }

  void scheduleAt(SimTime when, Handler handler) {
    queue_.push(Event{when < now_ ? now_ : when, next_seq_++, std::move(handler)});
  }

  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }
  // Events executed since construction (observability: event-loop
  // throughput = executed() / wall time).
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }
  // Widest the queue has ever been.
  [[nodiscard]] std::size_t peakPending() const noexcept { return peak_pending_; }

  // Run one event; returns false if none pending.
  bool step() {
    if (queue_.empty()) return false;
    if (queue_.size() > peak_pending_) peak_pending_ = queue_.size();
    CMC_PROF_VALUE("loop.queue_depth", static_cast<std::int64_t>(queue_.size()));
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.when;
    ++executed_;
    {
      CMC_PROF_SCOPE("loop.dispatch");
      ev.handler();
    }
    return true;
  }

  // Run until idle or the horizon passes. Returns true if the loop drained
  // (idle); false if it stopped at the horizon with work left. The horizon
  // is relative to now(): each call grants `horizon` more virtual time, so
  // repeated calls keep making progress after the first horizon expires.
  // Everything here — now_, the horizon limit, the queue — is instance
  // state: a process may run one loop per shard and each keeps its own
  // virtual clock. (When the horizon expires, now_ stays at the last
  // executed event rather than jumping to the limit, so the caller's next
  // grant resumes exactly where this one stopped.)
  bool runUntilIdle(SimDuration horizon = std::chrono::seconds(600)) {
    const SimTime limit = now_ + horizon;
    // One wakeup = one grant of loop time; the batch is how many events it
    // drained. Recorded only when a profiler is installed (value sites are
    // a thread-local load when off, same as the dispatch span).
    std::int64_t batch = 0;
    while (!queue_.empty()) {
      if (queue_.top().when > limit) {
        CMC_PROF_VALUE("loop.batch", batch);
        return false;
      }
      step();
      ++batch;
    }
    CMC_PROF_VALUE("loop.batch", batch);
    return true;
  }

  // Run events up to and including `until`, leaving later events queued.
  void runUntil(SimTime until) {
    std::int64_t batch = 0;
    while (!queue_.empty() && queue_.top().when <= until) {
      step();
      ++batch;
    }
    CMC_PROF_VALUE("loop.batch", batch);
    if (now_ < until) now_ = until;
  }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Handler handler;

    bool operator>(const Event& other) const noexcept {
      if (when != other.when) return other.when < when;
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t peak_pending_ = 0;
};

}  // namespace cmc
