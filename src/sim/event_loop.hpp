// Discrete-event loop: the simulator's beating heart.
//
// Events are (time, sequence) ordered; equal-time events fire in scheduling
// order, which keeps simulations deterministic for a fixed seed. Virtual
// time only advances when the loop runs — there is no wall-clock coupling,
// so a simulated hour of signaling finishes in milliseconds of CPU.
//
// Storage is a slab + free list: event nodes are pooled per loop and the
// priority queue orders slab indices, so steady-state scheduling performs
// no heap allocation — a node is recycled the moment its handler starts.
// Handlers are InlineFn, not std::function: captures up to kHandlerCapacity
// bytes (every simulator hot-path lambda) live inside the node itself
// (DESIGN.md §4.6). Delivery is batched: one wakeup drains the whole run of
// equal-timestamp events, so a burst of same-tunnel signals costs one
// queue-depth sample and one batch record, not one per signal.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "obs/profiler.hpp"
#include "util/inline_fn.hpp"
#include "util/time.hpp"

namespace cmc {

class EventLoop {
 public:
  // Sized for the largest hot-path capture (delivery lambda: Signal +
  // trace context + route coordinates). Bigger captures still work — they
  // take the one-allocation fallback inside InlineFn.
  static constexpr std::size_t kHandlerCapacity = 192;
  using Handler = InlineFn<kHandlerCapacity>;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  // Schedule `handler` to run `delay` after the current time. The callable
  // is constructed directly into a pooled node; no per-event allocation as
  // long as it fits kHandlerCapacity.
  template <typename F>
  void schedule(SimDuration delay, F&& handler) {
    push(now_ + delay, Handler(std::forward<F>(handler)));
  }

  template <typename F>
  void scheduleAt(SimTime when, F&& handler) {
    push(when < now_ ? now_ : when, Handler(std::forward<F>(handler)));
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }
  // Events executed since construction (observability: event-loop
  // throughput = executed() / wall time).
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }
  // Widest the queue has ever been.
  [[nodiscard]] std::size_t peakPending() const noexcept { return peak_pending_; }

  // Run one event; returns false if none pending.
  bool step() {
    if (heap_.empty()) return false;
    if (heap_.size() > peak_pending_) peak_pending_ = heap_.size();
    CMC_PROF_VALUE("loop.queue_depth", static_cast<std::int64_t>(heap_.size()));
    stepOne();
    return true;
  }

  // Run until idle or the horizon passes. Returns true if the loop drained
  // (idle); false if it stopped at the horizon with work left. The horizon
  // is relative to now(): each call grants `horizon` more virtual time, so
  // repeated calls keep making progress after the first horizon expires.
  // Everything here — now_, the horizon limit, the queue — is instance
  // state: a process may run one loop per shard and each keeps its own
  // virtual clock. (When the horizon expires, now_ stays at the last
  // executed event rather than jumping to the limit, so the caller's next
  // grant resumes exactly where this one stopped.)
  bool runUntilIdle(SimDuration horizon = std::chrono::seconds(600)) {
    const SimTime limit = now_ + horizon;
    while (!heap_.empty()) {
      if (slab_[heap_.front()].when > limit) return false;
      drainBatch(slab_[heap_.front()].when);
    }
    return true;
  }

  // Run events up to and including `until`, leaving later events queued.
  void runUntil(SimTime until) {
    while (!heap_.empty() && slab_[heap_.front()].when <= until) {
      drainBatch(slab_[heap_.front()].when);
    }
    if (now_ < until) now_ = until;
  }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Node {
    SimTime when;
    std::uint64_t seq = 0;
    Handler handler;
    std::uint32_t next_free = kNil;
  };

  // (when, seq) strict ordering: earlier time first, FIFO within a time.
  [[nodiscard]] bool before(std::uint32_t a, std::uint32_t b) const noexcept {
    const Node& na = slab_[a];
    const Node& nb = slab_[b];
    if (na.when != nb.when) return na.when < nb.when;
    return na.seq < nb.seq;
  }

  void push(SimTime when, Handler handler) {
    std::uint32_t idx;
    if (free_head_ != kNil) {
      idx = free_head_;
      free_head_ = slab_[idx].next_free;
    } else {
      idx = static_cast<std::uint32_t>(slab_.size());
      slab_.emplace_back();
    }
    Node& node = slab_[idx];
    node.when = when;
    node.seq = next_seq_++;
    node.handler = std::move(handler);
    heap_.push_back(idx);
    siftUp(heap_.size() - 1);
  }

  // Pop the top node, recycle it, run its handler. The handler is moved out
  // first: it may schedule new events, which can reuse the freed node or
  // grow the slab.
  void stepOne() {
    const std::uint32_t idx = heap_.front();
    popTop();
    Node& node = slab_[idx];
    now_ = node.when;
    Handler handler = std::move(node.handler);
    node.handler.reset();
    node.next_free = free_head_;
    free_head_ = idx;
    ++executed_;
    {
      CMC_PROF_SCOPE("loop.dispatch");
      handler();
    }
  }

  // One wakeup: drain the full run of events at timestamp `when`, including
  // any scheduled *during* the batch for the same instant (they carry later
  // sequence numbers, so ordering is unchanged). One queue-depth sample and
  // one batch record per wakeup instead of one per event.
  void drainBatch(SimTime when) {
    if (heap_.size() > peak_pending_) peak_pending_ = heap_.size();
    CMC_PROF_VALUE("loop.queue_depth", static_cast<std::int64_t>(heap_.size()));
    std::int64_t batch = 0;
    while (!heap_.empty() && slab_[heap_.front()].when == when) {
      stepOne();
      ++batch;
    }
    CMC_PROF_VALUE("loop.batch", batch);
  }

  void popTop() {
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) siftDown(0);
  }

  void siftUp(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!before(heap_[i], heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void siftDown(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t best = i;
      const std::size_t l = 2 * i + 1;
      const std::size_t r = 2 * i + 2;
      if (l < n && before(heap_[l], heap_[best])) best = l;
      if (r < n && before(heap_[r], heap_[best])) best = r;
      if (best == i) return;
      std::swap(heap_[i], heap_[best]);
      i = best;
    }
  }

  std::vector<Node> slab_;            // pooled event nodes, recycled in place
  std::vector<std::uint32_t> heap_;   // binary heap of slab indices
  std::uint32_t free_head_ = kNil;    // head of the free-node chain
  SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t peak_pending_ = 0;
};

}  // namespace cmc
