// Fault injection for the discrete-event simulator (docs/FAULTS.md).
//
// A FaultPlan is a seeded, deterministic schedule of message faults and box
// crashes applied to a Simulator's signal-delivery path:
//
//   drop        — an in-flight tunnel signal vanishes;
//   duplicate   — a signal is delivered twice (copies spaced apart);
//   reorder     — a signal is held back up to `reorder_window`, letting
//                 later signals on the same tunnel overtake it;
//   burst delay — every signal sent inside a scheduled burst window incurs
//                 a fixed extra delay (models transient congestion);
//   crash       — a box loses all volatile slot state and rejoins the path
//                 after `down_for` (Box::crashRestart).
//
// The plan owns its own Rng, separate from the simulator's jitter Rng, so
// installing a plan never perturbs the latency stream: a run with a given
// (sim seed, fault seed) pair replays byte-identically, and the same sim
// seed without faults behaves exactly as before. Faults are injected only
// while `activeAt(now)` holds (the first `active_for` of virtual time);
// afterwards the path must self-stabilize, which is what the stabilization
// probes and the property suite measure.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace cmc {

// Per-tunnel fault probabilities and shaping parameters.
struct FaultSpec {
  double drop_rate = 0.0;       // P(signal vanishes)
  double duplicate_rate = 0.0;  // P(signal delivered twice)
  double reorder_rate = 0.0;    // P(signal held back for a random slice
                                //   of reorder_window)
  SimDuration reorder_window{120'000};  // max hold-back (µs)
  // Injection window: faults fire only in the first `active_for` of virtual
  // time. Zero means "never stop" (for pure-churn experiments).
  SimDuration active_for{5'000'000};
  // Cadence of the stabilization refresh tick the simulator runs on every
  // box while a plan is installed (goal/flowlink re-assertion; see
  // Box::refreshGoals).
  SimDuration refresh_interval{300'000};
};

// A scheduled crash: at `at`, `box` loses its volatile slot state and stays
// unreachable until `at + down_for`, when it restarts and re-attaches its
// goals (Box::crashRestart).
struct CrashEvent {
  std::string box;
  SimTime at;
  SimDuration down_for{1'000'000};
};

// A burst window: signals sent in [at, at + duration) get `extra` delay.
struct BurstWindow {
  SimTime at;
  SimDuration duration{500'000};
  SimDuration extra{250'000};
};

// What the plan decided for one signal emission.
struct FaultDecision {
  bool drop = false;
  std::uint32_t copies = 1;       // 1 = normal, 2 = duplicated
  SimDuration extra{0};           // added to the sampled network latency
  SimDuration copy_spacing{0};    // gap between duplicate deliveries
};

class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed, FaultSpec spec = {})
      : seed_(seed), spec_(std::move(spec)), rng_(seed) {}
  // decide() and activeAt() are virtual so that composite plans can route
  // per-signal decisions to sub-plans — the sharded load runtime gives
  // every call its own seeded plan (src/load/fault_router.hpp), keeping
  // each call's fault stream independent of what else shares its shard.
  virtual ~FaultPlan() = default;

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] const FaultSpec& spec() const noexcept { return spec_; }

  // Override the fault spec for one direction of one box pair (the tunnel
  // from `from` to `to`); all other traffic keeps the default spec.
  void tunnelOverride(const std::string& from, const std::string& to,
                      FaultSpec spec) {
    overrides_[from + "\x1f" + to] = std::move(spec);
  }

  void addCrash(CrashEvent crash) { crashes_.push_back(std::move(crash)); }
  [[nodiscard]] const std::vector<CrashEvent>& crashes() const noexcept {
    return crashes_;
  }

  void addBurst(BurstWindow burst) { bursts_.push_back(std::move(burst)); }

  [[nodiscard]] virtual bool activeAt(SimTime now) const noexcept {
    return spec_.active_for.count() == 0 || now.sinceStart() < spec_.active_for;
  }

  // Decide the fate of one signal from `from` to `to` emitted at `now`.
  // Consumes this plan's Rng stream; with a deterministic event loop the
  // call sequence — and thus every decision — replays exactly per seed.
  [[nodiscard]] virtual FaultDecision decide(const std::string& from,
                                             const std::string& to,
                                             SimTime now);

  struct Counters {
    std::uint64_t considered = 0;  // signals emitted while plan installed
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t reordered = 0;
    std::uint64_t burst_delayed = 0;
    std::uint64_t crashes = 0;         // maintained by the simulator
    std::uint64_t dead_box_drops = 0;  // deliveries to a crashed box
  };
  [[nodiscard]] const Counters& counters() const noexcept { return counters_; }
  [[nodiscard]] Counters& counters() noexcept { return counters_; }

  // {"seed":...,"considered":...,...} — one JSON object, keys sorted as
  // declared, for bench/CI artifacts.
  [[nodiscard]] std::string json() const;

 private:
  [[nodiscard]] const FaultSpec& specFor(const std::string& from,
                                         const std::string& to) const {
    auto it = overrides_.find(from + "\x1f" + to);
    return it == overrides_.end() ? spec_ : it->second;
  }

  std::uint64_t seed_;
  FaultSpec spec_;
  Rng rng_;
  std::map<std::string, FaultSpec> overrides_;
  std::vector<CrashEvent> crashes_;
  std::vector<BurstWindow> bursts_;
  Counters counters_;
};

}  // namespace cmc
