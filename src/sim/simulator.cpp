#include "sim/simulator.hpp"

#include <array>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace cmc {

namespace {

// Pre-composed per-kind counter names: charging "sim.signal.open" on every
// delivery must not rebuild the string.
const std::string& signalCounterName(SignalKind kind) {
  static const std::array<std::string, 6> names = [] {
    std::array<std::string, 6> out;
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = std::string("sim.signal.") +
               std::string(toString(static_cast<SignalKind>(i)));
    }
    return out;
  }();
  return names[static_cast<std::size_t>(kind)];
}

}  // namespace

Simulator::Simulator(TimingModel timing, std::uint64_t seed)
    : timing_(timing), rng_(seed) {}

Simulator::~Simulator() {
  if (attached_trace_ != nullptr) {
    // The recorder may outlive this simulator; its time source captures
    // `this` and must not dangle.
    attached_trace_->setTimeSource(nullptr);
    if (obs::recorder() == attached_trace_) obs::setRecorder(nullptr);
  }
  if (attached_metrics_ != nullptr && obs::metrics() == attached_metrics_) {
    obs::setMetrics(nullptr);
  }
  if (attached_flight_ != nullptr &&
      obs::flightRecorder() == attached_flight_) {
    obs::setFlightRecorder(nullptr);
  }
  if (owns_log_time_) log::setSimTimeSource(nullptr);
}

void Simulator::attachTrace(obs::TraceRecorder* rec) {
  if (rec != nullptr) {
    rec->setTimeSource([this]() { return nowUs(); });
  }
  obs::setRecorder(rec);
  attached_trace_ = rec;
}

void Simulator::attachMetrics(obs::MetricsRegistry* m) {
  obs::setMetrics(m);
  attached_metrics_ = m;
}

void Simulator::attachFlightRecorder(obs::FlightRecorder* fr) {
  if (fr != nullptr) {
    fr->setTrace(attached_trace_);
    fr->setMetrics(attached_metrics_);
    fr->setProbes(&probes_);
  }
  obs::setFlightRecorder(fr);
  attached_flight_ = fr;
}

void Simulator::useSimTimeForLogs() {
  log::setSimTimeSource([this]() { return nowUs(); });
  owns_log_time_ = true;
}

Box& Simulator::box(const std::string& name) {
  auto it = boxes_.find(name);
  if (it == boxes_.end()) throw std::logic_error("unknown box: " + name);
  return *it->second;
}

void Simulator::registerBox(std::unique_ptr<Box> box) {
  const std::string& name = box->name();
  if (boxes_.count(name) != 0) throw std::logic_error("duplicate box: " + name);
  box_clock_[name] = BoxClock{SimTime{}, "sim.box_busy_us." + name};
  if (fault_plan_ != nullptr) box->enableStabilization(true);
  boxes_.emplace(name, std::move(box));
  if (fault_plan_ != nullptr) scheduleRefreshTick(name);
}

ChannelId Simulator::connect(const std::string& a, const std::string& b,
                             std::uint32_t tunnels) {
  Box& box_a = box(a);
  Box& box_b = box(b);
  ChannelRecord rec;
  rec.id = ChannelId{next_channel_id_++};
  rec.tunnels = tunnels;
  rec.boxA = a;
  rec.boxB = b;
  rec.slotsA = box_a.addChannelEnd(rec.id, tunnels, /*initiator=*/true, "", b);
  rec.slotsB = box_b.addChannelEnd(rec.id, tunnels, /*initiator=*/false, "", a);
  rec.aliveA = rec.aliveB = true;
  for (std::uint32_t t = 0; t < tunnels; ++t) {
    routes_[{box_a.id().value(), rec.slotsA[t]}] = Route{rec.id, t, true};
    routes_[{box_b.id().value(), rec.slotsB[t]}] = Route{rec.id, t, false};
  }
  const ChannelId id = rec.id;
  channels_.emplace(id, std::move(rec));
  // Static configuration happens before time starts; drain any goal signals
  // the hooks produced.
  drain(box_a);
  drain(box_b);
  return id;
}

void Simulator::inject(const std::string& box_name, std::function<void(Box&)> fn) {
  Box& target = box(box_name);
  loop_.schedule(SimDuration{0},
                 [this, &target, fn = std::move(fn)]() mutable {
                   stimulate(target, [&target, fn = std::move(fn)]() { fn(target); });
                 });
}

bool Simulator::run(SimDuration horizon) { return loop_.runUntilIdle(horizon); }

void Simulator::runFor(SimDuration d) { loop_.runUntil(loop_.now() + d); }

void Simulator::installFaultPlan(FaultPlan* plan) {
  fault_plan_ = plan;
  if (plan == nullptr) return;
  for (auto& [name, box] : boxes_) {
    box->enableStabilization(true);
    scheduleRefreshTick(name);
  }
  for (const CrashEvent& crash : plan->crashes()) {
    loop_.scheduleAt(crash.at, [this, crash]() { crashBox(crash); });
  }
  if (obs::TraceRecorder* rec = obs::recorder()) {
    obs::TraceEvent ev;
    ev.kind = obs::EventKind::mark;
    ev.name = "fault_plan_installed";
    ev.v0 = static_cast<std::int64_t>(plan->seed());
    rec->record(std::move(ev));
  }
}

bool Simulator::boxDown(const std::string& name) const noexcept {
  auto it = down_until_.find(name);
  return it != down_until_.end() && loop_.now() < it->second;
}

void Simulator::crashBox(const CrashEvent& crash) {
  auto it = boxes_.find(crash.box);
  if (it == boxes_.end()) return;
  Box& target = *it->second;
  const SimTime up_at = loop_.now() + crash.down_for;
  down_until_[crash.box] = up_at;
  if (fault_plan_ != nullptr) ++fault_plan_->counters().crashes;
  if (obs::MetricsRegistry* m = obs::metrics()) {
    m->counter("fault.crashes").add();
  }
  if (obs::TraceRecorder* rec = obs::recorder()) {
    obs::TraceEvent ev;
    ev.kind = obs::EventKind::mark;
    ev.name = "crash";
    ev.actor = crash.box;
    ev.v0 = crash.down_for.count();
    rec->record(std::move(ev));
  }
  loop_.scheduleAt(up_at, [this, &target, name = crash.box]() {
    down_until_.erase(name);
    if (obs::TraceRecorder* rec = obs::recorder()) {
      obs::TraceEvent ev;
      ev.kind = obs::EventKind::mark;
      ev.name = "restart";
      ev.actor = name;
      rec->record(std::move(ev));
    }
    stimulate(target, [&target]() { target.crashRestart(); });
    scheduleRefreshTick(name);
  });
}

void Simulator::scheduleRefreshTick(const std::string& name) {
  if (fault_plan_ == nullptr) return;
  bool& armed = refresh_armed_[name];
  if (armed) return;
  armed = true;
  loop_.schedule(fault_plan_->spec().refresh_interval,
                 [this, name]() { refreshTick(name); });
}

void Simulator::refreshTick(const std::string& name) {
  refresh_armed_[name] = false;
  if (fault_plan_ == nullptr) return;
  auto it = boxes_.find(name);
  if (it == boxes_.end()) return;
  if (boxDown(name)) return;  // the restart handler re-arms
  Box& target = *it->second;
  if (target.needsRefresh()) {
    stimulate(target, [&target]() { target.refreshGoals(); });
  }
  // Keep ticking while faults may still hit this box; once injection is
  // over, stimulus completions re-arm the tick whenever a box is left
  // unconverged, so a converged path stops ticking and the loop can drain.
  if (fault_plan_->activeAt(loop_.now() + fault_plan_->spec().refresh_interval) ||
      target.needsRefresh()) {
    scheduleRefreshTick(name);
  }
}

void Simulator::stimulate(Box& box, StimulusFn fn, obs::TraceContext cause) {
  // Serialize on the box: processing starts when the box frees up and takes
  // c; outputs appear at completion.
  BoxClock& clock = box_clock_[box.name()];
  SimTime& busy = clock.busy_until;
  const SimTime start = loop_.now() < busy ? busy : loop_.now();
  const SimTime done = start + timing_.processing;
  busy = done;
  if (obs::MetricsRegistry* m = obs::metrics()) {
    m->counter("sim.stimuli").add();
    m->gauge("sim.queue_depth").set(static_cast<std::int64_t>(loop_.pending()));
    const auto busy_us = std::chrono::duration_cast<std::chrono::microseconds>(
                             done - start)
                             .count();
    m->counter("sim.busy_us").add(static_cast<std::uint64_t>(busy_us));
    m->counter(clock.busy_counter).add(static_cast<std::uint64_t>(busy_us));
  }
  const std::int64_t start_us =
      std::chrono::duration_cast<std::chrono::microseconds>(start.sinceStart())
          .count();
  loop_.scheduleAt(done, [this, &box, start_us, cause,
                          fn = std::move(fn)]() mutable {
    // A stimulus queued before a crash dies with the box's volatile state.
    if (boxDown(box.name())) {
      if (fault_plan_ != nullptr) ++fault_plan_->counters().dead_box_drops;
      return;
    }
    obs::TraceRecorder* rec = obs::recorder();
    // Span adoption: the stimulus becomes a child of the span that stamped
    // the triggering signal; a causeless stimulus roots a fresh trace.
    // Each delivery gets its own span id, so fault-injected duplicates and
    // retransmits show up as distinct spans under one trace.
    obs::TraceContext self{};
    if (rec != nullptr && rec->propagationEnabled()) {
      self.trace = cause.trace != 0 ? cause.trace : rec->newId();
      self.span = rec->newId();
    }
    {
      // Value-type instrumentation inside (SlotEndpoint transitions,
      // flowlink updates) attributes events to this box via the scope, and
      // to this stimulus's span via the context scope.
      obs::ActorScope scope(box.name());
      obs::ContextScope ctx_scope(self);
      CMC_PROF_SCOPE("sim.stimulus");
      fn();
      drain(box);
    }
    if (rec != nullptr) {
      obs::TraceEvent ev;
      ev.kind = obs::EventKind::boxSpan;
      ev.name = "stimulus";
      ev.actor = box.name();
      ev.ts_us = start_us;
      const std::int64_t dur = nowUs() - start_us;
      ev.dur_us = dur > 0 ? dur : 1;  // zero-width spans vanish in viewers
      ev.trace_id = self.trace;
      ev.span_id = self.span;
      ev.parent_span = cause.span;
      rec->record(std::move(ev));
    }
    // Liveness under faults: any stimulus that leaves the box unconverged
    // (a lost answer, a stale signal) re-arms its refresh tick.
    if (fault_plan_ != nullptr && box.needsRefresh()) {
      scheduleRefreshTick(box.name());
    }
    if (!probes_.empty()) probes_.check(nowUs());
  });
}

void Simulator::drain(Box& box) {
  // Processing outputs can trigger same-box hooks that enqueue more output
  // (e.g. onChannelUp when the box creates a channel); loop to fixpoint.
  for (int guard = 0; guard < 64; ++guard) {
    Box::Output out = box.drainOutput();
    if (out.empty()) return;
    processOutput(box, std::move(out));
  }
  log::warn("sim", "box ", box.name(), " output did not quiesce");
}

void Simulator::processOutput(Box& sender, Box::Output&& out) {
  CMC_PROF_SCOPE("sim.process_output");
  const std::string from = sender.name();
  // Every output is stamped with the context of the stimulus that produced
  // it (empty when propagation is off or during static configuration), so
  // the receiving box's stimulus span can adopt it as its causal parent.
  const obs::TraceContext cause = obs::currentContext();

  for (auto& item : out.tunnel) {
    const Route route = routeOf(sender, item.slot);
    ChannelRecord& rec = record(route.channel);
    const std::string& to = route.from_side_a ? rec.boxB : rec.boxA;
    if (obs::TraceRecorder* trace = obs::recorder()) {
      obs::TraceEvent ev;
      ev.kind = obs::EventKind::signalSend;
      ev.name.assign(toString(kindOf(item.signal)));
      ev.actor = from;
      ev.aux = to;
      ev.id = item.slot.value();
      ev.v0 = static_cast<std::int64_t>(route.channel.value());
      ev.v1 = route.tunnel;
      trace->record(std::move(ev));
    }
    const SimDuration latency = timing_.sampleNetwork(rng_);
    FaultDecision fate;  // default: deliver one copy, on time
    if (fault_plan_ != nullptr) {
      fate = fault_plan_->decide(from, to, loop_.now());
    }
    if (obs::MetricsRegistry* m = obs::metrics();
        m != nullptr && fault_plan_ != nullptr) {
      if (fate.drop || fate.copies > 1 || fate.extra.count() > 0) {
        m->counter("fault.injected").add();
      }
      if (fate.drop) m->counter("fault.dropped").add();
      if (fate.copies > 1) m->counter("fault.duplicated").add();
      if (fate.extra.count() > 0) m->counter("fault.delayed").add();
    }
    if (fate.drop) {
      if (obs::TraceRecorder* trace = obs::recorder()) {
        obs::TraceEvent ev;
        ev.kind = obs::EventKind::mark;
        ev.name = "fault_drop";
        ev.actor = from;
        ev.aux = to;
        ev.id = item.slot.value();
        trace->record(std::move(ev));
      }
      continue;
    }
    for (std::uint32_t copy = 0; copy < fate.copies; ++copy) {
      const SimDuration when = latency + fate.extra + fate.copy_spacing * copy;
      Signal signal_copy = item.signal;
      // Duplicates carry the same context: one trace id, one parent span;
      // each delivery then becomes its own span on the receiver. The event
      // carries route coordinates, not box-name strings: with the codec
      // list inline in the descriptor, the whole capture fits the event
      // node and scheduling a delivery allocates nothing.
      loop_.schedule(when, [this, channel = route.channel,
                            tunnel = route.tunnel,
                            to_side_a = !route.from_side_a, cause,
                            signal = std::move(signal_copy)]() mutable {
        deliverTunnelSignal(channel, tunnel, to_side_a, std::move(signal),
                            cause);
      });
    }
  }

  // Everything below is call-lifecycle administration — meta signals,
  // timers, channel creation and teardown — which inherently allocates
  // (new protocol state, new routes). It runs under its own site so
  // sim.process_output measures the per-signal forwarding path alone; the
  // admin cost stays visible in profiles under sim.output_admin.
  CMC_PROF_SCOPE("sim.output_admin");

  for (auto& [channel_id, meta] : out.meta) {
    auto it = channels_.find(channel_id);
    if (it == channels_.end()) continue;
    ChannelRecord& rec = it->second;
    const bool from_a = rec.boxA == from;
    const std::string to = from_a ? rec.boxB : rec.boxA;
    meta.ctx = cause;  // in-band provenance, mirrors the net frame encoding
    loop_.schedule(timing_.sampleNetwork(rng_),
                   [this, to, channel_id, meta = std::move(meta)]() {
                     auto cit = channels_.find(channel_id);
                     if (cit == channels_.end()) return;
                     if (boxDown(to)) {
                       if (fault_plan_ != nullptr) {
                         ++fault_plan_->counters().dead_box_drops;
                       }
                       return;
                     }
                     Box& target = box(to);
                     stimulate(target, [&target, channel_id, meta]() {
                       target.deliverMeta(channel_id, meta);
                     }, meta.ctx);
                   });
  }

  for (auto& timer : out.timers) {
    // A timer continues the causal chain of the stimulus that armed it
    // (e.g. an openslot retry descends from the open that went unanswered).
    loop_.schedule(timer.delay, [this, from, cause,
                                 tag = std::move(timer.tag)]() {
      auto it = boxes_.find(from);
      if (it == boxes_.end()) return;
      // Timers are volatile: a crash forgets them (crashRestart re-arms
      // what its re-attached goals still need).
      if (boxDown(from)) return;
      Box& target = *it->second;
      stimulate(target, [&target, tag]() { target.fireTimer(tag); }, cause);
    });
  }

  for (auto& request : out.channelRequests) {
    auto target_it = boxes_.find(request.target);
    if (target_it == boxes_.end()) {
      log::warn("sim", "channel request to unknown box ", request.target);
      continue;
    }
    ChannelRecord rec;
    rec.id = ChannelId{next_channel_id_++};
    rec.tunnels = request.tunnels;
    rec.boxA = from;
    rec.boxB = request.target;
    rec.slotsA = sender.addChannelEnd(rec.id, rec.tunnels, /*initiator=*/true,
                                      request.tag, request.target);
    rec.aliveA = true;
    for (std::uint32_t t = 0; t < rec.tunnels; ++t) {
      routes_[{sender.id().value(), rec.slotsA[t]}] = Route{rec.id, t, true};
    }
    const ChannelId id = rec.id;
    channels_.emplace(id, std::move(rec));
    // The far end materializes one network latency later (setup meta). The
    // transport-level end registration is synchronous so that signals in
    // flight right behind the setup find the slots; the callee's feature
    // reaction to the new channel is charged one processing cost.
    loop_.schedule(timing_.sampleNetwork(rng_), [this, id, from, cause]() {
      auto cit = channels_.find(id);
      if (cit == channels_.end() || !cit->second.aliveA) return;
      ChannelRecord& r = cit->second;
      Box& callee = box(r.boxB);
      r.slotsB = callee.addChannelEnd(id, r.tunnels, /*initiator=*/false, "", from);
      r.aliveB = true;
      for (std::uint32_t t = 0; t < r.tunnels; ++t) {
        routes_[{callee.id().value(), r.slotsB[t]}] = Route{id, t, false};
      }
      // Materialization mutates box state (slots appear, goals may attach
      // in the incoming-channel hook) outside any stimulus, so re-evaluate
      // probes here: a quiescence predicate that flips at this instant must
      // record this instant, not whichever unrelated stimulus happens to
      // complete next — under concurrent call load the gap would make probe
      // latencies depend on what else shares the event loop.
      if (!probes_.empty()) probes_.check(nowUs());
      // Drain hook outputs after processing cost; causally the callee's
      // reaction descends from the stimulus that requested the channel.
      stimulate(callee, []() {}, cause);
    });
  }

  for (ChannelId id : out.teardowns) {
    auto it = channels_.find(id);
    if (it == channels_.end()) continue;
    ChannelRecord& rec = it->second;
    const bool from_a = rec.boxA == from;
    (from_a ? rec.aliveA : rec.aliveB) = false;
    for (SlotId s : (from_a ? rec.slotsA : rec.slotsB)) {
      routes_.erase({sender.id().value(), s});
    }
    const std::string to = from_a ? rec.boxB : rec.boxA;
    const bool peer_alive = from_a ? rec.aliveB : rec.aliveA;
    if (peer_alive) {
      loop_.schedule(timing_.sampleNetwork(rng_), [this, id, to, cause]() {
        auto cit = channels_.find(id);
        if (cit == channels_.end()) return;
        Box& target = box(to);
        stimulate(target, [this, &target, id, to]() {
          target.deliverMeta(id, MetaSignal{MetaKind::teardown, "", ""});
          auto cit2 = channels_.find(id);
          if (cit2 != channels_.end()) {
            ChannelRecord& r = cit2->second;
            const bool was_a = r.boxA == to;
            (was_a ? r.aliveA : r.aliveB) = false;
            for (SlotId s : (was_a ? r.slotsA : r.slotsB)) {
              routes_.erase({target.id().value(), s});
            }
            if (!r.aliveA && !r.aliveB) channels_.erase(cit2);
          }
        }, cause);
      });
    } else {
      channels_.erase(it);
    }
  }
}

void Simulator::deliverTunnelSignal(ChannelId channel, std::uint32_t tunnel,
                                    bool to_side_a, Signal signal,
                                    obs::TraceContext ctx) {
  CMC_PROF_SCOPE("sim.deliver_tunnel");
  auto cit = channels_.find(channel);
  if (cit == channels_.end()) return;  // torn down while in flight
  ChannelRecord& rec = cit->second;
  const bool to_a = to_side_a;
  const std::string& to_box = to_a ? rec.boxA : rec.boxB;
  const std::string& from_box = to_a ? rec.boxB : rec.boxA;
  if ((to_a && !rec.aliveA) || (!to_a && !rec.aliveB)) return;
  const auto& slots = to_a ? rec.slotsA : rec.slotsB;
  if (tunnel >= slots.size()) return;
  if (boxDown(to_box)) {
    // The destination is crashed: the signal reaches a dead transport and
    // is lost, exactly like a drop fault.
    if (fault_plan_ != nullptr) ++fault_plan_->counters().dead_box_drops;
    if (obs::MetricsRegistry* m = obs::metrics()) {
      m->counter("fault.dead_box_drops").add();
    }
    return;
  }
  const SlotId slot = slots[tunnel];
  Box& target = box(to_box);
  ++signals_delivered_;
  if (obs::MetricsRegistry* m = obs::metrics()) {
    m->counter(signalCounterName(kindOf(signal))).add();
  }
  if (obs::TraceRecorder* trace = obs::recorder()) {
    obs::TraceEvent ev;
    ev.kind = obs::EventKind::signalRecv;
    ev.name.assign(toString(kindOf(signal)));
    ev.actor = to_box;
    ev.aux = from_box;
    ev.id = slot.value();
    ev.v0 = static_cast<std::int64_t>(channel.value());
    ev.v1 = tunnel;
    // The arrival instant precedes the stimulus span (processing may queue
    // behind a busy box), so it records the carried context explicitly:
    // which trace it belongs to and which span caused it.
    ev.trace_id = ctx.trace;
    ev.parent_span = ctx.span;
    trace->record(std::move(ev));
  }
  if (onSignalDelivered) {
    onSignalDelivered(from_box, to_box, signal, loop_.now());
  }
  stimulate(target, [&target, slot, signal = std::move(signal)]() {
    target.deliverTunnel(slot, signal);
  }, ctx);
}

Simulator::Route Simulator::routeOf(const Box& box, SlotId slot) const {
  auto it = routes_.find({box.id().value(), slot});
  if (it == routes_.end()) {
    throw std::logic_error("no route for slot on box " + box.name());
  }
  return it->second;
}

Simulator::ChannelRecord& Simulator::record(ChannelId id) {
  auto it = channels_.find(id);
  if (it == channels_.end()) throw std::logic_error("unknown channel");
  return it->second;
}

}  // namespace cmc
