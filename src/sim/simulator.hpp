// Simulator: hosts boxes, carries their signaling channels, and charges the
// paper's timing model (Section VIII-C).
//
// Every stimulus processed by a box — a tunnel signal, a meta-signal, a
// timer, an injected user action — costs the box `c` (TimingModel::
// processing); boxes are serial servers, so stimuli queue when they arrive
// faster than the box computes. Every signal put on a channel takes `n`
// (TimingModel::network) to reach the peer box. Outputs a box produces
// while processing a stimulus are emitted at the stimulus's completion
// time, which is exactly the accounting behind the paper's p*n + (p+1)*c
// latency law.
//
// The simulator also resolves ChannelRequests (configuration/routing being
// outside the paper's scope, boxes address each other by name) and paces
// openslot retries through box timers.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>

#include "core/box.hpp"
#include "media/network.hpp"
#include "obs/context.hpp"
#include "obs/probes.hpp"
#include "sim/event_loop.hpp"
#include "sim/fault.hpp"
#include "sim/timing.hpp"
#include "util/inline_fn.hpp"

namespace cmc::obs {
class TraceRecorder;
class MetricsRegistry;
class FlightRecorder;
}  // namespace cmc::obs

namespace cmc {

class Simulator {
 public:
  explicit Simulator(TimingModel timing = TimingModel::paperDefaults(),
                     std::uint64_t seed = 1);
  ~Simulator();

  // Construct and register a box. The box's name must be unique; boxes
  // address channel requests to each other by name.
  template <typename B, typename... Args>
  B& addBox(Args&&... args) {
    auto box = std::make_unique<B>(BoxId{next_box_id_++}, std::forward<Args>(args)...);
    B& ref = *box;
    registerBox(std::move(box));
    return ref;
  }

  [[nodiscard]] Box& box(const std::string& name);
  [[nodiscard]] bool hasBox(const std::string& name) const noexcept {
    return boxes_.count(name) != 0;
  }

  // Statically connect two boxes with a signaling channel of `tunnels`
  // tunnels (both ends exist immediately; `a` is the initiator side).
  ChannelId connect(const std::string& a, const std::string& b,
                    std::uint32_t tunnels = 1);

  // Run `fn` on a named box as a user stimulus (charges processing cost c).
  void inject(const std::string& box_name, std::function<void(Box&)> fn);

  // Advance the simulation until idle (or the horizon). Returns true if the
  // event queue drained.
  bool run(SimDuration horizon = std::chrono::seconds(600));
  // Advance exactly `d` of simulated time, then stop.
  void runFor(SimDuration d);

  [[nodiscard]] SimTime now() const noexcept { return loop_.now(); }
  [[nodiscard]] EventLoop& loop() noexcept { return loop_; }
  // The media plane sharing this simulation's clock. Owned here so it
  // outlives the boxes whose media endpoints attach to it.
  [[nodiscard]] MediaNetwork& mediaNetwork() noexcept { return media_net_; }
  [[nodiscard]] Rng& rng() noexcept { return rng_; }
  [[nodiscard]] const TimingModel& timing() const noexcept { return timing_; }

  [[nodiscard]] std::uint64_t signalsDelivered() const noexcept {
    return signals_delivered_;
  }

  // ---------------------------------------------------------- observability
  // Virtual time since start in microseconds (the timebase every obs
  // artifact — traces, probes, metrics spans — is expressed in).
  [[nodiscard]] std::int64_t nowUs() const noexcept {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               loop_.now().sinceStart())
        .count();
  }

  // Install `rec` as the global trace recorder and retime it onto this
  // simulation's virtual clock, so exported traces are deterministic for a
  // fixed seed. Pass nullptr to detach. The destructor detaches whatever
  // this simulator installed.
  void attachTrace(obs::TraceRecorder* rec);
  // Install `m` as the global metrics registry (detached on destruction).
  void attachMetrics(obs::MetricsRegistry* m);
  // Install `fr` as the process-wide flight recorder and point it at this
  // simulation's probes plus whatever trace/metrics are attached, so a
  // probe timeout or flightAssert leaves a post-mortem dump behind. Pass
  // nullptr to detach (the destructor also detaches).
  void attachFlightRecorder(obs::FlightRecorder* fr);
  // Stamp log lines with this simulation's virtual time instead of the
  // wall clock (restored on destruction).
  void useSimTimeForLogs();

  // Convergence probes: armed predicates re-checked after every completed
  // box stimulus, capturing the exact virtual time a path quiesced.
  [[nodiscard]] obs::ConvergenceProbes& probes() noexcept { return probes_; }

  // ------------------------------------------------------- fault injection
  // Install a fault plan (docs/FAULTS.md). Switches every registered box
  // into stabilization mode, schedules the plan's crashes, and starts the
  // per-box refresh tick that re-asserts unconverged goals. The plan must
  // outlive the simulator (or be detached with installFaultPlan(nullptr)).
  // Install after adding boxes and before running.
  void installFaultPlan(FaultPlan* plan);
  [[nodiscard]] FaultPlan* faultPlan() const noexcept { return fault_plan_; }

  // True while `name` is crashed (between a CrashEvent and its restart).
  [[nodiscard]] bool boxDown(const std::string& name) const noexcept;

  // Arm a convergence probe in the shared "stabilization_time" bucket —
  // the interval from now until `quiescent` first holds, i.e. how long the
  // path took to self-stabilize.
  // A positive `deadline_us` (absolute virtual time) makes the probe a
  // watchdog: missing it fails the probe and triggers the attached flight
  // recorder.
  void armStabilizationProbe(std::string name,
                             obs::ConvergenceProbes::Predicate quiescent,
                             std::int64_t deadline_us = 0) {
    probes_.arm(std::move(name), "stabilization_time", nowUs(),
                std::move(quiescent), deadline_us);
  }

  // Hook invoked on every tunnel-signal delivery (tracing/metrics).
  std::function<void(const std::string& from, const std::string& to,
                     const Signal&, SimTime)>
      onSignalDelivered;

 private:
  struct ChannelRecord {
    ChannelId id;
    std::uint32_t tunnels = 1;
    std::string boxA;  // initiator
    std::string boxB;
    std::vector<SlotId> slotsA;
    std::vector<SlotId> slotsB;
    bool aliveA = false;
    bool aliveB = false;
  };

  void registerBox(std::unique_ptr<Box> box);
  // A stimulus body. Inline capacity covers the hot case (a Signal plus a
  // slot and box reference) so queuing a stimulus allocates nothing; bigger
  // closures from cold paths spill to the heap inside InlineFn.
  using StimulusFn = InlineFn<120>;
  // Run `fn` as a stimulus on `box` now: serialize on the box (busy time),
  // charge c, then execute and drain outputs. `cause` is the causal parent
  // (the context stamped on the signal/timer that triggered this stimulus);
  // empty for roots — user injections, refresh ticks, restarts — which
  // start a fresh trace when propagation is enabled.
  void stimulate(Box& box, StimulusFn fn, obs::TraceContext cause = {});
  // Execute a scheduled CrashEvent: mark the box down, drop its queued
  // stimuli, and schedule the restart (Box::crashRestart) at the end of
  // the outage.
  void crashBox(const CrashEvent& crash);
  // Arm (if not already armed) one refresh tick for `name`, firing
  // refresh_interval from now.
  void scheduleRefreshTick(const std::string& name);
  void refreshTick(const std::string& name);
  void drain(Box& box);
  void processOutput(Box& box, Box::Output&& out);
  // Deliver a tunnel signal scheduled by processOutput. The in-flight event
  // carries only route coordinates (channel id, tunnel, destination side) —
  // box names are resolved from the channel record on arrival, so the
  // capture is small and string-free; a torn-down channel means the signal
  // is simply lost, same as before.
  void deliverTunnelSignal(ChannelId channel, std::uint32_t tunnel,
                           bool to_side_a, Signal signal,
                           obs::TraceContext ctx);

  struct Route {
    ChannelId channel;
    std::uint32_t tunnel;
    bool from_side_a;
  };
  [[nodiscard]] Route routeOf(const Box& box, SlotId slot) const;
  [[nodiscard]] ChannelRecord& record(ChannelId id);

  EventLoop loop_;
  MediaNetwork media_net_{loop_};  // before boxes_: endpoints detach on box death
  TimingModel timing_;
  Rng rng_;
  std::uint64_t next_box_id_ = 1;
  std::uint64_t next_channel_id_ = 1;
  std::map<std::string, std::unique_ptr<Box>> boxes_;
  std::map<ChannelId, ChannelRecord> channels_;
  // (box id, slot) -> route, maintained as ends come and go. Keyed by the
  // numeric box id so hot-path lookups build no string key.
  std::map<std::pair<std::uint64_t, SlotId>, Route> routes_;
  // Per-box serial-server clock plus the box's pre-composed busy-time
  // counter name (so charging busy time never concatenates strings).
  struct BoxClock {
    SimTime busy_until;
    std::string busy_counter;
  };
  std::map<std::string, BoxClock> box_clock_;
  std::uint64_t signals_delivered_ = 0;
  obs::ConvergenceProbes probes_;
  FaultPlan* fault_plan_ = nullptr;  // not owned
  std::map<std::string, SimTime> down_until_;  // crashed boxes
  std::map<std::string, bool> refresh_armed_;  // tick pending per box
  // Globals this simulator installed, cleared on destruction so a stale
  // pointer never outlives the run that owns it.
  obs::TraceRecorder* attached_trace_ = nullptr;
  obs::MetricsRegistry* attached_metrics_ = nullptr;
  obs::FlightRecorder* attached_flight_ = nullptr;
  bool owns_log_time_ = false;
};

}  // namespace cmc
