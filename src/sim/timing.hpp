// Timing model for the performance analysis (paper Section VIII-C).
//
// The paper measures latency in terms of two constants:
//   n — average time for the network/server infrastructure to accept a
//       signal and deliver it to its destination box (paper: 34 ms measured
//       on a typical carrier network with multiple geographic sites);
//   c — average time for a server to read a stimulus from an input queue
//       and compute the next signal to send (paper: 20 ms typical).
//
// With these, the paper derives: media-setup latency after the last
// flowlink in a path initializes = p*n + (p+1)*c, where p is the number of
// hops between that flowlink and its farther endpoint, and the SIP 3pcc
// baseline costs 10n + 11c + d with glare (E[d] = 3 s) or 8n + 7c without.
#pragma once

#include <algorithm>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace cmc {

struct TimingModel {
  SimDuration network{34'000};     // n: one-way signal delivery
  SimDuration processing{20'000};  // c: per-stimulus box compute time
  double network_jitter = 0.0;     // +/- fraction of n, uniform

  [[nodiscard]] static TimingModel paperDefaults() noexcept { return {}; }

  [[nodiscard]] SimDuration sampleNetwork(Rng& rng) const {
    if (network_jitter <= 0.0) return network;
    const double factor = 1.0 + rng.uniform(-network_jitter, network_jitter);
    const auto scaled = static_cast<SimDuration::rep>(
        static_cast<double>(network.count()) * factor);
    // Jitter >= 1.0 can drive the factor to (or below) zero; a delivery
    // must still take positive time or the event loop would reorder it
    // before the send completes.
    return SimDuration{std::max<SimDuration::rep>(scaled, 1)};
  }
};

}  // namespace cmc
