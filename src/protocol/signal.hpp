// Tunnel signals (paper Section VI-B, Fig. 9 and Fig. 10).
//
// The media-control protocol operates separately in each tunnel of each
// signaling channel. Six signals exist:
//
//   open(medium, descriptor)  attempt to open a media channel
//   oack(descriptor)          affirmative answer to open
//   close                     close or reject; answered by closeack
//   closeack                  acknowledgement of close
//   describe(descriptor)      new self-description as receiver (idempotent)
//   select(selector)          unilateral codec choice answering a descriptor
//
// The protocol is deliberately *not* transactional: describe and select may
// be sent at any time in the flowing state, in both directions concurrently,
// with no enforced pairing (Section VI-C).
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string_view>
#include <variant>

#include "codec/descriptor.hpp"

namespace cmc {

struct OpenSignal {
  Medium medium = Medium::audio;
  Descriptor descriptor;  // the opener's self-description as receiver

  friend bool operator==(const OpenSignal&, const OpenSignal&) = default;
};

struct OackSignal {
  Descriptor descriptor;  // the acceptor's self-description as receiver

  friend bool operator==(const OackSignal&, const OackSignal&) = default;
};

struct CloseSignal {
  friend bool operator==(const CloseSignal&, const CloseSignal&) = default;
};

struct CloseAckSignal {
  friend bool operator==(const CloseAckSignal&, const CloseAckSignal&) = default;
};

struct DescribeSignal {
  Descriptor descriptor;

  friend bool operator==(const DescribeSignal&, const DescribeSignal&) = default;
};

struct SelectSignal {
  Selector selector;

  friend bool operator==(const SelectSignal&, const SelectSignal&) = default;
};

using Signal = std::variant<OpenSignal, OackSignal, CloseSignal, CloseAckSignal,
                            DescribeSignal, SelectSignal>;

enum class SignalKind : std::uint8_t {
  open = 0,
  oack = 1,
  close = 2,
  closeack = 3,
  describe = 4,
  select = 5,
};

[[nodiscard]] SignalKind kindOf(const Signal& signal) noexcept;
[[nodiscard]] std::string_view toString(SignalKind kind) noexcept;
std::ostream& operator<<(std::ostream& os, const Signal& signal);

// Descriptor carried by the signal, if any (open/oack/describe).
[[nodiscard]] const Descriptor* descriptorOf(const Signal& signal) noexcept;

void serialize(const Signal& signal, ByteWriter& w);
[[nodiscard]] std::optional<Signal> deserializeSignal(ByteReader& r);

}  // namespace cmc
