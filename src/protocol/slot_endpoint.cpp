#include "protocol/slot_endpoint.hpp"

#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace cmc {

std::string_view toString(ProtocolState state) noexcept {
  switch (state) {
    case ProtocolState::closed: return "closed";
    case ProtocolState::opening: return "opening";
    case ProtocolState::opened: return "opened";
    case ProtocolState::flowing: return "flowing";
    case ProtocolState::closing: return "closing";
  }
  return "?state";
}

std::ostream& operator<<(std::ostream& os, ProtocolState state) {
  return os << toString(state);
}

namespace {
[[noreturn]] void illegalSend(std::string_view what, ProtocolState state, SlotId id) {
  std::ostringstream oss;
  oss << "illegal send of " << what << " in state " << toString(state) << " on "
      << id;
  throw std::logic_error(oss.str());
}

// One relaxed load when tracing is off; the model checker drives millions
// of these per second, so nothing heavier may sit on this path.
inline void traceTransition(SlotId id, ProtocolState from, ProtocolState to) {
  if (from == to) return;
  if (obs::TraceRecorder* rec = obs::recorder()) {
    obs::TraceEvent ev;
    ev.kind = obs::EventKind::slotTransition;
    ev.name.assign(toString(to));
    ev.actor.assign(obs::currentActor());
    ev.aux.assign(toString(from));
    ev.id = id.value();
    rec->record(std::move(ev));
  }
}

inline void countCacheRefresh() {
  if (obs::MetricsRegistry* m = obs::metrics()) {
    m->counter("slot.descriptor_cache_refreshes").add();
  }
}
}  // namespace

Signal SlotEndpoint::sendOpen(Medium medium, Descriptor descriptor) {
  if (state_ != ProtocolState::closed) illegalSend("open", state_, id_);
  state_ = ProtocolState::opening;
  traceTransition(id_, ProtocolState::closed, state_);
  medium_ = medium;
  last_descriptor_sent_ = descriptor.id;
  return OpenSignal{medium, std::move(descriptor)};
}

Signal SlotEndpoint::sendOack(Descriptor descriptor) {
  if (state_ != ProtocolState::opened) illegalSend("oack", state_, id_);
  state_ = ProtocolState::flowing;
  traceTransition(id_, ProtocolState::opened, state_);
  last_descriptor_sent_ = descriptor.id;
  return OackSignal{std::move(descriptor)};
}

Signal SlotEndpoint::sendClose() {
  if (state_ != ProtocolState::opening && state_ != ProtocolState::opened &&
      state_ != ProtocolState::flowing) {
    illegalSend("close", state_, id_);
  }
  const ProtocolState from = state_;
  state_ = ProtocolState::closing;
  traceTransition(id_, from, state_);
  return CloseSignal{};
}

Signal SlotEndpoint::resendOpen(Descriptor descriptor) {
  if (!stabilizing_ || state_ != ProtocolState::opening) {
    illegalSend("re-open", state_, id_);
  }
  last_descriptor_sent_ = descriptor.id;
  return OpenSignal{medium_.value_or(Medium::audio), std::move(descriptor)};
}

Signal SlotEndpoint::resendOack(Descriptor descriptor) {
  if (!stabilizing_ || state_ != ProtocolState::flowing) {
    illegalSend("re-oack", state_, id_);
  }
  last_descriptor_sent_ = descriptor.id;
  return OackSignal{std::move(descriptor)};
}

Signal SlotEndpoint::resendClose() {
  if (!stabilizing_ || state_ != ProtocolState::closing) {
    illegalSend("re-close", state_, id_);
  }
  return CloseSignal{};
}

Signal SlotEndpoint::probeClose() {
  if (!stabilizing_ || state_ != ProtocolState::closed) {
    illegalSend("close-probe", state_, id_);
  }
  state_ = ProtocolState::closing;
  traceTransition(id_, ProtocolState::closed, state_);
  return CloseSignal{};
}

Signal SlotEndpoint::sendDescribe(Descriptor descriptor) {
  if (state_ != ProtocolState::flowing) illegalSend("describe", state_, id_);
  last_descriptor_sent_ = descriptor.id;
  return DescribeSignal{std::move(descriptor)};
}

Signal SlotEndpoint::sendSelect(Selector selector) {
  if (state_ != ProtocolState::flowing) illegalSend("select", state_, id_);
  last_selector_sent_ = selector;
  return SelectSignal{std::move(selector)};
}

DeliverResult SlotEndpoint::deliver(const Signal& signal) {
  // Same cost discipline as traceTransition below: one thread-local load
  // when no profiler is installed; the model checker hammers this path.
  CMC_PROF_SCOPE("slot.deliver");
  switch (kindOf(signal)) {
    case SignalKind::open: {
      const auto& open = std::get<OpenSignal>(signal);
      if (state_ == ProtocolState::closed) {
        state_ = ProtocolState::opened;
        traceTransition(id_, ProtocolState::closed, state_);
        medium_ = open.medium;
        remote_descriptor_ = open.descriptor;
        countCacheRefresh();
        return {SlotEvent::openReceived, std::nullopt};
      }
      if (state_ == ProtocolState::opening) {
        // open/open race within the tunnel. The winner is the end that
        // initiated setup of the signaling channel (Section VI-B).
        if (channel_initiator_) {
          // We win: the peer will back off; its open is simply ignored.
          return {SlotEvent::ignored, std::nullopt};
        }
        // We lose: back off and become the acceptor. The peer ignores the
        // open we already sent; the incoming open now governs.
        state_ = ProtocolState::opened;
        traceTransition(id_, ProtocolState::opening, state_);
        medium_ = open.medium;
        remote_descriptor_ = open.descriptor;
        countCacheRefresh();
        return {SlotEvent::becameAcceptor, std::nullopt};
      }
      if (stabilizing_ && (state_ == ProtocolState::opened ||
                           state_ == ProtocolState::flowing)) {
        // Redundant open (duplicate, or a restarted peer re-opening). The
        // open is idempotent: adopt the freshest descriptor and let the
        // goal re-accept, which re-sends any oack/select the peer may have
        // lost.
        medium_ = open.medium;
        remote_descriptor_ = open.descriptor;
        countCacheRefresh();
        return {SlotEvent::openReceived, std::nullopt};
      }
      // open in opened/flowing/closing: obsolete or protocol misuse; drop.
      return {SlotEvent::ignored, std::nullopt};
    }

    case SignalKind::oack: {
      const auto& oack = std::get<OackSignal>(signal);
      if (state_ == ProtocolState::opening) {
        state_ = ProtocolState::flowing;
        traceTransition(id_, ProtocolState::opening, state_);
        remote_descriptor_ = oack.descriptor;
        countCacheRefresh();
        return {SlotEvent::oackReceived, std::nullopt};
      }
      if (stabilizing_ && state_ == ProtocolState::flowing) {
        // Duplicate oack, or the acceptor re-answering a re-sent open. The
        // descriptor may be fresher than the cached one; treat it like a
        // describe so the goal answers with a select the peer may lack.
        remote_descriptor_ = oack.descriptor;
        countCacheRefresh();
        return {SlotEvent::descriptorReceived, std::nullopt};
      }
      // oack while closing (we gave up) or in any other state: obsolete.
      return {SlotEvent::ignored, std::nullopt};
    }

    case SignalKind::close: {
      if (state_ == ProtocolState::closing) {
        // close/close cross: acknowledge the peer's close, keep waiting for
        // the acknowledgement of our own.
        return {SlotEvent::ignored, Signal{CloseAckSignal{}}};
      }
      if (state_ == ProtocolState::closed) {
        // Duplicate / very late close; acknowledge to keep the peer's FSM
        // moving, stay closed.
        return {SlotEvent::ignored, Signal{CloseAckSignal{}}};
      }
      // opening (our open was rejected), opened, or flowing.
      const ProtocolState from = state_;
      reset();
      traceTransition(id_, from, state_);
      return {SlotEvent::closedByPeer, Signal{CloseAckSignal{}}};
    }

    case SignalKind::closeack: {
      if (state_ == ProtocolState::closing) {
        reset();
        traceTransition(id_, ProtocolState::closing, state_);
        return {SlotEvent::fullyClosed, std::nullopt};
      }
      return {SlotEvent::ignored, std::nullopt};
    }

    case SignalKind::describe: {
      const auto& describe = std::get<DescribeSignal>(signal);
      if (state_ == ProtocolState::flowing) {
        remote_descriptor_ = describe.descriptor;
        countCacheRefresh();
        return {SlotEvent::descriptorReceived, std::nullopt};
      }
      if (stabilizing_ && state_ == ProtocolState::closed) {
        // The peer believes the channel is flowing while we are closed: we
        // lost volatile state (crash/restart) or its closeack went missing.
        // Force the peer down with a close so both ends re-converge.
        state_ = ProtocolState::closing;
        traceTransition(id_, ProtocolState::closed, state_);
        return {SlotEvent::ignored, Signal{CloseSignal{}}};
      }
      // describe racing with our close, or arriving before we answered an
      // open: in this protocol describes are only sent in flowing, so the
      // only legitimate case is racing a close; drop it.
      return {SlotEvent::ignored, std::nullopt};
    }

    case SignalKind::select: {
      const auto& select = std::get<SelectSignal>(signal);
      if (state_ == ProtocolState::flowing) {
        last_selector_received_ = select.selector;
        return {SlotEvent::selectorReceived, std::nullopt};
      }
      if (stabilizing_ && state_ == ProtocolState::closed) {
        // Same stale-flowing situation as describe-in-closed above.
        state_ = ProtocolState::closing;
        traceTransition(id_, ProtocolState::closed, state_);
        return {SlotEvent::ignored, Signal{CloseSignal{}}};
      }
      return {SlotEvent::ignored, std::nullopt};
    }
  }
  return {SlotEvent::ignored, std::nullopt};
}

void SlotEndpoint::reset() noexcept {
  state_ = ProtocolState::closed;
  medium_.reset();
  remote_descriptor_.reset();
  last_selector_received_.reset();
  last_descriptor_sent_ = DescriptorId{};
  last_selector_sent_.reset();
}

void SlotEndpoint::canonicalize(ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(state_));
  w.boolean(channel_initiator_);
  w.boolean(medium_.has_value());
  if (medium_) w.u8(static_cast<std::uint8_t>(*medium_));
  w.boolean(remote_descriptor_.has_value());
  if (remote_descriptor_) remote_descriptor_->serialize(w);
  w.boolean(last_selector_received_.has_value());
  if (last_selector_received_) last_selector_received_->serialize(w);
  w.u64(last_descriptor_sent_.value());
  w.boolean(last_selector_sent_.has_value());
  if (last_selector_sent_) last_selector_sent_->serialize(w);
}

}  // namespace cmc
