// Slot protocol endpoint: the finite-state machine of paper Fig. 9.
//
// Every slot (endpoint of a tunnel at a box) is a protocol endpoint. A
// SlotEndpoint sees all signals sent to and received from its slot, and from
// that complete view maintains the implementation-level state of the slot:
// protocol state, medium, and the most recent descriptor received in an
// open, oack, or describe signal (paper Section VII).
//
// Protocol states:
//   closed   no media channel, no request pending
//   opening  this end sent `open`, awaiting `oack` or `close`
//   opened   this end received `open`, has not yet answered
//   flowing  channel established; describe/select may flow both ways
//   closing  this end sent `close`, awaiting `closeack`
//
// Race handling (Section VI-B):
//   * open/open within a tunnel: the winner is the end that initiated setup
//     of the signaling channel. The winner ignores the incoming open; the
//     loser backs off and becomes the acceptor (footnote 6).
//   * close/close: each end answers the peer's close with closeack and
//     still waits for its own closeack.
//   * signals arriving in `closing` or `closed` other than close/closeack
//     are obsolete and ignored.
//
// The class is value-semantic and deterministic so the same code runs under
// the event-driven runtime, the simulator, and the model checker.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string_view>

#include "codec/descriptor_intern.hpp"
#include "protocol/signal.hpp"
#include "util/ids.hpp"

namespace cmc {

enum class ProtocolState : std::uint8_t {
  closed = 0,
  opening = 1,
  opened = 2,
  flowing = 3,
  closing = 4,
};

[[nodiscard]] std::string_view toString(ProtocolState state) noexcept;
std::ostream& operator<<(std::ostream& os, ProtocolState state);

// Live/dead classification used by flowlink state matching (paper Fig. 12):
// live = {opening, opened, flowing}, dead = {closed, closing}.
[[nodiscard]] constexpr bool isLive(ProtocolState s) noexcept {
  return s == ProtocolState::opening || s == ProtocolState::opened ||
         s == ProtocolState::flowing;
}
[[nodiscard]] constexpr bool isDead(ProtocolState s) noexcept { return !isLive(s); }

// What a received signal means to the goal object controlling the slot.
enum class SlotEvent : std::uint8_t {
  none = 0,            // nothing the goal needs to react to
  openReceived,        // peer requests a channel (state is now opened)
  oackReceived,        // peer accepted our open (state is now flowing);
                       //   protocol obliges the goal to answer with select
  closedByPeer,        // peer closed/rejected; closeack was auto-sent
  fullyClosed,         // our close was acknowledged (state is now closed)
  descriptorReceived,  // new describe arrived; goal must answer with select
  selectorReceived,    // selector arrived
  becameAcceptor,      // lost an open/open race; now in opened state
  ignored,             // obsolete or duplicate signal, dropped
};

// Result of delivering a received signal. If autoReply is set, the protocol
// requires that signal (always closeack) to be sent on the tunnel
// immediately; the runtime does so without goal involvement.
struct DeliverResult {
  SlotEvent event = SlotEvent::none;
  std::optional<Signal> autoReply;
};

class SlotEndpoint {
 public:
  SlotEndpoint() = default;
  SlotEndpoint(SlotId id, bool channel_initiator) noexcept
      : id_(id), channel_initiator_(channel_initiator) {}

  [[nodiscard]] SlotId id() const noexcept { return id_; }
  [[nodiscard]] bool channelInitiator() const noexcept { return channel_initiator_; }
  [[nodiscard]] ProtocolState state() const noexcept { return state_; }
  [[nodiscard]] std::optional<Medium> medium() const noexcept { return medium_; }

  // Most recent descriptor received in an open, oack, or describe signal.
  // Interned: the handle points into the process-wide DescriptorTable, so
  // caching a descriptor here never clones its codec list.
  [[nodiscard]] const InternedDescriptor& remoteDescriptor() const noexcept {
    return remote_descriptor_;
  }
  // Most recent selector received in a select signal.
  [[nodiscard]] const std::optional<Selector>& lastSelectorReceived() const noexcept {
    return last_selector_received_;
  }
  // Id of the most recent descriptor sent out on this slot (in open, oack,
  // or describe). Used to recognize selectors answering our current
  // descriptor (the Lenabled/Renabled machinery of Section V).
  [[nodiscard]] DescriptorId lastDescriptorSent() const noexcept {
    return last_descriptor_sent_;
  }
  // Most recent selector sent on this slot.
  [[nodiscard]] const std::optional<Selector>& lastSelectorSent() const noexcept {
    return last_selector_sent_;
  }

  // --- Sending. Each returns the signal to put on the tunnel. Illegal
  // sends (wrong protocol state) throw std::logic_error: goals are trusted
  // code and a bad send is a bug we want the model checker to surface.
  [[nodiscard]] Signal sendOpen(Medium medium, Descriptor descriptor);
  [[nodiscard]] Signal sendOack(Descriptor descriptor);
  [[nodiscard]] Signal sendClose();
  [[nodiscard]] Signal sendDescribe(Descriptor descriptor);
  [[nodiscard]] Signal sendSelect(Selector selector);

  // --- Stabilization (docs/FAULTS.md). On lossy channels a sent signal may
  // never arrive, so fault-tolerant runtimes re-assert in-flight requests.
  // Resends do not change protocol state; they repeat the signal the state
  // already implies. Only legal while stabilizing.
  [[nodiscard]] Signal resendOpen(Descriptor descriptor);  // state: opening
  [[nodiscard]] Signal resendOack(Descriptor descriptor);  // state: flowing
  [[nodiscard]] Signal resendClose();                      // state: closing
  // Close-probe from `closed`: a restarted box lost its slot state and must
  // force the peer (which may still be flowing) back to closed so both ends
  // re-converge. Transitions closed -> closing.
  [[nodiscard]] Signal probeClose();

  // Stabilizing endpoints additionally treat redundant open/oack signals as
  // refresh opportunities and answer stale flowing-only traffic with close
  // (see deliver()). Off by default: the baseline model-checker semantics
  // must not change when no faults are configured.
  void setStabilizing(bool on) noexcept { stabilizing_ = on; }
  [[nodiscard]] bool stabilizing() const noexcept { return stabilizing_; }

  // --- Receiving. Tolerant of obsolete signals (the network may deliver
  // them after a state change); truly impossible signals also map to
  // SlotEvent::ignored rather than failing, because a FIFO reliable channel
  // plus correct peers never produces them.
  DeliverResult deliver(const Signal& signal);

  // True if this slot can legally send a describe/select right now.
  [[nodiscard]] bool canModify() const noexcept {
    return state_ == ProtocolState::flowing;
  }

  // Canonical byte serialization of the endpoint state, for model-checker
  // state fingerprinting.
  void canonicalize(ByteWriter& w) const;

 private:
  void reset() noexcept;

  SlotId id_;
  bool channel_initiator_ = false;
  bool stabilizing_ = false;
  ProtocolState state_ = ProtocolState::closed;
  std::optional<Medium> medium_;
  InternedDescriptor remote_descriptor_;
  std::optional<Selector> last_selector_received_;
  DescriptorId last_descriptor_sent_;
  std::optional<Selector> last_selector_sent_;
};

}  // namespace cmc
