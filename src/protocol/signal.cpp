#include "protocol/signal.hpp"

#include "obs/profiler.hpp"

namespace cmc {

SignalKind kindOf(const Signal& signal) noexcept {
  return static_cast<SignalKind>(signal.index());
}

std::string_view toString(SignalKind kind) noexcept {
  switch (kind) {
    case SignalKind::open: return "open";
    case SignalKind::oack: return "oack";
    case SignalKind::close: return "close";
    case SignalKind::closeack: return "closeack";
    case SignalKind::describe: return "describe";
    case SignalKind::select: return "select";
  }
  return "?signal";
}

std::ostream& operator<<(std::ostream& os, const Signal& signal) {
  os << toString(kindOf(signal));
  if (const auto* open = std::get_if<OpenSignal>(&signal)) {
    os << '(' << open->medium << ", " << open->descriptor << ')';
  } else if (const auto* oack = std::get_if<OackSignal>(&signal)) {
    os << '(' << oack->descriptor << ')';
  } else if (const auto* describe = std::get_if<DescribeSignal>(&signal)) {
    os << '(' << describe->descriptor << ')';
  } else if (const auto* select = std::get_if<SelectSignal>(&signal)) {
    os << '(' << select->selector << ')';
  }
  return os;
}

const Descriptor* descriptorOf(const Signal& signal) noexcept {
  if (const auto* open = std::get_if<OpenSignal>(&signal)) return &open->descriptor;
  if (const auto* oack = std::get_if<OackSignal>(&signal)) return &oack->descriptor;
  if (const auto* describe = std::get_if<DescribeSignal>(&signal)) {
    return &describe->descriptor;
  }
  return nullptr;
}

void serialize(const Signal& signal, ByteWriter& w) {
  CMC_PROF_SCOPE("signal.serialize");
  w.u8(static_cast<std::uint8_t>(kindOf(signal)));
  std::visit(
      [&w](const auto& s) {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, OpenSignal>) {
          w.u8(static_cast<std::uint8_t>(s.medium));
          s.descriptor.serialize(w);
        } else if constexpr (std::is_same_v<T, OackSignal>) {
          s.descriptor.serialize(w);
        } else if constexpr (std::is_same_v<T, DescribeSignal>) {
          s.descriptor.serialize(w);
        } else if constexpr (std::is_same_v<T, SelectSignal>) {
          s.selector.serialize(w);
        }
        // close / closeack carry no payload
      },
      signal);
}

std::optional<Signal> deserializeSignal(ByteReader& r) {
  CMC_PROF_SCOPE("signal.deserialize");
  const auto kind = static_cast<SignalKind>(r.u8());
  Signal out;
  switch (kind) {
    case SignalKind::open: {
      OpenSignal s;
      s.medium = static_cast<Medium>(r.u8());
      s.descriptor = Descriptor::deserialize(r);
      out = std::move(s);
      break;
    }
    case SignalKind::oack: {
      OackSignal s;
      s.descriptor = Descriptor::deserialize(r);
      out = std::move(s);
      break;
    }
    case SignalKind::close: out = CloseSignal{}; break;
    case SignalKind::closeack: out = CloseAckSignal{}; break;
    case SignalKind::describe: {
      DescribeSignal s;
      s.descriptor = Descriptor::deserialize(r);
      out = std::move(s);
      break;
    }
    case SignalKind::select: {
      SelectSignal s;
      s.selector = Selector::deserialize(r);
      out = std::move(s);
      break;
    }
    default: return std::nullopt;
  }
  if (!r.ok()) return std::nullopt;
  return out;
}

}  // namespace cmc
