#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace cmc::obs {

namespace {

std::atomic<MetricsRegistry*> g_metrics{nullptr};
thread_local MetricsRegistry* t_metrics = nullptr;

// Bucket index: 0 holds value 0, i holds [2^(i-1), 2^i).
std::size_t bucketOf(std::int64_t value) noexcept {
  if (value <= 0) return 0;
  const int bits = 64 - __builtin_clzll(static_cast<unsigned long long>(value));
  return std::min<std::size_t>(static_cast<std::size_t>(bits),
                               Histogram::kBuckets - 1);
}

void raiseMax(std::atomic<std::int64_t>& slot, std::int64_t value) noexcept {
  std::int64_t seen = slot.load(std::memory_order_relaxed);
  while (value > seen &&
         !slot.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

void lowerMin(std::atomic<std::int64_t>& slot, std::int64_t value) noexcept {
  std::int64_t seen = slot.load(std::memory_order_relaxed);
  while (value < seen &&
         !slot.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::observe(std::int64_t value) noexcept {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  lowerMin(min_, value);
  raiseMax(max_, value);
  buckets_[bucketOf(value)].fetch_add(1, std::memory_order_relaxed);
}

void Histogram::mergeFrom(const Histogram& other) noexcept {
  const std::uint64_t n = other.count_.load(std::memory_order_relaxed);
  if (n == 0) return;
  count_.fetch_add(n, std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  lowerMin(min_, other.min_.load(std::memory_order_relaxed));
  raiseMax(max_, other.max_.load(std::memory_order_relaxed));
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t b = other.buckets_[i].load(std::memory_order_relaxed);
    if (b != 0) buckets_[i].fetch_add(b, std::memory_order_relaxed);
  }
}

void Histogram::accumulate(
    std::uint64_t count, std::int64_t sum, std::int64_t min, std::int64_t max,
    const std::array<std::uint64_t, kBuckets>& buckets) noexcept {
  if (count == 0) return;
  count_.fetch_add(count, std::memory_order_relaxed);
  sum_.fetch_add(sum, std::memory_order_relaxed);
  if (min <= max) {
    lowerMin(min_, min);
    raiseMax(max_, max);
  }
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets[i] != 0) buckets_[i].fetch_add(buckets[i], std::memory_order_relaxed);
  }
}

std::int64_t Histogram::min() const noexcept {
  const std::int64_t v = min_.load(std::memory_order_relaxed);
  return v == std::numeric_limits<std::int64_t>::max() ? 0 : v;
}

std::int64_t Histogram::max() const noexcept {
  const std::int64_t v = max_.load(std::memory_order_relaxed);
  return v == std::numeric_limits<std::int64_t>::min() ? 0 : v;
}

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n > 0 ? static_cast<double>(sum()) / static_cast<double>(n) : 0.0;
}

double Histogram::quantile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(n);
  double cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const double in_bucket =
        static_cast<double>(buckets_[i].load(std::memory_order_relaxed));
    if (in_bucket == 0) continue;
    if (cumulative + in_bucket >= target) {
      const double lo = i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i) - 1);
      const double hi = i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i));
      const double frac =
          in_bucket > 0 ? (target - cumulative) / in_bucket : 0.0;
      const double estimate = lo + (hi - lo) * frac;
      return std::clamp(estimate, static_cast<double>(min()),
                        static_cast<double>(max()));
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(max());
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

const Counter* MetricsRegistry::findCounter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  return it != counters_.end() ? it->second.get() : nullptr;
}

const Gauge* MetricsRegistry::findGauge(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second.get() : nullptr;
}

const Histogram* MetricsRegistry::findHistogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  return it != histograms_.end() ? it->second.get() : nullptr;
}

std::string MetricsRegistry::json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"counters\":{";
  char buf[192];
  bool first = true;
  auto key = [&](const std::string& name) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":";
  };
  for (const auto& [name, c] : counters_) {
    key(name);
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(c->value()));
    out += buf;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    key(name);
    std::snprintf(buf, sizeof(buf), "{\"value\":%lld,\"max\":%lld}",
                  static_cast<long long>(g->value()),
                  static_cast<long long>(g->max()));
    out += buf;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    key(name);
    std::snprintf(
        buf, sizeof(buf),
        "{\"count\":%llu,\"sum\":%lld,\"min\":%lld,\"max\":%lld,"
        "\"mean\":%.1f,\"p50\":%.1f,\"p90\":%.1f,\"p99\":%.1f}",
        static_cast<unsigned long long>(h->count()),
        static_cast<long long>(h->sum()), static_cast<long long>(h->min()),
        static_cast<long long>(h->max()), h->mean(), h->quantile(0.50),
        h->quantile(0.90), h->quantile(0.99));
    out += buf;
  }
  out += "}}";
  return out;
}

void MetricsRegistry::visit(
    const std::function<void(const std::string&, const Counter&)>& counter,
    const std::function<void(const std::string&, const Gauge&)>& gauge,
    const std::function<void(const std::string&, const Histogram&)>& histogram)
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (counter) {
    for (const auto& [name, c] : counters_) counter(name, *c);
  }
  if (gauge) {
    for (const auto& [name, g] : gauges_) gauge(name, *g);
  }
  if (histogram) {
    for (const auto& [name, h] : histograms_) histogram(name, *h);
  }
}

void MetricsRegistry::mergeAdditiveFrom(const MetricsRegistry& other) {
  // Lock ordering: `other` first, snapshotless — both locks are leaf-level
  // and rollups only ever merge worker registries into one accumulator, so
  // there is no path that takes them in the opposite order.
  std::lock_guard<std::mutex> other_lock(other.mutex_);
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : other.counters_) {
    auto it = counters_.find(name);
    if (it == counters_.end()) {
      it = counters_.emplace(name, std::make_unique<Counter>()).first;
    }
    it->second->add(c->value());
  }
  for (const auto& [name, h] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_.emplace(name, std::make_unique<Histogram>()).first;
    }
    it->second->mergeFrom(*h);
  }
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry* metrics() noexcept {
  if (t_metrics != nullptr) return t_metrics;
  return g_metrics.load(std::memory_order_relaxed);
}

void setMetrics(MetricsRegistry* registry) noexcept {
  g_metrics.store(registry, std::memory_order_release);
}

void setThreadMetrics(MetricsRegistry* registry) noexcept {
  t_metrics = registry;
}

}  // namespace cmc::obs
