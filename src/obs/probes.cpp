#include "obs/probes.hpp"

#include <cstdio>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cmc::obs {

void ConvergenceProbes::arm(std::string name, std::string bucket,
                            std::int64_t now_us, Predicate quiescent,
                            std::int64_t deadline_us) {
  Armed probe;
  probe.name = std::move(name);
  probe.bucket = std::move(bucket);
  probe.start_us = now_us;
  probe.deadline_us = deadline_us;
  probe.quiescent = std::move(quiescent);
  if (TraceRecorder* rec = recorder()) {
    rec->record(EventKind::mark, "probe_armed:" + probe.name, /*actor=*/{});
  }
  armed_.push_back(std::move(probe));
}

std::size_t ConvergenceProbes::check(std::int64_t now_us) {
  std::size_t fired = 0;
  for (std::size_t i = 0; i < armed_.size();) {
    Armed& probe = armed_[i];
    if (!probe.quiescent || !probe.quiescent()) {
      if (probe.deadline_us > 0 && now_us >= probe.deadline_us) {
        // Watchdog expired: this is a failed convergence. Capture the
        // post-mortem first — the retained trace window still holds the
        // stalled causal chain — then surface the failure.
        const std::string name = probe.name;
        failed_.push_back(name);
        if (TraceRecorder* rec = recorder()) {
          rec->record(EventKind::mark, "probe_failed:" + name, /*actor=*/{},
                      probe.bucket, /*id=*/0, /*v0=*/now_us - probe.start_us);
        }
        armed_.erase(armed_.begin() + static_cast<std::ptrdiff_t>(i));
        if (FlightRecorder* fr = flightRecorder()) {
          fr->dump("probe_timeout:" + name);
        }
        if (on_failure_) on_failure_(name, now_us);
        continue;
      }
      ++i;
      continue;
    }
    const std::int64_t latency = now_us - probe.start_us;
    histograms_[probe.bucket].observe(latency);
    // Mirror the observation into the metrics namespace as it happens, so a
    // live sampler sees per-window setup latency mid-run instead of waiting
    // for the end-of-run fold. Written unconditionally (sampler or not):
    // per-call latencies are deterministic, so this keeps the rollup
    // byte-identical whether or not anyone is watching.
    if (MetricsRegistry* m = metrics()) {
      m->histogram("probe." + probe.bucket + "_us").observe(latency);
    }
    results_[probe.name] = latency;
    if (TraceRecorder* rec = recorder()) {
      rec->record(EventKind::mark, "probe_converged:" + probe.name, /*actor=*/{},
                  probe.bucket, /*id=*/0, /*v0=*/latency);
    }
    ++converged_;
    ++fired;
    armed_.erase(armed_.begin() + static_cast<std::ptrdiff_t>(i));
  }
  return fired;
}

bool ConvergenceProbes::disarm(const std::string& name) {
  for (std::size_t i = 0; i < armed_.size(); ++i) {
    if (armed_[i].name != name) continue;
    armed_.erase(armed_.begin() + static_cast<std::ptrdiff_t>(i));
    return true;
  }
  return false;
}

std::optional<std::int64_t> ConvergenceProbes::latencyUs(
    const std::string& name) const {
  auto it = results_.find(name);
  if (it == results_.end()) return std::nullopt;
  return it->second;
}

const Histogram* ConvergenceProbes::histogram(const std::string& bucket) const {
  auto it = histograms_.find(bucket);
  return it != histograms_.end() ? &it->second : nullptr;
}

std::string ConvergenceProbes::json() const {
  std::string out = "{";
  char buf[192];
  bool first = true;
  for (const auto& [bucket, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += bucket;
    out += "\":";
    std::snprintf(
        buf, sizeof(buf),
        "{\"count\":%llu,\"min_us\":%lld,\"max_us\":%lld,\"mean_us\":%.1f,"
        "\"p50_us\":%.1f,\"p90_us\":%.1f,\"p99_us\":%.1f}",
        static_cast<unsigned long long>(h.count()),
        static_cast<long long>(h.min()), static_cast<long long>(h.max()),
        h.mean(), h.quantile(0.50), h.quantile(0.90), h.quantile(0.99));
    out += buf;
  }
  out += '}';
  return out;
}

void ConvergenceProbes::reset() {
  armed_.clear();
  histograms_.clear();
  results_.clear();
  failed_.clear();
  converged_ = 0;
}

}  // namespace cmc::obs
