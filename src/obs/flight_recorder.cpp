#include "obs/flight_recorder.hpp"

#include <atomic>
#include <cstdio>
#include <fstream>

#include "obs/critical_path.hpp"
#include "obs/metrics.hpp"
#include "obs/probes.hpp"
#include "obs/trace.hpp"

namespace cmc::obs {

namespace {

std::atomic<FlightRecorder*> g_flight{nullptr};
thread_local FlightRecorder* t_flight = nullptr;

// Reasons become part of the filename; keep them filesystem-safe.
std::string slugify(std::string_view reason) {
  std::string slug;
  slug.reserve(reason.size());
  for (char c : reason) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    slug += ok ? c : '_';
    if (slug.size() >= 48) break;
  }
  return slug.empty() ? std::string("unspecified") : slug;
}

void appendEscapedJson(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

FlightRecorder::FlightRecorder() : FlightRecorder(Config{}) {}

FlightRecorder::FlightRecorder(Config config) : config_(std::move(config)) {}

void FlightRecorder::setTrace(TraceRecorder* trace) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  trace_ = trace;
}

void FlightRecorder::setMetrics(MetricsRegistry* metrics) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  metrics_ = metrics;
}

void FlightRecorder::setProbes(const ConvergenceProbes* probes) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  probes_ = probes;
}

void FlightRecorder::setProfileSource(
    std::function<std::string()> source) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  profile_source_ = std::move(source);
}

std::string FlightRecorder::dump(std::string_view reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (dumps_ >= config_.max_dumps) return {};
  const std::uint64_t seq = dumps_++;

  std::string body = "{\"reason\":\"";
  appendEscapedJson(body, reason);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\",\"seq\":%llu",
                static_cast<unsigned long long>(seq));
  body += buf;
  if (trace_ != nullptr) {
    const std::vector<TraceEvent> window = trace_->snapshot();
    std::snprintf(buf, sizeof(buf), ",\"events_retained\":%zu", window.size());
    body += buf;
    std::snprintf(buf, sizeof(buf), ",\"events_dropped\":%llu",
                  static_cast<unsigned long long>(trace_->dropped()));
    body += buf;
    std::snprintf(buf, sizeof(buf), ",\"events_capacity\":%zu",
                  trace_->capacity());
    body += buf;
    body += ",\"critical_path\":";
    body += criticalPath(window).json();
    body += ",\"trace\":";
    body += trace_->chromeTraceJson();
  }
  if (probes_ != nullptr) {
    std::snprintf(buf, sizeof(buf), ",\"probes_armed\":%zu,\"probes_failed\":%zu",
                  probes_->armedCount(), probes_->failedCount());
    body += buf;
    body += ",\"probes\":";
    body += probes_->json();
  }
  if (metrics_ != nullptr) {
    body += ",\"metrics\":";
    body += metrics_->json();
  }
  if (profile_source_) {
    const std::string profile = profile_source_();
    if (!profile.empty()) {
      body += ",\"profile\":";
      body += profile;
    }
  }
  body += "}";

  std::string path = config_.directory;
  if (!path.empty() && path.back() != '/') path += '/';
  path += config_.prefix;
  std::snprintf(buf, sizeof(buf), "_%llu_", static_cast<unsigned long long>(seq));
  path += buf;
  path += slugify(reason);
  path += ".json";

  std::ofstream out(path, std::ios::trunc);
  if (!out) return {};
  out << body;
  out.close();
  last_path_ = path;
  return path;
}

std::uint64_t FlightRecorder::dumps() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return dumps_;
}

std::string FlightRecorder::lastPath() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_path_;
}

FlightRecorder* flightRecorder() noexcept {
  if (t_flight != nullptr) return t_flight;
  return g_flight.load(std::memory_order_relaxed);
}

void setFlightRecorder(FlightRecorder* recorder) noexcept {
  g_flight.store(recorder, std::memory_order_release);
}

void setThreadFlightRecorder(FlightRecorder* recorder) noexcept {
  t_flight = recorder;
}

bool flightAssert(bool ok, std::string_view what) {
  if (!ok) {
    if (FlightRecorder* fr = flightRecorder()) {
      fr->dump(std::string("assert:") + std::string(what));
    }
  }
  return ok;
}

}  // namespace cmc::obs
