// Convergence probes: virtual-time latency from a goal change to path
// quiescence.
//
// The paper's latency law (§VIII-C) says: after the last flowlink of a
// signaling path initializes, media setup toward the farther endpoint takes
// p*n + (p+1)*c. A probe captures exactly that interval empirically: arm it
// at the moment of the goal change with a predicate describing the target
// quiescent condition (bothFlowing along the path, media audible, both
// closed, ...); the hosting Simulator re-evaluates armed probes after every
// box stimulus completes, and the first time a predicate holds the probe
// records `now - armed_at` into a named latency histogram and disarms.
//
// Predicates run only while at least one probe is armed, so an idle probe
// set costs one `empty()` check per stimulus. Probes are owned by a single
// simulation thread; they are not thread-safe by design. All timestamps —
// arm instants and watchdog deadlines — are in the hosting loop's virtual
// time, and the deadline path resolves the flight recorder through
// obs::flightRecorder(), which honors the calling thread's override: in a
// sharded runtime a deadline miss therefore dumps the shard that armed the
// probe, never a sibling shard's recorder.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace cmc::obs {

class ConvergenceProbes {
 public:
  using Predicate = std::function<bool()>;
  using FailureHandler =
      std::function<void(const std::string& name, std::int64_t now_us)>;

  // Arm a probe. `bucket` names the histogram the latency lands in (several
  // probes — e.g. runs with different seeds — may share one bucket);
  // `name` identifies this single measurement. A positive `deadline_us`
  // turns the probe into a watchdog: if it has not converged by that
  // virtual instant, the next check() marks it failed, disarms it, and
  // triggers the installed flight recorder (obs/flight_recorder.hpp).
  void arm(std::string name, std::string bucket, std::int64_t now_us,
           Predicate quiescent, std::int64_t deadline_us = 0);

  // Evaluate armed probes; satisfied ones record and disarm, expired ones
  // fail (post-mortem dump + onFailure). Returns the number of probes that
  // converged in this call.
  std::size_t check(std::int64_t now_us);

  // Drop the armed probe named `name` without recording a result either
  // way. Returns true if it was armed. Call-churn hosts disarm a call's
  // setup probe at teardown: once the call's boxes close, its quiescence
  // predicate can never hold, and an abandoned probe would be re-evaluated
  // on every later stimulus for the life of the shard.
  bool disarm(const std::string& name);

  // Called for every probe that blows its deadline, after the flight-
  // recorder dump; hosts use it to abort or log.
  void setOnFailure(FailureHandler handler) { on_failure_ = std::move(handler); }

  [[nodiscard]] bool empty() const noexcept { return armed_.empty(); }
  [[nodiscard]] std::size_t armedCount() const noexcept { return armed_.size(); }
  [[nodiscard]] std::size_t convergedCount() const noexcept { return converged_; }
  [[nodiscard]] std::size_t failedCount() const noexcept {
    return failed_.size();
  }
  [[nodiscard]] const std::vector<std::string>& failed() const noexcept {
    return failed_;
  }

  // Latency of a named measurement, once converged.
  [[nodiscard]] std::optional<std::int64_t> latencyUs(const std::string& name) const;

  [[nodiscard]] const Histogram* histogram(const std::string& bucket) const;
  // All bucket histograms, for cross-shard aggregation (Histogram::
  // mergeFrom). Keys are bucket names; the map is stable while no probe
  // converges, so snapshot after the hosting loop has drained.
  [[nodiscard]] const std::map<std::string, Histogram>& histograms()
      const noexcept {
    return histograms_;
  }

  // {"<bucket>":{count,...}, ...} — per-bucket latency histograms (µs).
  [[nodiscard]] std::string json() const;

  // Drop armed probes and recorded results.
  void reset();

 private:
  struct Armed {
    std::string name;
    std::string bucket;
    std::int64_t start_us = 0;
    std::int64_t deadline_us = 0;  // 0 = no watchdog
    Predicate quiescent;
  };

  std::vector<Armed> armed_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, std::int64_t> results_;
  std::vector<std::string> failed_;
  FailureHandler on_failure_;
  std::size_t converged_ = 0;
};

}  // namespace cmc::obs
