#include "obs/profiler.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <new>
#include <stdexcept>

namespace cmc::obs {

namespace prof {

thread_local constinit ThreadState tls;

}  // namespace prof

namespace {

// Bucket convention matches MetricsRegistry: 0 holds <= 0, i holds
// [2^(i-1), 2^i).
std::size_t bucketOf(std::int64_t value) noexcept {
  if (value <= 0) return 0;
  const int bits = 64 - __builtin_clzll(static_cast<unsigned long long>(value));
  return std::min<std::size_t>(static_cast<std::size_t>(bits), 63);
}

// Median cost of one bracketing steady-clock pair, measured once per
// process (the clock's cost does not drift within a run). Subtracted from
// every span so ~20ns leaf sites are not reported as ~60ns.
std::int64_t calibrateClockPairNs() {
  constexpr std::size_t kSamples = 257;
  std::array<std::int64_t, kSamples> samples{};
  for (auto& s : samples) {
    const std::int64_t a = prof::nowNs();
    const std::int64_t b = prof::nowNs();
    s = b - a;
  }
  std::nth_element(samples.begin(), samples.begin() + kSamples / 2,
                   samples.end());
  const std::int64_t median = samples[kSamples / 2];
  return median > 0 ? median : 0;
}

std::int64_t clockPairOverheadNs() {
  static const std::int64_t overhead = calibrateClockPairNs();
  return overhead;
}

void copyCounters(const prof::Node& from, ProfileNode& to) {
  to.is_value = from.is_value;
  to.calls = from.calls.load(std::memory_order_relaxed);
  to.total_ns = from.total_ns.load(std::memory_order_relaxed);
  to.self_ns = from.self_ns.load(std::memory_order_relaxed);
  to.min_ns = from.min_ns.load(std::memory_order_relaxed);
  to.max_ns = from.max_ns.load(std::memory_order_relaxed);
  to.allocs = from.allocs.load(std::memory_order_relaxed);
  to.alloc_bytes = from.alloc_bytes.load(std::memory_order_relaxed);
  to.frees = from.frees.load(std::memory_order_relaxed);
  to.free_bytes = from.free_bytes.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < to.buckets.size(); ++i) {
    to.buckets[i] = from.buckets[i].load(std::memory_order_relaxed);
  }
}

// Sort every node's children (spans first, then value nodes, each by site
// name) and renumber the tree in DFS pre-order. Reports from different
// insertion histories land on identical bytes.
void canonicalize(std::vector<ProfileNode>& nodes) {
  std::vector<std::vector<std::size_t>> kids(nodes.size());
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    kids[static_cast<std::size_t>(nodes[i].parent)].push_back(i);
  }
  for (auto& k : kids) {
    std::sort(k.begin(), k.end(), [&](std::size_t a, std::size_t b) {
      if (nodes[a].is_value != nodes[b].is_value) return !nodes[a].is_value;
      return nodes[a].site < nodes[b].site;
    });
  }
  std::vector<ProfileNode> out;
  out.reserve(nodes.size());
  // Iterative DFS keeping pre-order; stack holds (old index, new parent).
  std::vector<std::pair<std::size_t, std::int32_t>> stack;
  out.push_back(std::move(nodes[0]));
  out[0].parent = -1;
  out[0].depth = 0;
  for (auto it = kids[0].rbegin(); it != kids[0].rend(); ++it) {
    stack.emplace_back(*it, 0);
  }
  while (!stack.empty()) {
    const auto [old_index, parent_index] = stack.back();
    stack.pop_back();
    const std::int32_t new_index = static_cast<std::int32_t>(out.size());
    out.push_back(std::move(nodes[old_index]));
    out.back().parent = parent_index;
    out.back().depth = out[static_cast<std::size_t>(parent_index)].depth + 1;
    for (auto it = kids[old_index].rbegin(); it != kids[old_index].rend();
         ++it) {
      stack.emplace_back(*it, new_index);
    }
  }
  nodes = std::move(out);
}

void appendEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void appendU64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void appendI64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out += buf;
}

void appendRatio(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  out += buf;
}

}  // namespace

ProfileTable::ProfileTable(std::string name) : name_(std::move(name)) {
  overhead_ns_ = clockPairOverheadNs();
  root_.site = "root";
}

prof::Node* ProfileTable::enter(const char* site, prof::Node* parent) {
  if (parent == nullptr) parent = &root_;
  // Fast path: same string literal, pointer identity. Fallback: content
  // comparison, so the same site named from two translation units still
  // lands on one node.
  for (prof::Node* child : parent->children) {
    if (!child->is_value &&
        (child->site == site || std::strcmp(child->site, site) == 0)) {
      return child;
    }
  }
  std::lock_guard<std::mutex> lock(structure_mutex_);
  nodes_.emplace_back();
  prof::Node* node = &nodes_.back();
  node->site = site;
  node->parent = parent;
  parent->children.push_back(node);
  return node;
}

void ProfileTable::leave(prof::Node* node, std::int64_t dt_ns,
                         std::int64_t child_ns) noexcept {
  const std::uint64_t calls = node->calls.load(std::memory_order_relaxed);
  std::int64_t self = dt_ns - child_ns;
  if (self < 0) self = 0;
  // Single-writer: plain load/store pairs are exact; atomics only make the
  // concurrent report() reader tear-free.
  node->total_ns.fetch_add(dt_ns, std::memory_order_relaxed);
  node->self_ns.fetch_add(self, std::memory_order_relaxed);
  if (calls == 0 || dt_ns < node->min_ns.load(std::memory_order_relaxed)) {
    node->min_ns.store(dt_ns, std::memory_order_relaxed);
  }
  if (calls == 0 || dt_ns > node->max_ns.load(std::memory_order_relaxed)) {
    node->max_ns.store(dt_ns, std::memory_order_relaxed);
  }
  node->buckets[bucketOf(dt_ns)].fetch_add(1, std::memory_order_relaxed);
  node->calls.store(calls + 1, std::memory_order_relaxed);
}

void ProfileTable::value(const char* site, std::int64_t v) {
  prof::Node* parent = prof::tls.node;
  if (parent == nullptr) parent = &root_;
  prof::Node* node = nullptr;
  for (prof::Node* child : parent->children) {
    if (child->is_value &&
        (child->site == site || std::strcmp(child->site, site) == 0)) {
      node = child;
      break;
    }
  }
  if (node == nullptr) {
    std::lock_guard<std::mutex> lock(structure_mutex_);
    nodes_.emplace_back();
    node = &nodes_.back();
    node->site = site;
    node->parent = parent;
    node->is_value = true;
    parent->children.push_back(node);
  }
  const std::uint64_t calls = node->calls.load(std::memory_order_relaxed);
  node->total_ns.fetch_add(v, std::memory_order_relaxed);
  if (calls == 0 || v < node->min_ns.load(std::memory_order_relaxed)) {
    node->min_ns.store(v, std::memory_order_relaxed);
  }
  if (calls == 0 || v > node->max_ns.load(std::memory_order_relaxed)) {
    node->max_ns.store(v, std::memory_order_relaxed);
  }
  node->buckets[bucketOf(v)].fetch_add(1, std::memory_order_relaxed);
  node->calls.store(calls + 1, std::memory_order_relaxed);
}

void ProfileTable::recordAlloc(prof::Node* node, std::size_t bytes) noexcept {
  if (node == nullptr) node = &root_;
  node->allocs.fetch_add(1, std::memory_order_relaxed);
  node->alloc_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void ProfileTable::recordFree(prof::Node* node, std::size_t bytes,
                              bool sized) noexcept {
  if (node == nullptr) node = &root_;
  node->frees.fetch_add(1, std::memory_order_relaxed);
  if (sized) node->free_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

ProfileReport ProfileTable::report() const {
  ProfileReport out;
  copyCounters(root_, out.nodes_[0]);
  std::map<const prof::Node*, std::int32_t> index;
  index[&root_] = 0;
  {
    // Nodes append under this mutex and parents are created before their
    // children, so a single in-order pass under the lock sees a consistent
    // tree even while the owning thread keeps writing counters.
    std::lock_guard<std::mutex> lock(structure_mutex_);
    for (const prof::Node& node : nodes_) {
      const std::int32_t parent_index = index.at(node.parent);
      ProfileNode flat;
      flat.site = node.site;
      flat.parent = parent_index;
      flat.depth =
          out.nodes_[static_cast<std::size_t>(parent_index)].depth + 1;
      copyCounters(node, flat);
      index[&node] = static_cast<std::int32_t>(out.nodes_.size());
      out.nodes_.push_back(std::move(flat));
    }
  }
  canonicalize(out.nodes_);
  return out;
}

void ProfileReport::mergeFrom(const ProfileReport& other) {
  if (other.nodes_.size() == 1 && other.nodes_[0].allocs == 0 &&
      other.nodes_[0].frees == 0) {
    return;  // nothing recorded
  }
  auto fold = [](ProfileNode& into, const ProfileNode& from) {
    if (from.calls > 0) {
      if (into.calls == 0) {
        into.min_ns = from.min_ns;
        into.max_ns = from.max_ns;
      } else {
        into.min_ns = std::min(into.min_ns, from.min_ns);
        into.max_ns = std::max(into.max_ns, from.max_ns);
      }
    }
    into.calls += from.calls;
    into.total_ns += from.total_ns;
    into.self_ns += from.self_ns;
    into.allocs += from.allocs;
    into.alloc_bytes += from.alloc_bytes;
    into.frees += from.frees;
    into.free_bytes += from.free_bytes;
    for (std::size_t i = 0; i < into.buckets.size(); ++i) {
      into.buckets[i] += from.buckets[i];
    }
  };
  fold(nodes_[0], other.nodes_[0]);
  // `other` is in DFS order, so a node's parent is always mapped before
  // the node itself.
  std::vector<std::int32_t> mapped(other.nodes_.size(), -1);
  mapped[0] = 0;
  for (std::size_t j = 1; j < other.nodes_.size(); ++j) {
    const ProfileNode& from = other.nodes_[j];
    const std::int32_t parent =
        mapped[static_cast<std::size_t>(from.parent)];
    std::int32_t match = -1;
    for (std::size_t i = 1; i < nodes_.size(); ++i) {
      if (nodes_[i].parent == parent && nodes_[i].is_value == from.is_value &&
          nodes_[i].site == from.site) {
        match = static_cast<std::int32_t>(i);
        break;
      }
    }
    if (match < 0) {
      ProfileNode fresh;
      fresh.site = from.site;
      fresh.parent = parent;
      fresh.is_value = from.is_value;
      fresh.depth = nodes_[static_cast<std::size_t>(parent)].depth + 1;
      match = static_cast<std::int32_t>(nodes_.size());
      nodes_.push_back(std::move(fresh));
      fold(nodes_.back(), from);
    } else {
      fold(nodes_[static_cast<std::size_t>(match)], from);
    }
    mapped[j] = match;
  }
  canonicalize(nodes_);
}

ProfileTotals ProfileReport::totals() const {
  ProfileTotals t;
  for (const ProfileNode& node : nodes_) {
    t.allocs += node.allocs;
    t.alloc_bytes += node.alloc_bytes;
    t.frees += node.frees;
    t.free_bytes += node.free_bytes;
    if (!node.is_value) {
      t.span_calls += node.calls;
      if (node.depth == 1) t.top_total_ns += node.total_ns;
    }
  }
  return t;
}

std::string ProfileReport::json() const {
  std::string out = "{\"nodes\":[";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const ProfileNode& n = nodes_[i];
    if (i) out += ',';
    out += "{\"site\":\"";
    appendEscaped(out, n.site);
    out += "\",\"parent\":";
    appendI64(out, n.parent);
    out += ",\"depth\":";
    appendU64(out, n.depth);
    out += ",\"kind\":\"";
    out += n.is_value ? "value" : "span";
    out += "\",\"calls\":";
    appendU64(out, n.calls);
    out += ",\"total_ns\":";
    appendI64(out, n.total_ns);
    out += ",\"self_ns\":";
    appendI64(out, n.self_ns);
    out += ",\"min_ns\":";
    appendI64(out, n.min_ns);
    out += ",\"max_ns\":";
    appendI64(out, n.max_ns);
    out += ",\"allocs\":";
    appendU64(out, n.allocs);
    out += ",\"alloc_bytes\":";
    appendU64(out, n.alloc_bytes);
    out += ",\"frees\":";
    appendU64(out, n.frees);
    out += ",\"free_bytes\":";
    appendU64(out, n.free_bytes);
    out += ",\"hist\":{";
    bool first = true;
    for (std::size_t b = 0; b < n.buckets.size(); ++b) {
      if (n.buckets[b] == 0) continue;
      if (!first) out += ',';
      first = false;
      out += '"';
      appendU64(out, b);
      out += "\":";
      appendU64(out, n.buckets[b]);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string ProfileReport::collapsed() const {
  // One line per span node with nonzero self time: "a;b;c <self_ns>".
  // The synthetic root is omitted from stacks (it has no self time and
  // flamegraph.pl supplies its own "all" frame).
  std::string out;
  std::vector<std::string> paths(nodes_.size());
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    const ProfileNode& n = nodes_[i];
    if (n.is_value) continue;
    const std::size_t parent = static_cast<std::size_t>(n.parent);
    paths[i] = parent == 0 ? n.site : paths[parent] + ";" + n.site;
    if (n.self_ns <= 0) continue;
    out += paths[i];
    out += ' ';
    appendI64(out, n.self_ns);
    out += '\n';
  }
  return out;
}

std::string ProfileReport::speedscope(const std::string& name) const {
  // speedscope "sampled" profile: one weighted stack per span node,
  // weight = self time. https://www.speedscope.app/file-format-schema.json
  std::vector<std::string> frames;
  std::map<std::string, std::size_t> frame_index;
  std::vector<std::vector<std::size_t>> stacks;
  std::vector<std::int64_t> weights;
  std::vector<std::vector<std::size_t>> stack_of(nodes_.size());
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    const ProfileNode& n = nodes_[i];
    if (n.is_value) continue;
    auto it = frame_index.find(n.site);
    std::size_t frame;
    if (it == frame_index.end()) {
      frame = frames.size();
      frame_index.emplace(n.site, frame);
      frames.push_back(n.site);
    } else {
      frame = it->second;
    }
    const std::size_t parent = static_cast<std::size_t>(n.parent);
    stack_of[i] = stack_of[parent];
    stack_of[i].push_back(frame);
    if (n.self_ns <= 0) continue;
    stacks.push_back(stack_of[i]);
    weights.push_back(n.self_ns);
  }
  std::int64_t end_value = 0;
  for (std::int64_t w : weights) end_value += w;

  std::string out =
      "{\"$schema\":\"https://www.speedscope.app/file-format-schema.json\","
      "\"shared\":{\"frames\":[";
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (i) out += ',';
    out += "{\"name\":\"";
    appendEscaped(out, frames[i]);
    out += "\"}";
  }
  out += "]},\"profiles\":[{\"type\":\"sampled\",\"name\":\"";
  appendEscaped(out, name);
  out += "\",\"unit\":\"nanoseconds\",\"startValue\":0,\"endValue\":";
  appendI64(out, end_value);
  out += ",\"samples\":[";
  for (std::size_t s = 0; s < stacks.size(); ++s) {
    if (s) out += ',';
    out += '[';
    for (std::size_t f = 0; f < stacks[s].size(); ++f) {
      if (f) out += ',';
      appendU64(out, stacks[s][f]);
    }
    out += ']';
  }
  out += "],\"weights\":[";
  for (std::size_t w = 0; w < weights.size(); ++w) {
    if (w) out += ',';
    appendI64(out, weights[w]);
  }
  out += "]}],\"exporter\":\"cmc-profiler\",\"activeProfileIndex\":0}";
  return out;
}

std::string ProfileReport::attributionJson(std::int64_t wall_ns) const {
  struct SiteAgg {
    std::uint64_t calls = 0;
    std::int64_t total_ns = 0;
    std::int64_t self_ns = 0;
    std::uint64_t allocs = 0;
    std::uint64_t alloc_bytes = 0;
  };
  std::map<std::string, SiteAgg> sites;
  std::int64_t top_ns = 0;
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    const ProfileNode& n = nodes_[i];
    if (n.is_value) continue;
    SiteAgg& agg = sites[n.site];
    agg.calls += n.calls;
    agg.total_ns += n.total_ns;
    agg.self_ns += n.self_ns;
    agg.allocs += n.allocs;
    agg.alloc_bytes += n.alloc_bytes;
    if (n.depth == 1) top_ns += n.total_ns;
  }
  double coverage = 0.0;
  if (wall_ns > 0) {
    coverage = static_cast<double>(top_ns) / static_cast<double>(wall_ns);
    if (coverage > 1.0) coverage = 1.0;
  }
  std::vector<std::pair<std::string, SiteAgg>> ordered(sites.begin(),
                                                       sites.end());
  std::sort(ordered.begin(), ordered.end(), [](const auto& a, const auto& b) {
    if (a.second.self_ns != b.second.self_ns) {
      return a.second.self_ns > b.second.self_ns;
    }
    return a.first < b.first;
  });

  std::string out = "{\"wall_ns\":";
  appendI64(out, wall_ns);
  out += ",\"coverage\":";
  appendRatio(out, coverage);
  out += ",\"sites\":[";
  char buf[64];
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    const auto& [site, agg] = ordered[i];
    if (i) out += ',';
    out += "{\"site\":\"";
    appendEscaped(out, site);
    out += "\",\"calls\":";
    appendU64(out, agg.calls);
    out += ",\"total_ns\":";
    appendI64(out, agg.total_ns);
    out += ",\"self_ns\":";
    appendI64(out, agg.self_ns);
    const double calls = agg.calls > 0 ? static_cast<double>(agg.calls) : 1.0;
    std::snprintf(buf, sizeof(buf), ",\"ns_per_call\":%.1f",
                  static_cast<double>(agg.total_ns) / calls);
    out += buf;
    std::snprintf(buf, sizeof(buf), ",\"self_ns_per_call\":%.1f",
                  static_cast<double>(agg.self_ns) / calls);
    out += buf;
    out += ",\"allocs\":";
    appendU64(out, agg.allocs);
    std::snprintf(buf, sizeof(buf), ",\"allocs_per_call\":%.3f",
                  static_cast<double>(agg.allocs) / calls);
    out += buf;
    out += ",\"alloc_bytes\":";
    appendU64(out, agg.alloc_bytes);
    std::snprintf(buf, sizeof(buf), ",\"bytes_per_call\":%.1f}",
                  static_cast<double>(agg.alloc_bytes) / calls);
    out += buf;
  }
  out += "]}";
  return out;
}

void setThreadProfiler(ProfileTable* table) noexcept {
  prof::tls.table = table;
  prof::tls.node = table != nullptr ? table->root() : nullptr;
  prof::tls.child_acc = nullptr;
}

ProfileReport mergeTables(const std::vector<const ProfileTable*>& tables) {
  ProfileReport merged;
  for (const ProfileTable* table : tables) {
    if (table != nullptr) merged.mergeFrom(table->report());
  }
  return merged;
}

std::string profileResponse(const ProfileReport& report,
                            const std::string& args) {
  if (args.empty() || args == "json") return report.json();
  if (args == "collapsed") return report.collapsed();
  if (args == "speedscope") return report.speedscope("cmc");
  throw std::runtime_error("unknown profile sub-verb: " + args);
}

}  // namespace cmc::obs

// ---------------------------------------------------------------------------
// Allocation accounting: replacement global operator new/delete. Compiled
// into cmc_obs (which every target links), so heap traffic anywhere in the
// process is attributed to the innermost open profiler span of the
// allocating thread. With no profiler installed the added cost is one
// thread-local load and a predictable branch per call.
//
// The hooks only bump relaxed atomics on an existing node — they never
// allocate, lock, or re-enter the profiler — so recursion from the
// profiler's own internal allocations (node creation under its structural
// mutex) is harmless: those bytes are charged to the enclosing span like
// any other.
// ---------------------------------------------------------------------------

namespace {

inline void noteAlloc(std::size_t size) noexcept {
  cmc::obs::prof::ThreadState& ts = cmc::obs::prof::tls;
  if (ts.table == nullptr) return;
  ts.table->recordAlloc(ts.node, size);
}

inline void noteFree(std::size_t size, bool sized) noexcept {
  cmc::obs::prof::ThreadState& ts = cmc::obs::prof::tls;
  if (ts.table == nullptr) return;
  ts.table->recordFree(ts.node, size, sized);
}

void* allocOrHandler(std::size_t size) noexcept {
  for (;;) {
    void* p = std::malloc(size != 0 ? size : 1);
    if (p != nullptr) {
      noteAlloc(size);
      return p;
    }
    const std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) return nullptr;
    handler();
  }
}

void* allocAlignedOrHandler(std::size_t size, std::size_t align) noexcept {
  if (align < sizeof(void*)) align = sizeof(void*);
  for (;;) {
    void* p = nullptr;
    if (posix_memalign(&p, align, size != 0 ? size : 1) == 0) {
      noteAlloc(size);
      return p;
    }
    const std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) return nullptr;
    handler();
  }
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = allocOrHandler(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = allocOrHandler(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return allocOrHandler(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return allocOrHandler(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = allocAlignedOrHandler(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = allocAlignedOrHandler(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return allocAlignedOrHandler(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return allocAlignedOrHandler(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept {
  if (p == nullptr) return;
  noteFree(0, false);
  std::free(p);
}

void operator delete[](void* p) noexcept {
  if (p == nullptr) return;
  noteFree(0, false);
  std::free(p);
}

void operator delete(void* p, std::size_t size) noexcept {
  if (p == nullptr) return;
  noteFree(size, true);
  std::free(p);
}

void operator delete[](void* p, std::size_t size) noexcept {
  if (p == nullptr) return;
  noteFree(size, true);
  std::free(p);
}

void operator delete(void* p, const std::nothrow_t&) noexcept {
  if (p == nullptr) return;
  noteFree(0, false);
  std::free(p);
}

void operator delete[](void* p, const std::nothrow_t&) noexcept {
  if (p == nullptr) return;
  noteFree(0, false);
  std::free(p);
}

void operator delete(void* p, std::align_val_t) noexcept {
  if (p == nullptr) return;
  noteFree(0, false);
  std::free(p);
}

void operator delete[](void* p, std::align_val_t) noexcept {
  if (p == nullptr) return;
  noteFree(0, false);
  std::free(p);
}

void operator delete(void* p, std::size_t size, std::align_val_t) noexcept {
  if (p == nullptr) return;
  noteFree(size, true);
  std::free(p);
}

void operator delete[](void* p, std::size_t size, std::align_val_t) noexcept {
  if (p == nullptr) return;
  noteFree(size, true);
  std::free(p);
}
