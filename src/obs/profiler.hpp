// Hot-path profiler: site-scoped timing and allocation attribution.
//
// CMC_PROF_SCOPE("site") opens an RAII span over a thread-local
// calling-context tree: each distinct (parent, site) pair is one node
// accumulating calls, total/self nanoseconds (self = total minus time spent
// in child spans), min/max, a base-2 duration histogram, and the heap
// traffic — operator new/delete counts and bytes — that happened while the
// span was the innermost open one. CMC_PROF_VALUE("site", v) records a
// plain value distribution (queue depths, batch sizes) into a value-kind
// child node with no timing.
//
// Like the rest of src/obs this is compiled in everywhere and free when
// off: a site visit with no profiler installed is one thread-local load and
// a predictable branch; the allocation hook is the same test on the
// operator new path. There is deliberately NO process-wide fallback: a
// ProfileTable is single-writer, so installation is per-thread only
// (setThreadProfiler), exactly how ShardedRuntime installs the rest of the
// thread-local obs artifacts. Threads that never install one (e.g. the
// parallel explorer's workers) simply record nothing.
//
// Timing subtracts a per-span calibration constant (the measured cost of
// the two steady-clock reads bracketing the span) so leaf sites in the
// tens-of-nanoseconds range stay honest.
//
// Reading is race-free while the owning thread is still writing: node
// counters are relaxed atomics and report() walks only append-only state
// under the structural mutex, so the live-telemetry sampler can serve the
// `profile` ops verb mid-run. Reports merge deterministically in rank
// order (children sorted by site name), mirroring the metrics rollup, and
// export as deterministic JSON, collapsed-stack text (flamegraph.pl), and
// speedscope JSON.
#pragma once

#include <atomic>
#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace cmc::obs {

class ProfileTable;

// Flattened, mergeable snapshot of one or more ProfileTables.
struct ProfileNode {
  std::string site;
  std::int32_t parent = -1;  // index into ProfileReport::nodes; -1 = root
  std::uint32_t depth = 0;   // root = 0
  bool is_value = false;     // value distribution, not a timed span
  std::uint64_t calls = 0;
  std::int64_t total_ns = 0;  // for value nodes: sum of recorded values
  std::int64_t self_ns = 0;   // always 0 for value nodes
  std::int64_t min_ns = 0;
  std::int64_t max_ns = 0;
  std::uint64_t allocs = 0;
  std::uint64_t alloc_bytes = 0;
  std::uint64_t frees = 0;
  std::uint64_t free_bytes = 0;
  std::array<std::uint64_t, 64> buckets{};  // base-2, as MetricsRegistry
};

struct ProfileTotals {
  std::uint64_t span_calls = 0;  // timed spans only
  std::int64_t top_total_ns = 0;  // sum over depth-1 span nodes
  std::uint64_t allocs = 0;
  std::uint64_t alloc_bytes = 0;
  std::uint64_t frees = 0;
  std::uint64_t free_bytes = 0;
};

class ProfileReport {
 public:
  // Nodes in deterministic DFS order: index 0 is the synthetic root,
  // children of every node sorted value-kind-last then by site name.
  [[nodiscard]] const std::vector<ProfileNode>& nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] bool empty() const noexcept { return nodes_.size() <= 1; }

  // Additive merge by (path, kind); min/max fold, histograms add. Merging
  // shard reports in rank order yields the same bytes regardless of how
  // the per-shard trees were grown.
  void mergeFrom(const ProfileReport& other);

  [[nodiscard]] ProfileTotals totals() const;

  // Deterministic flat-array JSON (histograms emitted sparse).
  [[nodiscard]] std::string json() const;
  // flamegraph.pl collapsed stacks: "root;a;b <self_ns>" per span node
  // with nonzero self time.
  [[nodiscard]] std::string collapsed() const;
  // speedscope "sampled" profile, one weighted stack per span node.
  [[nodiscard]] std::string speedscope(const std::string& name) const;
  // Per-site rollup for bench PROF lines: ns/op + allocs/op per site plus
  // a coverage ratio (depth-1 span time / wall_ns, capped at 1).
  [[nodiscard]] std::string attributionJson(std::int64_t wall_ns) const;

 private:
  friend class ProfileTable;
  std::vector<ProfileNode> nodes_{ProfileNode{"root", -1, 0}};
};

namespace prof {

// One CCT node, written only by the owning thread; counters are relaxed
// atomics so a concurrent reader (live telemetry) sees torn-free values.
struct Node {
  const char* site = nullptr;
  Node* parent = nullptr;
  bool is_value = false;
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::int64_t> total_ns{0};
  std::atomic<std::int64_t> self_ns{0};
  std::atomic<std::int64_t> min_ns{0};
  std::atomic<std::int64_t> max_ns{0};
  std::atomic<std::uint64_t> allocs{0};
  std::atomic<std::uint64_t> alloc_bytes{0};
  std::atomic<std::uint64_t> frees{0};
  std::atomic<std::uint64_t> free_bytes{0};
  std::array<std::atomic<std::uint64_t>, 64> buckets{};
  // Owner-only child index for O(children) lookup on enter; readers must
  // never touch it (report() rebuilds the tree from parent pointers).
  std::vector<Node*> children;
};

// Per-thread profiler state. Kept as one POD-ish struct so a site visit
// with the profiler off is a single thread-local load; zero-initialized
// statically, so the allocation hook is safe before main().
struct ThreadState {
  ProfileTable* table = nullptr;
  Node* node = nullptr;            // current CCT position
  std::int64_t* child_acc = nullptr;  // innermost open span's child-time cell
};
extern thread_local constinit ThreadState tls;

[[nodiscard]] inline std::int64_t nowNs() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace prof

class ProfileTable {
 public:
  explicit ProfileTable(std::string name = "profile");

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::int64_t overheadNs() const noexcept {
    return overhead_ns_;
  }

  // Hot-path hooks, called by ProfScope / CMC_PROF_VALUE / the allocation
  // hook. enter() finds or creates the child of `parent` for `site`.
  prof::Node* enter(const char* site, prof::Node* parent);
  void leave(prof::Node* node, std::int64_t dt_ns,
             std::int64_t child_ns) noexcept;
  void value(const char* site, std::int64_t v);
  void recordAlloc(prof::Node* node, std::size_t bytes) noexcept;
  void recordFree(prof::Node* node, std::size_t bytes, bool sized) noexcept;

  [[nodiscard]] prof::Node* root() noexcept { return &root_; }

  // Safe against the owning thread still writing.
  [[nodiscard]] ProfileReport report() const;

 private:
  std::string name_;
  std::int64_t overhead_ns_ = 0;
  prof::Node root_;
  mutable std::mutex structure_mutex_;  // guards node creation + iteration
  std::deque<prof::Node> nodes_;        // stable addresses
};

// Install `table` as this thread's profiler (nullptr disables). The table
// must outlive the installation and must not be installed on two threads
// at once (single-writer contract).
void setThreadProfiler(ProfileTable* table) noexcept;
[[nodiscard]] inline ProfileTable* threadProfiler() noexcept {
  return prof::tls.table;
}

// Build one merged report from `tables` in rank order (index order), the
// same discipline as the metrics rollup merge.
[[nodiscard]] ProfileReport mergeTables(
    const std::vector<const ProfileTable*>& tables);

// Payload for the read-only `profile` ops verb, shared between
// LiveTelemetry and tests: args "" / "json" -> report JSON, "collapsed" ->
// collapsed stacks, "speedscope" -> speedscope JSON; anything else throws
// (the ops server turns that into an error response).
[[nodiscard]] std::string profileResponse(const ProfileReport& report,
                                          const std::string& args);

class ProfScope {
 public:
  explicit ProfScope(const char* site) noexcept {
    ProfileTable* table = prof::tls.table;
    if (table == nullptr) return;
    table_ = table;
    prev_node_ = prof::tls.node;
    prev_acc_ = prof::tls.child_acc;
    node_ = table->enter(site, prev_node_);
    prof::tls.node = node_;
    prof::tls.child_acc = &child_ns_;
    start_ns_ = prof::nowNs();
  }
  ~ProfScope() {
    if (table_ == nullptr) return;
    std::int64_t dt = prof::nowNs() - start_ns_ - table_->overheadNs();
    if (dt < 0) dt = 0;
    table_->leave(node_, dt, child_ns_);
    prof::tls.node = prev_node_;
    prof::tls.child_acc = prev_acc_;
    if (prev_acc_ != nullptr) *prev_acc_ += dt;
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  ProfileTable* table_ = nullptr;
  prof::Node* node_ = nullptr;
  prof::Node* prev_node_ = nullptr;
  std::int64_t* prev_acc_ = nullptr;
  std::int64_t child_ns_ = 0;
  std::int64_t start_ns_ = 0;
};

inline void profValue(const char* site, std::int64_t v) {
  if (ProfileTable* table = prof::tls.table) table->value(site, v);
}

#define CMC_PROF_CONCAT2(a, b) a##b
#define CMC_PROF_CONCAT(a, b) CMC_PROF_CONCAT2(a, b)
// `site` must be a string literal (node identity is by content, but the
// pointer is used as a fast path, so a stable address keeps lookups cheap).
#define CMC_PROF_SCOPE(site) \
  ::cmc::obs::ProfScope CMC_PROF_CONCAT(cmc_prof_scope_, __LINE__) { site }
#define CMC_PROF_VALUE(site, v) ::cmc::obs::profValue(site, (v))

}  // namespace cmc::obs
