// Flight recorder: automatic post-mortems for failed runs.
//
// A FlightRecorder is pointed at the live observability artifacts — the
// TraceRecorder's retained event window, the MetricsRegistry, the
// ConvergenceProbes — and, when something goes wrong, dumps all of them
// plus the extracted critical path into one JSON post-mortem file. The
// triggers:
//
//   * a convergence probe blowing its deadline (ConvergenceProbes::check
//     notifies the installed recorder on every timeout);
//   * an explicit assertion (flightAssert / dump("reason")) from tests,
//     benches, or fault-injection harnesses;
//
// so a failed stabilization run leaves behind exactly the causal window
// needed to debug it. CI uploads the dump files as artifacts on failure.
//
// Like the rest of src/obs this is off by default: nothing dumps unless a
// recorder is installed with setFlightRecorder(), and the trigger sites
// cost one relaxed load. Dump filenames are deterministic
// (<prefix>_<seq>_<reason>.json) so same-seed failures produce identical
// artifacts.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>

namespace cmc::obs {

class TraceRecorder;
class MetricsRegistry;
class ConvergenceProbes;

class FlightRecorder {
 public:
  struct Config {
    std::string directory = ".";   // where dump files land
    std::string prefix = "flight"; // filename stem
    std::size_t max_dumps = 16;    // stop writing after this many (a
                                   // crash-looping run must not fill the disk)
  };

  FlightRecorder();
  explicit FlightRecorder(Config config);

  // Wire up the sources to snapshot; any may stay null (that section is
  // omitted from the dump). Simulator::attachFlightRecorder does this.
  void setTrace(TraceRecorder* trace) noexcept;
  void setMetrics(MetricsRegistry* metrics) noexcept;
  void setProbes(const ConvergenceProbes* probes) noexcept;
  // Optional profile section: a callback returning ProfileReport JSON,
  // invoked at dump time (a callback rather than a table pointer, so the
  // host controls merging — per-shard table or fleet-merged view — and the
  // recorder stays decoupled from the profiler). Must not re-enter the
  // recorder. Empty string = section omitted.
  void setProfileSource(std::function<std::string()> source) noexcept;

  // Write one post-mortem: reason, retained trace window, metrics
  // snapshot, probe state, and the critical path extracted from the
  // window. Returns the file path, or "" if the dump was skipped
  // (max_dumps reached) or the file could not be written.
  std::string dump(std::string_view reason);

  [[nodiscard]] std::uint64_t dumps() const noexcept;
  [[nodiscard]] std::string lastPath() const;

 private:
  mutable std::mutex mutex_;
  Config config_;
  TraceRecorder* trace_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  const ConvergenceProbes* probes_ = nullptr;
  std::function<std::string()> profile_source_;
  std::uint64_t dumps_ = 0;
  std::string last_path_;
};

// Process-wide recorder; nullptr (default) disables all triggers.
// flightRecorder() resolves a thread-local override first
// (setThreadFlightRecorder): in a sharded runtime every worker thread runs
// its own simulation, and a probe blowing its deadline on shard k must dump
// shard k's trace window and probes — not whichever recorder another
// thread installed process-wide. See the matching note in trace.hpp.
[[nodiscard]] FlightRecorder* flightRecorder() noexcept;
void setFlightRecorder(FlightRecorder* recorder) noexcept;
void setThreadFlightRecorder(FlightRecorder* recorder) noexcept;

// Check-and-dump helper for tests and harnesses: returns `ok`, and on
// false dumps a post-mortem tagged `what` to the installed recorder.
bool flightAssert(bool ok, std::string_view what);

}  // namespace cmc::obs
