// Windowed metrics snapshots: the data model of the live telemetry plane.
//
// A MetricsSnapshot is an immutable copy of a MetricsRegistry taken with
// relaxed atomic reads — the registry lock is held only long enough to walk
// the name maps, and the hot paths writing the metrics are never paused.
// Snapshots are cheap enough to take on a period from a sampler thread
// while the registry's owner keeps hammering it.
//
// Two snapshots of the same registry bracket a *window*: delta() turns the
// cumulative counters and histogram buckets into per-window increments,
// from which windowed rates (counterRate) and windowed quantiles
// (HistogramSample::quantile over the bucket diff) fall out. That is what
// lets an operator watch setup p99 *per window* while a soak runs, instead
// of a run-lifetime aggregate that a transient stall barely moves.
//
// A SnapshotSeries is a bounded ring of recent windows — the time series
// the ops endpoint serves and SLO watchdogs (obs/slo.hpp) evaluate.
//
// Everything here is read-only with respect to the sampled registry, which
// is the load-bearing property: turning the sampler on cannot change a
// run's outcomes or its final metrics rollup (asserted in
// tests/load_test.cpp and the ops-smoke CI job).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "util/bytes.hpp"

namespace cmc::obs {

struct GaugeSample {
  std::int64_t value = 0;
  std::int64_t max = 0;
};

// Pre-aggregated histogram state: enough to merge, diff, and estimate
// quantiles with the same base-2-bucket interpolation as the live
// Histogram.
struct HistogramSample {
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;  // clamped to 0 when empty, like Histogram::min()
  std::int64_t max = 0;
  std::array<std::uint64_t, Histogram::kBuckets> buckets{};

  [[nodiscard]] double mean() const noexcept;
  // Quantile estimate in [0,1] by interpolation within the winning bucket,
  // clamped to [min, max] when those are known.
  [[nodiscard]] double quantile(double q) const noexcept;
};

struct MetricsSnapshot {
  std::int64_t wall_ms = 0;  // capture instant, caller-defined epoch
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, GaugeSample> gauges;
  std::map<std::string, HistogramSample> histograms;

  // Copy the registry's current state (relaxed reads; see file comment).
  [[nodiscard]] static MetricsSnapshot capture(const MetricsRegistry& registry,
                                               std::int64_t wall_ms = 0);

  // Sum another snapshot into this one: counters and histogram buckets add;
  // gauge values add and maxes take the max. Summing gauges is only
  // meaningful as a fleet-wide telemetry view (total armed probes across
  // shards) — the rollup contract of sharded runtimes still excludes them.
  void mergeFrom(const MetricsSnapshot& other);

  // Rebuild registry content from this snapshot (counters add, gauges set,
  // histograms accumulate). Lets a flight recorder dump a merged live view
  // through the ordinary MetricsRegistry::json() path.
  void applyTo(MetricsRegistry& registry) const;

  [[nodiscard]] std::uint64_t counter(std::string_view name) const noexcept;
  [[nodiscard]] const HistogramSample* histogram(
      std::string_view name) const noexcept;

  // Same shape as MetricsRegistry::json(), deterministic key order.
  [[nodiscard]] std::string json() const;
};

// One observation window: the per-window increments between two cumulative
// snapshots of the same registry. Counters clamp at zero rather than
// underflow (a restarted source must read as a quiet window, not a 2^64
// spike); histogram diffs are bucket-wise, so windowed quantiles are as
// exact as the cumulative ones. Gauges are instantaneous and carry the
// window-end reading.
struct MetricsDelta {
  std::int64_t start_ms = 0;
  std::int64_t window_ms = 0;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, GaugeSample> gauges;
  std::map<std::string, HistogramSample> histograms;

  [[nodiscard]] std::uint64_t counter(std::string_view name) const noexcept;
  [[nodiscard]] const HistogramSample* histogram(
      std::string_view name) const noexcept;
  // Windowed rate: counter increment / window seconds (0 if no window).
  [[nodiscard]] double counterRate(std::string_view name) const noexcept;

  [[nodiscard]] std::string json() const;
};

// The window between prev and curr (curr.wall_ms - prev.wall_ms wide).
// Names present only in curr are treated as starting from zero.
[[nodiscard]] MetricsDelta delta(const MetricsSnapshot& prev,
                                 const MetricsSnapshot& curr);

// Bounded ring of recent windows, oldest evicted first. push() computes the
// delta against the previously pushed snapshot, so the series holds both
// the cumulative snapshot and the window it closed.
class SnapshotSeries {
 public:
  explicit SnapshotSeries(std::size_t capacity = 64);

  void push(MetricsSnapshot snapshot);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t pushed() const noexcept { return pushed_; }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  [[nodiscard]] const MetricsSnapshot* latest() const noexcept;
  [[nodiscard]] const MetricsDelta* latestWindow() const noexcept;
  [[nodiscard]] const MetricsDelta& window(std::size_t i) const noexcept {
    return entries_[i].window;  // 0 = oldest retained
  }

  // {"windows":[{...},...],"retained":N,"evicted":M} — newest last; at most
  // `last_n` windows (0 = all retained).
  [[nodiscard]] std::string json(std::size_t last_n = 0) const;

  void clear();

 private:
  struct Entry {
    MetricsSnapshot snapshot;
    MetricsDelta window;
  };

  std::size_t capacity_;
  std::uint64_t pushed_ = 0;
  std::deque<Entry> entries_;
};

// Wire form of one snapshot, for the distributed load plane's PROGRESS and
// ROLLUP frames (util/bytes.hpp encoding): wall_ms, then each section as a
// u32 count of (name, payload) entries in ascending name order.
//
// The decoder is strict so that cross-process rollups stay trustworthy: it
// rejects truncation anywhere (including inside a histogram's bucket
// array), a bucket count other than Histogram::kBuckets, and names that
// are out of order or duplicated within a section. Strict ascending order
// makes the encoding canonical — deserialize ∘ serialize is the identity
// on bytes, which is what lets CI byte-compare a merged remote rollup
// against a local run.
void serializeSnapshot(const MetricsSnapshot& snapshot, ByteWriter& out);
[[nodiscard]] std::optional<MetricsSnapshot> deserializeSnapshot(
    ByteReader& in);

// Prometheus text exposition (version 0.0.4) of one cumulative snapshot.
// Metric names are sanitized ('.' and other non-[a-zA-Z0-9_] become '_')
// and prefixed "cmc_"; counters gain the conventional "_total" suffix,
// gauges export value plus a "_max" high-water companion, histograms
// export cumulative le-buckets at the base-2 bounds plus _sum and _count.
[[nodiscard]] std::string prometheusText(const MetricsSnapshot& snapshot);

}  // namespace cmc::obs
