#include "obs/snapshot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace cmc::obs {

namespace {

// Bucket i of the base-2 histogram covers [2^(i-1), 2^i) with bucket 0
// holding exactly zero; lo/hi give the interpolation bounds.
double bucketLo(std::size_t i) noexcept {
  return i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i) - 1);
}
double bucketHi(std::size_t i) noexcept {
  return i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i));
}

void appendHistogramJson(std::string& out, const HistogramSample& h) {
  char buf[224];
  std::snprintf(
      buf, sizeof(buf),
      "{\"count\":%llu,\"sum\":%lld,\"min\":%lld,\"max\":%lld,"
      "\"mean\":%.1f,\"p50\":%.1f,\"p90\":%.1f,\"p99\":%.1f}",
      static_cast<unsigned long long>(h.count), static_cast<long long>(h.sum),
      static_cast<long long>(h.min), static_cast<long long>(h.max), h.mean(),
      h.quantile(0.50), h.quantile(0.90), h.quantile(0.99));
  out += buf;
}

void appendSections(std::string& out,
                    const std::map<std::string, std::uint64_t>& counters,
                    const std::map<std::string, GaugeSample>& gauges,
                    const std::map<std::string, HistogramSample>& histograms) {
  char buf[96];
  out += "\"counters\":{";
  bool first = true;
  auto key = [&](const std::string& name) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":";
  };
  for (const auto& [name, v] : counters) {
    key(name);
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
    out += buf;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges) {
    key(name);
    std::snprintf(buf, sizeof(buf), "{\"value\":%lld,\"max\":%lld}",
                  static_cast<long long>(g.value),
                  static_cast<long long>(g.max));
    out += buf;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    key(name);
    appendHistogramJson(out, h);
  }
  out += "}";
}

// Derive the representable value range of a bucket-diff histogram, where
// the true windowed min/max are unknowable from cumulative extrema.
void boundFromBuckets(HistogramSample& h) noexcept {
  if (h.count == 0) {
    h.min = 0;
    h.max = 0;
    return;
  }
  std::size_t lo = 0;
  std::size_t hi = 0;
  bool seen = false;
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    if (h.buckets[i] == 0) continue;
    if (!seen) lo = i;
    hi = i;
    seen = true;
  }
  h.min = static_cast<std::int64_t>(bucketLo(lo));
  h.max = hi == 0 ? 0 : static_cast<std::int64_t>(bucketHi(hi)) - 1;
}

std::string sanitizePromName(std::string_view name) {
  std::string out = "cmc_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

double HistogramSample::mean() const noexcept {
  return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                   : 0.0;
}

double HistogramSample::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  double cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const double in_bucket = static_cast<double>(buckets[i]);
    if (in_bucket == 0) continue;
    if (cumulative + in_bucket >= target) {
      const double frac = (target - cumulative) / in_bucket;
      const double estimate = bucketLo(i) + (bucketHi(i) - bucketLo(i)) * frac;
      if (min <= max) {
        return std::clamp(estimate, static_cast<double>(min),
                          static_cast<double>(max));
      }
      return estimate;
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(max);
}

MetricsSnapshot MetricsSnapshot::capture(const MetricsRegistry& registry,
                                         std::int64_t wall_ms) {
  MetricsSnapshot snap;
  snap.wall_ms = wall_ms;
  registry.visit(
      [&](const std::string& name, const Counter& c) {
        snap.counters.emplace(name, c.value());
      },
      [&](const std::string& name, const Gauge& g) {
        snap.gauges.emplace(name, GaugeSample{g.value(), g.max()});
      },
      [&](const std::string& name, const Histogram& h) {
        HistogramSample sample;
        sample.count = h.count();
        sample.sum = h.sum();
        sample.min = h.min();
        sample.max = h.max();
        for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
          sample.buckets[i] = h.bucket(i);
        }
        snap.histograms.emplace(name, std::move(sample));
      });
  return snap;
}

void MetricsSnapshot::mergeFrom(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, g] : other.gauges) {
    GaugeSample& mine = gauges[name];
    mine.value += g.value;
    mine.max = std::max(mine.max, g.max);
  }
  for (const auto& [name, h] : other.histograms) {
    if (h.count == 0) continue;
    HistogramSample& mine = histograms[name];
    if (mine.count == 0) {
      mine.min = h.min;
      mine.max = h.max;
    } else {
      mine.min = std::min(mine.min, h.min);
      mine.max = std::max(mine.max, h.max);
    }
    mine.count += h.count;
    mine.sum += h.sum;
    for (std::size_t i = 0; i < mine.buckets.size(); ++i) {
      mine.buckets[i] += h.buckets[i];
    }
  }
}

void MetricsSnapshot::applyTo(MetricsRegistry& registry) const {
  for (const auto& [name, v] : counters) registry.counter(name).add(v);
  for (const auto& [name, g] : gauges) {
    Gauge& gauge = registry.gauge(name);
    gauge.set(g.max);  // raise the high-water mark first
    gauge.set(g.value);
  }
  for (const auto& [name, h] : histograms) {
    registry.histogram(name).accumulate(h.count, h.sum, h.min, h.max,
                                        h.buckets);
  }
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const noexcept {
  auto it = counters.find(std::string(name));
  return it != counters.end() ? it->second : 0;
}

const HistogramSample* MetricsSnapshot::histogram(
    std::string_view name) const noexcept {
  auto it = histograms.find(std::string(name));
  return it != histograms.end() ? &it->second : nullptr;
}

std::string MetricsSnapshot::json() const {
  std::string out;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "{\"wall_ms\":%lld,",
                static_cast<long long>(wall_ms));
  out += buf;
  appendSections(out, counters, gauges, histograms);
  out += "}";
  return out;
}

std::uint64_t MetricsDelta::counter(std::string_view name) const noexcept {
  auto it = counters.find(std::string(name));
  return it != counters.end() ? it->second : 0;
}

const HistogramSample* MetricsDelta::histogram(
    std::string_view name) const noexcept {
  auto it = histograms.find(std::string(name));
  return it != histograms.end() ? &it->second : nullptr;
}

double MetricsDelta::counterRate(std::string_view name) const noexcept {
  if (window_ms <= 0) return 0.0;
  return static_cast<double>(counter(name)) * 1000.0 /
         static_cast<double>(window_ms);
}

std::string MetricsDelta::json() const {
  std::string out;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "{\"start_ms\":%lld,\"window_ms\":%lld,",
                static_cast<long long>(start_ms),
                static_cast<long long>(window_ms));
  out += buf;
  appendSections(out, counters, gauges, histograms);
  out += "}";
  return out;
}

MetricsDelta delta(const MetricsSnapshot& prev, const MetricsSnapshot& curr) {
  MetricsDelta d;
  d.start_ms = prev.wall_ms;
  d.window_ms = std::max<std::int64_t>(curr.wall_ms - prev.wall_ms, 0);
  for (const auto& [name, v] : curr.counters) {
    auto it = prev.counters.find(name);
    const std::uint64_t before = it != prev.counters.end() ? it->second : 0;
    // Wrap-free monotonicity: a source that restarted (curr < prev) reads
    // as a quiet window, never as a 2^64 spike.
    d.counters.emplace(name, v > before ? v - before : 0);
  }
  d.gauges = curr.gauges;  // instantaneous: the window-end reading
  for (const auto& [name, h] : curr.histograms) {
    HistogramSample w;
    auto it = prev.histograms.find(name);
    const HistogramSample* before =
        it != prev.histograms.end() ? &it->second : nullptr;
    const std::uint64_t prev_count = before != nullptr ? before->count : 0;
    w.count = h.count > prev_count ? h.count - prev_count : 0;
    const std::int64_t prev_sum = before != nullptr ? before->sum : 0;
    w.sum = w.count > 0 ? h.sum - prev_sum : 0;
    for (std::size_t i = 0; i < w.buckets.size(); ++i) {
      const std::uint64_t b = before != nullptr ? before->buckets[i] : 0;
      w.buckets[i] = h.buckets[i] > b ? h.buckets[i] - b : 0;
    }
    boundFromBuckets(w);
    d.histograms.emplace(name, std::move(w));
  }
  return d;
}

SnapshotSeries::SnapshotSeries(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

void SnapshotSeries::push(MetricsSnapshot snapshot) {
  Entry entry;
  if (!entries_.empty()) {
    entry.window = delta(entries_.back().snapshot, snapshot);
  } else {
    // The boot window: increments from an empty registry, zero-width.
    MetricsSnapshot epoch;
    epoch.wall_ms = snapshot.wall_ms;
    entry.window = delta(epoch, snapshot);
  }
  entry.snapshot = std::move(snapshot);
  entries_.push_back(std::move(entry));
  ++pushed_;
  while (entries_.size() > capacity_) entries_.pop_front();
}

const MetricsSnapshot* SnapshotSeries::latest() const noexcept {
  return entries_.empty() ? nullptr : &entries_.back().snapshot;
}

const MetricsDelta* SnapshotSeries::latestWindow() const noexcept {
  return entries_.empty() ? nullptr : &entries_.back().window;
}

std::string SnapshotSeries::json(std::size_t last_n) const {
  const std::size_t n =
      last_n == 0 ? entries_.size() : std::min(last_n, entries_.size());
  std::string out = "{\"windows\":[";
  for (std::size_t i = entries_.size() - n; i < entries_.size(); ++i) {
    if (i != entries_.size() - n) out += ',';
    out += entries_[i].window.json();
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf), "],\"retained\":%zu,\"evicted\":%llu}",
                entries_.size(),
                static_cast<unsigned long long>(pushed_ - entries_.size()));
  out += buf;
  return out;
}

void SnapshotSeries::clear() {
  entries_.clear();
  pushed_ = 0;
}

void serializeSnapshot(const MetricsSnapshot& snapshot, ByteWriter& out) {
  out.u64(static_cast<std::uint64_t>(snapshot.wall_ms));
  out.u32(static_cast<std::uint32_t>(snapshot.counters.size()));
  for (const auto& [name, v] : snapshot.counters) {
    out.str(name);
    out.u64(v);
  }
  out.u32(static_cast<std::uint32_t>(snapshot.gauges.size()));
  for (const auto& [name, g] : snapshot.gauges) {
    out.str(name);
    out.u64(static_cast<std::uint64_t>(g.value));
    out.u64(static_cast<std::uint64_t>(g.max));
  }
  out.u32(static_cast<std::uint32_t>(snapshot.histograms.size()));
  for (const auto& [name, h] : snapshot.histograms) {
    out.str(name);
    out.u64(h.count);
    out.u64(static_cast<std::uint64_t>(h.sum));
    out.u64(static_cast<std::uint64_t>(h.min));
    out.u64(static_cast<std::uint64_t>(h.max));
    out.u32(static_cast<std::uint32_t>(h.buckets.size()));
    for (std::uint64_t bucket : h.buckets) out.u64(bucket);
  }
}

std::optional<MetricsSnapshot> deserializeSnapshot(ByteReader& in) {
  MetricsSnapshot snap;
  snap.wall_ms = static_cast<std::int64_t>(in.u64());
  // Each section must arrive in strictly ascending name order: that both
  // rejects duplicate names (which would silently drop data into a
  // std::map) and makes the wire form canonical, so re-serializing a
  // parsed snapshot reproduces the input bytes.
  const std::string* prev = nullptr;
  auto ordered = [&prev](const std::string& name) {
    const bool ok = prev == nullptr || *prev < name;
    return ok;
  };
  const std::uint32_t n_counters = in.u32();
  prev = nullptr;
  for (std::uint32_t i = 0; i < n_counters; ++i) {
    std::string name = in.str();
    const std::uint64_t value = in.u64();
    if (!in.ok() || !ordered(name)) return std::nullopt;
    prev = &snap.counters.emplace(std::move(name), value).first->first;
  }
  const std::uint32_t n_gauges = in.u32();
  prev = nullptr;
  for (std::uint32_t i = 0; i < n_gauges; ++i) {
    std::string name = in.str();
    GaugeSample g;
    g.value = static_cast<std::int64_t>(in.u64());
    g.max = static_cast<std::int64_t>(in.u64());
    if (!in.ok() || !ordered(name)) return std::nullopt;
    prev = &snap.gauges.emplace(std::move(name), g).first->first;
  }
  const std::uint32_t n_histograms = in.u32();
  prev = nullptr;
  for (std::uint32_t i = 0; i < n_histograms; ++i) {
    std::string name = in.str();
    HistogramSample h;
    h.count = in.u64();
    h.sum = static_cast<std::int64_t>(in.u64());
    h.min = static_cast<std::int64_t>(in.u64());
    h.max = static_cast<std::int64_t>(in.u64());
    if (in.u32() != Histogram::kBuckets) return std::nullopt;
    for (std::uint64_t& bucket : h.buckets) bucket = in.u64();
    // The bucket loop zero-fills past a truncation; in.ok() catches it.
    if (!in.ok() || !ordered(name)) return std::nullopt;
    prev = &snap.histograms.emplace(std::move(name), std::move(h)).first->first;
  }
  if (!in.ok()) return std::nullopt;
  return snap;
}

std::string prometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  char buf[128];
  for (const auto& [name, v] : snapshot.counters) {
    const std::string prom = sanitizePromName(name) + "_total";
    out += "# TYPE " + prom + " counter\n";
    std::snprintf(buf, sizeof(buf), " %llu\n",
                  static_cast<unsigned long long>(v));
    out += prom + buf;
  }
  for (const auto& [name, g] : snapshot.gauges) {
    const std::string prom = sanitizePromName(name);
    out += "# TYPE " + prom + " gauge\n";
    std::snprintf(buf, sizeof(buf), " %lld\n", static_cast<long long>(g.value));
    out += prom + buf;
    out += "# TYPE " + prom + "_max gauge\n";
    std::snprintf(buf, sizeof(buf), " %lld\n", static_cast<long long>(g.max));
    out += prom + "_max" + buf;
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string prom = sanitizePromName(name);
    out += "# TYPE " + prom + " histogram\n";
    // Bucket i holds integer values in [2^(i-1), 2^i), so its exact
    // inclusive upper bound is 2^i - 1; emit up to the last occupied
    // bucket, then +Inf.
    std::size_t last = 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] != 0) last = i;
    }
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i <= last; ++i) {
      cumulative += h.buckets[i];
      const double le = i == 0 ? 0.0 : bucketHi(i) - 1.0;
      std::snprintf(buf, sizeof(buf), "{le=\"%.0f\"} %llu\n", le,
                    static_cast<unsigned long long>(cumulative));
      out += prom + "_bucket" + buf;
    }
    std::snprintf(buf, sizeof(buf), "{le=\"+Inf\"} %llu\n",
                  static_cast<unsigned long long>(h.count));
    out += prom + "_bucket" + buf;
    std::snprintf(buf, sizeof(buf), " %lld\n", static_cast<long long>(h.sum));
    out += prom + "_sum" + buf;
    std::snprintf(buf, sizeof(buf), " %llu\n",
                  static_cast<unsigned long long>(h.count));
    out += prom + "_count" + buf;
  }
  return out;
}

}  // namespace cmc::obs
