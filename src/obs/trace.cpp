#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <map>

#include "obs/metrics.hpp"

namespace cmc::obs {

namespace {

std::atomic<TraceRecorder*> g_recorder{nullptr};
thread_local TraceRecorder* t_recorder = nullptr;
thread_local const std::string* t_actor = nullptr;
thread_local TraceContext t_context{};

std::int64_t wallMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Minimal JSON string escaping: the strings we record are box names, state
// names, and signal kinds, but a stray quote must not corrupt the export.
void appendEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::string_view toString(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::signalSend: return "signal_send";
    case EventKind::signalRecv: return "signal_recv";
    case EventKind::slotTransition: return "slot_transition";
    case EventKind::goalPosted: return "goal_posted";
    case EventKind::goalAchieved: return "goal_achieved";
    case EventKind::goalCancelled: return "goal_cancelled";
    case EventKind::flowlinkUpdate: return "flowlink_update";
    case EventKind::boxSpan: return "box_span";
    case EventKind::frame: return "frame";
    case EventKind::mark: return "mark";
  }
  return "?event";
}

TraceRecorder::TraceRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)),
      wall_epoch_us_(wallMicros()) {
  ring_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void TraceRecorder::setTimeSource(std::function<std::int64_t()> now_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  now_us_ = std::move(now_us);
}

std::int64_t TraceRecorder::stamp() const {
  if (now_us_) return now_us_();
  return wallMicros() - wall_epoch_us_;
}

void TraceRecorder::record(TraceEvent event) {
  // Causal adoption: an event recorded while a stimulus is executing (slot
  // transition, goal action, flowlink forward, signal send) belongs to that
  // stimulus's span unless the site set explicit ids.
  if (event.trace_id == 0 && event.span_id == 0 &&
      propagation_.load(std::memory_order_relaxed)) {
    event.trace_id = t_context.trace;
    event.span_id = t_context.span;
  }
  bool overflowed = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (event.ts_us == 0 && event.dur_us == 0) event.ts_us = stamp();
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(event));
    } else {
      ring_[next_] = std::move(event);
      next_ = (next_ + 1) % capacity_;
      overflowed = true;
    }
    ++total_;
  }
  // Surface ring overflow in the metrics namespace so dashboards see it
  // without polling the recorder. The counter is created lazily on the
  // first actual drop, so drop-free runs keep their metrics dump (and the
  // sharded rollup) byte-identical to pre-telemetry builds. Bumped outside
  // the ring lock: the registry has its own lock.
  if (overflowed) {
    if (MetricsRegistry* m = metrics()) m->counter("trace.dropped").add(1);
  }
}

void TraceRecorder::record(EventKind kind, std::string_view name,
                           std::string_view actor, std::string_view aux,
                           std::uint64_t id, std::int64_t v0, std::int64_t v1) {
  TraceEvent ev;
  ev.kind = kind;
  ev.name.assign(name);
  ev.actor.assign(actor);
  ev.aux.assign(aux);
  ev.id = id;
  ev.v0 = v0;
  ev.v1 = v1;
  record(std::move(ev));
}

void TraceRecorder::recordSpan(std::string_view name, std::string_view actor,
                               std::int64_t start_us, std::int64_t dur_us) {
  TraceEvent ev;
  ev.kind = EventKind::boxSpan;
  ev.name.assign(name);
  ev.actor.assign(actor);
  ev.ts_us = start_us;
  ev.dur_us = dur_us > 0 ? dur_us : 1;  // zero-width spans vanish in viewers
  record(std::move(ev));
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Oldest first: once wrapped, next_ points at the oldest slot.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t TraceRecorder::recorded() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

std::uint64_t TraceRecorder::dropped() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_ > ring_.size() ? total_ - ring_.size() : 0;
}

std::size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
  // Restart id allocation so a cleared recorder reproduces the ids of a
  // fresh one (two same-seed runs through one recorder stay comparable).
  next_id_.store(1, std::memory_order_relaxed);
}

void TraceRecorder::exportChromeTrace(std::ostream& os) const {
  os << chromeTraceJson();
}

std::string TraceRecorder::chromeTraceJson() const {
  const std::vector<TraceEvent> events = snapshot();
  std::uint64_t drops;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    drops = total_ > ring_.size() ? total_ - ring_.size() : 0;
  }

  // Assign tids per actor in first-appearance order so identical runs get
  // identical exports.
  std::map<std::string, int> tid_of;
  std::vector<std::string> actors;
  for (const TraceEvent& ev : events) {
    const std::string& actor = ev.actor.empty() ? std::string("(system)") : ev.actor;
    if (tid_of.emplace(actor, 0).second) actors.push_back(actor);
  }
  int tid = 1;
  for (const std::string& actor : actors) tid_of[actor] = tid++;

  std::string out;
  out.reserve(events.size() * 128 + 512);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto comma = [&]() {
    if (!first) out += ',';
    first = false;
  };
  char buf[96];
  for (const std::string& actor : actors) {
    comma();
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\","
                  "\"args\":{\"name\":\"",
                  tid_of[actor]);
    out += buf;
    appendEscaped(out, actor);
    out += "\"}}";
  }
  for (const TraceEvent& ev : events) {
    comma();
    const std::string& actor = ev.actor.empty() ? std::string("(system)") : ev.actor;
    out += "{\"pid\":1,\"tid\":";
    std::snprintf(buf, sizeof(buf), "%d,\"ts\":%lld,", tid_of[actor],
                  static_cast<long long>(ev.ts_us));
    out += buf;
    if (ev.kind == EventKind::boxSpan) {
      std::snprintf(buf, sizeof(buf), "\"ph\":\"X\",\"dur\":%lld,",
                    static_cast<long long>(ev.dur_us));
      out += buf;
    } else {
      out += "\"ph\":\"i\",\"s\":\"t\",";
    }
    out += "\"cat\":\"";
    out += toString(ev.kind);
    out += "\",\"name\":\"";
    switch (ev.kind) {
      case EventKind::signalSend:
        appendEscaped(out, "send " + ev.name);
        break;
      case EventKind::signalRecv:
        appendEscaped(out, "recv " + ev.name);
        break;
      case EventKind::slotTransition:
        appendEscaped(out, ev.aux + "->" + ev.name);
        break;
      default:
        appendEscaped(out, ev.name);
    }
    out += "\",\"args\":{";
    bool first_arg = true;
    auto arg_comma = [&]() {
      if (!first_arg) out += ',';
      first_arg = false;
    };
    if (!ev.aux.empty()) {
      arg_comma();
      out += "\"aux\":\"";
      appendEscaped(out, ev.aux);
      out += '"';
    }
    if (ev.id != 0) {
      arg_comma();
      std::snprintf(buf, sizeof(buf), "\"id\":%llu",
                    static_cast<unsigned long long>(ev.id));
      out += buf;
    }
    if (ev.v0 != 0 || ev.v1 != 0) {
      arg_comma();
      std::snprintf(buf, sizeof(buf), "\"v0\":%lld,\"v1\":%lld",
                    static_cast<long long>(ev.v0),
                    static_cast<long long>(ev.v1));
      out += buf;
    }
    // Causal ids, present only under propagation so the prior export shape
    // is preserved bit-for-bit when the feature is off.
    if (ev.trace_id != 0 || ev.span_id != 0 || ev.parent_span != 0) {
      arg_comma();
      std::snprintf(buf, sizeof(buf),
                    "\"trace\":%llu,\"span\":%llu,\"parent\":%llu",
                    static_cast<unsigned long long>(ev.trace_id),
                    static_cast<unsigned long long>(ev.span_id),
                    static_cast<unsigned long long>(ev.parent_span));
      out += buf;
    }
    out += "}}";
  }
  // Perfetto flow arrows: one s/f pair per cross-span parent->child link,
  // so traces render as connected causal chains instead of disjoint
  // slices. The arrow leaves the parent span at its end (the instant the
  // sender's outputs were emitted) and lands at the child span's start.
  {
    std::map<std::uint64_t, const TraceEvent*> span_of;
    for (const TraceEvent& ev : events) {
      if (ev.kind == EventKind::boxSpan && ev.span_id != 0) {
        span_of.emplace(ev.span_id, &ev);
      }
    }
    for (const TraceEvent& ev : events) {
      if (ev.kind != EventKind::boxSpan || ev.parent_span == 0) continue;
      auto pit = span_of.find(ev.parent_span);
      if (pit == span_of.end()) continue;  // parent fell out of the ring
      const TraceEvent& parent = *pit->second;
      const std::string& pactor =
          parent.actor.empty() ? std::string("(system)") : parent.actor;
      const std::string& cactor =
          ev.actor.empty() ? std::string("(system)") : ev.actor;
      comma();
      std::snprintf(buf, sizeof(buf),
                    "{\"ph\":\"s\",\"pid\":1,\"tid\":%d,\"ts\":%lld,"
                    "\"cat\":\"flow\",\"name\":\"causal\",\"id\":%llu}",
                    tid_of[pactor],
                    static_cast<long long>(parent.ts_us + parent.dur_us),
                    static_cast<unsigned long long>(ev.span_id));
      out += buf;
      comma();
      std::snprintf(buf, sizeof(buf),
                    "{\"ph\":\"f\",\"bp\":\"e\",\"pid\":1,\"tid\":%d,"
                    "\"ts\":%lld,\"cat\":\"flow\",\"name\":\"causal\","
                    "\"id\":%llu}",
                    tid_of[cactor], static_cast<long long>(ev.ts_us),
                    static_cast<unsigned long long>(ev.span_id));
      out += buf;
    }
  }
  out += "],\"otherData\":{";
  std::snprintf(buf, sizeof(buf), "\"dropped_events\":%llu",
                static_cast<unsigned long long>(drops));
  out += buf;
  out += "}}";
  return out;
}

TraceRecorder* recorder() noexcept {
  if (t_recorder != nullptr) return t_recorder;
  return g_recorder.load(std::memory_order_relaxed);
}

void setRecorder(TraceRecorder* recorder) noexcept {
  g_recorder.store(recorder, std::memory_order_release);
}

void setThreadRecorder(TraceRecorder* recorder) noexcept {
  t_recorder = recorder;
}

std::string_view currentActor() noexcept {
  return t_actor != nullptr ? std::string_view(*t_actor) : std::string_view{};
}

ActorScope::ActorScope(const std::string& name) noexcept : prev_(t_actor) {
  t_actor = &name;
}

ActorScope::~ActorScope() { t_actor = prev_; }

TraceContext currentContext() noexcept { return t_context; }

ContextScope::ContextScope(const TraceContext& ctx) noexcept
    : prev_(t_context) {
  t_context = ctx;
}

ContextScope::~ContextScope() { t_context = prev_; }

}  // namespace cmc::obs
