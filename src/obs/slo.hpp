// Declarative SLO watchdogs over windowed telemetry (obs/snapshot.hpp).
//
// An SloRule names a target in the metrics namespace and a ceiling:
//
//   * histogram rules watch a windowed quantile — e.g. the per-window p99
//     of "probe.call_setup_us" against the paper's §VIII-C latency law
//     p·n + (p+1)·c (latencyLawUs builds the bound from the timing
//     constants);
//   * counter rules watch a per-window increment — e.g. "fault.dropped"
//     exceeding a ceiling, or any increment at all of a must-stay-zero
//     counter (probe failures).
//
// An SloWatchdog evaluates its rules against each window a sampler closes.
// Health is derived, never stored by hand: the watchdog is healthy() while
// no rule is in breach, and the first window that puts a rule into breach
// fires the on-breach hook exactly once per excursion — that is where the
// hosting runtime triggers a flight-recorder dump, so the run keeps going
// while the post-mortem lands on disk. Recovery (a clean window) re-arms
// the hook; everBreached() stays latched for end-of-run verdicts.
//
// The watchdog is driven by one sampler thread and read through the hub's
// lock; it does no locking of its own.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/snapshot.hpp"

namespace cmc::obs {

struct SloRule {
  std::string name;       // stable label ("setup_p99", "fault_ceiling")
  // Exactly one of histogram/counter should be set.
  std::string histogram;  // windowed-quantile source
  double quantile = 0.99;
  std::string counter;    // windowed-increment source
  // Breach when the watched value exceeds max_value (µs for latency
  // histograms, increments for counters).
  double max_value = 0.0;
  // Histogram windows with fewer samples are skipped — a one-call window
  // says nothing about p99.
  std::uint64_t min_count = 1;
};

// The paper's §VIII-C media-setup bound for a p-hop path: p·n + (p+1)·c.
[[nodiscard]] constexpr std::int64_t latencyLawUs(std::int64_t p,
                                                  std::int64_t n_us,
                                                  std::int64_t c_us) noexcept {
  return p * n_us + (p + 1) * c_us;
}

struct SloStatus {
  std::string rule;
  double value = 0.0;
  double bound = 0.0;
  std::uint64_t samples = 0;  // histogram window count / counter increment
  bool evaluated = false;     // false: window too small, status carried over
  bool breached = false;
};

class SloWatchdog {
 public:
  using BreachHandler = std::function<void(const SloStatus&)>;

  explicit SloWatchdog(std::vector<SloRule> rules = {});

  void setOnBreach(BreachHandler handler) { on_breach_ = std::move(handler); }

  // Evaluate every rule against one closed window; returns this window's
  // statuses (also retrievable via last()).
  const std::vector<SloStatus>& evaluate(const MetricsDelta& window);

  [[nodiscard]] bool healthy() const noexcept;       // no rule in breach now
  [[nodiscard]] bool everBreached() const noexcept { return ever_breached_; }
  [[nodiscard]] std::uint64_t breaches() const noexcept { return breaches_; }
  [[nodiscard]] const std::vector<SloRule>& rules() const noexcept {
    return rules_;
  }
  [[nodiscard]] const std::vector<SloStatus>& last() const noexcept {
    return last_;
  }

  // One line per rule: "slo <name> value=... bound=... samples=...
  // breached=0|1" — the ops health verb appends these.
  [[nodiscard]] std::string statusText() const;

 private:
  std::vector<SloRule> rules_;
  std::vector<SloStatus> last_;
  std::vector<bool> in_breach_;
  bool ever_breached_ = false;
  std::uint64_t breaches_ = 0;  // breach-entry transitions
  BreachHandler on_breach_;
};

}  // namespace cmc::obs
