#include "obs/critical_path.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

namespace cmc::obs {

namespace {

void appendEscapedJson(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

CriticalPathReport criticalPath(const std::vector<TraceEvent>& events,
                                const CriticalPathOptions& opts) {
  CriticalPathReport report;

  // Index spans by id. Ring order is oldest-first; a span id appears once
  // (ids are allocated per stimulus), so emplace keeps the first sighting.
  std::map<std::uint64_t, const TraceEvent*> span_of;
  for (const TraceEvent& ev : events) {
    if (ev.kind == EventKind::boxSpan && ev.span_id != 0) {
      span_of.emplace(ev.span_id, &ev);
    }
  }
  if (span_of.empty()) return report;

  // Select the terminal span: latest completion among eligible spans, span
  // id as a deterministic tie-break.
  const TraceEvent* terminal = nullptr;
  for (const auto& [id, ev] : span_of) {
    if (opts.trace != 0 && ev->trace_id != opts.trace) continue;
    const std::int64_t end = ev->ts_us + ev->dur_us;
    if (opts.end_at_us >= 0 && end > opts.end_at_us) continue;
    if (!opts.end_actor.empty() && ev->actor != opts.end_actor) continue;
    if (terminal == nullptr) {
      terminal = ev;
      continue;
    }
    const std::int64_t best = terminal->ts_us + terminal->dur_us;
    if (end > best || (end == best && ev->span_id > terminal->span_id)) {
      terminal = ev;
    }
  }
  if (terminal == nullptr) return report;
  report.trace = terminal->trace_id;

  // Walk parent links back to the root.
  std::vector<const TraceEvent*> chain;
  const TraceEvent* cursor = terminal;
  while (true) {
    chain.push_back(cursor);
    if (cursor->parent_span == 0) break;
    auto pit = span_of.find(cursor->parent_span);
    if (pit == span_of.end()) {
      // The parent fell out of the retained window: the chain is truncated.
      report.complete = false;
      break;
    }
    cursor = pit->second;
    if (chain.size() > span_of.size()) {  // defensive: malformed links
      report.complete = false;
      break;
    }
  }
  std::reverse(chain.begin(), chain.end());

  // Transit attribution wants the arrival instant, which signalRecv events
  // record ahead of the stimulus span (arrival precedes processing when the
  // box is busy). Match each hop to the closest preceding arrival with the
  // same trace, causing span, and receiving actor.
  auto arrivalFor = [&](const TraceEvent& span) -> const TraceEvent* {
    const TraceEvent* best = nullptr;
    for (const TraceEvent& ev : events) {
      if (ev.kind != EventKind::signalRecv) continue;
      if (ev.trace_id != span.trace_id || ev.parent_span != span.parent_span)
        continue;
      if (ev.actor != span.actor || ev.ts_us > span.ts_us) continue;
      if (best == nullptr || ev.ts_us > best->ts_us) best = &ev;
    }
    return best;
  };

  for (std::size_t i = 0; i < chain.size(); ++i) {
    const TraceEvent& span = *chain[i];
    CriticalPathHop hop;
    hop.span = span.span_id;
    hop.parent = span.parent_span;
    hop.box = span.actor;
    hop.start_us = span.ts_us;
    hop.proc_us = span.dur_us;
    if (i > 0) {
      const TraceEvent& parent = *chain[i - 1];
      const std::int64_t parent_end = parent.ts_us + parent.dur_us;
      const TraceEvent* arrival = arrivalFor(span);
      const std::int64_t arrived_us =
          arrival != nullptr ? arrival->ts_us : span.ts_us;
      hop.transit_us = arrived_us - parent_end;
      hop.queue_us = span.ts_us - arrived_us;
    }
    report.proc_total_us += hop.proc_us;
    report.transit_total_us += hop.transit_us;
    report.queue_total_us += hop.queue_us;
    report.hops.push_back(std::move(hop));
  }

  report.start_us = chain.front()->ts_us;
  report.end_us = terminal->ts_us + terminal->dur_us;
  report.total_us = report.end_us - report.start_us;
  return report;
}

std::string CriticalPathReport::json() const {
  std::string out;
  out.reserve(256 + hops.size() * 160);
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"trace\":%llu,\"start_us\":%lld,\"end_us\":%lld,"
                "\"total_us\":%lld,\"proc_total_us\":%lld,"
                "\"transit_total_us\":%lld,\"queue_total_us\":%lld,"
                "\"complete\":%s,\"hops\":[",
                static_cast<unsigned long long>(trace),
                static_cast<long long>(start_us),
                static_cast<long long>(end_us),
                static_cast<long long>(total_us),
                static_cast<long long>(proc_total_us),
                static_cast<long long>(transit_total_us),
                static_cast<long long>(queue_total_us),
                complete ? "true" : "false");
  out += buf;
  for (std::size_t i = 0; i < hops.size(); ++i) {
    const CriticalPathHop& hop = hops[i];
    if (i != 0) out += ',';
    out += "{\"box\":\"";
    appendEscapedJson(out, hop.box);
    std::snprintf(buf, sizeof(buf),
                  "\",\"span\":%llu,\"parent\":%llu,\"start_us\":%lld,"
                  "\"proc_us\":%lld,\"transit_us\":%lld,\"queue_us\":%lld}",
                  static_cast<unsigned long long>(hop.span),
                  static_cast<unsigned long long>(hop.parent),
                  static_cast<long long>(hop.start_us),
                  static_cast<long long>(hop.proc_us),
                  static_cast<long long>(hop.transit_us),
                  static_cast<long long>(hop.queue_us));
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace cmc::obs
