// Critical-path analysis over a causally-linked trace (obs/context.hpp).
//
// With propagation enabled, every box stimulus is a span linked
// parent->child along the signaling path. This module reconstructs the
// causal DAG from a TraceRecorder buffer, extracts the longest
// time-weighted chain from a root (a goal change, a user action) to
// quiescence, and attributes every microsecond of it per hop:
//
//   proc_us     time the box spent processing the stimulus (the paper's c)
//   transit_us  time the triggering signal spent on the tunnel (n)
//   queue_us    time the signal waited for the box to free up (serial-
//               server queueing; zero on an idle path)
//
// Summed over a path with p hops past the root this is exactly the
// latency law of paper §VIII-C — p*n + (p+1)*c — which the analyzer lets
// a bench confirm hop by hop instead of only in aggregate.
//
// The report is a pure function of the event window: identical runs give
// identical JSON.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace cmc::obs {

struct CriticalPathHop {
  std::uint64_t span = 0;
  std::uint64_t parent = 0;      // 0 for the root hop
  std::string box;               // actor the stimulus ran on
  std::int64_t start_us = 0;     // processing start (span start)
  std::int64_t proc_us = 0;      // span duration: box processing (c)
  std::int64_t transit_us = 0;   // parent completion -> signal arrival (n)
  std::int64_t queue_us = 0;     // signal arrival -> processing start
};

struct CriticalPathReport {
  std::uint64_t trace = 0;
  std::int64_t start_us = 0;      // root processing start
  std::int64_t end_us = 0;        // final span completion (quiescence)
  std::int64_t total_us = 0;      // end - start
  std::int64_t proc_total_us = 0;
  std::int64_t transit_total_us = 0;
  std::int64_t queue_total_us = 0;
  // False when the chain walks off the retained ring-buffer window (the
  // root or an intermediate parent span was overwritten).
  bool complete = true;
  std::vector<CriticalPathHop> hops;  // root first

  [[nodiscard]] bool empty() const noexcept { return hops.empty(); }
  // Deterministic single-object JSON (schema in docs/OBSERVABILITY.md).
  [[nodiscard]] std::string json() const;
};

struct CriticalPathOptions {
  // Trace to analyze; 0 picks the trace of the latest-ending span.
  std::uint64_t trace = 0;
  // Quiescence instant: end the path at the last span completing at or
  // before this time (e.g. a convergence probe's recorded instant).
  // Negative means "the latest span of the trace".
  std::int64_t end_at_us = -1;
  // If non-empty, the terminal span must have run on this box.
  std::string end_actor;
};

// Reconstruct the causal chain ending at the selected terminal span by
// walking parent links back to the root. Returns an empty report when the
// window holds no eligible spans (propagation off, or nothing recorded).
[[nodiscard]] CriticalPathReport criticalPath(
    const std::vector<TraceEvent>& events, const CriticalPathOptions& opts = {});

}  // namespace cmc::obs
