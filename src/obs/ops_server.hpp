// Read-only ops endpoint over the framed-TCP transport (net/framing.hpp).
//
// Long-running hosts — a sharded soak, eventually a multi-process load
// coordinator — need to answer "how is it going" while they run. OpsServer
// is that answer's transport: a tiny request/response protocol riding the
// same [length][checksum][body] frames as the signaling plane, modeled on
// the daemon RPC split of Nix-style remote stores (one long-lived loopback
// connection, verbs in, payloads out).
//
// Wire format (inside one raw frame, util/bytes.hpp encoding):
//   request  = str(verb) str(args)
//   response = u8 status (0 ok, 1 error) str(content_type) str(payload)
//
// Robustness contract (tested by tests/ops_test.cpp): a malformed or
// truncated request body, or an unknown verb, produces an error *response*
// — never a crash, never a hang. A frame that fails its checksum is
// discarded like line noise (the client just retries); only a hostile
// length header kills the connection, and the listener keeps accepting.
//
// The server is strictly read-only with respect to the host: handlers are
// registered by the host and decide what to expose; the protocol has no
// mutating verbs. Each connection gets its own session thread, so a slow
// reader cannot stall the sampler or other clients.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace cmc::net {
class FramedConn;
}

namespace cmc::obs {

class OpsServer {
 public:
  // Handlers return the response payload; a thrown std::exception turns
  // into an error response carrying e.what().
  using Handler = std::function<std::string(const std::string& args)>;

  // Bind + listen on 127.0.0.1:port (0 picks a free port). Call start()
  // after registering verbs.
  explicit OpsServer(std::uint16_t port = 0);
  ~OpsServer();

  OpsServer(const OpsServer&) = delete;
  OpsServer& operator=(const OpsServer&) = delete;

  [[nodiscard]] bool ok() const noexcept { return listen_fd_ >= 0; }
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  // Register a verb (before start()).
  void handle(std::string verb, std::string content_type, Handler handler);

  void start();
  void stop();

  [[nodiscard]] std::uint64_t requestsServed() const noexcept;
  [[nodiscard]] std::uint64_t errorsServed() const noexcept;

 private:
  struct Session;

  void acceptLoop();
  void serveConnection(int fd);
  [[nodiscard]] std::vector<std::uint8_t> respond(
      const std::vector<std::uint8_t>& request);

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread acceptor_;
  mutable std::mutex mutex_;  // sessions_ + verb table + stats
  std::map<std::string, std::pair<std::string, Handler>> verbs_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::uint64_t requests_ = 0;
  std::uint64_t errors_ = 0;
};

// Blocking client for cmc_top, tests, and scripts. One connection, one
// outstanding request at a time. A thin verb/response layer over
// net::FramedConn — the same framed client codepath the distributed load
// coordinator's worker links use.
class OpsClient {
 public:
  struct Response {
    bool ok = false;
    std::string content_type;
    std::string body;  // error message when !ok
  };

  ~OpsClient();

  OpsClient(const OpsClient&) = delete;
  OpsClient& operator=(const OpsClient&) = delete;

  [[nodiscard]] static std::unique_ptr<OpsClient> connect(
      const std::string& host, std::uint16_t port);

  // Send one request and block for its response; nullopt when the
  // connection died (or the server skipped a corrupted request frame and
  // this client gave up waiting — see sendRaw for tests that need that).
  [[nodiscard]] std::optional<Response> request(const std::string& verb,
                                                const std::string& args = {});

  // ------------------------------------------------------------ test hooks
  // Write raw bytes to the socket (pre-framed or garbage) and read back one
  // framed response, if any. Lets tests speak malformed protocol.
  bool sendRaw(const std::vector<std::uint8_t>& bytes);
  [[nodiscard]] std::optional<Response> readResponse();

  [[nodiscard]] bool isOpen() const noexcept;

 private:
  explicit OpsClient(std::unique_ptr<net::FramedConn> conn);

  std::unique_ptr<net::FramedConn> conn_;
};

}  // namespace cmc::obs
