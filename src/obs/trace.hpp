// Structured tracing: sim-timestamped events in a bounded ring buffer.
//
// A TraceRecorder captures the observable life of a running system — signal
// send/receive per tunnel, SlotEndpoint FSM transitions, goal lifecycle,
// flowlink descriptor bookkeeping, box stimulus-processing spans, frames on
// the wire — as small structured events. The buffer is bounded: overflow
// drops the *oldest* events and counts what was dropped, so a long run
// always retains the most recent window.
//
// Recording is disabled by default and must stay branch-cheap when off:
// instrumentation sites do one relaxed atomic load (`obs::recorder()`) and
// skip everything on nullptr. That keeps the model checker's hot loop and
// the deterministic-trace guarantees of the explorer untouched.
//
// Timestamps come from an injectable time source (the Simulator installs
// its virtual clock); without one, events are stamped with a monotonic
// wall-clock offset. Exports: Chrome trace-event JSON (load in Perfetto or
// chrome://tracing) via exportChromeTrace(). The export is a pure function
// of the buffered events, so identical runs yield byte-identical traces.
// Causal propagation (opt-in on top of recording, see obs/context.hpp):
// with setPropagation(true), the recorder also allocates trace and span
// ids, events adopt the thread-local TraceContext of the stimulus that
// produced them, and exportChromeTrace() emits Perfetto flow arrows for
// every cross-actor parent->child link. With propagation off, all id
// fields stay zero and the export is byte-identical to the pre-causal
// format.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/context.hpp"

namespace cmc::obs {

enum class EventKind : std::uint8_t {
  signalSend = 0,   // name=signal kind, actor=sender box, aux=receiver box
  signalRecv = 1,   // name=signal kind, actor=receiver box, aux=sender box
  slotTransition,   // name=new state, aux=old state, id=slot
  goalPosted,       // name=goal kind, actor=box, id=slot
  goalAchieved,     // name=goal kind, actor=box, id=slot
  goalCancelled,    // name=goal kind, actor=box, id=slot
  flowlinkUpdate,   // name=refresh action or "utd", id=slot, v0/v1=utd flags
  boxSpan,          // name="stimulus", actor=box, dur_us=processing time
  frame,            // name="frame_out"/"frame_in", v0=bytes
  mark,             // free-form instant
};

[[nodiscard]] std::string_view toString(EventKind kind) noexcept;

struct TraceEvent {
  std::int64_t ts_us = 0;   // virtual (or fallback wall) microseconds
  std::int64_t dur_us = 0;  // spans only; 0 for instants
  EventKind kind = EventKind::mark;
  std::uint64_t id = 0;     // slot/channel id when meaningful
  std::int64_t v0 = 0;      // kind-specific numeric args
  std::int64_t v1 = 0;
  // Causal linkage (all zero unless propagation is enabled): the trace this
  // event belongs to, the span it is (boxSpan) or sits inside (instants),
  // and — for boxSpan and signalRecv — the causing parent span.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;
  std::string name;         // what happened (signal kind, state, goal kind)
  std::string actor;        // which box (maps to a trace "thread")
  std::string aux;          // peer box / previous state / cause
};

class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = 1 << 16);

  // Install the virtual clock. Without one, events use a monotonic
  // wall-clock offset from recorder construction.
  void setTimeSource(std::function<std::int64_t()> now_us);

  // Stamp and buffer one event. Thread-safe.
  void record(TraceEvent event);

  // Convenience for instants.
  void record(EventKind kind, std::string_view name, std::string_view actor,
              std::string_view aux = {}, std::uint64_t id = 0,
              std::int64_t v0 = 0, std::int64_t v1 = 0);
  // Spans carry an explicit start (the stamp is taken at completion).
  void recordSpan(std::string_view name, std::string_view actor,
                  std::int64_t start_us, std::int64_t dur_us);

  // Buffered events, oldest first. Takes the lock; not for hot paths.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  [[nodiscard]] std::uint64_t recorded() const noexcept;  // total ever seen
  [[nodiscard]] std::uint64_t dropped() const noexcept;   // overflowed out
  [[nodiscard]] std::size_t size() const;                 // buffered now
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  void clear();

  // ------------------------------------------------------ causal propagation
  // Opt-in: when enabled, stimuli get span ids, signals carry TraceContext
  // in-band, and events without explicit ids adopt the current context.
  // Off by default so plain tracing stays byte-compatible with PR 2.
  void setPropagation(bool on) noexcept {
    propagation_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool propagationEnabled() const noexcept {
    return propagation_.load(std::memory_order_relaxed);
  }

  // Deterministic id allocation: a single monotonic counter shared by trace
  // and span ids. Single-threaded hosts (the simulator) therefore produce
  // identical ids for identical seeds, which keeps exports byte-identical.
  [[nodiscard]] std::uint64_t newId() noexcept {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  // Chrome trace-event JSON: {"traceEvents":[...]} with one "thread" per
  // actor (first-appearance order) and a metadata record of drop counts.
  void exportChromeTrace(std::ostream& os) const;
  [[nodiscard]] std::string chromeTraceJson() const;

 private:
  [[nodiscard]] std::int64_t stamp() const;

  mutable std::mutex mutex_;
  std::atomic<bool> propagation_{false};
  std::atomic<std::uint64_t> next_id_{1};  // 0 means "no id"
  std::function<std::int64_t()> now_us_;
  std::int64_t wall_epoch_us_ = 0;
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;       // ring write cursor
  std::uint64_t total_ = 0;    // events ever recorded
};

// ------------------------------------------------------- global installation
// The process-wide recorder used by instrumentation sites. nullptr (the
// default) disables all recording at the cost of one relaxed load.
//
// Sharded hosts (src/load) run one simulation per worker thread; a single
// process-wide recorder would interleave their events. A thread may
// therefore install its own recorder with setThreadRecorder(): recorder()
// resolves the thread-local override first and falls back to the process-
// wide pointer, so single-threaded hosts are unaffected. The override is
// plain thread-local state — the installing thread must clear it (pass
// nullptr) before the recorder dies.
[[nodiscard]] TraceRecorder* recorder() noexcept;
void setRecorder(TraceRecorder* recorder) noexcept;
void setThreadRecorder(TraceRecorder* recorder) noexcept;

// -------------------------------------------------------------- actor scope
// Some instrumentation sites (SlotEndpoint, FlowLink) are value types with
// no idea which box they live in. The runtime brackets their execution with
// an ActorScope so their events land on the right trace thread.
[[nodiscard]] std::string_view currentActor() noexcept;

class ActorScope {
 public:
  explicit ActorScope(const std::string& name) noexcept;
  ~ActorScope();

  ActorScope(const ActorScope&) = delete;
  ActorScope& operator=(const ActorScope&) = delete;

 private:
  const std::string* prev_;
};

}  // namespace cmc::obs
