// Causal trace context: the in-band provenance a signal carries.
//
// A TraceContext is two 64-bit ids: the trace the causal chain belongs to
// (one trace per root stimulus — a user action, a goal change, a refresh
// tick) and the span that *caused* this signal (the sending box's stimulus
// span). Both TunnelSignal and MetaSignal carry one; the simulator stamps
// it at send and the receiving box's stimulus span adopts it as its
// parent, so every FSM transition, goal action, flowlink forward, and
// downstream send is linked parent->child across the whole signaling path.
// Fault-injected duplicates and retransmits carry the same context, so
// each delivery becomes a distinct span under one trace.
//
// The context is observability metadata, never protocol state: it is
// excluded from message equality and from the model checker's canonical
// fingerprints (an empty context serializes exactly as before it existed),
// and the whole mechanism is off unless a TraceRecorder with propagation
// enabled is installed.
//
// This header is dependency-free on purpose: src/channel embeds the struct
// without linking cmc_obs. The thread-local accessors (currentContext /
// ContextScope) are defined in trace.cpp and only used by hosts that
// already link cmc_obs (simulator, net, benches).
#pragma once

#include <cstdint>

namespace cmc::obs {

struct TraceContext {
  std::uint64_t trace = 0;  // causal chain id, stable across hops
  std::uint64_t span = 0;   // id of the causing (parent) span

  [[nodiscard]] bool empty() const noexcept { return trace == 0 && span == 0; }

  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

// The context of the stimulus currently being processed on this thread
// (empty outside any stimulus, or when propagation is off). Analogous to
// currentActor() in trace.hpp.
[[nodiscard]] TraceContext currentContext() noexcept;

// Brackets one stimulus execution so that instrumentation inside (slot
// transitions, goal events, sends in processOutput) is attributed to the
// stimulus's span. Restores the previous context on destruction.
class ContextScope {
 public:
  explicit ContextScope(const TraceContext& ctx) noexcept;
  ~ContextScope();

  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  TraceContext prev_;
};

}  // namespace cmc::obs
