#include "obs/slo.hpp"

#include <cstdio>

namespace cmc::obs {

SloWatchdog::SloWatchdog(std::vector<SloRule> rules)
    : rules_(std::move(rules)),
      last_(rules_.size()),
      in_breach_(rules_.size(), false) {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    last_[i].rule = rules_[i].name;
    last_[i].bound = rules_[i].max_value;
  }
}

const std::vector<SloStatus>& SloWatchdog::evaluate(
    const MetricsDelta& window) {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const SloRule& rule = rules_[i];
    SloStatus status;
    status.rule = rule.name;
    status.bound = rule.max_value;
    if (!rule.histogram.empty()) {
      const HistogramSample* h = window.histogram(rule.histogram);
      status.samples = h != nullptr ? h->count : 0;
      if (status.samples < rule.min_count) {
        // Too few samples to judge; carry the previous verdict so a quiet
        // window neither clears nor enters a breach.
        status.value = last_[i].value;
        status.breached = in_breach_[i];
        last_[i] = status;
        continue;
      }
      status.value = h->quantile(rule.quantile);
      status.evaluated = true;
    } else {
      status.samples = window.counter(rule.counter);
      status.value = static_cast<double>(status.samples);
      status.evaluated = true;
    }
    status.breached = status.value > rule.max_value;
    if (status.breached && !in_breach_[i]) {
      ever_breached_ = true;
      ++breaches_;
      if (on_breach_) on_breach_(status);
    }
    in_breach_[i] = status.breached;
    last_[i] = status;
  }
  return last_;
}

bool SloWatchdog::healthy() const noexcept {
  for (bool b : in_breach_) {
    if (b) return false;
  }
  return true;
}

std::string SloWatchdog::statusText() const {
  std::string out;
  char buf[160];
  for (const SloStatus& s : last_) {
    std::snprintf(buf, sizeof(buf),
                  "slo %s value=%.1f bound=%.1f samples=%llu breached=%d\n",
                  s.rule.c_str(), s.value, s.bound,
                  static_cast<unsigned long long>(s.samples),
                  s.breached ? 1 : 0);
    out += buf;
  }
  return out;
}

}  // namespace cmc::obs
