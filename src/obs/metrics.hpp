// Metrics registry: named counters, gauges, and histograms with a one-call
// JSON dump.
//
// Metrics are always safe to hammer from multiple threads (atomics all the
// way down); the registry itself hands out stable references, so hot paths
// can resolve a metric once and increment forever. Like tracing, the global
// registry is disabled by default: instrumentation sites do one relaxed
// load (`obs::metrics()`) and skip on nullptr.
//
// Histograms use base-2 exponential buckets over non-negative integer
// observations (we feed them latencies in microseconds): bucket i counts
// values in [2^(i-1), 2^i), bucket 0 counts zero. Quantiles are estimated
// by linear interpolation within the winning bucket — coarse, but stable
// and allocation-free.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace cmc::obs {

class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t value) noexcept {
    value_.store(value, std::memory_order_relaxed);
    // Track the high-water mark (e.g. peak queue depth).
    std::int64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
    }
  }
  void add(std::int64_t delta) noexcept {
    // A load/set pair would lose concurrent deltas; fetch_add keeps the
    // running value exact under contention, and the CAS loop raises the
    // high-water mark to the value this call produced.
    const std::int64_t now =
        value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    std::int64_t seen = max_.load(std::memory_order_relaxed);
    while (now > seen &&
           !max_.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t max() const noexcept {
    // A created-but-never-set gauge holds the INT64_MIN sentinel; surface
    // the current value (0 for an untouched gauge) instead, mirroring
    // Histogram::max(), so dumps and the Prometheus exposition never emit
    // the sentinel.
    const std::int64_t v = max_.load(std::memory_order_relaxed);
    return v == std::numeric_limits<std::int64_t>::min() ? value() : v;
  }

 private:
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{std::numeric_limits<std::int64_t>::min()};
};

class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void observe(std::int64_t value) noexcept;

  // Fold `other`'s observations into this histogram (bucket-wise sums plus
  // count/sum/min/max). Exact for everything but the interpolated
  // quantiles, which stay as coarse as single-registry estimates. Used by
  // sharded runtimes to roll per-shard latency histograms into one view.
  void mergeFrom(const Histogram& other) noexcept;

  // Fold pre-aggregated state (a MetricsSnapshot sample, a remote shard's
  // exported buckets) into this histogram. The no-observation sentinel
  // convention matches min()/max(): pass min > max to say "no min/max
  // information" and only count/sum/buckets are folded in.
  void accumulate(std::uint64_t count, std::int64_t sum, std::int64_t min,
                  std::int64_t max,
                  const std::array<std::uint64_t, kBuckets>& buckets) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t min() const noexcept;
  [[nodiscard]] std::int64_t max() const noexcept;
  [[nodiscard]] double mean() const noexcept;
  // Quantile estimate in [0,1]; interpolates within the selected bucket.
  [[nodiscard]] double quantile(double q) const noexcept;
  // Raw bucket count (snapshot capture; index < kBuckets).
  [[nodiscard]] std::uint64_t bucket(std::size_t index) const noexcept {
    return buckets_[index].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_{std::numeric_limits<std::int64_t>::max()};
  std::atomic<std::int64_t> max_{std::numeric_limits<std::int64_t>::min()};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

class MetricsRegistry {
 public:
  // Lookup-or-create; returned references stay valid for the registry's
  // lifetime, so call sites may cache them.
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  [[nodiscard]] const Counter* findCounter(std::string_view name) const;
  [[nodiscard]] const Gauge* findGauge(std::string_view name) const;
  [[nodiscard]] const Histogram* findHistogram(std::string_view name) const;

  // One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  // Keys are sorted (std::map), so the dump is deterministic.
  [[nodiscard]] std::string json() const;

  // Visit every metric in name order under the registry lock. The visited
  // references are the live atomics — visitors read with relaxed loads and
  // must not call back into the registry (the lock is held). This is what
  // MetricsSnapshot::capture uses to read a hot registry without pausing
  // its writers.
  void visit(
      const std::function<void(const std::string&, const Counter&)>& counter,
      const std::function<void(const std::string&, const Gauge&)>& gauge,
      const std::function<void(const std::string&, const Histogram&)>& histogram)
      const;

  // Merge the additive metrics of `other` into this registry: counters add,
  // histograms merge bucket-wise. Gauges are instantaneous, host-local
  // readings (queue depth, armed probes); summing last-written values
  // across shards is meaningless, so they are deliberately left out — which
  // also keeps a sharded rollup invariant in the shard count.
  void mergeAdditiveFrom(const MetricsRegistry& other);

  void clear();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// Process-wide registry; nullptr (default) disables metric collection.
// metrics() resolves a thread-local override first (setThreadMetrics), so
// sharded hosts can give each worker thread its own registry without the
// shards trampling one another; see the matching note in trace.hpp.
[[nodiscard]] MetricsRegistry* metrics() noexcept;
void setMetrics(MetricsRegistry* registry) noexcept;
void setThreadMetrics(MetricsRegistry* registry) noexcept;

}  // namespace cmc::obs
