#include "obs/ops_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <exception>

#include "net/framed_rpc.hpp"
#include "net/framing.hpp"
#include "util/bytes.hpp"
#include "util/log.hpp"

namespace cmc::obs {

namespace {

bool sendAll(int fd, const std::vector<std::uint8_t>& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::vector<std::uint8_t> encodeResponse(bool ok, std::string_view ctype,
                                         std::string_view payload) {
  ByteWriter body;
  body.u8(ok ? 0 : 1);
  body.str(ctype);
  body.str(payload);
  return net::encodeRawFrame(body.bytes());
}

}  // namespace

struct OpsServer::Session {
  int fd = -1;
  std::thread thread;
  std::atomic<bool> done{false};
};

OpsServer::OpsServer(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return;
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 8) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
}

OpsServer::~OpsServer() { stop(); }

void OpsServer::handle(std::string verb, std::string content_type,
                       Handler handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  verbs_[std::move(verb)] = {std::move(content_type), std::move(handler)};
}

void OpsServer::start() {
  if (listen_fd_ < 0 || running_.exchange(true)) return;
  acceptor_ = std::thread([this]() { acceptLoop(); });
}

void OpsServer::stop() {
  if (!running_.exchange(false)) {
    // Never started (or already stopped): still close the listener.
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::unique_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sessions.swap(sessions_);
  }
  for (auto& session : sessions) {
    ::shutdown(session->fd, SHUT_RDWR);
    if (session->thread.joinable()) session->thread.join();
    ::close(session->fd);
  }
}

std::uint64_t OpsServer::requestsServed() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return requests_;
}

std::uint64_t OpsServer::errorsServed() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return errors_;
}

void OpsServer::acceptLoop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) break;  // listener closed by stop()
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto session = std::make_unique<Session>();
    session->fd = fd;
    Session* raw = session.get();
    session->thread = std::thread([this, raw]() {
      serveConnection(raw->fd);
      raw->done.store(true);
    });
    std::lock_guard<std::mutex> lock(mutex_);
    // Reap finished sessions so a polling client that reconnects every
    // interval does not grow the list without bound.
    for (std::size_t i = 0; i < sessions_.size();) {
      if (sessions_[i]->done.load()) {
        if (sessions_[i]->thread.joinable()) sessions_[i]->thread.join();
        ::close(sessions_[i]->fd);
        sessions_.erase(sessions_.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    sessions_.push_back(std::move(session));
  }
}

void OpsServer::serveConnection(int fd) {
  net::RawFrameDecoder decoder;
  std::uint8_t chunk[4096];
  bool serving = true;
  while (serving && running_.load()) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    decoder.feed(chunk, static_cast<std::size_t>(n));
    while (auto request = decoder.next()) {
      if (!sendAll(fd, respond(*request))) {
        serving = false;
        break;
      }
    }
    if (decoder.error()) {
      // Hostile length header: the stream has lost sync; there is no way
      // to even frame an error response, so drop the connection. The
      // listener keeps serving other clients.
      log::warn("ops", "malformed frame header; dropping ops connection");
      serving = false;
    }
  }
  // The fd itself is closed when the session is reaped (or at stop());
  // shut it down now so the peer sees EOF instead of waiting out a
  // receive timeout.
  ::shutdown(fd, SHUT_RDWR);
}

std::vector<std::uint8_t> OpsServer::respond(
    const std::vector<std::uint8_t>& request) {
  ByteReader reader(request.data(), request.size());
  const std::string verb = reader.str();
  const std::string args = reader.str();
  if (!reader.ok() || !reader.atEnd()) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++requests_;
    ++errors_;
    return encodeResponse(false, "text/plain", "malformed request body");
  }
  Handler handler;
  std::string ctype;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++requests_;
    auto it = verbs_.find(verb);
    if (it == verbs_.end()) {
      ++errors_;
      return encodeResponse(false, "text/plain", "unknown verb: " + verb);
    }
    ctype = it->second.first;
    handler = it->second.second;
  }
  try {
    return encodeResponse(true, ctype, handler(args));
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++errors_;
    return encodeResponse(false, "text/plain",
                          std::string("handler failed: ") + e.what());
  }
}

OpsClient::OpsClient(std::unique_ptr<net::FramedConn> conn)
    : conn_(std::move(conn)) {}

OpsClient::~OpsClient() = default;

std::unique_ptr<OpsClient> OpsClient::connect(const std::string& host,
                                              std::uint16_t port) {
  // A response may legitimately never come (the server discarded a
  // corrupted request frame as loss); FramedConn's receive timeout bounds
  // the wait instead of hanging.
  auto conn = net::FramedConn::connect(host, port, 5'000);
  if (!conn) return nullptr;
  return std::unique_ptr<OpsClient>(new OpsClient(std::move(conn)));
}

std::optional<OpsClient::Response> OpsClient::request(const std::string& verb,
                                                      const std::string& args) {
  ByteWriter body;
  body.str(verb);
  body.str(args);
  if (!conn_ || !conn_->sendFrame(body.bytes())) return std::nullopt;
  return readResponse();
}

bool OpsClient::sendRaw(const std::vector<std::uint8_t>& bytes) {
  if (!conn_) return false;
  if (!conn_->sendBytes(bytes)) {
    conn_->close();
    return false;
  }
  return true;
}

std::optional<OpsClient::Response> OpsClient::readResponse() {
  if (!conn_) return std::nullopt;
  auto frame = conn_->readFrame();
  if (!frame) return std::nullopt;  // closed, timed out, or poisoned
  ByteReader reader(frame->data(), frame->size());
  Response response;
  response.ok = reader.u8() == 0;
  response.content_type = reader.str();
  response.body = reader.str();
  if (!reader.ok()) return std::nullopt;
  return response;
}

bool OpsClient::isOpen() const noexcept { return conn_ && conn_->isOpen(); }

}  // namespace cmc::obs
