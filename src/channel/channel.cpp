#include "channel/channel.hpp"

namespace cmc {

std::ostream& operator<<(std::ostream& os, Side side) {
  return os << (side == Side::A ? 'A' : 'B');
}

// Wire tags: 0/1 are the context-free encodings (tunnel/meta), unchanged
// since the first framing so canonical fingerprints and propagation-off
// wire bytes stay byte-identical. 2/3 are the same bodies prefixed with a
// 16-byte TraceContext (trace id, parent span id); they appear on the wire
// only when a sender actually stamped a context.
void serialize(const ChannelMessage& m, ByteWriter& w) {
  if (const auto* ts = std::get_if<TunnelSignal>(&m)) {
    if (ts->ctx.empty()) {
      w.u8(0);
    } else {
      w.u8(2);
      w.u64(ts->ctx.trace);
      w.u64(ts->ctx.span);
    }
    w.u32(ts->tunnel);
    serialize(ts->signal, w);
  } else {
    const auto& meta = std::get<MetaSignal>(m);
    if (meta.ctx.empty()) {
      w.u8(1);
    } else {
      w.u8(3);
      w.u64(meta.ctx.trace);
      w.u64(meta.ctx.span);
    }
    meta.serialize(w);
  }
}

std::optional<ChannelMessage> deserializeChannelMessage(ByteReader& r) {
  const std::uint8_t tag = r.u8();
  if (tag == 0 || tag == 2) {
    TunnelSignal ts;
    if (tag == 2) {
      ts.ctx.trace = r.u64();
      ts.ctx.span = r.u64();
    }
    ts.tunnel = r.u32();
    auto sig = deserializeSignal(r);
    if (!sig) return std::nullopt;
    ts.signal = std::move(*sig);
    if (!r.ok()) return std::nullopt;
    return ChannelMessage{std::move(ts)};
  }
  if (tag == 1 || tag == 3) {
    obs::TraceContext ctx;
    if (tag == 3) {
      ctx.trace = r.u64();
      ctx.span = r.u64();
    }
    MetaSignal m = MetaSignal::deserialize(r);
    m.ctx = ctx;
    if (!r.ok()) return std::nullopt;
    return ChannelMessage{std::move(m)};
  }
  return std::nullopt;
}

std::ostream& operator<<(std::ostream& os, const ChannelMessage& m) {
  if (const auto* ts = std::get_if<TunnelSignal>(&m)) {
    return os << "t" << ts->tunnel << '/' << ts->signal;
  }
  return os << std::get<MetaSignal>(m);
}

void ChannelState::canonicalize(ByteWriter& w) const {
  w.u32(tunnel_count_);
  for (const auto& queue : queues_) {
    w.u32(static_cast<std::uint32_t>(queue.size()));
    for (const auto& m : queue) serialize(m, w);
  }
}

}  // namespace cmc
