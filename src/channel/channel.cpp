#include "channel/channel.hpp"

namespace cmc {

std::ostream& operator<<(std::ostream& os, Side side) {
  return os << (side == Side::A ? 'A' : 'B');
}

void serialize(const ChannelMessage& m, ByteWriter& w) {
  if (const auto* ts = std::get_if<TunnelSignal>(&m)) {
    w.u8(0);
    w.u32(ts->tunnel);
    serialize(ts->signal, w);
  } else {
    w.u8(1);
    std::get<MetaSignal>(m).serialize(w);
  }
}

std::optional<ChannelMessage> deserializeChannelMessage(ByteReader& r) {
  const std::uint8_t tag = r.u8();
  if (tag == 0) {
    TunnelSignal ts;
    ts.tunnel = r.u32();
    auto sig = deserializeSignal(r);
    if (!sig) return std::nullopt;
    ts.signal = std::move(*sig);
    if (!r.ok()) return std::nullopt;
    return ChannelMessage{std::move(ts)};
  }
  if (tag == 1) {
    MetaSignal m = MetaSignal::deserialize(r);
    if (!r.ok()) return std::nullopt;
    return ChannelMessage{std::move(m)};
  }
  return std::nullopt;
}

std::ostream& operator<<(std::ostream& os, const ChannelMessage& m) {
  if (const auto* ts = std::get_if<TunnelSignal>(&m)) {
    return os << "t" << ts->tunnel << '/' << ts->signal;
  }
  return os << std::get<MetaSignal>(m);
}

void ChannelState::canonicalize(ByteWriter& w) const {
  w.u32(tunnel_count_);
  for (const auto& queue : queues_) {
    w.u32(static_cast<std::uint32_t>(queue.size()));
    for (const auto& m : queue) serialize(m, w);
  }
}

}  // namespace cmc
