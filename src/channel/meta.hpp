// Meta-signals (paper Section III-A).
//
// Besides the tunnel signals that control media channels, signaling channels
// carry meta-signals that refer to the signaling channel as a whole and can
// affect all tunnels within it: setup and teardown of the channel, and
// indications that the intended far endpoint is available or unavailable.
// Applications extend the set with custom meta-signals (e.g. "paid" from the
// prepaid-card voice resource, or "click" into a click-to-dial box).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

#include "obs/context.hpp"
#include "util/bytes.hpp"

namespace cmc {

enum class MetaKind : std::uint8_t {
  setup = 0,        // channel creation announcement
  teardown = 1,     // destroys the channel and all its tunnels and slots
  available = 2,    // far endpoint is reachable / willing
  unavailable = 3,  // far endpoint cannot be reached (busy, offline, ...)
  custom = 4,       // application-defined; discriminated by `tag`
};

[[nodiscard]] std::string_view toString(MetaKind kind) noexcept;

struct MetaSignal {
  MetaKind kind = MetaKind::custom;
  std::string tag;      // application meta-signal name when kind == custom
  std::string payload;  // opaque application payload
  // Causal provenance (obs/context.hpp); excluded from equality and from
  // serialize() — the ChannelMessage framing carries it out of band of the
  // meta body, and only when non-empty.
  obs::TraceContext ctx{};

  friend bool operator==(const MetaSignal& a, const MetaSignal& b) {
    return a.kind == b.kind && a.tag == b.tag && a.payload == b.payload;
  }

  void serialize(ByteWriter& w) const;
  [[nodiscard]] static MetaSignal deserialize(ByteReader& r);
};

std::ostream& operator<<(std::ostream& os, const MetaSignal& meta);

}  // namespace cmc
