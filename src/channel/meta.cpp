#include "channel/meta.hpp"

namespace cmc {

std::string_view toString(MetaKind kind) noexcept {
  switch (kind) {
    case MetaKind::setup: return "setup";
    case MetaKind::teardown: return "teardown";
    case MetaKind::available: return "available";
    case MetaKind::unavailable: return "unavailable";
    case MetaKind::custom: return "custom";
  }
  return "?meta";
}

void MetaSignal::serialize(ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(kind));
  w.str(tag);
  w.str(payload);
}

MetaSignal MetaSignal::deserialize(ByteReader& r) {
  MetaSignal m;
  m.kind = static_cast<MetaKind>(r.u8());
  m.tag = r.str();
  m.payload = r.str();
  return m;
}

std::ostream& operator<<(std::ostream& os, const MetaSignal& meta) {
  os << "meta:" << toString(meta.kind);
  if (meta.kind == MetaKind::custom) os << '[' << meta.tag << ']';
  return os;
}

}  // namespace cmc
