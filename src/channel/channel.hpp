// Signaling channels (paper Section III-A).
//
// A signaling channel is two-way, FIFO, and reliable; between physical
// components it is typically TCP, within a component it is a pair of
// software queues. Each channel is partitioned statically into tunnels,
// each of which carries the media-control protocol for one media channel.
// The endpoint of a tunnel at a box is a slot.
//
// ChannelState is the in-memory (pair-of-queues) realization, a pure value
// type so that whole system configurations can be copied and fingerprinted
// by the model checker. The TCP realization lives in src/net and carries
// the same ChannelMessage frames.
#pragma once

#include <cstdint>
#include <deque>
#include <ostream>
#include <variant>

#include "channel/meta.hpp"
#include "obs/context.hpp"
#include "protocol/signal.hpp"
#include "util/ids.hpp"

namespace cmc {

// The two ends of a signaling channel. Side::A is the end that initiated
// setup of the channel, which matters for open/open race resolution
// (Section VI-B: the race winner is the channel initiator).
enum class Side : std::uint8_t { A = 0, B = 1 };

[[nodiscard]] constexpr Side opposite(Side s) noexcept {
  return s == Side::A ? Side::B : Side::A;
}

std::ostream& operator<<(std::ostream& os, Side side);

// A tunnel signal in flight: which tunnel of the channel, and the protocol
// signal itself. The trace context is causal provenance (obs/context.hpp),
// not protocol state: it is excluded from equality, and an empty context
// serializes exactly as the context-free format, so model-checker
// fingerprints and fault-free wire bytes are unchanged unless propagation
// is actually on.
struct TunnelSignal {
  std::uint32_t tunnel = 0;
  Signal signal;
  obs::TraceContext ctx{};

  friend bool operator==(const TunnelSignal& a, const TunnelSignal& b) {
    return a.tunnel == b.tunnel && a.signal == b.signal;
  }
};

using ChannelMessage = std::variant<TunnelSignal, MetaSignal>;

void serialize(const ChannelMessage& m, ByteWriter& w);
[[nodiscard]] std::optional<ChannelMessage> deserializeChannelMessage(ByteReader& r);
std::ostream& operator<<(std::ostream& os, const ChannelMessage& m);

class ChannelState {
 public:
  ChannelState() = default;
  ChannelState(ChannelId id, std::uint32_t tunnel_count)
      : id_(id), tunnel_count_(tunnel_count) {}

  [[nodiscard]] ChannelId id() const noexcept { return id_; }
  [[nodiscard]] std::uint32_t tunnelCount() const noexcept { return tunnel_count_; }

  // Enqueue a message traveling toward `toward`.
  void push(Side toward, ChannelMessage message) {
    queueToward(toward).push_back(std::move(message));
  }

  [[nodiscard]] bool hasMessageToward(Side toward) const noexcept {
    return !queueToward(toward).empty();
  }

  [[nodiscard]] const ChannelMessage& peek(Side toward) const {
    return queueToward(toward).front();
  }

  // Dequeue the oldest message traveling toward `toward`. FIFO order is the
  // channel's reliability contract; there is no reordering.
  [[nodiscard]] ChannelMessage pop(Side toward) {
    auto& q = queueToward(toward);
    ChannelMessage m = std::move(q.front());
    q.pop_front();
    return m;
  }

  [[nodiscard]] std::size_t depthToward(Side toward) const noexcept {
    return queueToward(toward).size();
  }

  // --- Fault injection (docs/FAULTS.md). The channel itself stays FIFO;
  // faults are modeled as losing or duplicating the head message, which is
  // how loss/duplication looks to the receiving slot on a FIFO transport.
  void dropHead(Side toward) {
    auto& q = queueToward(toward);
    if (!q.empty()) q.pop_front();
  }
  void duplicateHead(Side toward) {
    auto& q = queueToward(toward);
    if (q.empty()) return;
    ChannelMessage copy = q.front();
    q.push_front(std::move(copy));
  }

  [[nodiscard]] bool empty() const noexcept {
    return queues_[0].empty() && queues_[1].empty();
  }

  void canonicalize(ByteWriter& w) const;

 private:
  [[nodiscard]] std::deque<ChannelMessage>& queueToward(Side s) noexcept {
    return queues_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] const std::deque<ChannelMessage>& queueToward(Side s) const noexcept {
    return queues_[static_cast<std::size_t>(s)];
  }

  ChannelId id_;
  std::uint32_t tunnel_count_ = 1;
  std::deque<ChannelMessage> queues_[2];  // indexed by the Side they travel toward
};

}  // namespace cmc
