// Small-buffer move-only callable: std::function without the heap.
//
// Every event on the simulator's hot path used to be a std::function whose
// capture (box references, a Signal, a trace context) exceeds the ~16-byte
// small-buffer optimization of the standard library, so each scheduled
// event cost one heap allocation just to exist. InlineFn<N> stores captures
// up to N bytes directly inside the object; larger captures fall back to
// the heap (cold paths only — the event-loop capacity is sized so every
// simulator hot-path lambda fits inline; see DESIGN.md §4.6).
//
// Move-only (captures own Signals and contexts), invocable once or many
// times, empty-testable. Not a general std::function replacement: no copy,
// no target_type, void() signature only.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace cmc {

template <std::size_t Capacity>
class InlineFn {
 public:
  InlineFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor): function-like
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= Capacity &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &inlineOps<Fn>;
    } else {
      // Oversized capture: one heap allocation, same as std::function. The
      // buffer holds only the pointer.
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &heapOps<Fn>;
    }
  }

  InlineFn(InlineFn&& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(buf_, other.buf_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      if (other.ops_ != nullptr) {
        other.ops_->relocate(buf_, other.buf_);
        ops_ = other.ops_;
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  void operator()() { ops_->invoke(buf_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-construct into dst from src, then destroy src's object.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr Ops inlineOps{
      [](void* p) { (*std::launder(static_cast<Fn*>(p)))(); },
      [](void* dst, void* src) {
        Fn* s = std::launder(static_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      },
      [](void* p) { std::launder(static_cast<Fn*>(p))->~Fn(); }};

  template <typename Fn>
  static constexpr Ops heapOps{
      [](void* p) { (**std::launder(static_cast<Fn**>(p)))(); },
      [](void* dst, void* src) {
        Fn** s = std::launder(static_cast<Fn**>(src));
        ::new (dst) Fn*(*s);
      },
      [](void* p) { delete *std::launder(static_cast<Fn**>(p)); }};

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[Capacity];
};

}  // namespace cmc
