// Byte-oriented serialization used by the wire format (src/net) and by the
// model checker's state canonicalization (src/mc).
//
// Encoding is little-endian, fixed width for integers, and length-prefixed
// for strings and sequences. It is intentionally simple: both ends of a
// signaling channel run this library, so no cross-version negotiation is
// needed.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cmc {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void boolean(bool v) { u8(v ? 1 : 0); }

  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

// Reader over a borrowed byte span. All reads are checked: running off the
// end marks the reader bad and subsequent reads return zero values, so a
// malformed frame cannot cause out-of-bounds access. Callers check ok()
// once after decoding a whole message.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size) noexcept
      : data_(data), size_(size) {}

  explicit ByteReader(const std::vector<std::uint8_t>& v) noexcept
      : ByteReader(v.data(), v.size()) {}

  [[nodiscard]] std::uint8_t u8() noexcept {
    if (!ensure(1)) return 0;
    return data_[pos_++];
  }

  [[nodiscard]] std::uint16_t u16() noexcept {
    if (!ensure(2)) return 0;
    std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                      static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
    pos_ += 2;
    return v;
  }

  [[nodiscard]] std::uint32_t u32() noexcept {
    if (!ensure(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }

  [[nodiscard]] std::uint64_t u64() noexcept {
    if (!ensure(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
  }

  [[nodiscard]] bool boolean() noexcept { return u8() != 0; }

  [[nodiscard]] std::string str() noexcept {
    const std::uint32_t len = u32();
    if (!ensure(len)) return {};
    std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return s;
  }

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] bool atEnd() const noexcept { return pos_ == size_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }

 private:
  [[nodiscard]] bool ensure(std::size_t n) noexcept {
    if (!ok_ || size_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// FNV-1a over a byte range; used for state fingerprinting in the model
// checker where we need a stable, fast, order-sensitive hash.
[[nodiscard]] constexpr std::uint64_t fnv1a(const std::uint8_t* data,
                                            std::size_t size,
                                            std::uint64_t seed = 0xcbf29ce484222325ULL) noexcept {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

[[nodiscard]] inline std::uint64_t fnv1a(const std::vector<std::uint8_t>& v,
                                         std::uint64_t seed = 0xcbf29ce484222325ULL) noexcept {
  return fnv1a(v.data(), v.size(), seed);
}

}  // namespace cmc
