// Strong identifier types used throughout the library.
//
// Every entity in the descriptive model (Section III of the paper) gets its
// own id type so that a TunnelId cannot be passed where a SlotId is expected.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace cmc {

// CRTP-free strongly typed integer id. `Tag` makes distinct instantiations
// incompatible; `Id` is regular, ordered, hashable, and streamable.
template <typename Tag>
class Id {
 public:
  constexpr Id() noexcept = default;
  constexpr explicit Id(std::uint64_t value) noexcept : value_(value) {}

  [[nodiscard]] constexpr std::uint64_t value() const noexcept { return value_; }
  [[nodiscard]] constexpr bool valid() const noexcept { return value_ != kInvalid; }

  friend constexpr bool operator==(Id a, Id b) noexcept { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Id a, Id b) noexcept { return a.value_ != b.value_; }
  friend constexpr bool operator<(Id a, Id b) noexcept { return a.value_ < b.value_; }

  friend std::ostream& operator<<(std::ostream& os, Id id) {
    if (!id.valid()) return os << Tag::prefix() << "<invalid>";
    return os << Tag::prefix() << id.value_;
  }

  static constexpr std::uint64_t kInvalid = ~std::uint64_t{0};

 private:
  std::uint64_t value_ = kInvalid;
};

struct BoxTag        { static constexpr const char* prefix() { return "box:"; } };
struct ChannelTag    { static constexpr const char* prefix() { return "chan:"; } };
struct TunnelTag     { static constexpr const char* prefix() { return "tun:"; } };
struct SlotTag       { static constexpr const char* prefix() { return "slot:"; } };
struct EndpointTag   { static constexpr const char* prefix() { return "ep:"; } };
struct DescriptorTag { static constexpr const char* prefix() { return "desc:"; } };
struct GoalTag       { static constexpr const char* prefix() { return "goal:"; } };

// A box is a peer module involved in media control (physical or virtual).
using BoxId = Id<BoxTag>;
// A signaling channel: two-way, FIFO, reliable (paper Section III-A).
using ChannelId = Id<ChannelTag>;
// A tunnel: a static partition of a signaling channel controlling one media
// channel. Identified globally; the per-channel index is separate.
using TunnelId = Id<TunnelTag>;
// A slot: the endpoint of a tunnel at a box; each slot is a protocol endpoint.
using SlotId = Id<SlotTag>;
// A media endpoint (source or sink of a media stream).
using EndpointId = Id<EndpointTag>;
// Identity of a descriptor: needed so a selector can name the descriptor it
// answers, and so flowlinks can discard obsolete selectors (Section VII).
using DescriptorId = Id<DescriptorTag>;
// Identity of a goal object instance within a box.
using GoalId = Id<GoalTag>;

// Simple monotonically increasing id allocator.
template <typename IdT>
class IdAllocator {
 public:
  IdT next() noexcept { return IdT{next_++}; }

 private:
  std::uint64_t next_ = 1;
};

}  // namespace cmc

namespace std {
template <typename Tag>
struct hash<cmc::Id<Tag>> {
  size_t operator()(cmc::Id<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
}  // namespace std
