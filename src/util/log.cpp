#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <ctime>
#include <iostream>

namespace cmc::log {

namespace {
std::atomic<Level> g_level{Level::none};
std::atomic<bool> g_timestamps{true};
// The sink pointer and the sim-time source are only touched under g_mutex:
// write() dereferences the sink while holding it, so a concurrent setSink
// must serialize against in-flight writes (it used to swap the pointer with
// a bare atomic store, racing with the dereference).
std::ostream* g_sink = &std::clog;
std::function<std::int64_t()> g_sim_time;
std::mutex g_mutex;

constexpr std::string_view levelName(Level level) noexcept {
  switch (level) {
    case Level::error: return "ERROR";
    case Level::warn: return "WARN ";
    case Level::info: return "INFO ";
    case Level::debug: return "DEBUG";
    case Level::none: break;
  }
  return "NONE ";
}

// Called under g_mutex. Fills `buf` with the line's timestamp.
void formatStamp(char* buf, std::size_t size) {
  if (g_sim_time) {
    const std::int64_t us = g_sim_time();
    std::snprintf(buf, size, "+%lld.%03lldms",
                  static_cast<long long>(us / 1000),
                  static_cast<long long>(us % 1000));
    return;
  }
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  tm parts{};
  gmtime_r(&ts.tv_sec, &parts);
  std::snprintf(buf, size, "%02d:%02d:%02d.%03ld", parts.tm_hour, parts.tm_min,
                parts.tm_sec, ts.tv_nsec / 1'000'000);
}
}  // namespace

Level level() noexcept { return g_level.load(std::memory_order_relaxed); }

void setLevel(Level level) noexcept { g_level.store(level, std::memory_order_relaxed); }

void setSink(std::ostream* sink) noexcept {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = sink != nullptr ? sink : &std::clog;
}

void setSimTimeSource(std::function<std::int64_t()> now_us) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_sim_time = std::move(now_us);
}

void setTimestamps(bool enabled) noexcept {
  g_timestamps.store(enabled, std::memory_order_relaxed);
}

void write(Level level, std::string_view component, std::string_view message) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::ostream& os = *g_sink;
  if (g_timestamps.load(std::memory_order_relaxed)) {
    char stamp[32];
    formatStamp(stamp, sizeof(stamp));
    os << '[' << stamp << "] ";
  }
  os << '[' << levelName(level) << "] " << component << ": " << message << '\n';
}

}  // namespace cmc::log
