#include "util/log.hpp"

#include <atomic>
#include <iostream>

namespace cmc::log {

namespace {
std::atomic<Level> g_level{Level::none};
std::atomic<std::ostream*> g_sink{&std::clog};
std::mutex g_mutex;

constexpr std::string_view levelName(Level level) noexcept {
  switch (level) {
    case Level::error: return "ERROR";
    case Level::warn: return "WARN ";
    case Level::info: return "INFO ";
    case Level::debug: return "DEBUG";
    case Level::none: break;
  }
  return "NONE ";
}
}  // namespace

Level level() noexcept { return g_level.load(std::memory_order_relaxed); }

void setLevel(Level level) noexcept { g_level.store(level, std::memory_order_relaxed); }

void setSink(std::ostream* sink) noexcept {
  g_sink.store(sink != nullptr ? sink : &std::clog, std::memory_order_relaxed);
}

void write(Level level, std::string_view component, std::string_view message) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::ostream& os = *g_sink.load(std::memory_order_relaxed);
  os << '[' << levelName(level) << "] " << component << ": " << message << '\n';
}

}  // namespace cmc::log
