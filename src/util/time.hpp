// Simulated-time types.
//
// The discrete-event simulator (src/sim) advances a virtual clock; all
// latency parameters of the paper's performance model (Section VIII-C) are
// expressed in these units. We use integral microseconds: fine enough for
// millisecond-scale signaling latencies, and exact (no floating-point drift
// in event ordering).
#pragma once

#include <chrono>
#include <cstdint>
#include <ostream>

namespace cmc {

using SimDuration = std::chrono::microseconds;

// A point in simulated time, measured from simulation start.
class SimTime {
 public:
  constexpr SimTime() noexcept = default;
  constexpr explicit SimTime(SimDuration since_start) noexcept : t_(since_start) {}

  [[nodiscard]] constexpr SimDuration sinceStart() const noexcept { return t_; }
  [[nodiscard]] constexpr double millis() const noexcept {
    return std::chrono::duration<double, std::milli>(t_).count();
  }

  friend constexpr SimTime operator+(SimTime t, SimDuration d) noexcept {
    return SimTime{t.t_ + d};
  }
  friend constexpr SimDuration operator-(SimTime a, SimTime b) noexcept {
    return a.t_ - b.t_;
  }
  friend constexpr bool operator==(SimTime a, SimTime b) noexcept { return a.t_ == b.t_; }
  friend constexpr bool operator!=(SimTime a, SimTime b) noexcept { return a.t_ != b.t_; }
  friend constexpr bool operator<(SimTime a, SimTime b) noexcept { return a.t_ < b.t_; }
  friend constexpr bool operator<=(SimTime a, SimTime b) noexcept { return a.t_ <= b.t_; }
  friend constexpr bool operator>(SimTime a, SimTime b) noexcept { return a.t_ > b.t_; }
  friend constexpr bool operator>=(SimTime a, SimTime b) noexcept { return a.t_ >= b.t_; }

  friend std::ostream& operator<<(std::ostream& os, SimTime t) {
    return os << t.millis() << "ms";
  }

 private:
  SimDuration t_{0};
};

namespace literals {
constexpr SimDuration operator""_ms(unsigned long long v) {
  return std::chrono::duration_cast<SimDuration>(std::chrono::milliseconds(v));
}
constexpr SimDuration operator""_us(unsigned long long v) { return SimDuration(v); }
constexpr SimDuration operator""_s(unsigned long long v) {
  return std::chrono::duration_cast<SimDuration>(std::chrono::seconds(v));
}
}  // namespace literals

}  // namespace cmc
