// Small-buffer vector: inline storage for the common case, heap spill for
// the rest.
//
// The signal hot path copies descriptors on every hop, and a descriptor's
// codec list is 1-3 entries in practice (docs/DESIGN.md §4.6). With
// std::vector each copy is a heap allocation; with SmallVec the list lives
// inside the object and a copy is a memcpy-sized move of inline bytes. The
// interface is the std::vector subset the codebase actually uses — this is
// a hot-path container, not a general re-implementation.
//
// Growth discipline: once the size exceeds the inline capacity N the
// elements spill to the heap and stay there (capacity never shrinks back
// inline except through assignment from a small source, swap, or move).
// Self-assignment is safe; moved-from objects are valid and empty.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <new>
#include <utility>

namespace cmc {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(N > 0, "inline capacity must be positive");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVec() noexcept : data_(inlineData()), size_(0), capacity_(N) {}

  SmallVec(std::initializer_list<T> init) : SmallVec() {
    assign(init.begin(), init.end());
  }

  template <typename It>
  SmallVec(It first, It last) : SmallVec() {
    assign(first, last);
  }

  SmallVec(const SmallVec& other) : SmallVec() {
    assign(other.begin(), other.end());
  }

  SmallVec(SmallVec&& other) noexcept : SmallVec() { stealFrom(other); }

  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) assign(other.begin(), other.end());
    return *this;
  }

  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      destroyAll();
      stealFrom(other);
    }
    return *this;
  }

  SmallVec& operator=(std::initializer_list<T> init) {
    assign(init.begin(), init.end());
    return *this;
  }

  ~SmallVec() { destroyAll(); }

  template <typename It>
  void assign(It first, It last) {
    // Self-assignment from our own range: buffer through a temporary.
    const auto* f = std::to_address(first);
    if (f != nullptr && f >= data_ && f < data_ + size_) {
      SmallVec tmp(first, last);
      *this = std::move(tmp);
      return;
    }
    clear();
    for (; first != last; ++first) push_back(*first);
  }

  void assign(std::initializer_list<T> init) { assign(init.begin(), init.end()); }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) grow(capacity_ * 2);
    T* slot = data_ + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() noexcept {
    --size_;
    data_[size_].~T();
  }

  void clear() noexcept {
    for (std::size_t i = 0; i < size_; ++i) data_[i].~T();
    size_ = 0;
  }

  void reserve(std::size_t n) {
    if (n > capacity_) grow(n);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  // True while the elements still live in the inline buffer (tests).
  [[nodiscard]] bool isInline() const noexcept { return data_ == inlineData(); }

  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] iterator begin() noexcept { return data_; }
  [[nodiscard]] iterator end() noexcept { return data_ + size_; }
  [[nodiscard]] const_iterator begin() const noexcept { return data_; }
  [[nodiscard]] const_iterator end() const noexcept { return data_ + size_; }

  [[nodiscard]] T& operator[](std::size_t i) noexcept { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return data_[i];
  }
  [[nodiscard]] T& front() noexcept { return data_[0]; }
  [[nodiscard]] const T& front() const noexcept { return data_[0]; }
  [[nodiscard]] T& back() noexcept { return data_[size_ - 1]; }
  [[nodiscard]] const T& back() const noexcept { return data_[size_ - 1]; }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  [[nodiscard]] T* inlineData() noexcept {
    return std::launder(reinterpret_cast<T*>(inline_));
  }
  [[nodiscard]] const T* inlineData() const noexcept {
    return std::launder(reinterpret_cast<const T*>(inline_));
  }

  void grow(std::size_t want) {
    const std::size_t new_cap = want < 2 * N ? 2 * N : want;
    T* heap = static_cast<T*>(::operator new(new_cap * sizeof(T)));
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(heap + i)) T(std::move(data_[i]));
      data_[i].~T();
    }
    if (!isInline()) ::operator delete(data_);
    data_ = heap;
    capacity_ = new_cap;
  }

  // Move other's contents in; leaves other valid and empty. Precondition:
  // *this is empty (freshly constructed or destroyAll'ed).
  void stealFrom(SmallVec& other) noexcept {
    if (other.isInline()) {
      data_ = inlineData();
      capacity_ = N;
      for (std::size_t i = 0; i < other.size_; ++i) {
        ::new (static_cast<void*>(data_ + i)) T(std::move(other.data_[i]));
        other.data_[i].~T();
      }
      size_ = other.size_;
      other.size_ = 0;
    } else {
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = other.inlineData();
      other.size_ = 0;
      other.capacity_ = N;
    }
  }

  void destroyAll() noexcept {
    clear();
    if (!isInline()) ::operator delete(data_);
  }

  T* data_;
  std::uint32_t size_;
  std::uint32_t capacity_;
  alignas(T) unsigned char inline_[N * sizeof(T)];
};

}  // namespace cmc
