// Deterministic pseudo-random number generation.
//
// All randomness in the library flows through Rng so that simulations and
// property tests are reproducible from a seed. The generator is
// xoshiro256** seeded via splitmix64.
#pragma once

#include <cstdint>
#include <limits>

namespace cmc {

// splitmix64: used for seeding; also a decent standalone mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x5eedULL) noexcept { reseed(seed); }

  constexpr void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  [[nodiscard]] constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    // Lemire-style rejection-free for our purposes: modulo bias is
    // negligible for bounds far below 2^64, which is all we use.
    return (*this)() % bound;
  }

  // Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] constexpr std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  [[nodiscard]] constexpr double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  [[nodiscard]] constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  [[nodiscard]] constexpr bool chance(double probability) noexcept {
    return uniform01() < probability;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace cmc
