// Minimal leveled logging.
//
// Logging defaults to off (Level::none) so tests and benchmarks stay quiet;
// examples turn on Level::info to narrate scenarios. The logger is a
// process-wide sink guarded for concurrent use by the TCP transport threads.
#pragma once

#include <mutex>
#include <ostream>
#include <sstream>
#include <string_view>

namespace cmc::log {

enum class Level { none = 0, error = 1, warn = 2, info = 3, debug = 4 };

// Process-wide verbosity. Reads/writes are racy-but-benign (enum load), but
// we keep it simple: set it once at startup.
Level level() noexcept;
void setLevel(Level level) noexcept;

// Sink defaults to std::clog; tests may redirect.
void setSink(std::ostream* sink) noexcept;

void write(Level level, std::string_view component, std::string_view message);

namespace detail {
template <typename... Args>
void emit(Level lvl, std::string_view component, const Args&... args) {
  if (lvl > level()) return;
  std::ostringstream oss;
  (oss << ... << args);
  write(lvl, component, oss.str());
}
}  // namespace detail

template <typename... Args>
void error(std::string_view component, const Args&... args) {
  detail::emit(Level::error, component, args...);
}
template <typename... Args>
void warn(std::string_view component, const Args&... args) {
  detail::emit(Level::warn, component, args...);
}
template <typename... Args>
void info(std::string_view component, const Args&... args) {
  detail::emit(Level::info, component, args...);
}
template <typename... Args>
void debug(std::string_view component, const Args&... args) {
  detail::emit(Level::debug, component, args...);
}

}  // namespace cmc::log
