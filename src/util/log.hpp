// Minimal leveled logging.
//
// Logging defaults to off (Level::none) so tests and benchmarks stay quiet;
// examples turn on Level::info to narrate scenarios. The logger is a
// process-wide sink guarded for concurrent use by the TCP transport threads.
//
// Every line carries a timestamp: wall-clock (UTC, HH:MM:SS.mmm) by
// default, or virtual time when a sim-time source is installed — the
// Simulator can inject its clock so scenario narration lines up with the
// discrete-event timeline (see Simulator::useSimTimeForLogs).
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <ostream>
#include <sstream>
#include <string_view>

namespace cmc::log {

enum class Level { none = 0, error = 1, warn = 2, info = 3, debug = 4 };

// Process-wide verbosity. Reads/writes are racy-but-benign (enum load), but
// we keep it simple: set it once at startup.
Level level() noexcept;
void setLevel(Level level) noexcept;

// Sink defaults to std::clog; tests may redirect.
void setSink(std::ostream* sink) noexcept;

// Install a virtual-time source (microseconds since simulation start);
// lines then show "+123.456ms" instead of wall-clock time. Pass nullptr to
// revert to wall-clock. The source is called under the log mutex.
void setSimTimeSource(std::function<std::int64_t()> now_us);

// Timestamps are on by default; tests that assert exact line prefixes may
// turn them off.
void setTimestamps(bool enabled) noexcept;

void write(Level level, std::string_view component, std::string_view message);

namespace detail {
template <typename... Args>
void emit(Level lvl, std::string_view component, const Args&... args) {
  if (lvl > level()) return;
  std::ostringstream oss;
  (oss << ... << args);
  write(lvl, component, oss.str());
}
}  // namespace detail

template <typename... Args>
void error(std::string_view component, const Args&... args) {
  detail::emit(Level::error, component, args...);
}
template <typename... Args>
void warn(std::string_view component, const Args&... args) {
  detail::emit(Level::warn, component, args...);
}
template <typename... Args>
void info(std::string_view component, const Args&... args) {
  detail::emit(Level::info, component, args...);
}
template <typename... Args>
void debug(std::string_view component, const Args&... args) {
  detail::emit(Level::debug, component, args...);
}

}  // namespace cmc::log
