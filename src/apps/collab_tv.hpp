// CollabTvBox: collaborative-television control (paper Fig. 8).
//
// Each viewing household/device group has its own collaboration box. The
// box that *controls* the movie holds the signaling channel to the movie
// server — that channel's tunnels all carry the same movie at the same
// time pointer — and flowlinks each media tunnel to the device (or remote
// collaboration box) that consumes it. Pause/play commands from any
// participant are mediated by the controlling box and forwarded to the
// movie server as channel meta-signals, affecting every stream at once.
//
// A participant leaves the collaboration by asking its own collaboration
// box to split: the box tears its tunnels out of the shared path, opens its
// own channel to the movie server (same movie, its own time pointer), and
// relinks its device streams there — after which others can join *its*
// view instead (paper, the daughter's fast-forward scenario).
#pragma once

#include "core/box.hpp"

namespace cmc {

class CollabTvBox : public Box {
 public:
  CollabTvBox(BoxId id, std::string name, std::string movie_server)
      : Box(id, std::move(name)), movie_server_(std::move(movie_server)) {
    ids_ = DescriptorFactory{id.value()};
  }

  // ---- controller role -------------------------------------------------
  // Begin controlling `movie`, with `tunnels` media streams available.
  void startMovie(const std::string& movie, std::uint32_t tunnels) {
    movie_ = movie;
    requestChannel(movie_server_, tunnels, "movie");
  }

  // Attach a consumer: flowlink movie-server tunnel `stream` to tunnel
  // `consumer_tunnel` of the channel to `consumer` (a device or a peer
  // collaboration box). The consumer channel must already exist.
  void routeStream(std::size_t stream, ChannelId consumer_channel,
                   std::size_t consumer_tunnel) {
    if (stream >= movie_slots_.size()) return;
    const auto slots = slotsOf(consumer_channel);
    if (consumer_tunnel >= slots.size()) return;
    linkSlots(movie_slots_[stream], slots[consumer_tunnel]);
  }

  void pause() { sendMovieMeta("pause", ""); }
  void play() { sendMovieMeta("play", ""); }
  void seek(double seconds) { sendMovieMeta("seek", std::to_string(seconds)); }

  [[nodiscard]] ChannelId movieChannel() const noexcept { return movie_channel_; }
  [[nodiscard]] std::size_t movieStreamCount() const noexcept {
    return movie_slots_.size();
  }
  [[nodiscard]] ChannelId channelTo(const std::string& peer) const {
    auto it = peers_.find(peer);
    return it == peers_.end() ? ChannelId{} : it->second;
  }

  // ---- participant role -------------------------------------------------
  // Connect to another collaboration box with `tunnels` media tunnels.
  void joinCollaboration(const std::string& controller, std::uint32_t tunnels) {
    requestChannel(controller, tunnels, "collab:" + controller);
  }

  // Leave a collaboration: tear down the channel to the controller, get an
  // own movie-server channel at `position`, and relink consumers there.
  void leaveAndSplit(const std::string& controller, const std::string& movie,
                     std::uint32_t tunnels, double position) {
    auto it = peers_.find(controller);
    if (it != peers_.end()) {
      destroyChannel(it->second);
      peers_.erase(it);
    }
    movie_ = movie;
    split_position_ = position;
    requestChannel(movie_server_, tunnels, "movie");
  }

  std::function<void()> onMovieReady;  // test/example hook

 protected:
  void onChannelUp(ChannelId channel, const std::string& tag) override {
    if (tag == "movie") {
      movie_channel_ = channel;
      movie_slots_ = slotsOf(channel);
      sendMovieMeta("load", movie_);
      if (split_position_ > 0) sendMovieMeta("seek", std::to_string(split_position_));
      sendMovieMeta("play", "");
      if (onMovieReady) onMovieReady();
      return;
    }
    if (tag.rfind("collab:", 0) == 0) {
      peers_[tag.substr(7)] = channel;
    }
  }

  void onIncomingChannel(ChannelId channel, const std::string& peer) override {
    peers_[peer] = channel;
  }

  void onMeta(ChannelId, const MetaSignal& meta) override {
    // Participants relay pause/play requests to the controller's movie
    // channel (command mediation, paper Fig. 8 discussion).
    if (meta.kind == MetaKind::custom &&
        (meta.tag == "pause" || meta.tag == "play" || meta.tag == "seek")) {
      sendMovieMeta(meta.tag, meta.payload);
    }
  }

  void onChannelDown(ChannelId channel) override {
    if (channel == movie_channel_) {
      movie_channel_ = ChannelId{};
      movie_slots_.clear();
    }
    for (auto it = peers_.begin(); it != peers_.end();) {
      if (it->second == channel) {
        it = peers_.erase(it);
      } else {
        ++it;
      }
    }
    // Movie streams whose consumer vanished (their flowlink died with the
    // consumer channel) must be closed, or the server keeps streaming into
    // the void.
    for (SlotId s : movie_slots_) {
      if (!goalKind(s).has_value()) setGoal(s, CloseSlotGoal{});
    }
  }

 private:
  void sendMovieMeta(const std::string& tag, const std::string& payload) {
    if (movie_channel_.valid()) {
      sendMeta(movie_channel_, MetaSignal{MetaKind::custom, tag, payload});
    }
  }

  std::string movie_server_;
  DescriptorFactory ids_;
  std::string movie_;
  double split_position_ = 0;
  ChannelId movie_channel_;
  std::vector<SlotId> movie_slots_;
  std::map<std::string, ChannelId> peers_;
};

}  // namespace cmc
