// PrepaidCardBox: the PC server of the paper's running example
// (Sections II-A, II-C, Figs. 2 and 3).
//
// A prepaid caller (C) reaches the feature; the feature places the real
// call onward (toward A, possibly through A's PBX) and supervises talk
// time. Its two program states are exactly the paper's:
//
//   talking:     flowLink(c, a), holdSlot(v)   — caller talks to callee
//   collecting:  flowLink(c, v), holdSlot(a)   — funds ran out; caller is
//                connected to the voice resource V, which prompts for more
//                funds over audio signaling
//
// A talk-time timer moves talking -> collecting; the custom meta-signal
// "paid" from V moves collecting -> talking. Note what the feature does
// NOT do: it never signals A's device directly about C's media — it only
// rearranges its own flowlinks, and the protocol machinery does the rest
// correctly even when A's PBX acts concurrently.
#pragma once

#include "core/box.hpp"

namespace cmc {

class PrepaidCardBox : public Box {
 public:
  enum class State { idle, talking, collecting };

  PrepaidCardBox(BoxId id, std::string name, std::string callee_target,
                 std::string voice_resource, SimDuration talk_time)
      : Box(id, std::move(name)),
        callee_target_(std::move(callee_target)),
        voice_resource_(std::move(voice_resource)),
        talk_time_(talk_time) {
    ids_ = DescriptorFactory{id.value()};
  }

  [[nodiscard]] State state() const noexcept { return state_; }
  [[nodiscard]] int timesCollected() const noexcept { return times_collected_; }

 protected:
  void onIncomingChannel(ChannelId channel, const std::string&) override {
    // The prepaid caller C arrived. Set up the far side and the voice
    // resource, then start in `talking`.
    const auto slots = slotsOf(channel);
    if (slots.empty() || c_slot_.valid()) return;
    c_slot_ = slots.front();
    // Hold the caller until the call legs exist; the flowlink re-matches.
    setGoal(c_slot_, HoldSlotGoal{MediaIntent::server(), ids_});
    requestChannel(callee_target_, 1, "a");
    requestChannel(voice_resource_, 1, "v");
  }

  void onChannelUp(ChannelId channel, const std::string& tag) override {
    const auto slots = slotsOf(channel);
    if (slots.empty()) return;
    if (tag == "a") a_slot_ = slots.front();
    if (tag == "v") v_slot_ = slots.front();
    if (a_slot_.valid() && v_slot_.valid() && state_ == State::idle) {
      enterTalking();
      setTimer(talk_time_, "funds");
    }
  }

  void onTimer(const std::string& tag) override {
    if (tag == "funds" && state_ == State::talking) enterCollecting();
  }

  void onMeta(ChannelId, const MetaSignal& meta) override {
    if (meta.kind == MetaKind::custom && meta.tag == "paid" &&
        state_ == State::collecting) {
      enterTalking();
      setTimer(talk_time_, "funds");
    }
  }

  void onChannelDown(ChannelId) override {
    // If any leg dies the feature folds: tear everything down.
    if (c_slot_.valid() && !channelOf(c_slot_).valid()) c_slot_ = SlotId{};
    if (a_slot_.valid() && !channelOf(a_slot_).valid()) a_slot_ = SlotId{};
    if (v_slot_.valid() && !channelOf(v_slot_).valid()) v_slot_ = SlotId{};
    if (!c_slot_.valid()) {
      if (a_slot_.valid()) destroyChannel(channelOf(a_slot_));
      if (v_slot_.valid()) destroyChannel(channelOf(v_slot_));
      state_ = State::idle;
    }
  }

 private:
  void enterTalking() {
    state_ = State::talking;
    if (v_slot_.valid()) setGoal(v_slot_, HoldSlotGoal{MediaIntent::server(), ids_});
    if (c_slot_.valid() && a_slot_.valid()) linkSlots(c_slot_, a_slot_);
  }

  void enterCollecting() {
    state_ = State::collecting;
    ++times_collected_;
    if (a_slot_.valid()) setGoal(a_slot_, HoldSlotGoal{MediaIntent::server(), ids_});
    if (c_slot_.valid() && v_slot_.valid()) linkSlots(c_slot_, v_slot_);
  }

  std::string callee_target_;
  std::string voice_resource_;
  SimDuration talk_time_;
  DescriptorFactory ids_;
  State state_ = State::idle;
  int times_collected_ = 0;
  SlotId c_slot_;
  SlotId a_slot_;
  SlotId v_slot_;
};

}  // namespace cmc
