// ClickToDialBox: the paper's Fig. 6 example, state for state.
//
//   start ----click----> oneCall    openSlot(1a, audio)
//   oneCall --flowing--> twoCalls   openSlot(1a), openSlot(2a)
//   twoCalls -unavail--> busyTone   flowLink(1a, Ta)
//   twoCalls --avail---> ringback   flowLink(1a, Ta), openSlot(2a)
//   ringback -flowing2-> connected  flowLink(1a, 2a)
//   oneCall --timeout--> done       (destroy channel 1)
//
// The box is an application server: its openslots are muted masquerades
// (server intent). Tones come from a tone-generator resource, because the
// caller's device will not generate tones while playing the called-party
// role (footnote 3). The final transition destroys the tone channel and
// flowlinks two already-flowing slots; the flowlink implementation then
// reconfigures addresses and codecs so user 1 and user 2 talk directly.
#pragma once

#include "core/box.hpp"

namespace cmc {

class ClickToDialBox : public Box {
 public:
  enum class State {
    start,
    oneCall,
    twoCalls,
    busyTone,
    ringback,
    connected,
    done
  };

  ClickToDialBox(BoxId id, std::string name, std::string tone_resource,
                 SimDuration answer_timeout = std::chrono::seconds(30))
      : Box(id, std::move(name)),
        tone_resource_(std::move(tone_resource)),
        answer_timeout_(answer_timeout) {
    ids_ = DescriptorFactory{id.value()};
  }

  // The user clicked a "click-to-dial" link on a web page.
  void click(const std::string& user1_device, const std::string& user2_device) {
    if (state_ != State::start) return;
    user2_ = user2_device;
    requestChannel(user1_device, 1, "ch1");
    setTimer(answer_timeout_, "answer");
    state_ = State::oneCall;
  }

  [[nodiscard]] State state() const noexcept { return state_; }

 protected:
  void onChannelUp(ChannelId channel, const std::string& tag) override {
    const auto slots = slotsOf(channel);
    if (slots.empty()) return;
    if (tag == "ch1") {
      slot_1a_ = slots.front();
      setGoal(slot_1a_, OpenSlotGoal{Medium::audio, MediaIntent::server(), ids_});
    } else if (tag == "ch2") {
      slot_2a_ = slots.front();
      setGoal(slot_2a_, OpenSlotGoal{Medium::audio, MediaIntent::server(), ids_});
    } else if (tag == "chT") {
      slot_ta_ = slots.front();
      // flowLink(1a, Ta): 1a is flowing, Ta closed; the link opens Ta and
      // once the resource accepts, user 1 hears the tone.
      linkSlots(slot_1a_, slot_ta_);
    }
  }

  void onSlotActivity(SlotId slot) override {
    if (slot == slot_1a_ && state_ == State::oneCall && isFlowing(slot_1a_)) {
      state_ = State::twoCalls;
      requestChannel(user2_, 1, "ch2");
      return;
    }
    if (slot == slot_2a_ && (state_ == State::twoCalls || state_ == State::ringback) &&
        isFlowing(slot_2a_)) {
      // User 2 answered: drop the tone and connect the two users.
      if (slot_ta_.valid() && channelOf(slot_ta_).valid()) {
        destroyChannel(channelOf(slot_ta_));
        slot_ta_ = SlotId{};
      }
      linkSlots(slot_1a_, slot_2a_);
      state_ = State::connected;
    }
  }

  void onMeta(ChannelId channel, const MetaSignal& meta) override {
    if (!slot_2a_.valid() || channelOf(slot_2a_) != channel) return;
    if (meta.kind == MetaKind::unavailable &&
        (state_ == State::twoCalls || state_ == State::ringback)) {
      destroyChannel(channel);
      slot_2a_ = SlotId{};
      if (!slot_ta_.valid()) requestChannel(tone_resource_, 1, "chT");
      state_ = State::busyTone;
    } else if (meta.kind == MetaKind::available && state_ == State::twoCalls) {
      // Device is ringing: play ringback to user 1 while 2a keeps trying.
      requestChannel(tone_resource_, 1, "chT");
      state_ = State::ringback;
    }
  }

  void onTimer(const std::string& tag) override {
    if (tag == "answer" && state_ == State::oneCall) {
      // User 1 never picked up.
      if (slot_1a_.valid() && channelOf(slot_1a_).valid()) {
        destroyChannel(channelOf(slot_1a_));
      }
      state_ = State::done;
    }
  }

  void onChannelDown(ChannelId) override {
    // If user 1's channel dies, the feature folds entirely.
    if (slot_1a_.valid() && !channelOf(slot_1a_).valid()) {
      if (slot_2a_.valid() && channelOf(slot_2a_).valid()) {
        destroyChannel(channelOf(slot_2a_));
      }
      if (slot_ta_.valid() && channelOf(slot_ta_).valid()) {
        destroyChannel(channelOf(slot_ta_));
      }
      state_ = State::done;
    }
  }

 private:
  std::string tone_resource_;
  SimDuration answer_timeout_;
  DescriptorFactory ids_;
  std::string user2_;
  State state_ = State::start;
  SlotId slot_1a_;
  SlotId slot_2a_;
  SlotId slot_ta_;
};

}  // namespace cmc
