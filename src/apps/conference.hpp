// ConferenceServerBox: an audio conference (paper Fig. 7).
//
// The conference server is a pure application server; the mixing happens in
// a conference-bridge media resource. One signaling channel to the bridge
// carries one tunnel per participant; during the conference the server
// flowlinks each participant's tunnel to its bridge tunnel. Full muting of
// a participant replaces that flowlink by two holdslots; partial muting is
// delegated to the bridge through standardized meta-signals ("mode"/"mix"),
// as the paper prescribes.
#pragma once

#include <map>

#include "core/box.hpp"

namespace cmc {

class ConferenceServerBox : public Box {
 public:
  ConferenceServerBox(BoxId id, std::string name, std::string bridge_resource,
                      std::uint32_t max_parties = 8)
      : Box(id, std::move(name)),
        bridge_resource_(std::move(bridge_resource)),
        max_parties_(max_parties) {
    ids_ = DescriptorFactory{id.value()};
  }

  // Invite a device into the conference.
  void invite(const std::string& device) {
    requestChannel(device, 1, "party:" + device);
  }

  // Full muting: separate the participant from the conference entirely.
  void muteParty(const std::string& device) {
    auto it = parties_.find(device);
    if (it == parties_.end()) return;
    setGoal(it->second.party_slot, HoldSlotGoal{MediaIntent::server(), ids_});
    setGoal(it->second.bridge_slot, HoldSlotGoal{MediaIntent::server(), ids_});
  }

  void unmuteParty(const std::string& device) {
    auto it = parties_.find(device);
    if (it == parties_.end()) return;
    linkSlots(it->second.party_slot, it->second.bridge_slot);
  }

  // Partial muting: delegated to the bridge's mix matrix.
  void setMode(const std::string& mode) {
    if (bridge_channel_.valid()) {
      sendMeta(bridge_channel_, MetaSignal{MetaKind::custom, "mode", mode});
    }
  }
  void setMixEdge(std::size_t from, std::size_t to, bool audible) {
    if (!bridge_channel_.valid()) return;
    std::string payload = std::to_string(from) + "," + std::to_string(to) + "," +
                          (audible ? "1" : "0");
    sendMeta(bridge_channel_, MetaSignal{MetaKind::custom, "mix", payload});
  }

  [[nodiscard]] std::size_t legOf(const std::string& device) const {
    auto it = parties_.find(device);
    return it == parties_.end() ? ~std::size_t{0} : it->second.leg;
  }
  [[nodiscard]] std::size_t partyCount() const noexcept { return parties_.size(); }

 protected:
  void onChannelUp(ChannelId channel, const std::string& tag) override {
    if (tag == "bridge") {
      bridge_channel_ = channel;
      bridge_slots_ = slotsOf(channel);
      // Link any parties that arrived before the bridge.
      for (auto& [name, party] : parties_) attachParty(party);
      return;
    }
    if (tag.rfind("party:", 0) == 0) {
      addParty(tag.substr(6), channel, /*dialed_out=*/true);
    }
  }

  void onIncomingChannel(ChannelId channel, const std::string& peer) override {
    // Devices may also dial into the conference.
    addParty(peer, channel, /*dialed_out=*/false);
  }

  void onSlotActivity(SlotId slot) override {
    // An invited party answered: its slot reached flowing under the
    // server's openslot; now splice it onto its bridge leg. The flowlink's
    // flow bias extends the channel to the bridge.
    for (auto& [name, party] : parties_) {
      if (party.party_slot == slot && party.awaiting_answer &&
          isFlowing(slot)) {
        party.awaiting_answer = false;
        attachParty(party);
      }
    }
  }

  void onChannelDown(ChannelId channel) override {
    if (channel == bridge_channel_) {
      bridge_channel_ = ChannelId{};
      bridge_slots_.clear();
      return;
    }
    for (auto it = parties_.begin(); it != parties_.end(); ++it) {
      if (!channelOf(it->second.party_slot).valid()) {
        setGoal(it->second.bridge_slot, CloseSlotGoal{});
        parties_.erase(it);
        break;
      }
    }
  }

 private:
  struct Party {
    SlotId party_slot;
    SlotId bridge_slot;
    std::size_t leg = 0;
    bool awaiting_answer = false;  // we invited; open not yet accepted
  };

  void addParty(const std::string& name, ChannelId channel, bool dialed_out) {
    const auto slots = slotsOf(channel);
    if (slots.empty() || parties_.count(name) != 0) return;
    Party party;
    party.party_slot = slots.front();
    party.awaiting_answer = dialed_out;
    if (dialed_out) {
      // Ring the device: open (muted — this is a server masquerade); once
      // it answers, onSlotActivity splices it to the bridge.
      setGoal(party.party_slot,
              OpenSlotGoal{Medium::audio, MediaIntent::server(), ids_});
    }
    parties_[name] = party;
    if (!bridge_channel_.valid() && !bridge_requested_) {
      bridge_requested_ = true;
      requestChannel(bridge_resource_, max_parties_, "bridge");
    }
    if (!dialed_out) attachParty(parties_[name]);
  }

  void attachParty(Party& party) {
    if (party.awaiting_answer) return;  // still ringing
    if (bridge_slots_.empty()) {
      // Bridge not up yet: hold the participant.
      setGoal(party.party_slot, HoldSlotGoal{MediaIntent::server(), ids_});
      return;
    }
    if (!party.bridge_slot.valid()) {
      if (next_leg_ >= bridge_slots_.size()) return;
      party.leg = next_leg_++;
      party.bridge_slot = bridge_slots_[party.leg];
    }
    linkSlots(party.party_slot, party.bridge_slot);
  }

  std::string bridge_resource_;
  std::uint32_t max_parties_;
  DescriptorFactory ids_;
  ChannelId bridge_channel_;
  std::vector<SlotId> bridge_slots_;
  bool bridge_requested_ = false;
  std::size_t next_leg_ = 0;
  std::map<std::string, Party> parties_;
};

}  // namespace cmc
