// PbxBox: an IP PBX serving one telephone (paper Section II-A).
//
// The served device has a permanent signaling channel to the PBX; all
// signaling channels connecting it to other parties radiate from the PBX.
// The feature offered here is call switching: the device talks to exactly
// one call at a time — flowLink(line, selected call) — while every other
// call is held (holdSlot). Because the PBX is the box closest to the
// device, "proximity confers priority": nothing beyond the PBX can move the
// device's media unless the PBX's current flowlink allows it, which is
// precisely what repairs the Fig. 2 pathology.
#pragma once

#include <map>

#include "core/box.hpp"

namespace cmc {

class PbxBox : public Box {
 public:
  PbxBox(BoxId id, std::string name, std::string served_device)
      : Box(id, std::move(name)), served_device_(std::move(served_device)) {
    ids_ = DescriptorFactory{id.value()};
  }

  // ---- feature operations (user actions arriving out of band) ---------
  // Place an outgoing call for the device; the device's own open on its
  // line tunnel is extended through the new channel by the flowlink.
  void dial(const std::string& target) {
    requestChannel(target, 1, "call:" + target);
  }

  // Switch the device's audio to the named call; every other call is held.
  void switchTo(const std::string& call_name) {
    auto it = calls_.find(call_name);
    if (it == calls_.end() || !line_slot_.valid()) return;
    for (auto& [name, slot] : calls_) {
      if (name != call_name) setGoal(slot, HoldSlotGoal{MediaIntent::server(), ids_});
    }
    linkSlots(line_slot_, it->second);
    active_call_ = call_name;
  }

  // Put everything on hold (device hears nothing).
  void holdAll() {
    if (line_slot_.valid()) {
      setGoal(line_slot_, HoldSlotGoal{MediaIntent::server(), ids_});
    }
    for (auto& [name, slot] : calls_) {
      setGoal(slot, HoldSlotGoal{MediaIntent::server(), ids_});
    }
    active_call_.clear();
  }

  void endCall(const std::string& call_name) {
    auto it = calls_.find(call_name);
    if (it == calls_.end()) return;
    destroyChannel(channelOf(it->second));
  }

  [[nodiscard]] const std::string& activeCall() const noexcept { return active_call_; }
  [[nodiscard]] std::vector<std::string> callNames() const {
    std::vector<std::string> out;
    for (const auto& [name, slot] : calls_) out.push_back(name);
    return out;
  }
  [[nodiscard]] bool hasCall(const std::string& name) const {
    return calls_.count(name) != 0;
  }

 protected:
  void onIncomingChannel(ChannelId channel, const std::string& peer) override {
    if (peer == served_device_ && !line_slot_.valid()) {
      adoptLine(channel);
      return;
    }
    registerCall(channel, peer);
  }

  void onChannelUp(ChannelId channel, const std::string& tag) override {
    if (tag.rfind("call:", 0) == 0) {
      const std::string name = tag.substr(5);
      registerCall(channel, name);
      switchTo(name);
    } else if (!line_slot_.valid()) {
      // Statically configured line channel where the PBX is the initiator.
      adoptLine(channel);
    }
  }

  void onChannelDown(ChannelId channel) override {
    for (auto it = calls_.begin(); it != calls_.end(); ++it) {
      if (!channelOf(it->second).valid()) {
        if (active_call_ == it->first) active_call_.clear();
        calls_.erase(it);
        break;
      }
    }
    if (line_slot_.valid() && !channelOf(line_slot_).valid()) {
      line_slot_ = SlotId{};
    }
    // Leave the line holding until the user switches somewhere.
    if (line_slot_.valid() && active_call_.empty()) {
      setGoal(line_slot_, HoldSlotGoal{MediaIntent::server(), ids_});
    }
    (void)channel;
  }

 private:
  void adoptLine(ChannelId channel) {
    const auto slots = slotsOf(channel);
    if (slots.empty()) return;
    line_slot_ = slots.front();
    // Until a call is selected, the line is held: the device's opens are
    // answered (muted) but reach no one.
    setGoal(line_slot_, HoldSlotGoal{MediaIntent::server(), ids_});
  }

  void registerCall(ChannelId channel, const std::string& name) {
    const auto slots = slotsOf(channel);
    if (slots.empty()) return;
    calls_[name] = slots.front();
    // An unselected call is held: its open is answered (so far-end setup
    // can complete) but its media reaches the device only when switched to.
    setGoal(slots.front(), HoldSlotGoal{MediaIntent::server(), ids_});
  }

  std::string served_device_;
  DescriptorFactory ids_;
  SlotId line_slot_;
  std::map<std::string, SlotId> calls_;
  std::string active_call_;
};

}  // namespace cmc
