// CallForwardingBox: a classic DFC-style feature box.
//
// The paper's motivation for compositionality comes from DFC (Section
// II-B): features as independent modules in a signaling pipeline, so each
// can stay simple and features chain freely. Call forwarding is the
// canonical example: the box sits in front of a served user; incoming
// calls are spliced through to the user, and if the user is unavailable
// (or the feature is set to forward unconditionally) the call is re-routed
// to the forward target instead — by relinking, not by touching the caller.
//
// Because control is a flowlink, the caller's media follows wherever the
// call lands, across any number of chained forwarding boxes, with no
// feature aware of the others.
#pragma once

#include "core/box.hpp"

namespace cmc {

class CallForwardingBox : public Box {
 public:
  enum class Mode { onUnavailable, always };

  CallForwardingBox(BoxId id, std::string name, std::string served_user,
                    std::string forward_target,
                    Mode mode = Mode::onUnavailable)
      : Box(id, std::move(name)),
        served_user_(std::move(served_user)),
        forward_target_(std::move(forward_target)),
        mode_(mode) {
    ids_ = DescriptorFactory{id.value()};
  }

  [[nodiscard]] bool forwarded() const noexcept { return forwarded_; }

 protected:
  void onIncomingChannel(ChannelId channel, const std::string&) override {
    const auto slots = slotsOf(channel);
    if (slots.empty() || in_slot_.valid()) return;  // one call at a time
    in_slot_ = slots.front();
    setGoal(in_slot_, HoldSlotGoal{MediaIntent::server(), ids_});
    if (mode_ == Mode::always) {
      forwarded_ = true;
      requestChannel(forward_target_, 1, "out");
    } else {
      requestChannel(served_user_, 1, "out");
    }
  }

  void onChannelUp(ChannelId channel, const std::string& tag) override {
    if (tag != "out") return;
    const auto slots = slotsOf(channel);
    if (slots.empty()) return;
    out_slot_ = slots.front();
    if (in_slot_.valid()) linkSlots(in_slot_, out_slot_);
  }

  void onMeta(ChannelId channel, const MetaSignal& meta) override {
    // The served user is unavailable: re-route the leg.
    if (meta.kind != MetaKind::unavailable || forwarded_) return;
    if (!out_slot_.valid() || channelOf(out_slot_) != channel) return;
    forwarded_ = true;
    // Clear the leg bookkeeping BEFORE the teardown so onChannelDown does
    // not mistake this intentional re-route for a callee hangup.
    out_slot_ = SlotId{};
    destroyChannel(channel);
    if (in_slot_.valid()) {
      setGoal(in_slot_, HoldSlotGoal{MediaIntent::server(), ids_});
      requestChannel(forward_target_, 1, "out");
    }
  }

  void onChannelDown(ChannelId) override {
    if (in_slot_.valid() && !channelOf(in_slot_).valid()) {
      // The caller went away: fold the outgoing leg too.
      in_slot_ = SlotId{};
      if (out_slot_.valid() && channelOf(out_slot_).valid()) {
        destroyChannel(channelOf(out_slot_));
      }
      out_slot_ = SlotId{};
      forwarded_ = false;
    } else if (out_slot_.valid() && !channelOf(out_slot_).valid()) {
      // The callee hung up: release the caller.
      out_slot_ = SlotId{};
      if (in_slot_.valid() && channelOf(in_slot_).valid()) {
        destroyChannel(channelOf(in_slot_));
        in_slot_ = SlotId{};
      }
      forwarded_ = false;
    }
  }

 private:
  std::string served_user_;
  std::string forward_target_;
  Mode mode_;
  DescriptorFactory ids_;
  SlotId in_slot_;
  SlotId out_slot_;
  bool forwarded_ = false;
};

}  // namespace cmc
