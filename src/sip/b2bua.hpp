// SipB2bua: a SIP application server doing third-party call control
// (RFC 3725 style) — the baseline the paper compares against in Section
// IX-B and Fig. 14.
//
// The flowlink-equivalent operation is `relink(solicit_dialog,
// target_dialog)`: splice the endpoint behind `solicit_dialog` to whatever
// is behind `target_dialog`. Because SIP answers are relative and offers
// must be fresh, the server cannot use cached state; it must:
//
//   1. send an offerless INVITE on solicit_dialog (solicit a fresh offer),
//   2. receive 200(offer), forward it in an INVITE on target_dialog,
//   3. receive 200(answer), ACK it, and close the solicited transaction
//      with ACK(answer) on solicit_dialog.
//
// If step 2's INVITE glares with a peer's INVITE (both servers relinking
// the shared dialog at once, Fig. 14), both transactions fail: each server
// ACKs the 491, closes its solicited side with a dummy answer, waits a
// random period, and retries the entire operation.
//
// When it is not relinking, the B2BUA plays the transparent forwarding
// role: an INVITE(offer) arriving on one dialog is forwarded on the linked
// dialog, and the answer travels back in the 200.
#pragma once

#include <map>
#include <optional>

#include "sip/network.hpp"

namespace cmc::sip {

class SipB2bua : public SipParty {
 public:
  SipB2bua(std::string name, SipNetwork& network)
      : SipParty(std::move(name), network) {
    network.registerParty(*this);
  }

  // Transparent forwarding association between two dialogs.
  void linkDialogs(std::uint64_t a, std::uint64_t b) {
    linked_[a] = b;
    linked_[b] = a;
  }

  // The 3pcc relink operation (see file comment).
  void relink(std::uint64_t solicit_dialog, std::uint64_t target_dialog);

  void onMessage(const SipMessage& message) override;

  [[nodiscard]] bool relinkDone() const noexcept {
    return op_ && op_->phase == Relink::Phase::done;
  }
  [[nodiscard]] std::optional<SimTime> relinkDoneAt() const noexcept {
    return relink_done_at_;
  }
  [[nodiscard]] int glaresSeen() const noexcept { return glares_; }
  [[nodiscard]] int retries() const noexcept { return retries_; }

  // Glare backoff (uniform); paper assumes E[d] = 3 s.
  SimDuration retryMin{2'100'000};
  SimDuration retryMax{3'900'000};

 private:
  struct DialogState {
    std::uint32_t cseq_out = 0;
    bool uac_pending = false;
    std::uint32_t uac_cseq = 0;
    bool uas_awaiting_ack = false;
  };

  struct Relink {
    enum class Phase { soliciting, offering, backoff, done };
    std::uint64_t solicit_dialog = 0;
    std::uint64_t target_dialog = 0;
    Phase phase = Phase::soliciting;
    std::optional<Sdp> offer;          // fetched from the solicited side
    std::uint32_t solicited_cseq = 0;  // transaction to close with ACK
  };

  struct Forwarding {
    std::uint64_t from_dialog = 0;  // where the INVITE arrived (we are UAS)
    std::uint64_t to_dialog = 0;    // where we forwarded it (we are UAC)
    std::uint32_t from_cseq = 0;
  };

  void startSolicit();
  void handleRequest(const SipRequest& request);
  void handleResponse(const SipResponse& response);

  std::map<std::uint64_t, DialogState> dialogs_;
  std::map<std::uint64_t, std::uint64_t> linked_;
  std::optional<Relink> op_;
  std::optional<Forwarding> forwarding_;
  std::optional<SimTime> relink_done_at_;
  int glares_ = 0;
  int retries_ = 0;
};

}  // namespace cmc::sip
