#include "sip/b2bua.hpp"

namespace cmc::sip {

namespace {

Sdp dummyAnswer(const Sdp& offer) {
  // Close a solicited transaction without enabling media: answer each line
  // with noMedia.
  Sdp sdp;
  sdp.kind = Sdp::Kind::answer;
  for (const MediaLine& line : offer.media) {
    sdp.media.push_back(MediaLine{line.medium, MediaAddress{}, {Codec::noMedia}});
  }
  return sdp;
}

Sdp asAnswer(Sdp sdp) {
  sdp.kind = Sdp::Kind::answer;
  return sdp;
}

Sdp asOffer(Sdp sdp) {
  sdp.kind = Sdp::Kind::offer;
  return sdp;
}

}  // namespace

void SipB2bua::relink(std::uint64_t solicit_dialog, std::uint64_t target_dialog) {
  op_ = Relink{};
  op_->solicit_dialog = solicit_dialog;
  op_->target_dialog = target_dialog;
  startSolicit();
}

void SipB2bua::startSolicit() {
  op_->phase = Relink::Phase::soliciting;
  op_->offer.reset();
  DialogState& state = dialogs_[op_->solicit_dialog];
  state.uac_pending = true;
  state.uac_cseq = ++state.cseq_out;
  // Offerless INVITE: solicit a fresh offer (answers cannot be re-used and
  // offers are not supposed to be; Section IX-B).
  send(op_->solicit_dialog,
       SipMessage::make(SipRequest{Method::invite, op_->solicit_dialog,
                                   state.uac_cseq, std::nullopt}));
}

void SipB2bua::onMessage(const SipMessage& message) {
  if (message.is_request) {
    handleRequest(message.request);
  } else {
    handleResponse(message.response);
  }
}

void SipB2bua::handleRequest(const SipRequest& request) {
  DialogState& state = dialogs_[request.dialog];
  switch (request.method) {
    case Method::invite: {
      if (state.uac_pending) {
        // Glare on this dialog.
        ++glares_;
        send(request.dialog,
             SipMessage::make(SipResponse{491, request.dialog, request.cseq,
                                          std::nullopt}));
        return;
      }
      auto linked = linked_.find(request.dialog);
      if (!request.body || linked == linked_.end()) {
        // Nothing to splice it to; refuse politely.
        send(request.dialog,
             SipMessage::make(SipResponse{491, request.dialog, request.cseq,
                                          std::nullopt}));
        return;
      }
      // Transparent forwarding: replay the offer on the linked dialog.
      state.uas_awaiting_ack = false;
      forwarding_ = Forwarding{request.dialog, linked->second, request.cseq};
      DialogState& out = dialogs_[linked->second];
      out.uac_pending = true;
      out.uac_cseq = ++out.cseq_out;
      send(linked->second,
           SipMessage::make(SipRequest{Method::invite, linked->second,
                                       out.uac_cseq, asOffer(*request.body)}));
      return;
    }
    case Method::ack: {
      state.uas_awaiting_ack = false;
      return;
    }
    case Method::bye: {
      send(request.dialog, SipMessage::make(SipResponse{
                               200, request.dialog, request.cseq, std::nullopt}));
      return;
    }
  }
}

void SipB2bua::handleResponse(const SipResponse& response) {
  DialogState& state = dialogs_[response.dialog];
  if (!state.uac_pending || response.cseq != state.uac_cseq) return;

  if (response.status == 200) {
    state.uac_pending = false;
    if (op_ && op_->phase == Relink::Phase::soliciting &&
        response.dialog == op_->solicit_dialog) {
      // Fresh offer arrived; hold the ACK until we have the answer (3pcc).
      op_->offer = response.body;
      op_->solicited_cseq = response.cseq;
      op_->phase = Relink::Phase::offering;
      DialogState& target = dialogs_[op_->target_dialog];
      target.uac_pending = true;
      target.uac_cseq = ++target.cseq_out;
      send(op_->target_dialog,
           SipMessage::make(SipRequest{Method::invite, op_->target_dialog,
                                       target.uac_cseq, asOffer(*op_->offer)}));
      return;
    }
    if (op_ && op_->phase == Relink::Phase::offering &&
        response.dialog == op_->target_dialog) {
      // Answer from the target side: complete both transactions.
      send(op_->target_dialog,
           SipMessage::make(SipRequest{Method::ack, op_->target_dialog,
                                       response.cseq, std::nullopt}));
      send(op_->solicit_dialog,
           SipMessage::make(SipRequest{
               Method::ack, op_->solicit_dialog, op_->solicited_cseq,
               response.body ? std::optional<Sdp>(asAnswer(*response.body))
                             : std::nullopt}));
      op_->phase = Relink::Phase::done;
      relink_done_at_ = now();
      return;
    }
    if (forwarding_ && response.dialog == forwarding_->to_dialog) {
      // Forwarded INVITE succeeded: ACK downstream, answer upstream.
      send(forwarding_->to_dialog,
           SipMessage::make(SipRequest{Method::ack, forwarding_->to_dialog,
                                       response.cseq, std::nullopt}));
      DialogState& from = dialogs_[forwarding_->from_dialog];
      from.uas_awaiting_ack = true;
      send(forwarding_->from_dialog,
           SipMessage::make(SipResponse{
               200, forwarding_->from_dialog, forwarding_->from_cseq,
               response.body ? std::optional<Sdp>(asAnswer(*response.body))
                             : std::nullopt}));
      forwarding_.reset();
      return;
    }
    return;
  }

  if (response.status == 491) {
    state.uac_pending = false;
    send(response.dialog,
         SipMessage::make(SipRequest{Method::ack, response.dialog,
                                     response.cseq, std::nullopt}));
    if (op_ && op_->phase == Relink::Phase::offering &&
        response.dialog == op_->target_dialog) {
      // Glare during the relink: close the solicited side with a dummy
      // answer, back off, retry the entire operation (Fig. 14).
      send(op_->solicit_dialog,
           SipMessage::make(SipRequest{Method::ack, op_->solicit_dialog,
                                       op_->solicited_cseq,
                                       dummyAnswer(*op_->offer)}));
      op_->phase = Relink::Phase::backoff;
      ++retries_;
      const auto spread = static_cast<double>((retryMax - retryMin).count());
      const SimDuration d =
          retryMin + SimDuration{static_cast<SimDuration::rep>(
                         spread * rng().uniform01())};
      setDelay(d, [this]() {
        if (op_ && op_->phase == Relink::Phase::backoff) startSolicit();
      });
      return;
    }
    if (forwarding_ && response.dialog == forwarding_->to_dialog) {
      // Could not forward; bounce the failure upstream.
      send(forwarding_->from_dialog,
           SipMessage::make(SipResponse{491, forwarding_->from_dialog,
                                        forwarding_->from_cseq, std::nullopt}));
      forwarding_.reset();
    }
  }
}

}  // namespace cmc::sip
