// Minimal SIP message model — exactly the subset paper Section IX-B
// compares against.
//
// Three properties of SIP matter for the comparison, and all three are
// modeled faithfully:
//   * transactional signaling: a media channel is opened/modified by an
//     INVITE / 200-success / ACK transaction; overlapping invite
//     transactions on one dialog are *glare* and both fail (491), each
//     initiator backing off for a random period before retrying;
//   * offer/answer negotiation: the initiator's offer lists codecs, the
//     responder's answer is a subset; an offerless INVITE solicits a fresh
//     offer in the 200, answered in the ACK (the RFC 3725 3pcc flow);
//   * media bundling: one SDP body describes all media channels of the
//     dialog at once (the body holds a list of media lines).
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "codec/descriptor.hpp"

namespace cmc::sip {

// One m-line: a media stream description. SIP bundles all of a dialog's
// streams into one body.
struct MediaLine {
  Medium medium = Medium::audio;
  MediaAddress addr;
  std::vector<Codec> codecs;  // offer: capabilities; answer: accepted subset

  friend bool operator==(const MediaLine&, const MediaLine&) = default;
};

struct Sdp {
  enum class Kind : std::uint8_t { offer, answer };
  Kind kind = Kind::offer;
  std::vector<MediaLine> media;

  friend bool operator==(const Sdp&, const Sdp&) = default;
};

enum class Method : std::uint8_t { invite = 0, ack = 1, bye = 2 };

[[nodiscard]] std::string_view toString(Method method) noexcept;

struct SipRequest {
  Method method = Method::invite;
  std::uint64_t dialog = 0;
  std::uint32_t cseq = 0;
  std::optional<Sdp> body;  // INVITE: offer or absent (solicit); ACK: answer or absent
};

struct SipResponse {
  int status = 200;  // 200 success; 491 request pending (glare)
  std::uint64_t dialog = 0;
  std::uint32_t cseq = 0;
  std::optional<Sdp> body;  // 200 to offerful INVITE: answer; to offerless: offer
};

struct SipMessage {
  bool is_request = true;
  SipRequest request;
  SipResponse response;

  [[nodiscard]] std::uint64_t dialog() const noexcept {
    return is_request ? request.dialog : response.dialog;
  }

  [[nodiscard]] static SipMessage make(SipRequest r) {
    SipMessage m;
    m.is_request = true;
    m.request = std::move(r);
    return m;
  }
  [[nodiscard]] static SipMessage make(SipResponse r) {
    SipMessage m;
    m.is_request = false;
    m.response = std::move(r);
    return m;
  }
};

std::ostream& operator<<(std::ostream& os, const SipMessage& m);

}  // namespace cmc::sip
