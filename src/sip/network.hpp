// SIP transport: the same timing model as the compositional protocol's
// simulator (network latency n, per-stimulus processing cost c, serial
// boxes), so the two protocols' latencies are compared apples to apples.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "sim/event_loop.hpp"
#include "sim/timing.hpp"
#include "sip/message.hpp"

namespace cmc::sip {

class SipNetwork;

class SipParty {
 public:
  SipParty(std::string name, SipNetwork& network)
      : name_(std::move(name)), network_(network) {}
  virtual ~SipParty() = default;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  virtual void onMessage(const SipMessage& message) = 0;

 protected:
  void send(std::uint64_t dialog, SipMessage message);
  void setDelay(SimDuration delay, std::function<void()> fn);
  [[nodiscard]] SimTime now() const;
  [[nodiscard]] Rng& rng();

 private:
  std::string name_;
  SipNetwork& network_;
};

// Routes messages along *dialogs*: a dialog connects exactly two parties.
class SipNetwork {
 public:
  explicit SipNetwork(EventLoop& loop,
                      TimingModel timing = TimingModel::paperDefaults(),
                      std::uint64_t seed = 1)
      : loop_(loop), timing_(timing), rng_(seed) {}

  void registerParty(SipParty& party) { parties_[party.name()] = &party; }

  std::uint64_t createDialog(const std::string& a, const std::string& b) {
    const std::uint64_t id = next_dialog_++;
    dialogs_[id] = {a, b};
    return id;
  }

  void send(const std::string& from, std::uint64_t dialog, SipMessage message) {
    auto it = dialogs_.find(dialog);
    if (it == dialogs_.end()) return;
    const std::string to = it->second.first == from ? it->second.second
                                                    : it->second.first;
    ++messages_;
    loop_.schedule(timing_.sampleNetwork(rng_),
                   [this, to, message = std::move(message)]() {
                     stimulate(to, message);
                   });
  }

  void schedule(SimDuration delay, std::function<void()> fn) {
    loop_.schedule(delay, std::move(fn));
  }

  [[nodiscard]] SimTime now() const noexcept { return loop_.now(); }
  [[nodiscard]] EventLoop& loop() noexcept { return loop_; }
  [[nodiscard]] Rng& rng() noexcept { return rng_; }
  [[nodiscard]] std::uint64_t messageCount() const noexcept { return messages_; }

 private:
  void stimulate(const std::string& to, SipMessage message) {
    auto it = parties_.find(to);
    if (it == parties_.end()) return;
    SimTime& busy = busy_until_[to];
    const SimTime start = loop_.now() < busy ? busy : loop_.now();
    const SimTime done = start + timing_.processing;
    busy = done;
    loop_.scheduleAt(done, [party = it->second, message = std::move(message)]() {
      party->onMessage(message);
    });
  }

  EventLoop& loop_;
  TimingModel timing_;
  Rng rng_;
  std::uint64_t next_dialog_ = 1;
  std::map<std::string, SipParty*> parties_;
  std::map<std::uint64_t, std::pair<std::string, std::string>> dialogs_;
  std::map<std::string, SimTime> busy_until_;
  std::uint64_t messages_ = 0;
};

inline void SipParty::send(std::uint64_t dialog, SipMessage message) {
  network_.send(name_, dialog, std::move(message));
}

inline void SipParty::setDelay(SimDuration delay, std::function<void()> fn) {
  network_.schedule(delay, std::move(fn));
}

inline SimTime SipParty::now() const { return network_.now(); }

inline Rng& SipParty::rng() { return network_.rng(); }

}  // namespace cmc::sip
