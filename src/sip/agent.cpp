#include "sip/agent.hpp"

#include <algorithm>

namespace cmc::sip {

std::string_view toString(Method method) noexcept {
  switch (method) {
    case Method::invite: return "INVITE";
    case Method::ack: return "ACK";
    case Method::bye: return "BYE";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const SipMessage& m) {
  if (m.is_request) {
    os << toString(m.request.method) << " d" << m.request.dialog << " cseq="
       << m.request.cseq;
    if (m.request.body) {
      os << (m.request.body->kind == Sdp::Kind::offer ? " offer" : " answer");
    }
  } else {
    os << m.response.status << " d" << m.response.dialog << " cseq="
       << m.response.cseq;
    if (m.response.body) {
      os << (m.response.body->kind == Sdp::Kind::offer ? " offer" : " answer");
    }
  }
  return os;
}

Sdp SipUa::makeOffer() const {
  Sdp sdp;
  sdp.kind = Sdp::Kind::offer;
  sdp.media.push_back(MediaLine{Medium::audio, addr_, codecs_});
  return sdp;
}

Sdp SipUa::makeAnswer(const Sdp& offer) const {
  // Negotiation: the answer is the subset of the offer's codecs that we can
  // handle (paper Section IX-B).
  Sdp sdp;
  sdp.kind = Sdp::Kind::answer;
  for (const MediaLine& line : offer.media) {
    MediaLine mine;
    mine.medium = line.medium;
    mine.addr = addr_;
    for (Codec c : line.codecs) {
      if (std::find(codecs_.begin(), codecs_.end(), c) != codecs_.end()) {
        mine.codecs.push_back(c);
      }
    }
    sdp.media.push_back(std::move(mine));
  }
  return sdp;
}

void SipUa::completedNegotiation(const Sdp& remote_sdp) {
  ++negotiations_;
  // A dummy (no common real codec) exchange does not enable media.
  for (const MediaLine& line : remote_sdp.media) {
    for (Codec c : line.codecs) {
      if (c != Codec::noMedia) {
        media_ready_at_ = now();
        return;
      }
    }
  }
}

void SipUa::reinvite(std::uint64_t dialog) {
  DialogState& state = dialogs_[dialog];
  if (state.uac_pending) return;
  state.uac_pending = true;
  state.uac_cseq = ++state.cseq_out;
  state.uac_sent_offer = true;
  SipRequest request{Method::invite, dialog, state.uac_cseq, makeOffer()};
  send(dialog, SipMessage::make(std::move(request)));
}

void SipUa::onMessage(const SipMessage& message) {
  if (message.is_request) {
    handleRequest(message.request);
  } else {
    handleResponse(message.response);
  }
}

void SipUa::handleRequest(const SipRequest& request) {
  DialogState& state = dialogs_[request.dialog];
  switch (request.method) {
    case Method::invite: {
      if (state.uac_pending) {
        // Glare: an invite transaction cannot overlap another on the same
        // dialog; reject, the peer rejects ours symmetrically.
        ++glares_;
        send(request.dialog,
             SipMessage::make(SipResponse{491, request.dialog, request.cseq,
                                          std::nullopt}));
        return;
      }
      state.awaiting_ack = true;
      if (request.body) {
        // Offerful INVITE: answer in the 200. We can transmit as soon as
        // the answer is out.
        Sdp answer = makeAnswer(*request.body);
        const Sdp remote = *request.body;
        send(request.dialog,
             SipMessage::make(SipResponse{200, request.dialog, request.cseq,
                                          std::move(answer)}));
        state.ack_carries_answer = false;
        completedNegotiation(remote);
      } else {
        // Offerless INVITE (3pcc solicitation): our 200 carries a fresh
        // offer; the answer comes back in the ACK.
        send(request.dialog,
             SipMessage::make(SipResponse{200, request.dialog, request.cseq,
                                          makeOffer()}));
        state.ack_carries_answer = true;
      }
      return;
    }
    case Method::ack: {
      state.awaiting_ack = false;
      if (state.ack_carries_answer && request.body) {
        completedNegotiation(*request.body);
        state.ack_carries_answer = false;
      }
      return;
    }
    case Method::bye: {
      send(request.dialog, SipMessage::make(SipResponse{
                               200, request.dialog, request.cseq, std::nullopt}));
      return;
    }
  }
}

void SipUa::handleResponse(const SipResponse& response) {
  DialogState& state = dialogs_[response.dialog];
  if (!state.uac_pending || response.cseq != state.uac_cseq) return;
  if (response.status == 200) {
    state.uac_pending = false;
    // ACK completes the transaction; with an offerful INVITE the answer is
    // in this 200.
    send(response.dialog,
         SipMessage::make(SipRequest{Method::ack, response.dialog,
                                     response.cseq, std::nullopt}));
    if (response.body) completedNegotiation(*response.body);
    return;
  }
  if (response.status == 491) {
    // Our INVITE lost a glare: acknowledge, back off a random period, retry.
    state.uac_pending = false;
    send(response.dialog,
         SipMessage::make(SipRequest{Method::ack, response.dialog,
                                     response.cseq, std::nullopt}));
    const auto spread = static_cast<double>((retryMax - retryMin).count());
    const SimDuration d = retryMin + SimDuration{static_cast<SimDuration::rep>(
                                         spread * rng().uniform01())};
    const std::uint64_t dialog = response.dialog;
    setDelay(d, [this, dialog]() { reinvite(dialog); });
  }
}

}  // namespace cmc::sip
