// SipUa: a SIP user agent (media endpoint) with transactional invite
// handling, offer/answer, glare backoff, and 3pcc participation.
#pragma once

#include <map>
#include <optional>

#include "sip/network.hpp"

namespace cmc::sip {

class SipUa : public SipParty {
 public:
  SipUa(std::string name, SipNetwork& network, MediaAddress addr,
        std::vector<Codec> codecs)
      : SipParty(std::move(name), network),
        addr_(addr),
        codecs_(std::move(codecs)) {
    network.registerParty(*this);
  }

  // Start a re-INVITE with a fresh offer on the dialog (retries after glare
  // until it succeeds).
  void reinvite(std::uint64_t dialog);

  void onMessage(const SipMessage& message) override;

  // When this endpoint last completed an offer/answer exchange that enables
  // real media (noMedia dummy answers do not count).
  [[nodiscard]] std::optional<SimTime> mediaReadyAt() const noexcept {
    return media_ready_at_;
  }
  [[nodiscard]] int negotiationsCompleted() const noexcept {
    return negotiations_;
  }
  [[nodiscard]] int glaresSeen() const noexcept { return glares_; }

  // Glare backoff: uniform in [min, max]; paper assumes E[d] = 3 s.
  SimDuration retryMin{2'100'000};
  SimDuration retryMax{3'900'000};

 private:
  struct DialogState {
    std::uint32_t cseq_out = 0;
    // UAC: our pending INVITE, if any.
    bool uac_pending = false;
    std::uint32_t uac_cseq = 0;
    bool uac_sent_offer = false;
    // UAS: their INVITE we have answered with 200, awaiting ACK.
    bool awaiting_ack = false;
    bool ack_carries_answer = false;  // our 200 carried an offer
  };

  [[nodiscard]] Sdp makeOffer() const;
  [[nodiscard]] Sdp makeAnswer(const Sdp& offer) const;
  void completedNegotiation(const Sdp& remote_sdp);
  void handleRequest(const SipRequest& request);
  void handleResponse(const SipResponse& response);

  MediaAddress addr_;
  std::vector<Codec> codecs_;
  std::map<std::uint64_t, DialogState> dialogs_;
  std::optional<SimTime> media_ready_at_;
  int negotiations_ = 0;
  int glares_ = 0;
};

}  // namespace cmc::sip
