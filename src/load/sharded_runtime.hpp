// ShardedRuntime: many independent calls, N worker shards, one rollup.
//
// The paper's control model composes per-call signaling paths that share
// nothing but box code; a media server that handles millions of users is
// "just" very many such paths in flight at once. This runtime exploits that
// independence directly: the generated call set is partitioned across N
// shards by call id, and each shard runs its own EventLoop + Simulator +
// TraceRecorder + MetricsRegistry + ConvergenceProbes on its own thread.
// There is no cross-shard synchronization on the hot path — no shared
// locks, no shared clocks, no shared Rng. Shards interact exactly once,
// at the end, when the main thread merges per-shard artifacts (in shard
// index order, so the rollup is deterministic).
//
// Determinism contract (tested by tests/load_test.cpp):
//
//   Same WorkloadSpec ⇒ same per-call outcomes and same additive metrics
//   rollup, for ANY shard count.
//
// What makes that hold:
//   * every call's randomness comes from its own seed (WorkloadGenerator),
//     never from shard-shared state;
//   * the default timing model has zero network jitter, so the simulator's
//     latency stream consumes no Rng (nonzero jitter_stddev voids the
//     cross-shard-count guarantee — each shard draws from its own stream);
//   * per-call fault plans are routed by box name (PerCallFaultRouter) with
//     a workload-wide activity horizon;
//   * observability is installed per shard thread via the thread-local
//     overrides (obs::setThreadRecorder / setThreadMetrics /
//     setThreadFlightRecorder), so shards never write into each other's
//     artifacts, and a probe blowing its deadline on shard k dumps shard
//     k's flight recorder;
//   * gauges are excluded from the rollup (MetricsRegistry::
//     mergeAdditiveFrom): instantaneous shard-local values like queue depth
//     legitimately differ with shard count.
//
// Call lifecycle inside a shard (all in the shard's virtual time):
//   arrival            spawn boxes, dial, arm "call_setup" probe
//   + setup_grace+hold final probe check, disarm, caller hangs up
//   + teardown_grace   leak audit: every box back to 0 slots / 0 goals
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "load/live_telemetry.hpp"
#include "load/workload.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/timing.hpp"
#include "util/time.hpp"

namespace cmc::load {

struct LoadConfig {
  std::size_t shards = 1;
  TimingModel timing = TimingModel::paperDefaults();
  // Virtual time granted between arrival and caller hang-up, on top of the
  // call's own hold time; generous enough for any clean path to quiesce.
  SimDuration setup_grace{3'000'000};
  // Virtual time between hang-up and the leak audit (covers teardown
  // propagation across the path).
  SimDuration teardown_grace{1'000'000};
  // Per-call watchdog: fail a call's setup probe if its rest state is not
  // reached within this many µs of arrival (0 = no watchdog).
  std::int64_t setup_deadline_us = 0;
  // Capture per-shard trace rings (needed by the conformance and property
  // suites; off for pure throughput runs).
  bool capture_traces = false;
  std::size_t trace_capacity = 1 << 15;
  // Install a per-shard flight recorder dumping into this directory on
  // probe timeouts ("" = no flight recorder). Also used by the live
  // telemetry hub for SLO-breach and on-demand dumps.
  std::string flight_dir;

  // ------------------------------------------------- live telemetry plane
  // All optional and strictly read-only with respect to the run: enabling
  // any of it cannot change outcomes or the final rollup (tested).
  //
  // <0: no ops endpoint. 0: bind 127.0.0.1 on a free port (see opsPort()).
  // >0: bind that port. The endpoint is up from construction, so pollers
  // can connect before run() and watch the whole soak.
  int ops_port = -1;
  // Sampler period (wall-clock ms) and how many windows each series keeps.
  std::int64_t sample_ms = 250;
  std::size_t series_capacity = 240;
  // SLO watchdogs evaluated against each merged window.
  std::vector<obs::SloRule> slos;
  // Invoked after every sampler tick (sampler thread, no hub lock held).
  std::function<void(const TelemetryTick&)> on_sample;
  // Keep serving the drained run's state for this long at the end of run()
  // (gives out-of-process pollers a window to take their last reading).
  std::int64_t ops_linger_ms = 0;

  // ------------------------------------------------------ hot-path profiler
  // Install a per-shard ProfileTable on every worker thread. Purely
  // additive observability: the rollup and outcomes stay byte-identical
  // with profiling on or off (tested), only the profile tables differ.
  bool profile = false;
  // Write merged profile exports (profile.json / profile.collapsed /
  // profile.speedscope.json) into this directory after the run; non-empty
  // implies `profile`.
  std::string profile_dir;
};

// What happened to one call.
struct CallOutcome {
  CallSpec spec;
  std::size_t shard = 0;
  bool converged = false;       // reached its §V rest state before hang-up
  bool clean_teardown = false;  // leak audit passed after hang-up
  std::int64_t setup_latency_us = -1;  // arrival → rest state (-1 if never)
  std::uint64_t faults_injected = 0;   // drops+dups+reorders on this call
};

struct ShardStats {
  std::size_t calls = 0;
  std::uint64_t events_executed = 0;
  std::size_t peak_pending = 0;
  std::uint64_t signals_delivered = 0;
  std::size_t probes_converged = 0;
  std::size_t probes_failed = 0;
  std::vector<std::string> failed_probes;  // call probe names, arrival order
  std::uint64_t flight_dumps = 0;
  std::uint64_t trace_dropped = 0;  // ring overflow (capture_traces runs)
  std::int64_t thread_wall_ns = 0;  // this shard thread's own lifetime
};

class ShardedRuntime {
 public:
  explicit ShardedRuntime(LoadConfig config = {});
  ~ShardedRuntime();

  ShardedRuntime(const ShardedRuntime&) = delete;
  ShardedRuntime& operator=(const ShardedRuntime&) = delete;

  // Generate the workload's call set and run it to completion (blocking;
  // spawns config.shards worker threads). A runtime runs once; construct a
  // fresh one per experiment.
  void run(const WorkloadSpec& workload);
  // Run an explicit call set (callers that pre-filter or hand-build calls).
  // `workload` still supplies the fault shape and fraction. The fault
  // horizon is computed over `calls` — correct when they ARE the whole
  // workload.
  void run(const std::vector<CallSpec>& calls, const WorkloadSpec& workload);
  // Run a slice of a larger workload under an explicit fault horizon. A
  // distributed worker executing only its share of the calls must pass the
  // horizon of the FULL call set (load::faultHorizon over every generated
  // call), or refresh-tick lifetimes — and with them the rollup — would
  // depend on which worker drew the last faulty call.
  void run(const std::vector<CallSpec>& calls, const WorkloadSpec& workload,
           SimTime fault_horizon);

  // ---------------------------------------------------------------- results
  // Outcomes of every call, sorted by call id (shard-order independent).
  [[nodiscard]] const std::vector<CallOutcome>& outcomes() const noexcept {
    return outcomes_;
  }
  [[nodiscard]] std::size_t convergedCount() const noexcept;
  [[nodiscard]] std::size_t cleanTeardownCount() const noexcept;

  // Additive rollup of every shard's registry (counters + histograms; see
  // determinism contract above for why gauges stay per-shard). The probe
  // latency histograms are folded in as "load.call_setup_us".
  [[nodiscard]] const obs::MetricsRegistry& metrics() const noexcept {
    return rollup_;
  }
  [[nodiscard]] std::string metricsJson() const { return rollup_.json(); }

  // Arrival → rest-state latency across all shards (µs).
  [[nodiscard]] const obs::Histogram& setupLatency() const noexcept {
    return setup_latency_;
  }

  [[nodiscard]] const std::vector<ShardStats>& shardStats() const noexcept {
    return shard_stats_;
  }
  [[nodiscard]] std::uint64_t signalsDelivered() const noexcept;
  [[nodiscard]] std::size_t probeFailures() const noexcept;

  // Captured trace events per shard (empty unless config.capture_traces).
  [[nodiscard]] const std::vector<std::vector<obs::TraceEvent>>& shardTraces()
      const noexcept {
    return shard_traces_;
  }

  // Wall-clock seconds the worker threads ran (throughput denominator).
  [[nodiscard]] double wallSeconds() const noexcept { return wall_seconds_; }

  // Sum of every worker thread's own lifetime in nanoseconds. When shards
  // outnumber cores the threads time-slice and finish staggered, so
  // wallSeconds() * shards overcounts the window before a thread starts or
  // after it exits; this is the honest denominator for profile coverage.
  [[nodiscard]] std::int64_t threadWallNs() const noexcept;

  // Merged hot-path profile (empty unless config.profile). Per-shard tables
  // merge in shard-index order — the same rank-order discipline as the
  // metrics rollup — so the report is deterministic in structure (timings
  // are wall-clock measurements and naturally vary run to run).
  [[nodiscard]] bool profiled() const noexcept { return config_.profile; }
  [[nodiscard]] const obs::ProfileReport& profileReport() const noexcept {
    return profile_report_;
  }

  [[nodiscard]] const LoadConfig& config() const noexcept { return config_; }

  // Live telemetry hub (nullptr unless the config enabled any of it). The
  // ops port is bound at construction — before run() — so callers can hand
  // it to pollers up front.
  [[nodiscard]] LiveTelemetry* telemetry() noexcept { return live_.get(); }
  [[nodiscard]] const LiveTelemetry* telemetry() const noexcept {
    return live_.get();
  }
  [[nodiscard]] std::uint16_t opsPort() const noexcept {
    return live_ != nullptr ? live_->port() : 0;
  }

 private:
  struct ShardState;

  void runShard(ShardState& shard, const WorkloadSpec& workload,
                SimTime fault_horizon);

  LoadConfig config_;
  std::unique_ptr<LiveTelemetry> live_;
  bool ran_ = false;
  std::vector<CallOutcome> outcomes_;
  std::vector<ShardStats> shard_stats_;
  std::vector<std::vector<obs::TraceEvent>> shard_traces_;
  obs::MetricsRegistry rollup_;
  obs::Histogram setup_latency_;
  std::vector<std::unique_ptr<obs::ProfileTable>> shard_profiles_;
  obs::ProfileReport profile_report_;
  double wall_seconds_ = 0.0;
};

}  // namespace cmc::load
