// DistWorker: one rank of a distributed load run.
//
// A worker dials the driver, introduces itself (HELLO), receives the full
// WorkloadSpec plus run shape (SPEC), acknowledges with the spec hash it
// recomputed (SPEC_ACK), and on START regenerates the ENTIRE call set from
// the spec — WorkloadGenerator is a pure function — computes the
// workload-wide fault horizon over all calls, and runs only the slice
// id % worker_count == rank on a local ShardedRuntime. The rollup snapshot,
// placement-free outcomes, and summary stats go back as one ROLLUP frame;
// SHUTDOWN ends the conversation.
//
// Regenerating instead of shipping call lists keeps the SPEC frame O(1) in
// workload size and makes it structurally impossible for the driver to
// hand two workers inconsistent call sets: the only thing that can differ
// is the spec itself, and that is what the hash handshake pins.
//
// The same class backs the cmc_load_worker executable and the in-process
// worker threads of tests/dist_test.cpp — the protocol surface is
// identical either way.
#pragma once

#include <cstdint>
#include <string>

namespace cmc::load::dist {

struct WorkerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;      // driver's listen port
  std::uint32_t rank = 0;
  // Bounds every read from the driver. Generous by default: while this
  // worker waits for SHUTDOWN the driver is legitimately waiting on the
  // slowest sibling's ROLLUP.
  std::int64_t io_timeout_ms = 120'000;
};

class DistWorker {
 public:
  explicit DistWorker(WorkerConfig config) : config_(std::move(config)) {}

  // Run the whole conversation. Returns 0 after a clean SHUTDOWN, 1 on any
  // failure (error() says what happened). Failures the worker itself
  // detects — spec-hash mismatch, a shard throwing — are also reported to
  // the driver as an ERROR frame before giving up.
  [[nodiscard]] int run();

  [[nodiscard]] const std::string& error() const noexcept { return error_; }

 private:
  WorkerConfig config_;
  std::string error_;
};

}  // namespace cmc::load::dist
