#include "load/dist/driver.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <thread>

#include "net/framed_rpc.hpp"
#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace cmc::load::dist {

namespace {

using Clock = std::chrono::steady_clock;

// Per-iteration receive timeout of every link read loop: short enough that
// an abort or phase flip is observed promptly, long enough to stay off the
// scheduler's back.
constexpr std::int64_t kPollMs = 100;

std::string joinRanks(const std::vector<std::uint32_t>& ranks) {
  std::string out;
  for (std::uint32_t rank : ranks) {
    if (!out.empty()) out += ",";
    out += std::to_string(rank);
  }
  return out;
}

}  // namespace

struct DistDriver::Impl {
  // Driver-side state of one accepted connection. A link has no identity
  // until its HELLO claims an unclaimed rank; hostile or confused
  // connections are dropped without ever becoming a rank.
  struct Link {
    std::unique_ptr<net::FramedConn> conn;
    std::thread thread;
    std::uint32_t rank = 0;
    bool has_rank = false;
  };

  enum Phase { gather = 0, pushSpec = 1, started = 2, shutdown = 3 };

  DriverConfig config;
  int listen_fd = -1;
  std::uint16_t port = 0;
  bool ran = false;

  std::thread acceptor;
  std::mutex mutex;
  std::condition_variable cv;
  Phase phase = gather;
  bool aborted = false;
  std::string fatal_error;
  std::vector<bool> claimed;
  std::size_t acks = 0;
  std::size_t rollups_in = 0;
  std::vector<WorkerReport> reports;            // rank-indexed
  std::vector<Rollup> rollups;                  // rank-indexed
  std::vector<bool> have_rollup;                // rank-indexed
  std::vector<std::vector<std::uint8_t>> spec_frames;  // rank-indexed
  std::vector<std::unique_ptr<Link>> links;
  std::vector<pid_t> children;

  explicit Impl(DriverConfig cfg) : config(std::move(cfg)) {
    if (config.workers == 0) config.workers = 1;
    if (config.shards == 0) config.shards = 1;
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0) return;
    int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(config.port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
            0 ||
        ::listen(listen_fd, 16) != 0) {
      ::close(listen_fd);
      listen_fd = -1;
      return;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) ==
        0) {
      port = ntohs(addr.sin_port);
    }
  }

  ~Impl() {
    if (listen_fd >= 0) {
      ::shutdown(listen_fd, SHUT_RDWR);
      ::close(listen_fd);
      listen_fd = -1;
    }
    if (acceptor.joinable()) acceptor.join();
    for (auto& link : links) {
      if (link->conn) link->conn->close();
      if (link->thread.joinable()) link->thread.join();
    }
  }

  // First fatal failure wins; wakes every waiter. Callers hold no lock.
  void abort(std::string why) {
    std::lock_guard<std::mutex> lock(mutex);
    if (!aborted) {
      aborted = true;
      fatal_error = std::move(why);
    }
    cv.notify_all();
  }

  [[nodiscard]] bool allClaimed() const {
    return std::all_of(claimed.begin(), claimed.end(),
                       [](bool c) { return c; });
  }

  void acceptLoop() {
    while (true) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) break;  // listener closed by cleanup
      auto link = std::make_unique<Link>();
      link->conn = std::make_unique<net::FramedConn>(fd);
      link->conn->setRecvTimeoutMs(kPollMs);
      Link* raw = link.get();
      link->thread = std::thread([this, raw]() { serveLink(*raw); });
      std::lock_guard<std::mutex> lock(mutex);
      links.push_back(std::move(link));
    }
  }

  // Reject a pre-rank connection: explain, then hang up. Not fatal to the
  // run — the listener keeps waiting for the real workers.
  void dropLink(Link& link, const std::string& why) {
    link.conn->sendFrame(encodeErrorMsg(why));
    link.conn->close();
  }

  // A ranked link failed in a way that poisons the whole run.
  void failLink(Link& link, std::string why) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (link.has_rank) reports[link.rank].error = why;
    }
    abort(std::move(why));
    link.conn->close();
  }

  void serveLink(Link& link) {
    // ---------------------------------------------------------- gather
    const auto hello_deadline =
        Clock::now() + std::chrono::milliseconds(config.hello_timeout_ms);
    while (true) {
      auto frame = link.conn->readFrame();
      if (!frame) {
        switch (link.conn->lastRead()) {
          case net::FramedConn::ReadStatus::timeout: {
            std::lock_guard<std::mutex> lock(mutex);
            if (aborted || phase == shutdown) return;
            break;
          }
          default:
            // EOF before HELLO, or a hostile length header poisoned the
            // stream: this connection was never a worker. Drop it; the
            // listener and every real link keep going.
            link.conn->close();
            return;
        }
        if (Clock::now() > hello_deadline) return;
        continue;
      }
      if (peekVerb(*frame) != Verb::hello) {
        return dropLink(link, "expected HELLO");
      }
      auto hello = parseHello(*frame);
      if (!hello) return dropLink(link, "malformed HELLO");
      if (hello->version != kVersion) {
        return dropLink(link, "unsupported protocol version " +
                                  std::to_string(hello->version) +
                                  " (driver speaks " +
                                  std::to_string(kVersion) + ")");
      }
      if (hello->rank >= config.workers) {
        return dropLink(link, "rank " + std::to_string(hello->rank) +
                                  " out of range (fleet of " +
                                  std::to_string(config.workers) + ")");
      }
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (claimed[hello->rank]) {
          // Unlocked dropLink below; the claim check itself stays atomic.
        } else {
          claimed[hello->rank] = true;
          reports[hello->rank].connected = true;
          link.rank = hello->rank;
          link.has_rank = true;
        }
      }
      if (!link.has_rank) {
        return dropLink(link,
                        "duplicate HELLO for rank " + std::to_string(hello->rank));
      }
      cv.notify_all();
      break;
    }

    // ------------------------------------------------------------- spec
    {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [this]() { return phase != gather || aborted; });
      if (aborted || phase == shutdown) {
        lock.unlock();
        link.conn->sendFrame(encodeShutdown());
        return;
      }
    }
    if (!link.conn->sendFrame(spec_frames[link.rank])) {
      return failLink(link, "rank " + std::to_string(link.rank) +
                                " died during SPEC push");
    }
    const auto ack_deadline =
        Clock::now() + std::chrono::milliseconds(config.ack_timeout_ms);
    while (true) {
      auto frame = link.conn->readFrame();
      if (!frame) {
        if (link.conn->lastRead() == net::FramedConn::ReadStatus::timeout) {
          {
            std::lock_guard<std::mutex> lock(mutex);
            if (aborted) {
              link.conn->sendFrame(encodeShutdown());
              return;
            }
          }
          if (Clock::now() > ack_deadline) {
            return failLink(link, "rank " + std::to_string(link.rank) +
                                      " never acknowledged SPEC");
          }
          continue;
        }
        return failLink(link, "rank " + std::to_string(link.rank) +
                                  " died awaiting SPEC_ACK");
      }
      if (auto verb = peekVerb(*frame); verb == Verb::error) {
        auto message = parseErrorMsg(*frame);
        return failLink(link, "rank " + std::to_string(link.rank) +
                                  " reported: " +
                                  (message ? *message : "unparseable error"));
      } else if (verb != Verb::specAck) {
        return failLink(link, "rank " + std::to_string(link.rank) +
                                  " broke protocol (expected SPEC_ACK)");
      }
      auto ack = parseSpecAck(*frame);
      if (!ack || ack->rank != link.rank) {
        return failLink(link, "rank " + std::to_string(link.rank) +
                                  " sent malformed SPEC_ACK");
      }
      // The worker hashed the blob bytes it received; both sides serialize
      // identically, so any divergence means the fleet would not be running
      // one workload. Abort rather than merge apples and oranges.
      if (ack->spec_hash != spec_hash_) {
        return failLink(link, "rank " + std::to_string(link.rank) +
                                  " acknowledged a different spec hash");
      }
      {
        std::lock_guard<std::mutex> lock(mutex);
        reports[link.rank].acked = true;
        ++acks;
      }
      cv.notify_all();
      break;
    }

    // ------------------------------------------------------------ start
    {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [this]() { return phase >= started || aborted; });
      if (aborted || phase == shutdown) {
        lock.unlock();
        link.conn->sendFrame(encodeShutdown());
        return;
      }
    }
    if (!link.conn->sendFrame(encodeStart())) {
      return failLink(link, "rank " + std::to_string(link.rank) +
                                " died during START push");
    }

    // ---------------------------------------------------------- collect
    const auto rollup_deadline =
        Clock::now() + std::chrono::milliseconds(config.rollup_timeout_ms);
    while (true) {
      auto frame = link.conn->readFrame();
      if (!frame) {
        if (link.conn->lastRead() == net::FramedConn::ReadStatus::timeout) {
          {
            std::lock_guard<std::mutex> lock(mutex);
            if (aborted) {
              link.conn->sendFrame(encodeShutdown());
              return;
            }
          }
          if (Clock::now() > rollup_deadline) {
            return failLink(link, "rank " + std::to_string(link.rank) +
                                      " ROLLUP timed out");
          }
          continue;
        }
        return failLink(link, "rank " + std::to_string(link.rank) +
                                  " died after START (no ROLLUP)");
      }
      const auto verb = peekVerb(*frame);
      if (verb == Verb::progress) {
        auto progress = parseProgress(*frame);
        if (!progress || progress->rank != link.rank) {
          return failLink(link, "rank " + std::to_string(link.rank) +
                                    " sent malformed PROGRESS");
        }
        {
          std::lock_guard<std::mutex> lock(mutex);
          ++reports[link.rank].progress_frames;
        }
        if (config.on_progress) config.on_progress(*progress);
        continue;
      }
      if (verb == Verb::error) {
        auto message = parseErrorMsg(*frame);
        return failLink(link, "rank " + std::to_string(link.rank) +
                                  " reported: " +
                                  (message ? *message : "unparseable error"));
      }
      if (verb != Verb::rollup) {
        return failLink(link, "rank " + std::to_string(link.rank) +
                                  " broke protocol (expected ROLLUP)");
      }
      auto rollup = parseRollup(*frame);
      if (!rollup || rollup->rank != link.rank ||
          rollup->spec_hash != spec_hash_) {
        return failLink(link, "rank " + std::to_string(link.rank) +
                                  " sent malformed ROLLUP");
      }
      {
        std::lock_guard<std::mutex> lock(mutex);
        reports[link.rank].rolled_up = true;
        reports[link.rank].calls = rollup->outcomes.size();
        reports[link.rank].wall_seconds = rollup->wall_seconds;
        rollups[link.rank] = std::move(*rollup);
        have_rollup[link.rank] = true;
        ++rollups_in;
      }
      cv.notify_all();
      break;
    }

    // --------------------------------------------------------- shutdown
    {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [this]() { return phase == shutdown; });
    }
    link.conn->sendFrame(encodeShutdown());
    link.conn->close();
  }

  void spawnChildren() {
    for (std::size_t rank = 0; rank < config.workers; ++rank) {
      const std::string port_arg = std::to_string(port);
      const std::string rank_arg = std::to_string(rank);
      const pid_t pid = ::fork();
      if (pid == 0) {
        ::execl(config.worker_binary.c_str(), config.worker_binary.c_str(),
                "--port", port_arg.c_str(), "--rank", rank_arg.c_str(),
                static_cast<char*>(nullptr));
        _exit(127);  // exec failed; the driver sees a missing HELLO
      }
      if (pid > 0) children.push_back(pid);
    }
  }

  void reapChildren() {
    for (pid_t pid : children) {
      int status = 0;
      bool reaped = false;
      for (int i = 0; i < 150 && !reaped; ++i) {  // ~3s of grace
        if (::waitpid(pid, &status, WNOHANG) == pid) {
          reaped = true;
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      if (!reaped) {
        ::kill(pid, SIGKILL);
        ::waitpid(pid, &status, 0);
      }
    }
    children.clear();
  }

  DistResult run(const WorkloadSpec& workload) {
    DistResult result;
    result.workers.resize(config.workers);
    for (std::size_t rank = 0; rank < config.workers; ++rank) {
      result.workers[rank].rank = static_cast<std::uint32_t>(rank);
    }
    if (listen_fd < 0) {
      result.error = "driver listener failed to bind";
      return result;
    }
    if (ran) {
      result.error = "DistDriver::run may only be called once";
      return result;
    }
    ran = true;

    claimed.assign(config.workers, false);
    reports = result.workers;
    rollups.resize(config.workers);
    have_rollup.assign(config.workers, false);
    spec_frames.clear();
    for (std::size_t rank = 0; rank < config.workers; ++rank) {
      SpecAssignment spec;
      spec.workload = workload;
      spec.rank = static_cast<std::uint32_t>(rank);
      spec.worker_count = static_cast<std::uint32_t>(config.workers);
      spec.shards = static_cast<std::uint32_t>(config.shards);
      spec.setup_grace_us = config.setup_grace_us;
      spec.teardown_grace_us = config.teardown_grace_us;
      spec.setup_deadline_us = config.setup_deadline_us;
      spec.progress_ms = config.progress_ms;
      spec_frames.push_back(encodeSpec(spec));
    }
    spec_hash_ = workloadHash(workload);

    const auto wall_start = Clock::now();
    acceptor = std::thread([this]() { acceptLoop(); });
    if (!config.worker_binary.empty()) spawnChildren();

    // gather → spec
    {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait_until(lock,
                    wall_start +
                        std::chrono::milliseconds(config.hello_timeout_ms),
                    [this]() { return aborted || allClaimed(); });
      if (!aborted && !allClaimed()) {
        std::vector<std::uint32_t> missing;
        for (std::size_t rank = 0; rank < claimed.size(); ++rank) {
          if (!claimed[rank]) {
            missing.push_back(static_cast<std::uint32_t>(rank));
            reports[rank].error = "never sent HELLO";
          }
        }
        aborted = true;
        fatal_error = "worker rank(s) " + joinRanks(missing) +
                      " never sent HELLO within " +
                      std::to_string(config.hello_timeout_ms) + "ms";
      }
      if (!aborted) {
        phase = pushSpec;
      }
      cv.notify_all();
    }

    // spec → start (link threads enforce the per-rank ack deadline; the
    // slack here only catches a link thread dying without attribution)
    if (!isAborted()) {
      std::unique_lock<std::mutex> lock(mutex);
      const auto deadline =
          Clock::now() +
          std::chrono::milliseconds(config.ack_timeout_ms + 10'000);
      cv.wait_until(lock, deadline, [this]() {
        return aborted || acks == config.workers;
      });
      if (!aborted && acks != config.workers) {
        aborted = true;
        fatal_error = "SPEC_ACK phase stalled";
      }
      if (!aborted) {
        phase = started;
      }
      cv.notify_all();
    }

    // start → all rollups in
    if (!isAborted()) {
      std::unique_lock<std::mutex> lock(mutex);
      const auto deadline =
          Clock::now() +
          std::chrono::milliseconds(config.rollup_timeout_ms + 10'000);
      cv.wait_until(lock, deadline, [this]() {
        return aborted || rollups_in == config.workers;
      });
      if (!aborted && rollups_in != config.workers) {
        aborted = true;
        fatal_error = "ROLLUP phase stalled";
      }
      cv.notify_all();
    }

    // shutdown: always reached, success or abort — links send SHUTDOWN on
    // their way out, so real workers exit instead of timing out.
    {
      std::lock_guard<std::mutex> lock(mutex);
      phase = shutdown;
      cv.notify_all();
    }

    // Stop accepting, then join every link.
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
    listen_fd = -1;
    if (acceptor.joinable()) acceptor.join();
    std::vector<std::unique_ptr<Link>> finished;
    {
      std::lock_guard<std::mutex> lock(mutex);
      finished.swap(links);
    }
    for (auto& link : finished) {
      if (link->thread.joinable()) link->thread.join();
      if (link->conn) link->conn->close();
    }
    reapChildren();
    result.wall_seconds =
        std::chrono::duration<double>(Clock::now() - wall_start).count();

    // ------------------------------------------------------------- merge
    // Rank order, success or not: on failure the partial artifacts plus
    // per-rank attribution are the post-mortem.
    obs::MetricsRegistry merged_registry;
    obs::MetricsSnapshot merged_snapshot;
    for (std::size_t rank = 0; rank < config.workers; ++rank) {
      if (!have_rollup[rank]) continue;
      rollups[rank].rollup.applyTo(merged_registry);
      merged_snapshot.mergeFrom(rollups[rank].rollup);
      result.signals_delivered += rollups[rank].signals_delivered;
      for (const DistOutcome& outcome : rollups[rank].outcomes) {
        result.outcomes.push_back(outcome);
      }
    }
    std::sort(result.outcomes.begin(), result.outcomes.end(),
              [](const DistOutcome& a, const DistOutcome& b) {
                return a.id < b.id;
              });
    result.rollup_json = merged_registry.json();
    result.outcome_digest = digestOutcomes(result.outcomes);
    for (const DistOutcome& outcome : result.outcomes) {
      if (outcome.converged) ++result.converged;
      if (outcome.clean_teardown) ++result.clean_teardowns;
    }
    if (const auto* h = merged_snapshot.histogram("load.call_setup_us")) {
      result.setup_p50_us = h->quantile(0.50);
      result.setup_p99_us = h->quantile(0.99);
    }
    result.workers = reports;

    std::string error;
    {
      std::lock_guard<std::mutex> lock(mutex);
      error = fatal_error;
    }
    if (error.empty()) {
      // Coverage audit: ids must be exactly 0..calls-1 — a worker slicing
      // wrong (or a duplicated outcome) can never masquerade as success.
      if (result.outcomes.size() != workload.calls) {
        error = "merged outcomes cover " +
                std::to_string(result.outcomes.size()) + " of " +
                std::to_string(workload.calls) + " calls";
      } else {
        for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
          if (result.outcomes[i].id != i) {
            error = "merged outcomes misnumbered at index " +
                    std::to_string(i);
            break;
          }
        }
      }
    }
    result.error = error;
    result.ok = error.empty();
    return result;
  }

  [[nodiscard]] bool isAborted() {
    std::lock_guard<std::mutex> lock(mutex);
    return aborted;
  }

  std::uint64_t spec_hash_ = 0;
};

DistDriver::DistDriver(DriverConfig config)
    : impl_(std::make_unique<Impl>(std::move(config))) {}

DistDriver::~DistDriver() = default;

bool DistDriver::ok() const noexcept { return impl_->listen_fd >= 0 || impl_->ran; }

std::uint16_t DistDriver::port() const noexcept { return impl_->port; }

DistResult DistDriver::run(const WorkloadSpec& workload) {
  return impl_->run(workload);
}

std::string findWorkerBinary() {
  if (const char* env = std::getenv("CMC_LOAD_WORKER")) {
    std::error_code ec;
    if (std::filesystem::exists(env, ec)) return env;
  }
  std::error_code ec;
  const auto self = std::filesystem::read_symlink("/proc/self/exe", ec);
  if (ec) return {};
  const auto dir = self.parent_path();
  const std::filesystem::path candidates[] = {
      dir / "cmc_load_worker",
      dir.parent_path() / "examples" / "cmc_load_worker",
  };
  for (const auto& candidate : candidates) {
    if (std::filesystem::exists(candidate, ec)) return candidate.string();
  }
  return {};
}

}  // namespace cmc::load::dist
