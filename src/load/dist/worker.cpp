#include "load/dist/worker.hpp"

#include <memory>
#include <utility>
#include <vector>

#include "load/dist/protocol.hpp"
#include "load/sharded_runtime.hpp"
#include "net/framed_rpc.hpp"

namespace cmc::load::dist {

namespace {

std::string describeRead(net::FramedConn::ReadStatus status) {
  switch (status) {
    case net::FramedConn::ReadStatus::timeout:
      return "timed out waiting for driver";
    case net::FramedConn::ReadStatus::poisoned:
      return "driver stream lost framing sync";
    default:
      return "driver closed the connection";
  }
}

}  // namespace

int DistWorker::run() {
  auto conn =
      net::FramedConn::connect(config_.host, config_.port, config_.io_timeout_ms);
  if (!conn) {
    error_ = "could not connect to driver at " + config_.host + ":" +
             std::to_string(config_.port);
    return 1;
  }
  auto fail = [this](std::string why) {
    error_ = std::move(why);
    return 1;
  };

  if (!conn->sendFrame(encodeHello(Hello{kMagic, kVersion, config_.rank}))) {
    return fail("could not send HELLO");
  }

  auto frame = conn->readFrame();
  if (!frame) return fail(describeRead(conn->lastRead()) + " (awaiting SPEC)");
  if (auto verb = peekVerb(*frame); verb == Verb::error) {
    auto message = parseErrorMsg(*frame);
    return fail("driver rejected HELLO: " +
                (message ? *message : std::string("unparseable error")));
  } else if (verb == Verb::shutdown) {
    return 0;  // driver aborted the run before this rank was needed
  }
  auto spec = parseSpec(*frame);
  if (!spec) return fail("malformed SPEC frame");
  if (spec->rank != config_.rank) {
    conn->sendFrame(encodeErrorMsg("SPEC addressed to wrong rank"));
    return fail("SPEC addressed to rank " + std::to_string(spec->rank));
  }
  // Echo the hash recomputed over the received blob bytes. A spec that was
  // corrupted in a parseable way diverges here, and the driver aborts the
  // fleet instead of merging rollups of two different workloads.
  const std::uint64_t local_hash = workloadHash(spec->workload);
  if (local_hash != spec->spec_hash) {
    conn->sendFrame(encodeErrorMsg("spec hash mismatch at rank " +
                                   std::to_string(config_.rank)));
    return fail("spec hash mismatch");
  }
  if (!conn->sendFrame(encodeSpecAck(SpecAck{config_.rank, local_hash}))) {
    return fail("could not send SPEC_ACK");
  }

  frame = conn->readFrame();
  if (!frame) return fail(describeRead(conn->lastRead()) + " (awaiting START)");
  if (peekVerb(*frame) == Verb::shutdown) return 0;  // fleet aborted pre-START
  if (peekVerb(*frame) != Verb::start) return fail("expected START");

  // The full call set and ITS horizon — then our slice of it. See header.
  const std::vector<CallSpec> all_calls =
      WorkloadGenerator(spec->workload).generate();
  const SimTime horizon = faultHorizon(all_calls, spec->workload);
  std::vector<CallSpec> slice;
  slice.reserve(all_calls.size() / spec->worker_count + 1);
  for (const CallSpec& call : all_calls) {
    if (call.id % spec->worker_count == config_.rank) slice.push_back(call);
  }

  LoadConfig load;
  load.shards = spec->shards;
  load.setup_grace = SimDuration{spec->setup_grace_us};
  load.teardown_grace = SimDuration{spec->teardown_grace_us};
  load.setup_deadline_us = spec->setup_deadline_us;
  ShardedRuntime* runtime_ptr = nullptr;  // bound before run() starts ticking
  if (spec->progress_ms > 0) {
    load.sample_ms = spec->progress_ms;
    // Streamed from the sampler thread while run() blocks below; sends are
    // serialized by FramedConn, so PROGRESS frames cannot tear the ROLLUP.
    load.on_sample = [this, &conn, &runtime_ptr](const TelemetryTick& tick) {
      if (runtime_ptr == nullptr || runtime_ptr->telemetry() == nullptr) return;
      Progress p;
      p.rank = config_.rank;
      p.tick = tick.index;
      // latestMerged() sees the snapshot this tick just pushed.
      p.snapshot = runtime_ptr->telemetry()->latestMerged();
      conn->sendFrame(encodeProgress(p));
    };
  }
  auto runtime = std::make_unique<ShardedRuntime>(load);
  runtime_ptr = runtime.get();
  try {
    runtime->run(slice, spec->workload, horizon);
  } catch (const std::exception& e) {
    conn->sendFrame(encodeErrorMsg("rank " + std::to_string(config_.rank) +
                                   " failed: " + e.what()));
    return fail(std::string("run failed: ") + e.what());
  }

  Rollup rollup;
  rollup.rank = config_.rank;
  rollup.spec_hash = local_hash;
  rollup.wall_seconds = runtime->wallSeconds();
  rollup.signals_delivered = runtime->signalsDelivered();
  rollup.probes_failed = runtime->probeFailures();
  rollup.outcomes.reserve(runtime->outcomes().size());
  for (const CallOutcome& outcome : runtime->outcomes()) {
    rollup.outcomes.push_back(toDistOutcome(outcome));
  }
  rollup.rollup = obs::MetricsSnapshot::capture(runtime->metrics());
  if (!conn->sendFrame(encodeRollup(rollup))) {
    return fail("could not send ROLLUP");
  }

  frame = conn->readFrame();
  if (!frame) {
    return fail(describeRead(conn->lastRead()) + " (awaiting SHUTDOWN)");
  }
  if (peekVerb(*frame) != Verb::shutdown) return fail("expected SHUTDOWN");
  return 0;
}

}  // namespace cmc::load::dist
