// Wire protocol of the distributed load plane (docs/LOAD.md §Distributed).
//
// One driver commands N worker processes over loopback framed TCP
// (net/framing.hpp raw frames; net/framed_rpc.hpp connections), in the
// daemon/worker RPC shape of Nix remote stores. Frame body = u8 verb +
// verb-specific payload (util/bytes.hpp encoding):
//
//   HELLO     worker → driver   magic, protocol version, rank
//   SPEC      driver → worker   full WorkloadSpec + run shape + spec hash
//   SPEC_ACK  worker → driver   rank + the hash the worker recomputed
//   START     driver → worker   begin executing the assigned slice
//   PROGRESS  worker → driver   rank, tick, merged MetricsSnapshot
//   ROLLUP    worker → driver   rank, hash, outcomes, rollup snapshot
//   SHUTDOWN  driver → worker   conversation over, exit cleanly
//   ERROR     either direction  human-readable failure, link is dead
//
// The determinism contract extends PR 5's: the driver sends every worker
// the SAME WorkloadSpec; each worker regenerates the full call set
// (WorkloadGenerator is a pure function), computes the workload-wide fault
// horizon over ALL calls, then executes only the slice id % workers ==
// rank. Rollups merge additively in rank order, so the merged result is
// byte-identical to a single-process run of the same spec at any
// worker × shard split. CallOutcome.shard is placement-dependent and is
// deliberately absent from DistOutcome and the outcome digest.
//
// Every parse here is strict: unknown verbs, truncated payloads, wrong
// magic, and trailing bytes all fail, and failures surface as explicit
// ERROR frames or dropped links — never as a hang (tests/dist_test.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "load/sharded_runtime.hpp"
#include "load/workload.hpp"
#include "obs/snapshot.hpp"
#include "util/bytes.hpp"

namespace cmc::load::dist {

inline constexpr std::uint32_t kMagic = 0x434d4344;  // "CMCD"
inline constexpr std::uint32_t kVersion = 1;

enum class Verb : std::uint8_t {
  hello = 1,
  spec = 2,
  specAck = 3,
  start = 4,
  progress = 5,
  rollup = 6,
  shutdown = 7,
  error = 8,
};

struct Hello {
  std::uint32_t magic = kMagic;
  std::uint32_t version = kVersion;
  std::uint32_t rank = 0;
};

// Everything a worker needs to run its slice. The workload travels as a
// serialized blob whose FNV-1a hash rides along; the worker recomputes the
// hash over the bytes it received and echoes it in SPEC_ACK, so a
// corrupted-but-parseable spec can never silently split the fleet across
// two different workloads.
struct SpecAssignment {
  WorkloadSpec workload;
  std::uint32_t rank = 0;
  std::uint32_t worker_count = 1;
  std::uint32_t shards = 1;  // per worker
  std::int64_t setup_grace_us = 3'000'000;
  std::int64_t teardown_grace_us = 1'000'000;
  std::int64_t setup_deadline_us = 0;
  std::int64_t progress_ms = 0;  // 0 = no PROGRESS stream
  std::uint64_t spec_hash = 0;   // filled by encodeSpec / parseSpec
};

struct SpecAck {
  std::uint32_t rank = 0;
  std::uint64_t spec_hash = 0;
};

struct Progress {
  std::uint32_t rank = 0;
  std::uint64_t tick = 0;
  obs::MetricsSnapshot snapshot;
};

// A CallOutcome minus its placement: `shard` differs across worker × shard
// splits by construction, so it must not enter the cross-process digest.
struct DistOutcome {
  std::uint64_t id = 0;
  bool converged = false;
  bool clean_teardown = false;
  std::int64_t setup_latency_us = -1;
  std::uint64_t faults_injected = 0;
};

struct Rollup {
  std::uint32_t rank = 0;
  std::uint64_t spec_hash = 0;
  double wall_seconds = 0.0;
  std::uint64_t signals_delivered = 0;
  std::uint64_t probes_failed = 0;
  std::vector<DistOutcome> outcomes;   // this worker's slice, id order
  obs::MetricsSnapshot rollup;         // additive: counters + histograms
};

// encode* return a complete frame body (verb byte first), ready for
// FramedConn::sendFrame.
[[nodiscard]] std::vector<std::uint8_t> encodeHello(const Hello& hello);
[[nodiscard]] std::vector<std::uint8_t> encodeSpec(const SpecAssignment& spec);
[[nodiscard]] std::vector<std::uint8_t> encodeSpecAck(const SpecAck& ack);
[[nodiscard]] std::vector<std::uint8_t> encodeStart();
[[nodiscard]] std::vector<std::uint8_t> encodeProgress(const Progress& p);
[[nodiscard]] std::vector<std::uint8_t> encodeRollup(const Rollup& rollup);
[[nodiscard]] std::vector<std::uint8_t> encodeShutdown();
[[nodiscard]] std::vector<std::uint8_t> encodeErrorMsg(
    const std::string& message);

// Verb of a frame body; nullopt for an empty body or a value outside the
// verb table.
[[nodiscard]] std::optional<Verb> peekVerb(
    const std::vector<std::uint8_t>& body);

// parse* take the whole frame body (verb byte included) and return nullopt
// on wrong verb, truncation, bad magic, or trailing bytes. parseSpec
// additionally recomputes the hash of the received workload blob into
// SpecAssignment::spec_hash — callers compare it against what they expect.
[[nodiscard]] std::optional<Hello> parseHello(
    const std::vector<std::uint8_t>& body);
[[nodiscard]] std::optional<SpecAssignment> parseSpec(
    const std::vector<std::uint8_t>& body);
[[nodiscard]] std::optional<SpecAck> parseSpecAck(
    const std::vector<std::uint8_t>& body);
[[nodiscard]] std::optional<Progress> parseProgress(
    const std::vector<std::uint8_t>& body);
[[nodiscard]] std::optional<Rollup> parseRollup(
    const std::vector<std::uint8_t>& body);
[[nodiscard]] std::optional<std::string> parseErrorMsg(
    const std::vector<std::uint8_t>& body);

// WorkloadSpec wire form (doubles as IEEE-754 bit patterns, durations in
// integer µs) and its canonical hash: FNV-1a over the serialized bytes.
void serializeWorkload(const WorkloadSpec& spec, ByteWriter& out);
[[nodiscard]] std::optional<WorkloadSpec> deserializeWorkload(ByteReader& in);
[[nodiscard]] std::uint64_t workloadHash(const WorkloadSpec& spec);

[[nodiscard]] DistOutcome toDistOutcome(const CallOutcome& outcome);
// FNV-1a over the placement-free fields of every outcome, in the order
// given. Callers sort by id first; then the digest is split-invariant.
[[nodiscard]] std::uint64_t digestOutcomes(
    const std::vector<DistOutcome>& outcomes);

}  // namespace cmc::load::dist
