#include "load/dist/protocol.hpp"

#include <bit>

namespace cmc::load::dist {

namespace {

void writeF64(ByteWriter& out, double v) {
  out.u64(std::bit_cast<std::uint64_t>(v));
}

double readF64(ByteReader& in) {
  return std::bit_cast<double>(in.u64());
}

void writeI64(ByteWriter& out, std::int64_t v) {
  out.u64(static_cast<std::uint64_t>(v));
}

std::int64_t readI64(ByteReader& in) {
  return static_cast<std::int64_t>(in.u64());
}

// Strip and check the verb byte; returns a reader over the payload only
// when the verb matches.
std::optional<ByteReader> payloadReader(const std::vector<std::uint8_t>& body,
                                        Verb expected) {
  if (body.empty() || body[0] != static_cast<std::uint8_t>(expected)) {
    return std::nullopt;
  }
  return ByteReader(body.data() + 1, body.size() - 1);
}

}  // namespace

std::vector<std::uint8_t> encodeHello(const Hello& hello) {
  ByteWriter out;
  out.u8(static_cast<std::uint8_t>(Verb::hello));
  out.u32(hello.magic);
  out.u32(hello.version);
  out.u32(hello.rank);
  return out.take();
}

std::optional<Hello> parseHello(const std::vector<std::uint8_t>& body) {
  auto in = payloadReader(body, Verb::hello);
  if (!in) return std::nullopt;
  Hello hello;
  hello.magic = in->u32();
  hello.version = in->u32();
  hello.rank = in->u32();
  if (!in->ok() || !in->atEnd() || hello.magic != kMagic) return std::nullopt;
  return hello;
}

std::vector<std::uint8_t> encodeSpec(const SpecAssignment& spec) {
  ByteWriter blob;
  serializeWorkload(spec.workload, blob);
  const std::uint64_t hash = fnv1a(blob.bytes());
  ByteWriter out;
  out.u8(static_cast<std::uint8_t>(Verb::spec));
  out.u32(spec.rank);
  out.u32(spec.worker_count);
  out.u32(spec.shards);
  writeI64(out, spec.setup_grace_us);
  writeI64(out, spec.teardown_grace_us);
  writeI64(out, spec.setup_deadline_us);
  writeI64(out, spec.progress_ms);
  out.u32(static_cast<std::uint32_t>(blob.size()));
  for (std::uint8_t b : blob.bytes()) out.u8(b);
  out.u64(hash);
  return out.take();
}

std::optional<SpecAssignment> parseSpec(const std::vector<std::uint8_t>& body) {
  auto in = payloadReader(body, Verb::spec);
  if (!in) return std::nullopt;
  SpecAssignment spec;
  spec.rank = in->u32();
  spec.worker_count = in->u32();
  spec.shards = in->u32();
  spec.setup_grace_us = readI64(*in);
  spec.teardown_grace_us = readI64(*in);
  spec.setup_deadline_us = readI64(*in);
  spec.progress_ms = readI64(*in);
  const std::uint32_t blob_len = in->u32();
  if (!in->ok() || in->remaining() < blob_len) return std::nullopt;
  // Hash the blob bytes as they arrived — this is the integrity check the
  // worker echoes back, independent of whether the blob also parses.
  const std::size_t blob_off = body.size() - in->remaining();
  spec.spec_hash = fnv1a(body.data() + blob_off, blob_len);
  ByteReader blob(body.data() + blob_off, blob_len);
  auto workload = deserializeWorkload(blob);
  if (!workload || !blob.atEnd()) return std::nullopt;
  spec.workload = std::move(*workload);
  for (std::uint32_t i = 0; i < blob_len; ++i) (void)in->u8();
  (void)in->u64();  // sender's hash; trusted ends compare via SPEC_ACK
  if (!in->ok() || !in->atEnd() || spec.worker_count == 0 || spec.shards == 0 ||
      spec.rank >= spec.worker_count) {
    return std::nullopt;
  }
  return spec;
}

std::vector<std::uint8_t> encodeSpecAck(const SpecAck& ack) {
  ByteWriter out;
  out.u8(static_cast<std::uint8_t>(Verb::specAck));
  out.u32(ack.rank);
  out.u64(ack.spec_hash);
  return out.take();
}

std::optional<SpecAck> parseSpecAck(const std::vector<std::uint8_t>& body) {
  auto in = payloadReader(body, Verb::specAck);
  if (!in) return std::nullopt;
  SpecAck ack;
  ack.rank = in->u32();
  ack.spec_hash = in->u64();
  if (!in->ok() || !in->atEnd()) return std::nullopt;
  return ack;
}

std::vector<std::uint8_t> encodeStart() {
  return {static_cast<std::uint8_t>(Verb::start)};
}

std::vector<std::uint8_t> encodeProgress(const Progress& p) {
  ByteWriter out;
  out.u8(static_cast<std::uint8_t>(Verb::progress));
  out.u32(p.rank);
  out.u64(p.tick);
  obs::serializeSnapshot(p.snapshot, out);
  return out.take();
}

std::optional<Progress> parseProgress(const std::vector<std::uint8_t>& body) {
  auto in = payloadReader(body, Verb::progress);
  if (!in) return std::nullopt;
  Progress p;
  p.rank = in->u32();
  p.tick = in->u64();
  auto snapshot = obs::deserializeSnapshot(*in);
  if (!snapshot || !in->ok() || !in->atEnd()) return std::nullopt;
  p.snapshot = std::move(*snapshot);
  return p;
}

std::vector<std::uint8_t> encodeRollup(const Rollup& rollup) {
  ByteWriter out;
  out.u8(static_cast<std::uint8_t>(Verb::rollup));
  out.u32(rollup.rank);
  out.u64(rollup.spec_hash);
  writeF64(out, rollup.wall_seconds);
  out.u64(rollup.signals_delivered);
  out.u64(rollup.probes_failed);
  out.u32(static_cast<std::uint32_t>(rollup.outcomes.size()));
  for (const DistOutcome& o : rollup.outcomes) {
    out.u64(o.id);
    out.boolean(o.converged);
    out.boolean(o.clean_teardown);
    writeI64(out, o.setup_latency_us);
    out.u64(o.faults_injected);
  }
  obs::serializeSnapshot(rollup.rollup, out);
  return out.take();
}

std::optional<Rollup> parseRollup(const std::vector<std::uint8_t>& body) {
  auto in = payloadReader(body, Verb::rollup);
  if (!in) return std::nullopt;
  Rollup rollup;
  rollup.rank = in->u32();
  rollup.spec_hash = in->u64();
  rollup.wall_seconds = readF64(*in);
  rollup.signals_delivered = in->u64();
  rollup.probes_failed = in->u64();
  const std::uint32_t n = in->u32();
  if (!in->ok()) return std::nullopt;
  rollup.outcomes.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    DistOutcome o;
    o.id = in->u64();
    o.converged = in->boolean();
    o.clean_teardown = in->boolean();
    o.setup_latency_us = readI64(*in);
    o.faults_injected = in->u64();
    if (!in->ok()) return std::nullopt;
    rollup.outcomes.push_back(o);
  }
  auto snapshot = obs::deserializeSnapshot(*in);
  if (!snapshot || !in->ok() || !in->atEnd()) return std::nullopt;
  rollup.rollup = std::move(*snapshot);
  return rollup;
}

std::vector<std::uint8_t> encodeShutdown() {
  return {static_cast<std::uint8_t>(Verb::shutdown)};
}

std::vector<std::uint8_t> encodeErrorMsg(const std::string& message) {
  ByteWriter out;
  out.u8(static_cast<std::uint8_t>(Verb::error));
  out.str(message);
  return out.take();
}

std::optional<std::string> parseErrorMsg(
    const std::vector<std::uint8_t>& body) {
  auto in = payloadReader(body, Verb::error);
  if (!in) return std::nullopt;
  std::string message = in->str();
  if (!in->ok() || !in->atEnd()) return std::nullopt;
  return message;
}

std::optional<Verb> peekVerb(const std::vector<std::uint8_t>& body) {
  if (body.empty()) return std::nullopt;
  const std::uint8_t v = body[0];
  if (v < static_cast<std::uint8_t>(Verb::hello) ||
      v > static_cast<std::uint8_t>(Verb::error)) {
    return std::nullopt;
  }
  return static_cast<Verb>(v);
}

void serializeWorkload(const WorkloadSpec& spec, ByteWriter& out) {
  out.u64(spec.master_seed);
  out.u64(static_cast<std::uint64_t>(spec.calls));
  writeF64(out, spec.arrivals_per_s);
  writeI64(out, spec.hold_min.count());
  writeI64(out, spec.hold_max.count());
  writeF64(out, spec.flowlink_fraction);
  writeF64(out, spec.fault_fraction);
  writeF64(out, spec.fault_spec.drop_rate);
  writeF64(out, spec.fault_spec.duplicate_rate);
  writeF64(out, spec.fault_spec.reorder_rate);
  writeI64(out, spec.fault_spec.reorder_window.count());
  writeI64(out, spec.fault_spec.active_for.count());
  writeI64(out, spec.fault_spec.refresh_interval.count());
}

std::optional<WorkloadSpec> deserializeWorkload(ByteReader& in) {
  WorkloadSpec spec;
  spec.master_seed = in.u64();
  spec.calls = static_cast<std::size_t>(in.u64());
  spec.arrivals_per_s = readF64(in);
  spec.hold_min = SimDuration{readI64(in)};
  spec.hold_max = SimDuration{readI64(in)};
  spec.flowlink_fraction = readF64(in);
  spec.fault_fraction = readF64(in);
  spec.fault_spec.drop_rate = readF64(in);
  spec.fault_spec.duplicate_rate = readF64(in);
  spec.fault_spec.reorder_rate = readF64(in);
  spec.fault_spec.reorder_window = SimDuration{readI64(in)};
  spec.fault_spec.active_for = SimDuration{readI64(in)};
  spec.fault_spec.refresh_interval = SimDuration{readI64(in)};
  if (!in.ok()) return std::nullopt;
  return spec;
}

std::uint64_t workloadHash(const WorkloadSpec& spec) {
  ByteWriter out;
  serializeWorkload(spec, out);
  return fnv1a(out.bytes());
}

DistOutcome toDistOutcome(const CallOutcome& outcome) {
  DistOutcome o;
  o.id = outcome.spec.id;
  o.converged = outcome.converged;
  o.clean_teardown = outcome.clean_teardown;
  o.setup_latency_us = outcome.setup_latency_us;
  o.faults_injected = outcome.faults_injected;
  return o;
}

std::uint64_t digestOutcomes(const std::vector<DistOutcome>& outcomes) {
  ByteWriter out;
  for (const DistOutcome& o : outcomes) {
    out.u64(o.id);
    out.boolean(o.converged);
    out.boolean(o.clean_teardown);
    writeI64(out, o.setup_latency_us);
    out.u64(o.faults_injected);
  }
  return fnv1a(out.bytes());
}

}  // namespace cmc::load::dist
