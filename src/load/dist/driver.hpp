// DistDriver: the coordinator of a distributed load run.
//
// The driver binds a loopback listener (port 0 by default — tests and
// parallel CI jobs never contend for a fixed port), optionally spawns
// `workers` copies of the cmc_load_worker executable pointed back at that
// port, and runs one strictly-phased conversation per link:
//
//   gather   every rank sends HELLO (magic + version + unclaimed rank)
//   spec     driver pushes the identical WorkloadSpec to all ranks,
//            each echoes the hash it recomputed (SPEC_ACK)
//   start    all acks in → START to everyone
//   collect  PROGRESS frames stream in until each rank's ROLLUP lands
//   shutdown SHUTDOWN to every link, reap children
//
// Merging happens in rank order — rollup snapshots apply additively onto a
// fresh registry, outcome slices concatenate then sort by call id — so the
// merged artifacts are deterministic and, by the PR 5 contract, byte-
// identical to a single-process run of the same spec (tests/dist_test.cpp
// proves 1×8 ≡ 2×4 ≡ 4×2, clean and faulty).
//
// Failure is a first-class result, never a hang: every phase has a
// deadline, every link failure (died, timed out, version mismatch, hash
// mismatch, protocol violation) aborts the fleet promptly, and the
// DistResult carries per-rank attribution plus whatever rollups had
// already landed. Hostile connections — wrong magic, corrupt frames,
// absurd length headers, verbs before HELLO — are rejected or dropped
// per-link while the listener keeps serving the real workers.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "load/dist/protocol.hpp"
#include "load/workload.hpp"

namespace cmc::load::dist {

struct DriverConfig {
  std::size_t workers = 2;
  std::size_t shards = 4;  // per worker
  int port = 0;            // 0 = bind an ephemeral port (see port())
  // Per-phase deadlines (wall-clock ms).
  std::int64_t hello_timeout_ms = 15'000;
  std::int64_t ack_timeout_ms = 15'000;
  std::int64_t rollup_timeout_ms = 300'000;
  // Ask workers to stream PROGRESS every this many ms (0 = off).
  std::int64_t progress_ms = 0;
  // Run shape forwarded to every worker's LoadConfig.
  std::int64_t setup_grace_us = 3'000'000;
  std::int64_t teardown_grace_us = 1'000'000;
  std::int64_t setup_deadline_us = 0;
  // Path to a cmc_load_worker binary to spawn one subprocess per rank.
  // Empty = external workers: the caller connects DistWorkers (threads or
  // processes it owns) to port() itself.
  std::string worker_binary;
  // Observed PROGRESS frames (driver link thread; keep it cheap).
  std::function<void(const Progress&)> on_progress;
};

// Per-rank attribution, failure or success.
struct WorkerReport {
  std::uint32_t rank = 0;
  bool connected = false;
  bool acked = false;
  bool rolled_up = false;
  std::string error;  // empty when the rank completed cleanly
  std::uint64_t calls = 0;
  std::uint64_t progress_frames = 0;
  double wall_seconds = 0.0;
};

struct DistResult {
  bool ok = false;
  std::string error;  // first fatal failure, with rank attribution
  // Merged artifacts (partial on failure: whatever rollups landed).
  std::vector<DistOutcome> outcomes;  // sorted by call id
  std::string rollup_json;            // merged registry, MetricsRegistry::json
  std::uint64_t outcome_digest = 0;   // digestOutcomes over sorted outcomes
  std::size_t converged = 0;
  std::size_t clean_teardowns = 0;
  std::uint64_t signals_delivered = 0;
  double setup_p50_us = 0.0;
  double setup_p99_us = 0.0;
  double wall_seconds = 0.0;  // driver-side, connect → merge
  std::vector<WorkerReport> workers;  // rank order
};

class DistDriver {
 public:
  explicit DistDriver(DriverConfig config);
  ~DistDriver();

  DistDriver(const DistDriver&) = delete;
  DistDriver& operator=(const DistDriver&) = delete;

  // Listener bound? (Check before run; port() is valid once true.)
  [[nodiscard]] bool ok() const noexcept;
  [[nodiscard]] std::uint16_t port() const noexcept;

  // Execute one distributed run of `workload`. Blocking; a driver runs
  // once. Never hangs: every phase is bounded by its configured deadline.
  [[nodiscard]] DistResult run(const WorkloadSpec& workload);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Locate a cmc_load_worker binary for spawn mode: $CMC_LOAD_WORKER if set,
// else next to the running executable, else in a sibling examples/
// directory (the build-tree layout). "" when none is found.
[[nodiscard]] std::string findWorkerBinary();

}  // namespace cmc::load::dist
