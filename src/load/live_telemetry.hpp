// LiveTelemetry: the sampler + ops-endpoint hub of a sharded load run.
//
// The sharded runtime's determinism contract is that a run's outcomes and
// its final metrics rollup are a pure function of the workload. The live
// plane must therefore be strictly *read-only*: one sampler thread takes
// periodic MetricsSnapshots of every shard registry (relaxed atomic reads;
// shard threads never block on it), merges them into a fleet view, pushes
// the result into bounded per-shard + merged SnapshotSeries, and evaluates
// the configured SLO watchdogs against each closed window. Turning the
// sampler on or off cannot change what the run computes — tests/load_test
// and the ops-smoke CI job assert the rollup is byte-identical either way.
//
// The hub optionally serves that state over an OpsServer (framed TCP on
// loopback), so `cmc_top`, curl-less scripts, and tests can watch a soak
// mid-run. Verbs:
//
//   metrics  application/json  merged cumulative snapshot
//   prom     text/plain        Prometheus 0.0.4 exposition of the same
//   series   application/json  recent windows (args = max count, "0"=all)
//   shards   text/plain        one key=value line per shard (cmc_top feed)
//   health   text/plain        ok|degraded|starting + one line per SLO rule
//   flight   text/plain        on-demand flight dump of the merged view
//   profile  application/json  merged hot-path profile (args: "json" |
//                              "collapsed" | "speedscope"; error when the
//                              run was not profiled)
//
// On an SLO breach-entry the hub flips health to degraded and dumps its own
// flight recorder (prefix "slo", fed from a hub-owned registry rebuilt via
// MetricsSnapshot::applyTo) — never the shard-owned recorders, which are
// not safe to touch from this thread. The run keeps going.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/ops_server.hpp"
#include "obs/profiler.hpp"
#include "obs/slo.hpp"
#include "obs/snapshot.hpp"

namespace cmc::load {

// One sampler tick, delivered to the host's on_sample callback (outside the
// hub lock, so the callback may itself query the ops endpoint).
struct TelemetryTick {
  std::uint64_t index = 0;       // 0-based tick number
  std::int64_t wall_ms = 0;      // since the hub was constructed
  std::int64_t window_ms = 0;    // width of the window this tick closed
  std::uint64_t arrivals = 0;    // cumulative load.call_arrivals
  std::uint64_t teardowns = 0;   // cumulative load.call_teardowns
  std::int64_t armed_probes = 0; // sum of shard gauges, this instant
  double setup_p99_us = -1.0;    // windowed; -1 when the window is empty
  bool healthy = true;
  std::uint64_t breaches = 0;    // breach-entry transitions so far
};

class LiveTelemetry {
 public:
  struct Config {
    // <0: no ops endpoint (sampler only); 0: auto-pick a free port.
    int ops_port = -1;
    std::int64_t sample_ms = 250;
    std::size_t series_capacity = 240;  // 1 min of windows at 250ms
    std::vector<obs::SloRule> slos;
    std::string flight_dir;  // "" = no SLO/on-demand flight dumps
    std::function<void(const TelemetryTick&)> on_sample;
  };

  explicit LiveTelemetry(Config config);
  ~LiveTelemetry();

  LiveTelemetry(const LiveTelemetry&) = delete;
  LiveTelemetry& operator=(const LiveTelemetry&) = delete;

  // True when no endpoint was requested or the endpoint bound successfully.
  [[nodiscard]] bool ok() const noexcept;
  // Bound port (0 when no endpoint). Known from construction, before any
  // run starts, so pollers can connect early and see "starting".
  [[nodiscard]] std::uint16_t port() const noexcept;

  // Hand the sampler the shard registries and start ticking. The pointers
  // must stay valid until finish().
  void attach(std::vector<const obs::MetricsRegistry*> shards);
  // Hand the `profile` verb the per-shard profiler tables (safe to read
  // while the shard threads write; see obs/profiler.hpp). The pointers
  // must stay valid until finish(), which retains a final merged report so
  // the endpoint keeps serving it after the tables die.
  void attachProfiles(std::vector<const obs::ProfileTable*> profiles);
  // Final tick, stop the sampler, drop the registry pointers. The ops
  // endpoint keeps serving the retained state until destruction.
  void finish();

  // ------------------------------------------------------------- inspection
  [[nodiscard]] std::uint64_t ticks() const;
  [[nodiscard]] bool healthy() const;
  [[nodiscard]] bool everBreached() const;
  [[nodiscard]] std::uint64_t breaches() const;
  [[nodiscard]] std::uint64_t sloDumps() const;
  [[nodiscard]] std::string lastDumpPath() const;
  // Latest merged fleet snapshot (default-constructed before the first
  // tick). Copied under the hub lock: safe to call from the on_sample
  // callback — the dist worker streams PROGRESS frames from it.
  [[nodiscard]] obs::MetricsSnapshot latestMerged() const;

 private:
  void samplerLoop();
  // One capture+evaluate pass; reason tags the phase ("tick", "final").
  void sampleOnce(bool final_tick);
  void registerVerbs();
  [[nodiscard]] std::string shardsText() const;  // callers hold mutex_
  [[nodiscard]] std::string healthText() const;  // callers hold mutex_

  Config config_;
  std::unique_ptr<obs::OpsServer> server_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool attached_ = false;
  bool finished_ = false;
  std::vector<const obs::MetricsRegistry*> registries_;
  std::vector<const obs::ProfileTable*> profiles_;
  obs::ProfileReport retained_profile_;
  bool profile_retained_ = false;
  std::vector<obs::SnapshotSeries> shard_series_;
  obs::SnapshotSeries series_;  // merged fleet view
  obs::SloWatchdog watchdog_;
  // Fresh registry per tick (applyTo is additive, registries have no
  // clear()); flight dumps read the latest one.
  std::unique_ptr<obs::MetricsRegistry> live_merged_;
  std::unique_ptr<obs::FlightRecorder> flight_;
  std::uint64_t ticks_ = 0;

  std::thread sampler_;
};

}  // namespace cmc::load
