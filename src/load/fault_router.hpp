// Per-call fault routing for the sharded load runtime.
//
// One PerCallFaultRouter is installed per shard Simulator. It owns one
// seeded FaultPlan per faulty call and routes every decide() to the plan of
// the call the emitting box belongs to (box names carry the call-id prefix,
// see CallSpec). Two properties follow:
//
//   * isolation — each call's fault stream consumes only its own Rng, so a
//     faulty call cannot perturb the faults (or the absence of faults) of
//     any other call sharing its shard;
//   * shard invariance — a call's fault decisions depend only on its own
//     seed and its own signal sequence, so re-sharding the workload leaves
//     every call's faults byte-identical.
//
// FaultSpec::active_for is measured from simulated time zero, but a call
// arriving at t=40s must see its fault window over *its* first active_for,
// not the shard's. The router therefore shifts time: each sub-plan is asked
// about `now - arrival` as if it were absolute time.
//
// activeAt() keeps the simulator's per-box stabilization refresh ticks
// alive while any fault window may still be open. Crucially the horizon it
// answers with is computed over the WHOLE workload (ShardedRuntime passes
// it in), not over the calls this shard happened to draw: refresh-tick
// chains live and die by activeAt(), and if their lifetime varied by shard
// composition, a box could get a goal refresh at different instants under
// different shard counts — breaking replay invariance. For the same reason
// the runtime installs a router on every shard whenever the workload has a
// nonzero fault fraction, even on shards that drew no faulty calls:
// installing a plan flips boxes into stabilization mode, and whether a call
// runs in that mode must not depend on where it landed.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>

#include "load/workload.hpp"
#include "sim/fault.hpp"
#include "util/time.hpp"

namespace cmc::load {

class PerCallFaultRouter : public FaultPlan {
 public:
  // `base` supplies refresh_interval (and the per-call fault shape default).
  // `fault_horizon` is the absolute virtual instant after which no call in
  // the whole workload can still be inside its fault window — i.e.
  // max(arrival + active_for) over every faulty call, shard-independent.
  // An active_for of zero means fault windows never close.
  PerCallFaultRouter(FaultSpec base, SimTime fault_horizon)
      : FaultPlan(/*seed=*/0, base),
        horizon_(fault_horizon),
        never_ends_(base.active_for.count() == 0) {}

  // Register one faulty call: its boxes get fault decisions from a plan
  // seeded with the call's own seed.
  void addCall(const CallSpec& call, const FaultSpec& spec) {
    auto entry = std::make_shared<Entry>(Entry{
        call.arrival, std::make_unique<FaultPlan>(call.seed, spec)});
    by_box_[call.leftName()] = entry;
    by_box_[call.rightName()] = entry;
    if (call.flowlinks > 0) by_box_[call.relayName()] = entry;
  }

  [[nodiscard]] bool activeAt(SimTime now) const noexcept override {
    return never_ends_ || now < horizon_;
  }

  [[nodiscard]] FaultDecision decide(const std::string& from,
                                     const std::string& to,
                                     SimTime now) override {
    ++counters().considered;
    auto it = by_box_.find(from);
    if (it == by_box_.end()) return FaultDecision{};
    Entry& entry = *it->second;
    // Shift into the call's own timeline so its fault window opens at its
    // arrival, wherever in the shard's run that falls.
    const SimTime call_now = SimTime{} + (now - entry.arrival);
    return entry.plan->decide(from, to, call_now);
  }

  // Fault counters for the call owning `box_name` (nullptr for clean calls).
  [[nodiscard]] const Counters* countersFor(const std::string& box_name) const {
    auto it = by_box_.find(box_name);
    return it == by_box_.end() ? nullptr : &it->second->plan->counters();
  }

 private:
  struct Entry {
    SimTime arrival;
    std::unique_ptr<FaultPlan> plan;
  };

  SimTime horizon_;
  bool never_ends_;
  // Shared entries: the three box names of a call alias one Entry.
  std::map<std::string, std::shared_ptr<Entry>> by_box_;
};

}  // namespace cmc::load
