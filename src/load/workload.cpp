#include "load/workload.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace cmc::load {

const std::vector<CallType>& callTypes() {
  static const std::vector<CallType> kTypes = {
      {GoalKind::closeSlot, GoalKind::closeSlot, "close_close"},
      {GoalKind::closeSlot, GoalKind::holdSlot, "close_hold"},
      {GoalKind::closeSlot, GoalKind::openSlot, "close_open"},
      {GoalKind::openSlot, GoalKind::openSlot, "open_open"},
      {GoalKind::openSlot, GoalKind::holdSlot, "open_hold"},
      {GoalKind::holdSlot, GoalKind::holdSlot, "hold_hold"},
  };
  return kTypes;
}

SimTime faultHorizon(const std::vector<CallSpec>& calls,
                     const WorkloadSpec& spec) {
  SimTime horizon;
  for (const CallSpec& call : calls) {
    if (!call.faulty) continue;
    const SimTime end = call.arrival + spec.fault_spec.active_for;
    if (horizon < end) horizon = end;
  }
  return horizon;
}

std::vector<CallSpec> WorkloadGenerator::generate() const {
  const auto& types = callTypes();
  std::vector<CallSpec> calls;
  calls.reserve(spec_.calls);
  Rng rng(spec_.master_seed);
  std::uint64_t seed_stream = spec_.master_seed ^ 0x10adc0dedULL;
  SimTime arrival;
  const double rate =
      spec_.arrivals_per_s > 0.0 ? spec_.arrivals_per_s : 1.0;
  const std::int64_t hold_lo = spec_.hold_min.count();
  const std::int64_t hold_hi =
      spec_.hold_max.count() < hold_lo ? hold_lo : spec_.hold_max.count();
  for (std::size_t i = 0; i < spec_.calls; ++i) {
    // Fixed draw order per call — type, flowlink, hold, faulty, interarrival
    // — so the call set is a pure function of the master seed.
    CallSpec call;
    call.id = static_cast<std::uint64_t>(i);
    const CallType& type = types[rng.below(types.size())];
    call.left = type.left;
    call.right = type.right;
    call.type_name = type.name;
    call.flowlinks = rng.chance(spec_.flowlink_fraction) ? 1 : 0;
    call.hold = SimDuration{rng.range(hold_lo, hold_hi)};
    // Always consume the fault draw, even at fraction 0: two specs differing
    // only in fault_fraction must yield the same calls otherwise — that is
    // what lets tests compare a call's clean and faulty runs directly.
    const bool fault_draw = rng.chance(spec_.fault_fraction);
    call.faulty = spec_.fault_fraction > 0.0 && fault_draw;
    call.seed = splitmix64(seed_stream);
    call.arrival = arrival;
    const double dt_s = -std::log(1.0 - rng.uniform01()) / rate;
    arrival = arrival + SimDuration{static_cast<std::int64_t>(dt_s * 1e6)};
    calls.push_back(call);
  }
  return calls;
}

}  // namespace cmc::load
