#include "load/live_telemetry.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace cmc::load {

namespace {

std::size_t parseCount(const std::string& args) {
  if (args.empty()) return 0;  // 0 = all retained
  return static_cast<std::size_t>(std::strtoull(args.c_str(), nullptr, 10));
}

double windowQuantile(const obs::MetricsDelta* window, std::string_view name,
                      double q) {
  if (window == nullptr) return -1.0;
  const obs::HistogramSample* h = window->histogram(name);
  if (h == nullptr || h->count == 0) return -1.0;
  return h->quantile(q);
}

}  // namespace

LiveTelemetry::LiveTelemetry(Config config)
    : config_(std::move(config)),
      epoch_(std::chrono::steady_clock::now()),
      series_(config_.series_capacity),
      watchdog_(config_.slos) {
  if (config_.ops_port >= 0) {
    server_ = std::make_unique<obs::OpsServer>(
        static_cast<std::uint16_t>(config_.ops_port));
  }
  if (!config_.flight_dir.empty()) {
    flight_ = std::make_unique<obs::FlightRecorder>(
        obs::FlightRecorder::Config{config_.flight_dir, "slo", 16});
  }
  watchdog_.setOnBreach([this](const obs::SloStatus& status) {
    // Sampler thread, hub lock held: dump only hub-owned state. The merged
    // registry for this tick was rebuilt just before evaluate() ran.
    if (flight_ != nullptr && live_merged_ != nullptr) {
      flight_->setMetrics(live_merged_.get());
      flight_->dump("slo_breach:" + status.rule);
    }
  });
  registerVerbs();
  if (server_ != nullptr && server_->ok()) server_->start();
}

LiveTelemetry::~LiveTelemetry() {
  finish();
  if (server_ != nullptr) server_->stop();
}

bool LiveTelemetry::ok() const noexcept {
  return server_ == nullptr || server_->ok();
}

std::uint16_t LiveTelemetry::port() const noexcept {
  return server_ != nullptr ? server_->port() : 0;
}

void LiveTelemetry::attach(std::vector<const obs::MetricsRegistry*> shards) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (attached_) return;
    attached_ = true;
    registries_ = std::move(shards);
    shard_series_.clear();
    for (std::size_t i = 0; i < registries_.size(); ++i) {
      shard_series_.emplace_back(config_.series_capacity);
    }
  }
  sampler_ = std::thread([this]() { samplerLoop(); });
}

void LiveTelemetry::attachProfiles(
    std::vector<const obs::ProfileTable*> profiles) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    profiles_ = std::move(profiles);
  }
  if (flight_ != nullptr) {
    // The breach hook dumps with the hub lock held, so the source reads the
    // live tables directly (their counters are relaxed atomics) and never
    // touches hub state.
    std::vector<const obs::ProfileTable*> tables;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      tables = profiles_;
    }
    flight_->setProfileSource(
        [tables]() { return obs::mergeTables(tables).json(); });
  }
}

void LiveTelemetry::finish() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!attached_ || finished_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (sampler_.joinable()) sampler_.join();
  // One last window so the served state reflects the drained run, then drop
  // the borrowed registry pointers — the shards are about to be destroyed,
  // and the endpoint keeps serving the retained snapshots.
  sampleOnce(/*final_tick=*/true);
  std::lock_guard<std::mutex> lock(mutex_);
  // Same retention discipline for the profile: merge once while the shard
  // tables are still alive, serve the retained report afterwards.
  if (!profiles_.empty()) {
    retained_profile_ = obs::mergeTables(profiles_);
    profile_retained_ = true;
    profiles_.clear();
    if (flight_ != nullptr) {
      const std::string retained_json = retained_profile_.json();
      flight_->setProfileSource([retained_json]() { return retained_json; });
    }
  }
  registries_.clear();
  finished_ = true;
}

void LiveTelemetry::samplerLoop() {
  const auto period = std::chrono::milliseconds(
      config_.sample_ms > 0 ? config_.sample_ms : 250);
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    if (cv_.wait_for(lock, period, [this]() { return stop_; })) break;
    lock.unlock();
    sampleOnce(/*final_tick=*/false);
    lock.lock();
  }
}

void LiveTelemetry::sampleOnce(bool final_tick) {
  TelemetryTick tick;
  std::function<void(const TelemetryTick&)> callback;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (registries_.empty()) return;
    const std::int64_t wall_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count();
    obs::MetricsSnapshot merged;
    merged.wall_ms = wall_ms;
    for (std::size_t i = 0; i < registries_.size(); ++i) {
      obs::MetricsSnapshot shot =
          obs::MetricsSnapshot::capture(*registries_[i], wall_ms);
      merged.mergeFrom(shot);
      shard_series_[i].push(std::move(shot));
    }
    auto rebuilt = std::make_unique<obs::MetricsRegistry>();
    merged.applyTo(*rebuilt);
    live_merged_ = std::move(rebuilt);

    series_.push(std::move(merged));
    const obs::MetricsDelta* window = series_.latestWindow();
    if (window != nullptr) watchdog_.evaluate(*window);
    ++ticks_;

    const obs::MetricsSnapshot* latest = series_.latest();
    tick.index = ticks_ - 1;
    tick.wall_ms = wall_ms;
    tick.window_ms = window != nullptr ? window->window_ms : 0;
    tick.arrivals = latest->counter("load.call_arrivals");
    tick.teardowns = latest->counter("load.call_teardowns");
    auto armed = latest->gauges.find("load.armed_probes");
    tick.armed_probes = armed != latest->gauges.end() ? armed->second.value : 0;
    tick.setup_p99_us = windowQuantile(window, "probe.call_setup_us", 0.99);
    tick.healthy = watchdog_.healthy();
    tick.breaches = watchdog_.breaches();
    callback = config_.on_sample;
  }
  // Outside the lock: the callback (and anything it triggers, like an ops
  // request from a test) may need hub state. The final tick fires it too —
  // a run shorter than one period still reports once.
  (void)final_tick;
  if (callback) callback(tick);
}

std::uint64_t LiveTelemetry::ticks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ticks_;
}

bool LiveTelemetry::healthy() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return watchdog_.healthy();
}

bool LiveTelemetry::everBreached() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return watchdog_.everBreached();
}

std::uint64_t LiveTelemetry::breaches() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return watchdog_.breaches();
}

std::uint64_t LiveTelemetry::sloDumps() const {
  return flight_ != nullptr ? flight_->dumps() : 0;
}

std::string LiveTelemetry::lastDumpPath() const {
  return flight_ != nullptr ? flight_->lastPath() : std::string{};
}

obs::MetricsSnapshot LiveTelemetry::latestMerged() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const obs::MetricsSnapshot* latest = series_.latest();
  return latest != nullptr ? *latest : obs::MetricsSnapshot{};
}

std::string LiveTelemetry::shardsText() const {
  std::string out;
  char buf[256];
  for (std::size_t i = 0; i < shard_series_.size(); ++i) {
    const obs::MetricsSnapshot* latest = shard_series_[i].latest();
    if (latest == nullptr) continue;
    const obs::MetricsDelta* window = shard_series_[i].latestWindow();
    std::int64_t armed = 0;
    auto it = latest->gauges.find("load.armed_probes");
    if (it != latest->gauges.end()) armed = it->second.value;
    const double rate =
        window != nullptr ? window->counterRate("load.call_arrivals") : 0.0;
    std::snprintf(
        buf, sizeof(buf),
        "shard=%zu arrivals=%llu teardowns=%llu armed=%lld "
        "arrivals_per_s=%.1f setup_p50_us=%.0f setup_p99_us=%.0f "
        "faults=%llu trace_dropped=%llu\n",
        i, static_cast<unsigned long long>(latest->counter("load.call_arrivals")),
        static_cast<unsigned long long>(latest->counter("load.call_teardowns")),
        static_cast<long long>(armed), rate,
        windowQuantile(window, "probe.call_setup_us", 0.50),
        windowQuantile(window, "probe.call_setup_us", 0.99),
        static_cast<unsigned long long>(latest->counter("fault.dropped") +
                                        latest->counter("fault.duplicated") +
                                        latest->counter("fault.reordered")),
        static_cast<unsigned long long>(latest->counter("trace.dropped")));
    out += buf;
  }
  return out;
}

std::string LiveTelemetry::healthText() const {
  std::string out = "health=";
  if (ticks_ == 0) {
    out += "starting";
  } else {
    out += watchdog_.healthy() ? "ok" : "degraded";
  }
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                " ticks=%llu breaches=%llu ever_breached=%d final=%d\n",
                static_cast<unsigned long long>(ticks_),
                static_cast<unsigned long long>(watchdog_.breaches()),
                watchdog_.everBreached() ? 1 : 0, finished_ ? 1 : 0);
  out += buf;
  out += watchdog_.statusText();
  return out;
}

void LiveTelemetry::registerVerbs() {
  if (server_ == nullptr || !server_->ok()) return;
  server_->handle("metrics", "application/json", [this](const std::string&) {
    std::lock_guard<std::mutex> lock(mutex_);
    const obs::MetricsSnapshot* latest = series_.latest();
    return latest != nullptr ? latest->json() : std::string("{}");
  });
  server_->handle("prom", "text/plain", [this](const std::string&) {
    std::lock_guard<std::mutex> lock(mutex_);
    const obs::MetricsSnapshot* latest = series_.latest();
    return latest != nullptr ? obs::prometheusText(*latest) : std::string{};
  });
  server_->handle("series", "application/json", [this](const std::string& args) {
    std::lock_guard<std::mutex> lock(mutex_);
    return series_.json(parseCount(args));
  });
  server_->handle("shards", "text/plain", [this](const std::string&) {
    std::lock_guard<std::mutex> lock(mutex_);
    return shardsText();
  });
  server_->handle("health", "text/plain", [this](const std::string&) {
    std::lock_guard<std::mutex> lock(mutex_);
    return healthText();
  });
  server_->handle("profile", "application/json", [this](const std::string& args) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (profile_retained_) {
      return obs::profileResponse(retained_profile_, args);
    }
    if (profiles_.empty()) {
      throw std::runtime_error("no profiler attached (run with profiling on)");
    }
    return obs::profileResponse(obs::mergeTables(profiles_), args);
  });
  server_->handle("flight", "text/plain", [this](const std::string& args) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (flight_ == nullptr) {
      throw std::runtime_error("no flight recorder configured");
    }
    if (live_merged_ == nullptr) {
      throw std::runtime_error("no sample captured yet");
    }
    flight_->setMetrics(live_merged_.get());
    const std::string path =
        flight_->dump(args.empty() ? "ops_request" : "ops:" + args);
    if (path.empty()) throw std::runtime_error("dump failed (budget or io)");
    return path;
  });
}

}  // namespace cmc::load
