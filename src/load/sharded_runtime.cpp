#include "load/sharded_runtime.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "load/call_boxes.hpp"
#include "load/fault_router.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/profiler.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace cmc::load {

namespace {

// One call's live state inside a shard. Boxes are owned by the shard's
// Simulator and never removed, so the raw pointers stay valid for the run.
struct CallRuntime {
  CallSpec spec;
  LoadEndpointBox* left = nullptr;
  LoadEndpointBox* right = nullptr;
  LoadRelayBox* relay = nullptr;
  bool torn_down = false;
  CallOutcome outcome;
};

// The call's §V rest state for its goal pair: any close goal (or a pure
// hold/hold pair) rests with both endpoint slots closed; otherwise — open
// against open or hold — it rests with both endpoint goals satisfied
// (flowing) and, through a relay, the flowlink matched.
bool atRest(const CallRuntime& call) {
  if (call.torn_down || call.left == nullptr || call.right == nullptr) {
    return false;
  }
  if (!call.left->ready() || !call.right->ready()) return false;
  if (call.relay != nullptr && !call.relay->linked()) return false;
  const bool has_close = call.spec.left == GoalKind::closeSlot ||
                         call.spec.right == GoalKind::closeSlot;
  const bool has_open = call.spec.left == GoalKind::openSlot ||
                        call.spec.right == GoalKind::openSlot;
  if (has_open && !has_close) {
    bool ok = call.left->atGoal() && call.right->atGoal();
    if (ok && call.relay != nullptr) {
      ok = call.relay->goalSatisfied(call.relay->inSlot()) &&
           call.relay->goalSatisfied(call.relay->outSlot());
    }
    return ok;
  }
  return call.left->closedAtRest() && call.right->closedAtRest();
}

bool leakFree(const Box* box) {
  return box == nullptr || (box->slotCount() == 0 && box->goalCount() == 0);
}

}  // namespace

struct ShardedRuntime::ShardState {
  std::size_t index = 0;
  std::vector<CallSpec> calls;  // arrival order
  obs::MetricsRegistry metrics;
  std::vector<CallOutcome> outcomes;
  std::vector<obs::TraceEvent> events;
  ShardStats stats;
  std::string error;
};

ShardedRuntime::ShardedRuntime(LoadConfig config) : config_(std::move(config)) {
  if (config_.shards == 0) config_.shards = 1;
  if (!config_.profile_dir.empty()) config_.profile = true;
  if (config_.ops_port >= 0 || !config_.slos.empty() || config_.on_sample) {
    LiveTelemetry::Config live;
    live.ops_port = config_.ops_port;
    live.sample_ms = config_.sample_ms;
    live.series_capacity = config_.series_capacity;
    live.slos = config_.slos;
    live.flight_dir = config_.flight_dir;
    live.on_sample = config_.on_sample;
    live_ = std::make_unique<LiveTelemetry>(std::move(live));
    if (!live_->ok()) {
      throw std::runtime_error("ops endpoint failed to bind port " +
                               std::to_string(config_.ops_port));
    }
  }
}

ShardedRuntime::~ShardedRuntime() = default;

void ShardedRuntime::run(const WorkloadSpec& workload) {
  run(WorkloadGenerator(workload).generate(), workload);
}

void ShardedRuntime::run(const std::vector<CallSpec>& calls,
                         const WorkloadSpec& workload) {
  // Workload-wide fault-activity horizon: the last instant any call's
  // arrival-relative fault window can still be open. Passed to every
  // shard's router so refresh-tick lifetimes are shard-count invariant.
  run(calls, workload, faultHorizon(calls, workload));
}

void ShardedRuntime::run(const std::vector<CallSpec>& calls,
                         const WorkloadSpec& workload, SimTime fault_horizon) {
  if (ran_) {
    // The rollup histogram cannot be un-merged; one runtime, one run.
    throw std::logic_error("ShardedRuntime::run may only be called once");
  }
  ran_ = true;
  outcomes_.clear();
  shard_stats_.clear();
  shard_traces_.clear();

  std::vector<std::unique_ptr<ShardState>> shards;
  shards.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    auto state = std::make_unique<ShardState>();
    state->index = i;
    shards.push_back(std::move(state));
  }
  for (const CallSpec& call : calls) {
    shards[call.id % config_.shards]->calls.push_back(call);
  }

  if (config_.profile) {
    shard_profiles_.reserve(config_.shards);
    for (std::size_t i = 0; i < config_.shards; ++i) {
      shard_profiles_.push_back(std::make_unique<obs::ProfileTable>(
          "shard" + std::to_string(i)));
    }
  }

  if (live_ != nullptr) {
    std::vector<const obs::MetricsRegistry*> registries;
    registries.reserve(shards.size());
    for (auto& shard : shards) registries.push_back(&shard->metrics);
    live_->attach(std::move(registries));
    if (config_.profile) {
      std::vector<const obs::ProfileTable*> tables;
      tables.reserve(shard_profiles_.size());
      for (auto& table : shard_profiles_) tables.push_back(table.get());
      live_->attachProfiles(std::move(tables));
    }
  }

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(config_.shards);
  for (auto& shard : shards) {
    workers.emplace_back([this, &shard, &workload, fault_horizon]() {
      try {
        runShard(*shard, workload, fault_horizon);
      } catch (const std::exception& e) {
        shard->error = e.what();
      }
    });
  }
  for (auto& worker : workers) worker.join();
  wall_seconds_ = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - wall_start)
                      .count();

  // Close the live plane while the shard registries are still alive: one
  // final window, then the sampler drops its borrowed pointers. The ops
  // endpoint keeps serving the retained snapshots.
  if (live_ != nullptr) live_->finish();

  // Merge in shard-index order so the rollup is deterministic.
  for (auto& shard : shards) {
    if (!shard->error.empty()) {
      throw std::runtime_error("load shard " + std::to_string(shard->index) +
                               " failed: " + shard->error);
    }
    rollup_.mergeAdditiveFrom(shard->metrics);
    if (const auto* h = shard->metrics.findHistogram("load.call_setup_us")) {
      setup_latency_.mergeFrom(*h);
    }
    shard_stats_.push_back(shard->stats);
    shard_traces_.push_back(std::move(shard->events));
    for (CallOutcome& outcome : shard->outcomes) {
      outcomes_.push_back(std::move(outcome));
    }
  }
  std::sort(outcomes_.begin(), outcomes_.end(),
            [](const CallOutcome& a, const CallOutcome& b) {
              return a.spec.id < b.spec.id;
            });

  if (config_.profile) {
    std::vector<const obs::ProfileTable*> tables;
    tables.reserve(shard_profiles_.size());
    for (auto& table : shard_profiles_) tables.push_back(table.get());
    profile_report_ = obs::mergeTables(tables);
    if (!config_.profile_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(config_.profile_dir, ec);
      const std::string base = config_.profile_dir + "/profile";
      std::ofstream(base + ".json", std::ios::trunc)
          << profile_report_.json();
      std::ofstream(base + ".collapsed", std::ios::trunc)
          << profile_report_.collapsed();
      std::ofstream(base + ".speedscope.json", std::ios::trunc)
          << profile_report_.speedscope("load_soak");
    }
  }

  if (live_ != nullptr && config_.ops_linger_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(config_.ops_linger_ms));
  }
}

void ShardedRuntime::runShard(ShardState& shard, const WorkloadSpec& workload,
                              SimTime fault_horizon) {
  const std::int64_t thread_start_ns = obs::prof::nowNs();
  // Per-shard observability, visible to this thread only. Cleared before
  // the artifacts die (end of this function).
  obs::TraceRecorder trace(config_.trace_capacity);
  obs::setThreadMetrics(&shard.metrics);
  if (config_.capture_traces) obs::setThreadRecorder(&trace);
  if (config_.profile) {
    obs::setThreadProfiler(shard_profiles_[shard.index].get());
  }

  {
    // Spans the shard thread's whole working life — simulator construction,
    // the run itself, and teardown — so the depth-1 profile total accounts
    // for (nearly) all of wallSeconds() and bench PROF lines can claim
    // >=90% coverage even when shards time-slice few cores.
    CMC_PROF_SCOPE("shard.run");
    std::uint64_t sim_seed = 0x10ad ^ shard.index;
    Simulator sim(config_.timing, splitmix64(sim_seed));
    trace.setTimeSource([&sim]() { return sim.nowUs(); });

    obs::FlightRecorder flight{obs::FlightRecorder::Config{
        config_.flight_dir, "shard" + std::to_string(shard.index), 16}};
    if (!config_.flight_dir.empty()) {
      flight.setTrace(config_.capture_traces ? &trace : nullptr);
      flight.setMetrics(&shard.metrics);
      flight.setProbes(&sim.probes());
      obs::setThreadFlightRecorder(&flight);
    }

    PerCallFaultRouter router(workload.fault_spec, fault_horizon);
    const bool faults_on = workload.fault_fraction > 0.0;
    if (faults_on) {
      for (const CallSpec& call : shard.calls) {
        if (call.faulty) router.addCall(call, workload.fault_spec);
      }
      // Installed even when this shard drew no faulty calls: stabilization
      // mode must not depend on shard assignment (see fault_router.hpp).
      sim.installFaultPlan(&router);
    }

    // Phases under shard.run: scheduling the call set, draining the event
    // loop, finalizing outcomes.
    std::deque<CallRuntime> live;
    {
      CMC_PROF_SCOPE("shard.schedule");
      for (const CallSpec& call : shard.calls) {
        live.push_back(CallRuntime{call, nullptr, nullptr, nullptr, false, {}});
      }
      for (CallRuntime& call : live) {
        call.outcome.spec = call.spec;
        call.outcome.shard = shard.index;
        const std::string probe = call.spec.probeName();

        sim.loop().scheduleAt(call.spec.arrival, [this, &sim, &shard, &call,
                                                  probe]() {
          // Live lifecycle metrics, written unconditionally (sampler or not)
          // so the rollup stays byte-identical either way. The gauge is
          // shard-local (excluded from the rollup); the counters are additive
          // and shard-count invariant — each call arrives exactly once.
          shard.metrics.counter("load.call_arrivals").add(1);
          shard.metrics.gauge("load.armed_probes").add(1);
          auto& left = sim.addBox<LoadEndpointBox>(
              call.spec.leftName(), call.spec.left, PathEnd::left);
          auto& right = sim.addBox<LoadEndpointBox>(
              call.spec.rightName(), call.spec.right, PathEnd::right);
          call.left = &left;
          call.right = &right;
          std::string target = call.spec.rightName();
          if (call.spec.flowlinks > 0) {
            auto& relay = sim.addBox<LoadRelayBox>(call.spec.relayName(),
                                                   call.spec.rightName());
            call.relay = &relay;
            target = call.spec.relayName();
          }
          sim.inject(call.spec.leftName(), [target](Box& box) {
            static_cast<LoadEndpointBox&>(box).dial(target);
          });
          const std::int64_t deadline =
              config_.setup_deadline_us > 0
                  ? sim.nowUs() + config_.setup_deadline_us
                  : 0;
          sim.probes().arm(probe, "call_setup", sim.nowUs(),
                           [&call]() { return atRest(call); }, deadline);
        });

        const SimTime teardown_at =
            call.spec.arrival + config_.setup_grace + call.spec.hold;
        sim.loop().scheduleAt(teardown_at, [&sim, &shard, &call, probe]() {
          // Final verdict for this call's probe (it may be resting right now,
          // or past its watchdog deadline), then retire it: once torn down
          // the predicate can never hold again.
          sim.probes().check(sim.nowUs());
          sim.probes().disarm(probe);
          shard.metrics.counter("load.call_teardowns").add(1);
          shard.metrics.gauge("load.armed_probes").add(-1);
          call.torn_down = true;
          sim.inject(call.spec.leftName(), [](Box& box) {
            static_cast<LoadEndpointBox&>(box).hangUp();
          });
        });

        sim.loop().scheduleAt(
            teardown_at + config_.teardown_grace, [&sim, &call, probe]() {
              const auto latency = sim.probes().latencyUs(probe);
              call.outcome.converged = latency.has_value();
              call.outcome.setup_latency_us = latency.value_or(-1);
              call.outcome.clean_teardown = leakFree(call.left) &&
                                            leakFree(call.right) &&
                                            leakFree(call.relay);
            });
      }
    }

    // All lifecycle events are pre-scheduled; grants of virtual time keep
    // flowing until the shard drains (retry chains stop at teardown, refresh
    // ticks stop at the fault horizon, so it always does).
    bool idle = false;
    {
      CMC_PROF_SCOPE("shard.drain");
      for (int grants = 0; grants < 10'000 && !idle; ++grants) {
        idle = sim.run(std::chrono::seconds(600));
      }
    }
    if (!idle) throw std::runtime_error("shard event loop failed to drain");
    CMC_PROF_SCOPE("shard.finalize");
    sim.probes().check(sim.nowUs());

    // Per-call fault totals (drops + dups + reorders seen by each call).
    std::uint64_t faults_total = 0;
    for (CallRuntime& call : live) {
      if (faults_on && call.spec.faulty) {
        if (const auto* c = router.countersFor(call.spec.leftName())) {
          call.outcome.faults_injected =
              c->dropped + c->duplicated + c->reordered;
          faults_total += call.outcome.faults_injected;
        }
      }
      shard.outcomes.push_back(call.outcome);
    }

    // Fold probe latencies into the shard registry so the rollup carries
    // them, and leave behind additive load counters (all shard-count
    // invariant; see the determinism contract in the header).
    if (const auto* h = sim.probes().histogram("call_setup")) {
      shard.metrics.histogram("load.call_setup_us").mergeFrom(*h);
    }
    std::size_t converged = 0;
    std::size_t clean = 0;
    for (const CallOutcome& outcome : shard.outcomes) {
      if (outcome.converged) ++converged;
      if (outcome.clean_teardown) ++clean;
    }
    shard.metrics.counter("load.calls").add(shard.calls.size());
    shard.metrics.counter("load.converged").add(converged);
    shard.metrics.counter("load.clean_teardowns").add(clean);
    shard.metrics.counter("load.faults_injected").add(faults_total);

    shard.stats.calls = shard.calls.size();
    shard.stats.events_executed = sim.loop().executed();
    shard.stats.peak_pending = sim.loop().peakPending();
    shard.stats.signals_delivered = sim.signalsDelivered();
    shard.stats.probes_converged = sim.probes().convergedCount();
    shard.stats.probes_failed = sim.probes().failedCount();
    shard.stats.failed_probes = sim.probes().failed();
    shard.stats.flight_dumps = flight.dumps();
    shard.stats.trace_dropped = trace.dropped();

    obs::setThreadFlightRecorder(nullptr);
    trace.setTimeSource(nullptr);
  }  // Simulator (and its probes) destroyed here, before the recorders.

  if (config_.capture_traces) shard.events = trace.snapshot();
  obs::setThreadProfiler(nullptr);
  obs::setThreadRecorder(nullptr);
  obs::setThreadMetrics(nullptr);
  shard.stats.thread_wall_ns = obs::prof::nowNs() - thread_start_ns;
}

std::size_t ShardedRuntime::convergedCount() const noexcept {
  std::size_t n = 0;
  for (const CallOutcome& outcome : outcomes_) {
    if (outcome.converged) ++n;
  }
  return n;
}

std::size_t ShardedRuntime::cleanTeardownCount() const noexcept {
  std::size_t n = 0;
  for (const CallOutcome& outcome : outcomes_) {
    if (outcome.clean_teardown) ++n;
  }
  return n;
}

std::uint64_t ShardedRuntime::signalsDelivered() const noexcept {
  std::uint64_t n = 0;
  for (const ShardStats& stats : shard_stats_) n += stats.signals_delivered;
  return n;
}

std::size_t ShardedRuntime::probeFailures() const noexcept {
  std::size_t n = 0;
  for (const ShardStats& stats : shard_stats_) n += stats.probes_failed;
  return n;
}

std::int64_t ShardedRuntime::threadWallNs() const noexcept {
  std::int64_t n = 0;
  for (const ShardStats& stats : shard_stats_) n += stats.thread_wall_ns;
  return n;
}

}  // namespace cmc::load
