// Workload generation for the sharded load runtime (docs/LOAD.md).
//
// A WorkloadGenerator expands a WorkloadSpec — master seed, call count,
// arrival rate, hold-time range, flowlink and fault fractions — into a
// deterministic vector of CallSpecs. Every random draw flows through one
// Rng seeded from the master seed, in a fixed per-call order (type,
// flowlink, hold, faulty, call seed), so the same spec always yields the
// same call set regardless of how many shards later execute it. Each call
// also carries its own derived seed: everything stochastic about the call
// at run time (its fault plan) is keyed off that seed, never off shared
// shard state, which is what makes a workload's outcome invariant under
// re-sharding (see ShardedRuntime).
//
// The six call types are the six goal-pair path types of the paper's §V
// analysis: close/close, close/hold, close/open, open/open, open/hold,
// hold/hold. A call optionally routes through one relay box carrying a
// flowlink (the paper's 0- vs 1-flowlink path variants).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/goal.hpp"
#include "sim/fault.hpp"
#include "util/time.hpp"

namespace cmc::load {

// One of the §V goal-pair path types.
struct CallType {
  GoalKind left;
  GoalKind right;
  const char* name;  // stable label for metrics/trace filtering
};

// The six distinct unordered goal pairs over {close, hold, open}.
[[nodiscard]] const std::vector<CallType>& callTypes();

struct WorkloadSpec {
  std::uint64_t master_seed = 1;
  std::size_t calls = 100;
  // Mean call arrival rate (calls per simulated second); interarrivals are
  // exponential, so the churn has realistic burstiness.
  double arrivals_per_s = 50.0;
  // Uniform hold-time range: how long a call stays up after its setup
  // grace before the caller hangs up.
  SimDuration hold_min{500'000};
  SimDuration hold_max{2'000'000};
  // Fraction of calls routed through one relay/flowlink box.
  double flowlink_fraction = 0.5;
  // Fraction of calls that run under an individual fault plan.
  double fault_fraction = 0.0;
  // Fault shape for faulty calls. `active_for` is interpreted relative to
  // the call's arrival (PerCallFaultRouter shifts time), so every faulty
  // call sees the same fault window over its own lifetime.
  FaultSpec fault_spec = defaultCallFaults();

  [[nodiscard]] static FaultSpec defaultCallFaults() {
    FaultSpec spec;
    spec.drop_rate = 0.15;
    spec.duplicate_rate = 0.05;
    spec.reorder_rate = 0.05;
    spec.active_for = SimDuration{2'000'000};
    return spec;
  }
};

// One call, fully determined at generation time.
struct CallSpec {
  std::uint64_t id = 0;
  GoalKind left = GoalKind::closeSlot;
  GoalKind right = GoalKind::closeSlot;
  std::size_t flowlinks = 0;  // 0 or 1 relay boxes on the path
  SimTime arrival;
  SimDuration hold{0};
  std::uint64_t seed = 0;  // per-call seed (fault plan etc.)
  bool faulty = false;
  const char* type_name = "";

  // Box names are "c<id>.L" / "c<id>.F" / "c<id>.R": the call id prefix is
  // how per-call fault routing and trace filtering find a call's boxes.
  [[nodiscard]] std::string leftName() const { return prefix() + ".L"; }
  [[nodiscard]] std::string relayName() const { return prefix() + ".F"; }
  [[nodiscard]] std::string rightName() const { return prefix() + ".R"; }
  [[nodiscard]] std::string probeName() const { return prefix(); }
  [[nodiscard]] std::string prefix() const { return "c" + std::to_string(id); }
};

// Workload-wide fault-activity horizon: the last instant any call's
// arrival-relative fault window can still be open. Every shard's fault
// router — on every worker process — must be handed the horizon of the
// FULL call set, not of its own slice, so refresh-tick lifetimes stay
// invariant under any placement of calls across shards and workers.
[[nodiscard]] SimTime faultHorizon(const std::vector<CallSpec>& calls,
                                   const WorkloadSpec& spec);

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadSpec spec) : spec_(std::move(spec)) {}

  // Expand the spec into its call set; pure function of the spec.
  [[nodiscard]] std::vector<CallSpec> generate() const;

  [[nodiscard]] const WorkloadSpec& spec() const noexcept { return spec_; }

 private:
  WorkloadSpec spec_;
};

}  // namespace cmc::load
