// The boxes a generated call is built from.
//
// Each call instantiates two LoadEndpointBoxes (left and right parties, each
// carrying one of the §V endpoint goals) and, for 1-flowlink calls, one
// LoadRelayBox between them (the call-forwarding relay idiom: incoming
// channel on one side, a requested channel on the other, a flowlink joining
// the two slots). The boxes contain no load-runtime smarts: they are plain
// Box subclasses exercising the same goal primitives as the hand-written
// examples, which is the point — the load runtime stresses the production
// protocol stack, not a simplified stand-in.
//
// Determinism note: nothing in these boxes derives behavior from BoxId.
// BoxIds are allocated per simulator in registration order, which depends on
// how calls are sharded; goals instead use PathSystem::makeGoal's
// end-indexed descriptor spaces, so a call behaves identically whichever
// shard it lands on.
#pragma once

#include <string>
#include <utility>

#include "core/box.hpp"
#include "core/path.hpp"

namespace cmc::load {

// One party of a call: owns a single slot on the call's channel and attaches
// its configured goal the moment the channel materializes. The left party
// dials; the right party answers an incoming channel.
class LoadEndpointBox : public Box {
 public:
  LoadEndpointBox(BoxId id, std::string name, GoalKind kind, PathEnd end)
      : Box(id, std::move(name)), kind_(kind), end_(end) {}

  // Caller side: request the call's channel toward `target` (the peer
  // endpoint, or the relay for 1-flowlink calls).
  void dial(const std::string& target) { requestChannel(target, 1, "call"); }

  // Caller-side teardown; the runtime propagates the teardown meta to the
  // other end (and the relay folds its far leg in onChannelDown).
  void hangUp() {
    if (channel_.valid() && hasChannel(channel_)) destroyChannel(channel_);
    channel_ = ChannelId{};
    slot_ = SlotId{};
  }

  [[nodiscard]] GoalKind kind() const noexcept { return kind_; }
  // The call's channel end is up and the slot exists.
  [[nodiscard]] bool ready() const noexcept {
    return slot_.valid() && channelOf(slot_).valid();
  }
  [[nodiscard]] SlotId callSlot() const noexcept { return slot_; }
  // Quiescence predicates for the call's §V rest state.
  [[nodiscard]] bool atGoal() const { return ready() && goalSatisfied(slot_); }
  [[nodiscard]] bool closedAtRest() const { return ready() && isClosed(slot_); }

 protected:
  void onChannelUp(ChannelId channel, const std::string& /*tag*/) override {
    adopt(channel);
  }
  void onIncomingChannel(ChannelId channel, const std::string& /*peer*/) override {
    adopt(channel);
  }
  void onChannelDown(ChannelId channel) override {
    if (channel == channel_) {
      channel_ = ChannelId{};
      slot_ = SlotId{};
    }
  }

 private:
  void adopt(ChannelId channel) {
    if (slot_.valid()) return;  // one call channel per endpoint
    channel_ = channel;
    for (SlotId s : slotsOf(channel)) {
      slot_ = s;
      setGoal(s, PathSystem::makeGoal(kind_, end_));
    }
  }

  GoalKind kind_;
  PathEnd end_;
  ChannelId channel_{};
  SlotId slot_{};
};

// The 1-flowlink relay: accepts the caller's channel, opens a second leg to
// the far endpoint, and flowlinks the two slots so signals and media
// negotiation pass through (paper Fig. 6 structure). Either leg going down
// folds the other, propagating teardown along the path.
class LoadRelayBox : public Box {
 public:
  LoadRelayBox(BoxId id, std::string name, std::string right_target)
      : Box(id, std::move(name)), right_target_(std::move(right_target)) {}

  // Both legs up and the flowlink attached.
  [[nodiscard]] bool linked() const noexcept {
    return in_slot_.valid() && out_slot_.valid();
  }
  [[nodiscard]] SlotId inSlot() const noexcept { return in_slot_; }
  [[nodiscard]] SlotId outSlot() const noexcept { return out_slot_; }

 protected:
  void onIncomingChannel(ChannelId channel, const std::string& /*peer*/) override {
    if (in_slot_.valid()) return;
    const auto slots = slotsOf(channel);
    if (slots.empty()) return;
    in_slot_ = slots.front();
    requestChannel(right_target_, 1, "out");
  }

  void onChannelUp(ChannelId channel, const std::string& tag) override {
    if (tag != "out" || out_slot_.valid()) return;
    const auto slots = slotsOf(channel);
    if (slots.empty()) return;
    out_slot_ = slots.front();
    if (in_slot_.valid()) linkSlots(in_slot_, out_slot_);
  }

  void onChannelDown(ChannelId /*channel*/) override {
    // Whichever leg died first, fold the survivor so the far party sees the
    // teardown too (CallForwardingBox does the same).
    if (in_slot_.valid() && !channelOf(in_slot_).valid()) {
      in_slot_ = SlotId{};
      if (out_slot_.valid() && channelOf(out_slot_).valid()) {
        destroyChannel(channelOf(out_slot_));
      }
      out_slot_ = SlotId{};
    } else if (out_slot_.valid() && !channelOf(out_slot_).valid()) {
      out_slot_ = SlotId{};
      if (in_slot_.valid() && channelOf(in_slot_).valid()) {
        destroyChannel(channelOf(in_slot_));
      }
      in_slot_ = SlotId{};
    }
  }

 private:
  std::string right_target_;
  SlotId in_slot_{};
  SlotId out_slot_{};
};

}  // namespace cmc::load
