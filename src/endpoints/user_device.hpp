// UserDeviceBox: a telephone, laptop, or television.
//
// A user device is a media endpoint that acts autonomously (paper Section
// I): it can request connections at any time and accept or decline offered
// ones. Its media behavior is entirely the composition of the goal
// primitives — per the paper's Section V assumption, endpoints are
// programmed with openSlot/closeSlot/holdSlot, with the user free to choose
// mute flags.
//
//   placeCall(target)  create a signaling channel toward `target` and put
//                      an openSlot on its tunnel;
//   accept policy      autoAccept binds a holdSlot to every incoming
//                      tunnel immediately; manual waits for acceptCall();
//   hangUp()           destroy the channel (single-medium devices tear the
//                      whole channel down rather than closeSlot, as in the
//                      paper's Click-to-Dial discussion);
//   setMute(in, out)   the modify event of Fig. 5.
//
// The device keeps its MediaEndpoint in lock-step with its single active
// slot: sending follows the selector it last sent, listening follows the
// selector it last received.
#pragma once

#include <functional>

#include "core/box.hpp"
#include "endpoints/media_sync.hpp"

namespace cmc {

class UserDeviceBox : public Box {
 public:
  enum class AcceptPolicy { autoAccept, manual };

  UserDeviceBox(BoxId id, std::string name, MediaNetwork& media_network,
                EventLoop& loop, MediaAddress media_addr,
                AcceptPolicy policy = AcceptPolicy::autoAccept,
                std::vector<Codec> codecs = {Codec::g711u, Codec::g726})
      : Box(id, std::move(name)),
        media_(EndpointId{id.value()}, media_addr, media_network, loop),
        policy_(policy) {
    intent_ = MediaIntent::endpoint(media_addr, std::move(codecs));
    ids_ = DescriptorFactory{id.value()};
  }

  // ---- user actions -------------------------------------------------
  // Call another box (device or server) by name.
  void placeCall(const std::string& target) { requestChannel(target, 1, "call"); }

  // Originate a call on the device's permanent line channel (e.g. a PBX
  // extension going off-hook): put an openSlot on the line tunnel.
  void callOnLine() {
    if (!line_channel_.valid()) return;
    for (SlotId s : slotsOf(line_channel_)) {
      if (slotState(s) == ProtocolState::closed) {
        setGoal(s, OpenSlotGoal{Medium::audio, intent_, ids_});
        active_slot_ = s;
        return;
      }
    }
  }

  // Accept the ringing channel (manual policy).
  void acceptCall() {
    if (!ringing_.valid()) return;
    bindHold(ringing_);
    ringing_ = ChannelId{};
  }

  // Decline the ringing channel.
  void declineCall() {
    if (!ringing_.valid()) return;
    sendMeta(ringing_, MetaSignal{MetaKind::unavailable, "", ""});
    for (SlotId s : slotsOf(ringing_)) setGoal(s, CloseSlotGoal{});
    ringing_ = ChannelId{};
  }

  // A busy device reports unavailable and rejects incoming channels.
  void setBusy(bool busy) noexcept { busy_ = busy; }

  // Tear down the current call's channel entirely.
  void hangUp() {
    for (ChannelId ch : activeChannels()) destroyChannel(ch);
    syncMedia();
  }

  // The modify event: change this user's mute flags.
  void setMute(bool mute_in, bool mute_out) {
    intent_.muteIn = mute_in;
    intent_.muteOut = mute_out;
    if (active_slot_.valid()) setSlotMute(active_slot_, mute_in, mute_out);
  }

  // Mobility (paper footnote 4, Section X-F): the device moved to a new
  // media address mid-call. A fresh descriptor re-points the far end
  // without tearing the channel down.
  void migrate(MediaAddress addr) {
    media_.rebind(addr);
    intent_.addr = addr;
    if (active_slot_.valid()) setSlotAddress(active_slot_, addr);
    syncMedia();
  }

  // Unilateral codec change mid-episode (paper Section VI-B); returns false
  // if the far end does not offer `codec`.
  bool switchCodec(Codec codec) {
    if (!active_slot_.valid()) return false;
    const bool ok = reselectSlotCodec(active_slot_, codec);
    if (ok) syncMedia();
    return ok;
  }

  // ---- observation ----------------------------------------------------
  [[nodiscard]] MediaEndpoint& media() noexcept { return media_; }
  [[nodiscard]] const MediaEndpoint& media() const noexcept { return media_; }
  [[nodiscard]] bool inCall() const {
    return active_slot_.valid() && slotState(active_slot_) == ProtocolState::flowing;
  }
  [[nodiscard]] bool ringing() const noexcept { return ringing_.valid(); }
  [[nodiscard]] SlotId activeSlot() const noexcept { return active_slot_; }
  [[nodiscard]] const MediaIntent& intent() const noexcept { return intent_; }

  // Observer hook for examples/tests.
  std::function<void(const std::string& event)> onUserEvent;

 protected:
  void onChannelUp(ChannelId channel, const std::string& tag) override {
    if (tag == "call") {
      for (SlotId s : slotsOf(channel)) {
        setGoal(s, OpenSlotGoal{Medium::audio, intent_, ids_});
        active_slot_ = s;
      }
      return;
    }
    // Statically configured channel (e.g. the permanent line to a PBX):
    // hold it so incoming calls are answered when the user is willing.
    line_channel_ = channel;
    if (policy_ == AcceptPolicy::autoAccept) bindHold(channel);
  }

  void onIncomingChannel(ChannelId channel, const std::string&) override {
    if (busy_) {
      sendMeta(channel, MetaSignal{MetaKind::unavailable, "", ""});
      for (SlotId s : slotsOf(channel)) setGoal(s, CloseSlotGoal{});
      return;
    }
    if (policy_ == AcceptPolicy::autoAccept) {
      bindHold(channel);
    } else {
      // The device is reachable and now alerting its user.
      sendMeta(channel, MetaSignal{MetaKind::available, "", ""});
      ringing_ = channel;
      notify("ringing");
    }
  }

  void onChannelDown(ChannelId channel) override {
    if (ringing_ == channel) ringing_ = ChannelId{};
    if (channelOf(active_slot_) == ChannelId{}) active_slot_ = SlotId{};
    syncMedia();
    notify("channel-down");
  }

  void onSlotActivity(SlotId slot) override {
    if (slotState(slot) == ProtocolState::flowing) active_slot_ = slot;
    syncMedia();
  }

  void onCrashRestart() override {
    // Volatile call-session state died with the box; the re-attached goals
    // (Box::crashRestart) rebuild the call, and syncMedia falls back to
    // silence until a slot flows again.
    ringing_ = ChannelId{};
    syncMedia();
    notify("restarted");
  }

 private:
  void bindHold(ChannelId channel) {
    for (SlotId s : slotsOf(channel)) {
      setGoal(s, HoldSlotGoal{intent_, ids_});
      active_slot_ = s;
    }
    syncMedia();
  }

  [[nodiscard]] std::vector<ChannelId> activeChannels() const {
    std::vector<ChannelId> out;
    if (active_slot_.valid()) {
      ChannelId ch = channelOf(active_slot_);
      if (ch.valid()) out.push_back(ch);
    }
    if (ringing_.valid()) out.push_back(ringing_);
    return out;
  }

  void syncMedia() {
    if (active_slot_.valid() && channelOf(active_slot_).valid()) {
      const SlotEndpoint& s = slot(active_slot_);
      media_.setSending(sendStateOf(s));
      media_.setListening(listenStateOf(s));
    } else {
      media_.setSending(std::nullopt);
      media_.setListening({});
    }
  }

  void notify(const std::string& event) {
    if (onUserEvent) onUserEvent(event);
  }

  MediaEndpoint media_;
  AcceptPolicy policy_;
  MediaIntent intent_;
  DescriptorFactory ids_;
  SlotId active_slot_;
  ChannelId ringing_;
  ChannelId line_channel_;
  bool busy_ = false;
};

}  // namespace cmc
