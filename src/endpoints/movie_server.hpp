// MovieServerBox: the streaming source of the collaborative-television
// scenario (paper Fig. 8).
//
// One signaling channel from a collaboration box is associated in the
// server with one movie and one time pointer; every tunnel of that channel
// carries a media stream of the same movie at the same point — video or
// audio in different codecs/languages for different devices. Pause/play/
// seek arrive as custom meta-signals on the channel and affect all of its
// tunnels at once, which is what makes the viewing collaborative.
//
//   tag "load",  payload "<movie-name>"
//   tag "pause" / "play"
//   tag "seek",  payload "<seconds>"
#pragma once

#include <charconv>

#include "core/box.hpp"
#include "endpoints/media_sync.hpp"

namespace cmc {

class MovieServerBox : public Box {
 public:
  MovieServerBox(BoxId id, std::string name, MediaNetwork& media_network,
                 EventLoop& loop, MediaAddress base_addr,
                 std::uint32_t max_streams = 16)
      : Box(id, std::move(name)), loop_(loop) {
    for (std::uint32_t i = 0; i < max_streams; ++i) {
      MediaAddress addr = base_addr;
      addr.port = static_cast<std::uint16_t>(base_addr.port + i);
      streams_.push_back(std::make_unique<MediaEndpoint>(
          EndpointId{id.value() * 100 + i}, addr, media_network, loop));
    }
    ids_ = DescriptorFactory{id.value()};
  }

  struct Session {
    std::string movie;
    double position_s = 0;      // time pointer within the movie
    bool playing = false;
    SimTime position_as_of;     // when position_s was last fixed
  };

  [[nodiscard]] const Session* session(ChannelId channel) const {
    auto it = sessions_.find(channel);
    return it == sessions_.end() ? nullptr : &it->second;
  }

  // Current time pointer, accounting for play time since the last update.
  [[nodiscard]] double positionOf(ChannelId channel) const {
    const Session* s = session(channel);
    if (s == nullptr) return 0;
    if (!s->playing) return s->position_s;
    return s->position_s +
           std::chrono::duration<double>(loop_.now() - s->position_as_of).count();
  }

 protected:
  void onIncomingChannel(ChannelId channel, const std::string&) override {
    Session session;
    session.position_as_of = loop_.now();
    sessions_[channel] = session;
    const auto slots = slotsOf(channel);
    for (SlotId s : slots) {
      if (next_stream_ >= streams_.size()) break;
      const std::size_t idx = next_stream_++;
      stream_of_[s] = idx;
      MediaIntent intent = MediaIntent::endpoint(
          streams_[idx]->address(),
          {Codec::g711u, Codec::g726, Codec::mpeg2, Codec::h263});
      // A movie stream is one-way: the server sends, it does not receive.
      intent.muteIn = true;
      setGoal(s, HoldSlotGoal{intent, ids_});
    }
  }

  void onSlotActivity(SlotId slot) override {
    auto it = stream_of_.find(slot);
    if (it == stream_of_.end()) return;
    syncStream(it->second, slot);
  }

  void onChannelDown(ChannelId channel) override {
    sessions_.erase(channel);
    for (auto it = stream_of_.begin(); it != stream_of_.end();) {
      if (!channelOf(it->first).valid()) {
        streams_[it->second]->setSending(std::nullopt);
        it = stream_of_.erase(it);
      } else {
        ++it;
      }
    }
  }

  void onMeta(ChannelId channel, const MetaSignal& meta) override {
    auto it = sessions_.find(channel);
    if (it == sessions_.end() || meta.kind != MetaKind::custom) return;
    Session& session = it->second;
    if (meta.tag == "load") {
      session.movie = meta.payload;
      session.position_s = 0;
      session.position_as_of = loop_.now();
    } else if (meta.tag == "play") {
      session.position_s = positionOf(channel);
      session.position_as_of = loop_.now();
      session.playing = true;
      resyncChannel(channel);
    } else if (meta.tag == "pause") {
      session.position_s = positionOf(channel);
      session.position_as_of = loop_.now();
      session.playing = false;
      resyncChannel(channel);
    } else if (meta.tag == "seek") {
      double pos = 0;
      std::from_chars(meta.payload.data(),
                      meta.payload.data() + meta.payload.size(), pos);
      session.position_s = pos;
      session.position_as_of = loop_.now();
    }
  }

 private:
  void syncStream(std::size_t idx, SlotId slot) {
    auto it = sessions_.find(channelOf(slot));
    const bool playing = it != sessions_.end() && it->second.playing;
    const SlotEndpoint& s = this->slot(slot);
    streams_[idx]->setSending(playing ? sendStateOf(s) : std::nullopt);
    streams_[idx]->setListening(listenStateOf(s));
  }

  void resyncChannel(ChannelId channel) {
    for (const auto& [slot, idx] : stream_of_) {
      if (channelOf(slot) == channel) syncStream(idx, slot);
    }
  }

  EventLoop& loop_;
  std::vector<std::unique_ptr<MediaEndpoint>> streams_;
  DescriptorFactory ids_;
  std::size_t next_stream_ = 0;
  std::map<SlotId, std::size_t> stream_of_;
  std::map<ChannelId, Session> sessions_;
};

}  // namespace cmc
