// Glue between a slot's protocol state and the media plane.
//
// The paper (Section VI-B) fixes exactly when media may move:
//   * an endpoint may SEND as soon as it has sent a selector with a real
//     codec — the selector names the codec and the remote descriptor names
//     the destination address;
//   * an endpoint should be READY TO RECEIVE as soon as it has received a
//     selector with a real codec (the relaxed synchronization of footnote
//     5: packets racing ahead of the selector are clipped).
#pragma once

#include <set>

#include "media/endpoint.hpp"
#include "protocol/slot_endpoint.hpp"

namespace cmc {

// Compute the sending state a slot currently authorizes, if any.
[[nodiscard]] inline std::optional<MediaEndpoint::SendState> sendStateOf(
    const SlotEndpoint& slot) {
  if (slot.state() != ProtocolState::flowing) return std::nullopt;
  if (!slot.remoteDescriptor() || !slot.lastSelectorSent()) return std::nullopt;
  const Selector& sel = *slot.lastSelectorSent();
  if (sel.answersDescriptor != slot.remoteDescriptor()->id || sel.isNoMedia()) {
    return std::nullopt;
  }
  return MediaEndpoint::SendState{slot.remoteDescriptor()->addr, sel.codec};
}

// Compute the codec set a slot currently authorizes this party to accept.
[[nodiscard]] inline std::set<Codec> listenStateOf(const SlotEndpoint& slot) {
  if (slot.state() != ProtocolState::flowing) return {};
  if (!slot.lastSelectorReceived()) return {};
  const Selector& sel = *slot.lastSelectorReceived();
  if (sel.answersDescriptor != slot.lastDescriptorSent() || sel.isNoMedia()) {
    return {};
  }
  return {sel.codec};
}

}  // namespace cmc
