// Media resources: tone generator and audio-signaling voice resource.
//
// Media-processing resources are endpoints too (paper Section I): they
// source or sink media under the direction of application servers. Both
// resources here accept whatever is offered (holdSlot per tunnel) — the
// deciding is done upstream by feature boxes.
#pragma once

#include <functional>

#include "core/box.hpp"
#include "endpoints/media_sync.hpp"

namespace cmc {

// ToneGeneratorBox: plays a tone (busy, ringback, ...) to whoever connects
// a media channel to it. The paper's Click-to-Dial box uses one because
// devices often cannot generate tones locally when playing the called-party
// role (Fig. 6, footnote 3). The "tone" is identified by this resource's
// EndpointId appearing among a listener's audible sources.
class ToneGeneratorBox : public Box {
 public:
  ToneGeneratorBox(BoxId id, std::string name, MediaNetwork& media_network,
                   EventLoop& loop, MediaAddress media_addr)
      : Box(id, std::move(name)),
        media_(EndpointId{id.value()}, media_addr, media_network, loop) {
    intent_ = MediaIntent::endpoint(media_addr, {Codec::g711u, Codec::g726});
    // A tone generator only talks; it need not listen.
    intent_.muteIn = true;
    ids_ = DescriptorFactory{id.value()};
  }

  [[nodiscard]] MediaEndpoint& media() noexcept { return media_; }
  [[nodiscard]] EndpointId toneId() const noexcept { return media_.id(); }

 protected:
  void onIncomingChannel(ChannelId channel, const std::string&) override {
    for (SlotId s : slotsOf(channel)) setGoal(s, HoldSlotGoal{intent_, ids_});
  }

  void onChannelDown(ChannelId) override { sync(); }

  void onSlotActivity(SlotId slot) override {
    last_active_ = slot;
    sync();
  }

 private:
  void sync() {
    if (last_active_.valid() && channelOf(last_active_).valid()) {
      media_.setSending(sendStateOf(this->slot(last_active_)));
      media_.setListening(listenStateOf(this->slot(last_active_)));
    } else {
      media_.setSending(std::nullopt);
    }
  }

  MediaEndpoint media_;
  MediaIntent intent_;
  DescriptorFactory ids_;
  SlotId last_active_;
};

// VoiceResourceBox: the audio-signaling user interface of the prepaid-card
// feature (V in the paper's Figs. 2 and 3). It prompts the caller over the
// media channel (its announcements appear as this resource's EndpointId in
// the caller's audible set) and "listens" for touch-tone authorization: once
// it has heard the caller's media for `authorizeAfter`, it reports success
// to its controlling server with a custom meta-signal "paid".
class VoiceResourceBox : public Box {
 public:
  VoiceResourceBox(BoxId id, std::string name, MediaNetwork& media_network,
                   EventLoop& loop, MediaAddress media_addr)
      : Box(id, std::move(name)),
        loop_(loop),
        media_(EndpointId{id.value()}, media_addr, media_network, loop) {
    intent_ = MediaIntent::endpoint(media_addr, {Codec::g711u, Codec::g726});
    ids_ = DescriptorFactory{id.value()};
  }

  [[nodiscard]] MediaEndpoint& media() noexcept { return media_; }
  [[nodiscard]] const MediaEndpoint& media() const noexcept { return media_; }
  [[nodiscard]] bool authorized() const noexcept { return paid_sent_; }
  [[nodiscard]] int authorizations() const noexcept { return authorizations_; }

  // How long the resource must continuously hear the caller before treating
  // the funds as verified (stands in for playing the announcement and
  // collecting the touch-tone authorization).
  SimDuration authorizeAfter{2'000'000};  // 2 s

 protected:
  void onIncomingChannel(ChannelId channel, const std::string&) override {
    control_channel_ = channel;
    for (SlotId s : slotsOf(channel)) setGoal(s, HoldSlotGoal{intent_, ids_});
    setTimer(kCheckInterval, "authcheck");
  }

  void onChannelDown(ChannelId channel) override {
    if (channel == control_channel_) control_channel_ = ChannelId{};
    media_.setSending(std::nullopt);
  }

  void onSlotActivity(SlotId slot) override {
    last_active_ = slot;
    if (last_active_.valid()) {
      media_.setSending(sendStateOf(this->slot(last_active_)));
      media_.setListening(listenStateOf(this->slot(last_active_)));
    }
  }

  void onTimer(const std::string& tag) override {
    if (tag != "authcheck") return;
    if (!control_channel_.valid()) return;  // feature gone; stop polling
    const bool hearing = !media_.audibleSources(kCheckInterval * 3).empty();
    if (hearing) {
      silent_checks_ = 0;
      if (!first_heard_) first_heard_ = loop_.now();
      if (!paid_sent_ && loop_.now() - *first_heard_ >= authorizeAfter) {
        paid_sent_ = true;
        ++authorizations_;
        sendMeta(control_channel_, MetaSignal{MetaKind::custom, "paid", ""});
      }
    } else {
      first_heard_.reset();
      // Prolonged silence means the collection episode ended (the feature
      // reconnected the caller); re-arm for the next episode.
      if (++silent_checks_ >= 3) paid_sent_ = false;
    }
    setTimer(kCheckInterval, "authcheck");
  }

 private:
  static constexpr SimDuration kCheckInterval{100'000};  // 100 ms

  EventLoop& loop_;
  MediaEndpoint media_;
  MediaIntent intent_;
  DescriptorFactory ids_;
  ChannelId control_channel_;
  SlotId last_active_;
  std::optional<SimTime> first_heard_;
  int silent_checks_ = 0;
  bool paid_sent_ = false;
  int authorizations_ = 0;
};

}  // namespace cmc
