// BridgeBox: the signaling face of a conference bridge (paper Fig. 7).
//
// The conference server connects each user to the bridge through a tunnel;
// the bridge terminates each tunnel with a holdSlot and maps it onto one
// media leg of a ConferenceBridge. Toward the bridge a leg carries one
// user's voice; away from it, the mix chosen by the mix matrix.
//
// Partial muting (paper Section IV-B) cannot be expressed with the four
// primitives — it is the bridge's business. The controlling server sets the
// matrix with standardized meta-signals (the paper cites JSR 309):
//   tag "mix",  payload "<from>,<to>,<0|1>"  — per-edge audibility
//   tag "mode", payload "full" | "business:<spk>" | "emergency:<caller>" |
//               "whisper:<agent>,<customer>,<coach>"
#pragma once

#include <charconv>
#include <sstream>

#include "core/box.hpp"
#include "endpoints/media_sync.hpp"
#include "media/bridge.hpp"

namespace cmc {

class BridgeBox : public Box {
 public:
  BridgeBox(BoxId id, std::string name, MediaNetwork& media_network,
            EventLoop& loop, MediaAddress base_addr, std::uint32_t max_legs = 8)
      : Box(id, std::move(name)), bridge_(media_network, loop) {
    for (std::uint32_t i = 0; i < max_legs; ++i) {
      MediaAddress addr = base_addr;
      addr.port = static_cast<std::uint16_t>(base_addr.port + i);
      bridge_.addLeg(addr);
    }
    ids_ = DescriptorFactory{id.value()};
  }

  [[nodiscard]] ConferenceBridge& bridge() noexcept { return bridge_; }

 protected:
  void onIncomingChannel(ChannelId channel, const std::string&) override {
    // One media leg per tunnel, in tunnel order.
    const auto slots = slotsOf(channel);
    for (std::size_t t = 0; t < slots.size(); ++t) {
      if (next_leg_ >= bridge_.legCount()) break;
      const std::size_t leg = next_leg_++;
      leg_of_[slots[t]] = leg;
      MediaIntent intent = MediaIntent::endpoint(
          bridge_.legAddress(leg), {Codec::g711u, Codec::g726});
      setGoal(slots[t], HoldSlotGoal{intent, ids_});
    }
  }

  void onSlotActivity(SlotId slot) override {
    auto it = leg_of_.find(slot);
    if (it == leg_of_.end()) return;
    const SlotEndpoint& s = this->slot(slot);
    bridge_.setLegSending(it->second, sendStateOf(s));
    bridge_.setLegListening(it->second, listenStateOf(s));
  }

  void onChannelDown(ChannelId channel) override {
    (void)channel;
    // Slots are gone; quiet any legs whose slot vanished.
    for (auto it = leg_of_.begin(); it != leg_of_.end();) {
      if (!channelOf(it->first).valid()) {
        bridge_.setLegSending(it->second, std::nullopt);
        bridge_.setLegListening(it->second, {});
        it = leg_of_.erase(it);
      } else {
        ++it;
      }
    }
  }

  void onMeta(ChannelId, const MetaSignal& meta) override {
    if (meta.kind != MetaKind::custom) return;
    if (meta.tag == "mix") {
      applyMixEdge(meta.payload);
    } else if (meta.tag == "mode") {
      applyMode(meta.payload);
    }
  }

 private:
  void applyMixEdge(const std::string& payload) {
    std::size_t from = 0, to = 0;
    int on = 1;
    std::istringstream iss(payload);
    char comma;
    if (iss >> from >> comma >> to >> comma >> on) {
      if (from < bridge_.legCount() && to < bridge_.legCount()) {
        bridge_.setAudible(from, to, on != 0);
      }
    }
  }

  void fullMesh() {
    for (std::size_t i = 0; i < bridge_.legCount(); ++i) {
      for (std::size_t j = 0; j < bridge_.legCount(); ++j) {
        bridge_.setAudible(i, j, i != j);
      }
    }
  }

  void applyMode(const std::string& payload) {
    const auto colon = payload.find(':');
    const std::string mode = payload.substr(0, colon);
    std::vector<std::size_t> args;
    if (colon != std::string::npos) {
      std::istringstream iss(payload.substr(colon + 1));
      std::string part;
      while (std::getline(iss, part, ',')) {
        std::size_t v = 0;
        std::from_chars(part.data(), part.data() + part.size(), v);
        args.push_back(v);
      }
    }
    fullMesh();
    if (mode == "full") return;
    if (mode == "business" && args.size() == 1) {
      // Large meeting: only the speaker's input reaches anyone; everyone
      // still hears the speaker, background noise from listeners is cut.
      for (std::size_t from = 0; from < bridge_.legCount(); ++from) {
        if (from == args[0]) continue;
        for (std::size_t to = 0; to < bridge_.legCount(); ++to) {
          bridge_.setAudible(from, to, false);
        }
      }
    } else if (mode == "emergency" && args.size() == 1) {
      // Emergency services: keep the caller's input, but the caller must
      // not hear what emergency personnel say to each other.
      const std::size_t caller = args[0];
      for (std::size_t from = 0; from < bridge_.legCount(); ++from) {
        if (from != caller) bridge_.setAudible(from, caller, false);
      }
    } else if (mode == "whisper" && args.size() == 3) {
      // Training: agent & customer hear each other; coach hears both; the
      // customer cannot hear the coach; the agent hears the coach whisper.
      const std::size_t agent = args[0], customer = args[1], coach = args[2];
      fullMesh();
      bridge_.setAudible(coach, customer, false);
      bridge_.setAudible(agent, customer, true);
      bridge_.setAudible(customer, agent, true);
      bridge_.setAudible(coach, agent, true);
    }
  }

  ConferenceBridge bridge_;
  DescriptorFactory ids_;
  std::size_t next_leg_ = 0;
  std::map<SlotId, std::size_t> leg_of_;
};

}  // namespace cmc
