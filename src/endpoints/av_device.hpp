// AvDeviceBox: a multi-stream audio/video device (television, laptop,
// headphones) for the collaborative-television scenario (paper Fig. 8).
//
// Unlike a telephone, such a device terminates several media channels at
// once — e.g. one video and one audio stream of a shared movie — each on
// its own tunnel with its own media endpoint and codec capabilities.
// Different devices deliberately differ in capability (the paper's family
// TV vs. the daughter's laptop use different codecs/qualities); the
// unilateral codec choice rule then picks per-receiver codecs with no
// negotiation.
#pragma once

#include "core/box.hpp"
#include "endpoints/media_sync.hpp"

namespace cmc {

class AvDeviceBox : public Box {
 public:
  struct StreamSpec {
    Medium medium = Medium::audio;
    std::vector<Codec> codecs;
  };

  AvDeviceBox(BoxId id, std::string name, MediaNetwork& media_network,
              EventLoop& loop, MediaAddress base_addr,
              std::vector<StreamSpec> streams)
      : Box(id, std::move(name)), specs_(std::move(streams)) {
    for (std::size_t i = 0; i < specs_.size(); ++i) {
      MediaAddress addr = base_addr;
      addr.port = static_cast<std::uint16_t>(base_addr.port + i);
      endpoints_.push_back(std::make_unique<MediaEndpoint>(
          EndpointId{id.value() * 100 + i}, addr, media_network, loop));
    }
    ids_ = DescriptorFactory{id.value()};
  }

  [[nodiscard]] MediaEndpoint& stream(std::size_t i) { return *endpoints_[i]; }
  [[nodiscard]] const MediaEndpoint& stream(std::size_t i) const {
    return *endpoints_[i];
  }
  [[nodiscard]] std::size_t streamCount() const noexcept {
    return endpoints_.size();
  }

  // Open stream `i` on the device's (single) signaling channel: used when
  // the device initiates — e.g. the TV pulling the movie streams.
  void openStream(std::size_t i) {
    if (!channel_.valid()) return;
    const auto slots = slotsOf(channel_);
    if (i >= slots.size() || i >= specs_.size()) return;
    bound_[slots[i]] = i;
    setGoal(slots[i],
            OpenSlotGoal{specs_[i].medium, intentFor(i), ids_});
  }

  [[nodiscard]] ChannelId channel() const noexcept { return channel_; }

 protected:
  void onIncomingChannel(ChannelId channel, const std::string&) override {
    adopt(channel);
    // Accept whatever streams are offered, one tunnel per stream.
    const auto slots = slotsOf(channel);
    for (std::size_t i = 0; i < slots.size() && i < specs_.size(); ++i) {
      bound_[slots[i]] = i;
      setGoal(slots[i], HoldSlotGoal{intentFor(i), ids_});
    }
  }

  void onChannelUp(ChannelId channel, const std::string&) override {
    adopt(channel);
    const auto slots = slotsOf(channel);
    for (std::size_t i = 0; i < slots.size() && i < specs_.size(); ++i) {
      bound_[slots[i]] = i;
      setGoal(slots[i], HoldSlotGoal{intentFor(i), ids_});
    }
  }

  void onSlotActivity(SlotId slot) override {
    auto it = bound_.find(slot);
    if (it == bound_.end()) return;
    const SlotEndpoint& s = this->slot(slot);
    endpoints_[it->second]->setSending(sendStateOf(s));
    endpoints_[it->second]->setListening(listenStateOf(s));
  }

  void onChannelDown(ChannelId channel) override {
    if (channel == channel_) channel_ = ChannelId{};
    for (auto it = bound_.begin(); it != bound_.end();) {
      if (!channelOf(it->first).valid()) {
        endpoints_[it->second]->setSending(std::nullopt);
        endpoints_[it->second]->setListening({});
        it = bound_.erase(it);
      } else {
        ++it;
      }
    }
  }

 private:
  [[nodiscard]] MediaIntent intentFor(std::size_t i) const {
    MediaIntent intent = MediaIntent::endpoint(endpoints_[i]->address(),
                                               specs_[i].codecs);
    return intent;
  }

  void adopt(ChannelId channel) {
    if (!channel_.valid()) channel_ = channel;
  }

  std::vector<StreamSpec> specs_;
  std::vector<std::unique_ptr<MediaEndpoint>> endpoints_;
  DescriptorFactory ids_;
  ChannelId channel_;
  std::map<SlotId, std::size_t> bound_;
};

}  // namespace cmc
