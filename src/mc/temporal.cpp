#include "mc/temporal.hpp"

#include <stack>

namespace cmc {

namespace {

// Iterative Tarjan SCC over the ¬B-subgraph. Calls `onComponent` with each
// SCC (vector of state indices) plus whether the component contains a cycle
// (more than one node, or a self-loop).
void forEachScc(const ExploreResult& graph, const StatePredicate& B,
                const std::function<void(const std::vector<std::uint32_t>&, bool)>&
                    onComponent) {
  const std::size_t n = graph.states();
  constexpr std::uint32_t kUnvisited = ~std::uint32_t{0};
  std::vector<std::uint32_t> index(n, kUnvisited);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::uint32_t> scc_stack;
  std::uint32_t next_index = 0;

  struct Frame {
    std::uint32_t v;
    std::size_t edge;
  };

  for (std::uint32_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    if (B(graph.bits[root])) continue;  // outside the ¬B subgraph

    std::stack<Frame> frames;
    frames.push(Frame{root, 0});
    index[root] = lowlink[root] = next_index++;
    scc_stack.push_back(root);
    on_stack[root] = true;

    while (!frames.empty()) {
      Frame& frame = frames.top();
      const std::uint32_t v = frame.v;
      if (frame.edge < graph.edges[v].size()) {
        const std::uint32_t w = graph.edges[v][frame.edge++];
        if (B(graph.bits[w])) continue;  // edge leaves the subgraph
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          scc_stack.push_back(w);
          on_stack[w] = true;
          frames.push(Frame{w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
        continue;
      }
      // v finished.
      if (lowlink[v] == index[v]) {
        std::vector<std::uint32_t> component;
        while (true) {
          const std::uint32_t w = scc_stack.back();
          scc_stack.pop_back();
          on_stack[w] = false;
          component.push_back(w);
          if (w == v) break;
        }
        bool has_cycle = component.size() > 1;
        if (!has_cycle) {
          for (std::uint32_t succ : graph.edges[v]) {
            if (succ == v) {
              has_cycle = true;
              break;
            }
          }
        }
        onComponent(component, has_cycle);
      }
      frames.pop();
      if (!frames.empty()) {
        Frame& parent = frames.top();
        lowlink[parent.v] = std::min(lowlink[parent.v], lowlink[v]);
      }
    }
  }
}

}  // namespace

std::optional<TemporalViolation> findLassoViolation(const ExploreResult& graph,
                                                    const StatePredicate& A,
                                                    const StatePredicate& B) {
  std::optional<TemporalViolation> violation;
  forEachScc(graph, B,
             [&](const std::vector<std::uint32_t>& component, bool has_cycle) {
               if (violation || !has_cycle) return;
               for (std::uint32_t s : component) {
                 if (!A(graph.bits[s])) {
                   violation = TemporalViolation{
                       s, "cycle avoiding the recurrent goal contains a "
                          "non-stable state"};
                   return;
                 }
               }
             });
  return violation;
}

std::optional<TemporalViolation> checkEventuallyAlways(const ExploreResult& graph,
                                                       const StatePredicate& P) {
  auto violation =
      findLassoViolation(graph, P, [](const StateBits&) { return false; });
  if (violation) violation->description = "a reachable cycle visits a ¬P state";
  return violation;
}

std::optional<TemporalViolation> checkAlwaysEventually(const ExploreResult& graph,
                                                       const StatePredicate& P) {
  auto violation =
      findLassoViolation(graph, [](const StateBits&) { return false; }, P);
  if (violation) {
    violation->description = "a reachable cycle never visits a P state";
  }
  return violation;
}

std::optional<TemporalViolation> checkStableOrRecurrent(const ExploreResult& graph,
                                                        const StatePredicate& A,
                                                        const StatePredicate& B) {
  auto violation = findLassoViolation(graph, A, B);
  if (violation) {
    violation->description =
        "a reachable cycle avoids the recurrent disjunct and leaves the "
        "stable disjunct";
  }
  return violation;
}

std::optional<TemporalViolation> checkSafety(const ExploreResult& graph) {
  for (std::uint32_t s = 0; s < graph.states(); ++s) {
    const StateBits& bits = graph.bits[s];
    // States a truncated run never expanded carry no valid predicate bits.
    // (The cycle checks above need no such guard: an unexpanded state has
    // no outgoing edges, so it can never sit on a cycle.)
    if (!bits.expanded) continue;
    if (bits.quiescent && bits.allAttached && !bits.slotsStable) {
      return TemporalViolation{
          s, "quiescent fully-attached state with a slot neither closed nor "
             "flowing"};
    }
  }
  return std::nullopt;
}

std::optional<TemporalViolation> checkSafetyTerminal(const ExploreResult& graph) {
  for (std::uint32_t s = 0; s < graph.states(); ++s) {
    const StateBits& bits = graph.bits[s];
    if (!bits.expanded || !bits.terminal) continue;
    if (!bits.slotsStable) {
      return TemporalViolation{
          s, "terminal state with a slot neither closed nor flowing "
             "(stabilization failed to repair an injected fault)"};
    }
  }
  return std::nullopt;
}

}  // namespace cmc
