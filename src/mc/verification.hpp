// The paper's verification campaign (Section VIII-A), reproduced.
//
// Twelve models: the six path types (combinations of closeSlot, openSlot,
// holdSlot at the two ends, up to symmetry) with zero flowlinks, and the
// same six with one flowlink. Each model is checked for safety and for its
// Section V specification:
//
//   close/close, close/hold : ◇□ bothClosed
//   close/open               : ◇□ ¬bothFlowing
//   open/open, open/hold     : □◇ bothFlowing
//   hold/hold                : ◇□ bothClosed ∨ □◇ bothFlowing
//
// Every model starts with chaotic initial phases per goal object, so the
// goals begin their real work in all reachable initial states of the slots
// and tunnels.
#pragma once

#include <string>
#include <vector>

#include "mc/temporal.hpp"

namespace cmc {

enum class PathSpec {
  eventuallyBothClosed,      // ◇□ bothClosed
  neverBothFlowing,          // ◇□ ¬bothFlowing
  recurrentlyBothFlowing,    // □◇ bothFlowing
  closedOrFlowing,           // ◇□ bothClosed ∨ □◇ bothFlowing
};

[[nodiscard]] std::string_view toString(PathSpec spec) noexcept;

// The Section V specification for a pair of endpoint goals.
[[nodiscard]] PathSpec specFor(GoalKind left, GoalKind right) noexcept;

struct VerificationCase {
  GoalKind left;
  GoalKind right;
  std::size_t flowlinks;
};

// The paper's 12 models.
[[nodiscard]] std::vector<VerificationCase> paperVerificationSuite();

struct VerificationOutcome {
  VerificationCase config{};
  PathSpec spec{};
  bool safety_ok = false;
  bool spec_ok = false;
  bool truncated = false;
  std::size_t states = 0;
  std::size_t transitions = 0;
  std::size_t terminals = 0;
  std::size_t bytes = 0;     // canonical-state bytes retained (memory proxy)
  double seconds = 0;
  ExploreStats stats;        // explorer observability counters
  std::string failure;       // first counterexample summary, if any

  [[nodiscard]] bool ok() const noexcept {
    return safety_ok && spec_ok && !truncated;
  }
};

// Explore and check one configuration.
[[nodiscard]] VerificationOutcome verifyPath(const VerificationCase& config,
                                             const ExploreLimits& limits = {});

// Check a spec against an already-explored graph.
[[nodiscard]] std::optional<TemporalViolation> checkSpec(
    const ExploreResult& graph, PathSpec spec);

}  // namespace cmc
