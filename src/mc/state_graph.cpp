#include "mc/state_graph.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "mc/seen_set.hpp"
#include "obs/profiler.hpp"

namespace cmc {

namespace {

StateBits bitsOf(const PathSystem& system, bool terminal) {
  StateBits bits{};
  bits.bothClosed = system.bothClosed();
  bits.bothFlowing = system.bothFlowing();
  bits.quiescent = system.quiescent();
  bool attached = true;
  for (std::uint32_t p = 0; p < system.partyCount(); ++p) {
    attached = attached && system.partyAttached(p);
  }
  bits.allAttached = attached;
  bool stable = true;
  auto slot_ok = [](const SlotEndpoint& slot) {
    return slot.state() == ProtocolState::closed ||
           slot.state() == ProtocolState::flowing;
  };
  stable = stable && slot_ok(system.endpointSlot(PathEnd::left));
  stable = stable && slot_ok(system.endpointSlot(PathEnd::right));
  for (std::size_t i = 0; i < system.flowlinkCount(); ++i) {
    stable = stable && slot_ok(system.flowlinkSlot(i, Side::A));
    stable = stable && slot_ok(system.flowlinkSlot(i, Side::B));
  }
  bits.slotsStable = stable;
  bits.terminal = terminal;
  bits.expanded = true;
  bits.left_state =
      static_cast<std::uint8_t>(system.endpointSlot(PathEnd::left).state());
  bits.right_state =
      static_cast<std::uint8_t>(system.endpointSlot(PathEnd::right).state());
  bits.media_left = system.mediaEnabled(PathEnd::left);
  bits.media_right = system.mediaEnabled(PathEnd::right);
  return bits;
}

// Per-state output of one expansion: bits plus successor indices in action
// order. Produced by workers, committed to the result single-threaded.
struct Expansion {
  std::uint32_t index = 0;
  StateBits bits{};
  bool terminal = false;
  std::vector<std::uint32_t> targets;
};

// A freshly discovered state: its system is parked here until the merge
// phase places it at its claimed index.
struct Discovery {
  std::uint32_t index;
  PathSystem system;
  std::uint32_t parent;
  std::string action;
};

struct WorkerBatch {
  std::vector<Expansion> expansions;
  std::vector<Discovery> discoveries;
};

// Expand frontier states until the shared cursor runs off the end (or the
// state budget dies). Claiming distinct frontier slots via the cursor means
// each state has exactly one expander, so writing states[index] (reset
// after expansion, to free the PathSystem early) is race-free; the states
// vector itself is never resized while workers run.
void expandFrontier(const std::vector<std::uint32_t>& frontier,
                    std::atomic<std::size_t>& cursor,
                    std::vector<std::optional<PathSystem>>& states,
                    SeenSet& seen, std::uint64_t fingerprint_mask,
                    std::atomic<bool>& out_of_budget, WorkerBatch& out) {
  for (;;) {
    const std::size_t slot = cursor.fetch_add(1, std::memory_order_relaxed);
    if (slot >= frontier.size()) return;
    if (out_of_budget.load(std::memory_order_relaxed)) return;
    const std::uint32_t index = frontier[slot];
    // Profiling sites here record only on threads with an installed table:
    // the single-thread deterministic path profiles fully; parallel workers
    // (no thread-local table) record nothing and race on nothing.
    CMC_PROF_SCOPE("mc.expand_state");
    const PathSystem& system = *states[index];
    const std::vector<PathAction> actions = system.enabledActions();
    Expansion expansion;
    expansion.index = index;
    expansion.bits = bitsOf(system, actions.empty());
    expansion.terminal = actions.empty();
    if (expansion.terminal) {
      expansion.targets.push_back(index);  // stutter
    } else {
      for (const PathAction& action : actions) {
        PathSystem successor = system;
        successor.apply(action);
        ByteWriter w;
        {
          CMC_PROF_SCOPE("mc.canonicalize");
          successor.canonicalize(w);
        }
        std::vector<std::uint8_t> bytes = w.take();
        std::uint64_t fp;
        {
          CMC_PROF_SCOPE("mc.fingerprint");
          fp = fnv1a(bytes) & fingerprint_mask;
        }
        const SeenSet::Outcome got = seen.insert(fp, std::move(bytes));
        if (got.index == SeenSet::kNoIndex) {
          out_of_budget.store(true, std::memory_order_relaxed);
          break;  // keep the edges recorded so far for this state
        }
        if (got.inserted) {
          out.discoveries.push_back(
              Discovery{got.index, std::move(successor), index, action.toString()});
        }
        expansion.targets.push_back(got.index);
      }
    }
    states[index].reset();
    out.expansions.push_back(std::move(expansion));
  }
}

}  // namespace

std::set<std::uint32_t> quiescentObservables(const ExploreResult& graph) {
  std::set<std::uint32_t> out;
  for (const StateBits& bits : graph.bits) {
    if (!bits.expanded) continue;  // truncated leftovers carry no valid bits
    if (bits.quiescent && bits.allAttached) out.insert(bits.observable());
  }
  return out;
}

std::vector<std::string> ExploreResult::traceTo(std::uint32_t state) const {
  std::vector<std::string> trace;
  std::uint32_t current = state;
  while (current != 0) {
    trace.push_back(parent_action[current]);
    current = parent[current];
  }
  std::reverse(trace.begin(), trace.end());
  return trace;
}

ExploreResult explorePath(GoalKind left, GoalKind right, std::size_t flowlinks,
                          const ExploreLimits& limits) {
  PathSystem initial(PathSystem::makeGoal(left, PathEnd::left),
                     PathSystem::makeGoal(right, PathEnd::right), flowlinks,
                     limits.defer_attach);
  initial.setChaosBudget(limits.defer_attach ? limits.chaos_budget : 0);
  initial.setModifyBudget(limits.modify_budget);
  if (limits.fault_budget > 0) {
    // Faulty exploration (docs/FAULTS.md): the adversary may drop or
    // duplicate up to fault_budget in-flight messages, and the parties run
    // in stabilization mode so the global refresh action can repair the
    // damage. Budgets live in the canonical state, so every cycle of the
    // resulting graph is fault-free: liveness verdicts read as "after
    // injection ceases, the path self-stabilizes to its Section V spec".
    initial.setFaultBudget(limits.fault_budget);
    initial.enableStabilization(true);
  }
  return explore(initial, limits);
}

ExploreResult explore(const PathSystem& initial, const ExploreLimits& limits) {
  using Clock = std::chrono::steady_clock;
  const auto start_time = Clock::now();
  auto elapsed = [](Clock::time_point since) {
    return std::chrono::duration<double>(Clock::now() - since).count();
  };

  ExploreResult result;
  const std::size_t thread_count = std::max<std::size_t>(1, limits.threads);
  // At least 1 so the initial state always gets its index.
  const std::uint32_t max_states = static_cast<std::uint32_t>(
      std::clamp<std::size_t>(limits.max_states, 1, SeenSet::kNoIndex - 1));

  SeenSet seen(max_states);
  // A state's PathSystem is only needed until expansion; the slot is freed
  // afterwards (bits, edges, and the canonical bytes in `seen` remain).
  std::vector<std::optional<PathSystem>> states;

  {
    ByteWriter w;
    initial.canonicalize(w);
    std::vector<std::uint8_t> bytes = w.take();
    const std::uint64_t fp = fnv1a(bytes) & limits.fingerprint_mask;
    seen.insert(fp, std::move(bytes));
  }
  states.emplace_back(initial);
  result.bits.push_back(StateBits{});
  result.edges.emplace_back();
  result.parent.push_back(0);
  result.parent_action.emplace_back("<init>");

  std::atomic<bool> out_of_budget{false};
  std::vector<std::uint32_t> frontier{0};

  while (!frontier.empty() && !out_of_budget.load(std::memory_order_relaxed)) {
    ++result.stats.frontier_depth;
    result.stats.peak_frontier =
        std::max(result.stats.peak_frontier, frontier.size());

    const auto expand_start = Clock::now();
    std::atomic<std::size_t> cursor{0};
    std::vector<WorkerBatch> batches(thread_count);
    {
      CMC_PROF_SCOPE("mc.expand");
      if (thread_count == 1) {
        // Deterministic fallback: frontier slots in order, indices assigned
        // in FIFO discovery order — identical to the historical explorer.
        expandFrontier(frontier, cursor, states, seen, limits.fingerprint_mask,
                       out_of_budget, batches[0]);
      } else {
        std::vector<std::thread> workers;
        workers.reserve(thread_count);
        for (std::size_t t = 0; t < thread_count; ++t) {
          workers.emplace_back([&, t] {
            expandFrontier(frontier, cursor, states, seen,
                           limits.fingerprint_mask, out_of_budget, batches[t]);
          });
        }
        for (std::thread& worker : workers) worker.join();
      }
    }
    result.stats.expand_seconds += elapsed(expand_start);

    const auto merge_start = Clock::now();
    CMC_PROF_SCOPE("mc.merge");
    const std::uint32_t total = seen.size();
    states.resize(total);
    result.bits.resize(total);  // value-init: expanded=false until committed
    result.edges.resize(total);
    result.parent.resize(total, 0);
    result.parent_action.resize(total);
    std::vector<std::uint32_t> next_frontier;
    for (WorkerBatch& batch : batches) {
      for (Discovery& d : batch.discoveries) {
        states[d.index].emplace(std::move(d.system));
        result.parent[d.index] = d.parent;
        result.parent_action[d.index] = std::move(d.action);
        next_frontier.push_back(d.index);
      }
      for (Expansion& e : batch.expansions) {
        result.bits[e.index] = e.bits;
        result.transitions += e.targets.size();
        if (e.terminal) ++result.terminals;
        result.edges[e.index] = std::move(e.targets);
      }
    }
    // Low-index-first keeps expansion near-FIFO under multiple workers (and
    // is a no-op for one worker, whose discoveries arrive already sorted).
    if (thread_count > 1) {
      std::sort(next_frontier.begin(), next_frontier.end());
    }
    frontier = std::move(next_frontier);
    result.stats.merge_seconds += elapsed(merge_start);
  }

  result.truncated = out_of_budget.load(std::memory_order_relaxed);
  result.bytes_canonical = seen.bytesRetained();
  result.seconds = elapsed(start_time);

  result.stats.threads = thread_count;
  result.stats.states = result.bits.size();
  result.stats.transitions = result.transitions;
  result.stats.terminals = result.terminals;
  result.stats.dedup_hits = seen.hits();
  result.stats.collisions = seen.collisions();
  result.stats.bytes_retained = seen.bytesRetained();
  result.stats.truncated = result.truncated;
  result.stats.seconds = result.seconds;
  return result;
}

}  // namespace cmc
