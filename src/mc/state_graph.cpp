#include "mc/state_graph.hpp"

#include <chrono>
#include <deque>

namespace cmc {

namespace {

StateBits bitsOf(const PathSystem& system, bool terminal) {
  StateBits bits{};
  bits.bothClosed = system.bothClosed();
  bits.bothFlowing = system.bothFlowing();
  bits.quiescent = system.quiescent();
  bool attached = true;
  for (std::uint32_t p = 0; p < system.partyCount(); ++p) {
    attached = attached && system.partyAttached(p);
  }
  bits.allAttached = attached;
  bool stable = true;
  auto slot_ok = [](const SlotEndpoint& slot) {
    return slot.state() == ProtocolState::closed ||
           slot.state() == ProtocolState::flowing;
  };
  stable = stable && slot_ok(system.endpointSlot(PathEnd::left));
  stable = stable && slot_ok(system.endpointSlot(PathEnd::right));
  for (std::size_t i = 0; i < system.flowlinkCount(); ++i) {
    stable = stable && slot_ok(system.flowlinkSlot(i, Side::A));
    stable = stable && slot_ok(system.flowlinkSlot(i, Side::B));
  }
  bits.slotsStable = stable;
  bits.terminal = terminal;
  bits.left_state =
      static_cast<std::uint8_t>(system.endpointSlot(PathEnd::left).state());
  bits.right_state =
      static_cast<std::uint8_t>(system.endpointSlot(PathEnd::right).state());
  bits.media_left = system.mediaEnabled(PathEnd::left);
  bits.media_right = system.mediaEnabled(PathEnd::right);
  return bits;
}

}  // namespace

std::set<std::uint32_t> quiescentObservables(const ExploreResult& graph) {
  std::set<std::uint32_t> out;
  for (const StateBits& bits : graph.bits) {
    if (bits.quiescent && bits.allAttached) out.insert(bits.observable());
  }
  return out;
}

std::vector<std::string> ExploreResult::traceTo(std::uint32_t state) const {
  std::vector<std::string> trace;
  std::uint32_t current = state;
  while (current != 0) {
    trace.push_back(parent_action[current]);
    current = parent[current];
  }
  std::reverse(trace.begin(), trace.end());
  return trace;
}

ExploreResult explorePath(GoalKind left, GoalKind right, std::size_t flowlinks,
                          const ExploreLimits& limits) {
  PathSystem initial(PathSystem::makeGoal(left, PathEnd::left),
                     PathSystem::makeGoal(right, PathEnd::right), flowlinks,
                     limits.defer_attach);
  initial.setChaosBudget(limits.defer_attach ? limits.chaos_budget : 0);
  initial.setModifyBudget(limits.modify_budget);
  if (!limits.defer_attach) {
    // Goals already attached in the constructor.
  }
  return explore(initial, limits);
}

ExploreResult explore(const PathSystem& initial, const ExploreLimits& limits) {
  const auto start_time = std::chrono::steady_clock::now();
  ExploreResult result;

  // State storage: a state's PathSystem is only needed until it has been
  // expanded, after which the slot is freed (the bits and edges remain).
  std::vector<std::optional<PathSystem>> states;
  std::unordered_map<std::uint64_t, std::uint32_t> index_of;
  index_of.reserve(1 << 16);

  auto canonicalBytes = [](const PathSystem& s) {
    ByteWriter w;
    s.canonicalize(w);
    return w.take();
  };

  {
    auto bytes = canonicalBytes(initial);
    index_of.emplace(fnv1a(bytes), 0);
    result.bytes_canonical += bytes.size();
  }
  states.emplace_back(initial);
  result.bits.push_back(StateBits{});
  result.edges.emplace_back();
  result.parent.push_back(0);
  result.parent_action.emplace_back("<init>");

  std::deque<std::uint32_t> frontier;
  frontier.push_back(0);

  while (!frontier.empty()) {
    const std::uint32_t index = frontier.front();
    frontier.pop_front();
    // Copy out the actions; applying mutates a copy of the state.
    const std::vector<PathAction> actions = states[index]->enabledActions();
    result.bits[index] = bitsOf(*states[index], actions.empty());
    if (actions.empty()) {
      ++result.terminals;
      result.edges[index].push_back(index);  // stutter
      ++result.transitions;
      states[index].reset();
      continue;
    }
    for (const PathAction& action : actions) {
      if (states.size() >= limits.max_states) {
        result.truncated = true;
        break;
      }
      PathSystem successor = *states[index];
      successor.apply(action);
      auto bytes = canonicalBytes(successor);
      const std::uint64_t fp = fnv1a(bytes);
      auto [it, inserted] =
          index_of.emplace(fp, static_cast<std::uint32_t>(states.size()));
      if (inserted) {
        result.bytes_canonical += bytes.size();
        states.emplace_back(std::move(successor));
        result.bits.push_back(StateBits{});
        result.edges.emplace_back();
        result.parent.push_back(index);
        result.parent_action.push_back(action.toString());
        frontier.push_back(it->second);
      }
      result.edges[index].push_back(it->second);
      ++result.transitions;
    }
    states[index].reset();
    if (result.truncated) break;
  }

  // States left unexpanded due to truncation keep empty bits; mark them.
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start_time)
                       .count();
  return result;
}

}  // namespace cmc
