// Collision-safe, concurrent dedup set for explored states.
//
// The explorer used to dedup states on a bare 64-bit FNV-1a fingerprint: a
// hash collision silently merged two distinct protocol states, and every
// temporal verdict downstream of the merged state could be wrong. SeenSet
// closes that hole by keying on the fingerprint but verifying the *full
// canonical byte encoding* on every insert — two states may share a
// fingerprint, and both are kept, each with its own index. The price is
// that canonical bytes are retained for the lifetime of the exploration
// (reported as `bytesRetained()`, the dominant memory cost of a run).
//
// Concurrency: the table is lock-striped into shards addressed by
// fingerprint, so parallel BFS workers inserting unrelated states almost
// never contend. Index assignment is a single atomic counter bounded by
// `max_states`, which makes truncation exact: once the budget is spent no
// further index is ever handed out, by any thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace cmc {

class SeenSet {
 public:
  // Returned as Outcome::index when the state budget is exhausted.
  static constexpr std::uint32_t kNoIndex = ~std::uint32_t{0};

  explicit SeenSet(std::uint32_t max_states, std::size_t shard_count = 64)
      : max_states_(max_states), shards_(shard_count) {}

  struct Outcome {
    std::uint32_t index = kNoIndex;  // index of the state; kNoIndex if out of budget
    bool inserted = false;           // this call claimed a fresh index
    bool collided = false;           // fingerprint already held different bytes
  };

  // Insert a state by (fingerprint, canonical bytes). If an entry with the
  // same fingerprint AND byte-identical encoding exists, returns its index
  // (a dedup hit). If the fingerprint exists but the bytes differ, that is
  // a genuine hash collision: the state is still inserted under its own
  // index and the collision counter advances.
  Outcome insert(std::uint64_t fingerprint, std::vector<std::uint8_t>&& bytes) {
    Shard& shard = shards_[fingerprint % shards_.size()];
    std::lock_guard<std::mutex> lock(shard.mu);
    std::vector<Entry>& bucket = shard.map[fingerprint];
    for (const Entry& entry : bucket) {
      if (entry.bytes == bytes) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return Outcome{entry.index, false, false};
      }
    }
    const bool collided = !bucket.empty();
    std::uint32_t index = next_.load(std::memory_order_relaxed);
    do {
      if (index >= max_states_) return Outcome{kNoIndex, false, collided};
    } while (!next_.compare_exchange_weak(index, index + 1,
                                          std::memory_order_relaxed));
    bytes_retained_.fetch_add(bytes.size(), std::memory_order_relaxed);
    if (collided) collisions_.fetch_add(1, std::memory_order_relaxed);
    bucket.push_back(Entry{std::move(bytes), index});
    return Outcome{index, true, collided};
  }

  // Number of distinct states inserted so far.
  [[nodiscard]] std::uint32_t size() const noexcept {
    return next_.load(std::memory_order_relaxed);
  }
  // Dedup hits: inserts that found a byte-identical existing state.
  [[nodiscard]] std::size_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  // States inserted whose fingerprint was already taken by different bytes.
  [[nodiscard]] std::size_t collisions() const noexcept {
    return collisions_.load(std::memory_order_relaxed);
  }
  // Total canonical bytes held for collision verification.
  [[nodiscard]] std::size_t bytesRetained() const noexcept {
    return bytes_retained_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::vector<std::uint8_t> bytes;
    std::uint32_t index;
  };
  struct Shard {
    std::mutex mu;
    std::unordered_map<std::uint64_t, std::vector<Entry>> map;
  };

  std::uint32_t max_states_;
  std::vector<Shard> shards_;
  std::atomic<std::uint32_t> next_{0};
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> collisions_{0};
  std::atomic<std::size_t> bytes_retained_{0};
};

}  // namespace cmc
