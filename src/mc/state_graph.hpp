// Explicit-state exploration of a signaling-path configuration.
//
// The model checked is not a hand-translated abstraction: it is the very
// PathSystem (slot FSMs, goal objects, flowlinks, FIFO channels) that the
// rest of the library runs. Nondeterminism is exactly the set of enabled
// PathActions in each state; the explorer enumerates them all, canonicalizes
// successor states to 64-bit fingerprints, and records the predicate bits
// each temporal property needs. Terminal states (no enabled actions) get a
// virtual self-loop, which encodes stuttering semantics for the temporal
// checks.
//
// This mirrors the paper's Promela/Spin setup (Section VIII-A): chaotic
// initial phases per goal object (PathSystem chaos budgets), a safety check
// (every quiescent fully-attached state has its slots closed or flowing),
// and the Section V path properties.
//
// Dedup is collision-safe: states are keyed by fingerprint but verified by
// full canonical bytes (see seen_set.hpp), so a 64-bit hash collision can
// never merge two distinct states. Expansion is a level-synchronized
// parallel BFS (ExploreLimits::threads workers per level); threads == 1 is
// the deterministic sequential fallback.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/path.hpp"
#include "mc/explore_stats.hpp"

namespace cmc {

// Predicate bits recorded per explored state.
struct StateBits {
  bool bothClosed : 1;
  bool bothFlowing : 1;
  bool quiescent : 1;
  bool allAttached : 1;
  bool slotsStable : 1;  // every slot closed or flowing
  bool terminal : 1;     // no enabled actions
  // Set when the explorer actually expanded the state and filled the bits
  // above. States discovered but never expanded (a run truncated by
  // max_states) keep expanded=false, and no predicate may be read from
  // them: quiescentObservables and the verifiers skip them.
  bool expanded : 1;
  // Endpoint-observable projection (for the transparency check): protocol
  // states of the two path endpoints and their media-enabled flags.
  std::uint8_t left_state : 3;
  std::uint8_t right_state : 3;
  bool media_left : 1;   // left endpoint ready to transmit
  bool media_right : 1;  // right endpoint ready to transmit

  // The endpoint-observable fingerprint of this state. Section V requires
  // that "a path of a given type can have any number of tunnels and
  // flowlinks, as these should be transparent with respect to observable
  // behavior": the set of these values over quiescent states must be the
  // same for every flowlink count.
  [[nodiscard]] std::uint32_t observable() const noexcept {
    return static_cast<std::uint32_t>(left_state) |
           (static_cast<std::uint32_t>(right_state) << 3) |
           (static_cast<std::uint32_t>(media_left) << 6) |
           (static_cast<std::uint32_t>(media_right) << 7) |
           (static_cast<std::uint32_t>(bothFlowing) << 8);
  }
};

struct ExploreLimits {
  std::size_t max_states = 2'000'000;
  std::uint32_t chaos_budget = 2;
  std::uint32_t modify_budget = 1;
  // Adversarial message-fault budget (drop/duplicate of in-flight signals;
  // docs/FAULTS.md). Non-zero also switches the parties into stabilization
  // mode and relaxes safety to terminal states only (a quiescent state with
  // an in-flight fault being repaired is a legitimate transient).
  std::uint32_t fault_budget = 0;
  bool defer_attach = true;  // chaotic initial phase before goals engage
  // Worker threads for frontier expansion. threads == 1 runs the
  // deterministic sequential path: state indices, parents, and traces are
  // reproducible run-to-run and match the historical single-threaded
  // explorer. threads > 1 keeps state/transition/terminal counts and all
  // verification verdicts identical (the reachable graph is explored
  // exhaustively either way) but assigns indices in nondeterministic order.
  std::size_t threads = 1;
  // Testing hook: fingerprints are masked with this value before dedup, so
  // a coarse mask (e.g. 0xFF) forces hash collisions and exercises the
  // byte-verification path. Production runs leave it all-ones.
  std::uint64_t fingerprint_mask = ~std::uint64_t{0};
};

struct ExploreResult {
  std::vector<StateBits> bits;
  // Adjacency: edges[i] lists successor state indices (terminal self-loops
  // included).
  std::vector<std::vector<std::uint32_t>> edges;
  // Parent pointers for counterexample reconstruction.
  std::vector<std::uint32_t> parent;
  std::vector<std::string> parent_action;
  std::size_t transitions = 0;
  std::size_t terminals = 0;
  bool truncated = false;        // hit max_states
  std::size_t bytes_canonical = 0;  // canonical-state bytes retained by the seen-set
  double seconds = 0;
  ExploreStats stats;            // observability counters for this run

  [[nodiscard]] std::size_t states() const noexcept { return bits.size(); }

  // Path of actions from the initial state to `state`.
  [[nodiscard]] std::vector<std::string> traceTo(std::uint32_t state) const;
};

// Explore all reachable states of the path configuration with the goals
// named at the two ends and `flowlinks` interior flowlink boxes.
[[nodiscard]] ExploreResult explorePath(GoalKind left, GoalKind right,
                                        std::size_t flowlinks,
                                        const ExploreLimits& limits = {});

// Explore from an explicit initial system (already configured/budgeted).
[[nodiscard]] ExploreResult explore(const PathSystem& initial,
                                    const ExploreLimits& limits = {});

// The set of endpoint-observable fingerprints over quiescent fully-attached
// states — the basis of the Section V transparency check.
[[nodiscard]] std::set<std::uint32_t> quiescentObservables(
    const ExploreResult& graph);

}  // namespace cmc
