// Observability surface of the explorer: one struct of counters and phase
// timings filled in by every explore() run, cheap enough to always collect.
// Benches print the human-readable fields and emit `json()` lines so the
// bench trajectory can be scraped by tooling.
#pragma once

#include <cstddef>
#include <cstdio>
#include <string>
#include <string_view>

namespace cmc {

struct ExploreStats {
  std::size_t threads = 1;          // worker threads used
  std::size_t states = 0;           // distinct states discovered
  std::size_t transitions = 0;      // edges recorded (terminal stutters included)
  std::size_t terminals = 0;
  std::size_t dedup_hits = 0;       // successor insertions resolved to an existing state
  std::size_t collisions = 0;       // fingerprint collisions caught by byte verification
  std::size_t bytes_retained = 0;   // canonical bytes held in the seen-set
  std::size_t frontier_depth = 0;   // BFS levels processed
  std::size_t peak_frontier = 0;    // widest BFS level
  bool truncated = false;
  double expand_seconds = 0;        // wall time in worker expansion
  double merge_seconds = 0;         // wall time merging per-level worker output
  double seconds = 0;               // total wall time

  [[nodiscard]] double statesPerSecond() const noexcept {
    return seconds > 0 ? static_cast<double>(states) / seconds : 0.0;
  }

  // Fraction of successor insertions that were duplicates of a known state.
  [[nodiscard]] double dedupRatio() const noexcept {
    const double total = static_cast<double>(dedup_hits + states);
    return total > 0 ? static_cast<double>(dedup_hits) / total : 0.0;
  }

  // One-line JSON object tagged with the emitting bench and configuration.
  [[nodiscard]] std::string json(std::string_view bench,
                                 std::string_view config) const {
    char buf[640];
    std::snprintf(
        buf, sizeof(buf),
        "{\"bench\":\"%.*s\",\"config\":\"%.*s\",\"threads\":%zu,"
        "\"states\":%zu,\"transitions\":%zu,\"terminals\":%zu,"
        "\"dedup_hits\":%zu,\"dedup_ratio\":%.4f,\"collisions\":%zu,"
        "\"bytes_retained\":%zu,\"frontier_depth\":%zu,\"peak_frontier\":%zu,"
        "\"states_per_sec\":%.0f,\"expand_seconds\":%.4f,"
        "\"merge_seconds\":%.4f,\"seconds\":%.4f,\"truncated\":%s}",
        static_cast<int>(bench.size()), bench.data(),
        static_cast<int>(config.size()), config.data(), threads, states,
        transitions, terminals, dedup_hits, dedupRatio(), collisions,
        bytes_retained, frontier_depth, peak_frontier, statesPerSecond(),
        expand_seconds, merge_seconds, seconds, truncated ? "true" : "false");
    return std::string(buf);
  }
};

}  // namespace cmc
