#include "mc/verification.hpp"

#include <sstream>

namespace cmc {

std::string_view toString(PathSpec spec) noexcept {
  switch (spec) {
    case PathSpec::eventuallyBothClosed: return "<>[] bothClosed";
    case PathSpec::neverBothFlowing: return "<>[] !bothFlowing";
    case PathSpec::recurrentlyBothFlowing: return "[]<> bothFlowing";
    case PathSpec::closedOrFlowing: return "<>[] bothClosed \\/ []<> bothFlowing";
  }
  return "?spec";
}

PathSpec specFor(GoalKind left, GoalKind right) noexcept {
  auto has = [&](GoalKind k) { return left == k || right == k; };
  if (has(GoalKind::closeSlot)) {
    // closeSlot present: if the other end is an openslot the path never
    // settles (the openslot keeps retrying), but media never flows; any
    // other partner lets the path rest in bothClosed.
    return has(GoalKind::openSlot) ? PathSpec::neverBothFlowing
                                   : PathSpec::eventuallyBothClosed;
  }
  if (has(GoalKind::openSlot)) return PathSpec::recurrentlyBothFlowing;
  return PathSpec::closedOrFlowing;  // holdSlot at both ends
}

std::vector<VerificationCase> paperVerificationSuite() {
  using K = GoalKind;
  const std::pair<K, K> types[] = {
      {K::closeSlot, K::closeSlot}, {K::closeSlot, K::holdSlot},
      {K::closeSlot, K::openSlot},  {K::openSlot, K::openSlot},
      {K::openSlot, K::holdSlot},   {K::holdSlot, K::holdSlot},
  };
  std::vector<VerificationCase> cases;
  for (std::size_t flowlinks : {std::size_t{0}, std::size_t{1}}) {
    for (auto [l, r] : types) cases.push_back(VerificationCase{l, r, flowlinks});
  }
  return cases;
}

std::optional<TemporalViolation> checkSpec(const ExploreResult& graph,
                                           PathSpec spec) {
  const StatePredicate both_closed = [](const StateBits& b) {
    return b.bothClosed;
  };
  const StatePredicate both_flowing = [](const StateBits& b) {
    return b.bothFlowing;
  };
  const StatePredicate not_both_flowing = [](const StateBits& b) {
    return !b.bothFlowing;
  };
  switch (spec) {
    case PathSpec::eventuallyBothClosed:
      return checkEventuallyAlways(graph, both_closed);
    case PathSpec::neverBothFlowing:
      return checkEventuallyAlways(graph, not_both_flowing);
    case PathSpec::recurrentlyBothFlowing:
      return checkAlwaysEventually(graph, both_flowing);
    case PathSpec::closedOrFlowing:
      return checkStableOrRecurrent(graph, both_closed, both_flowing);
  }
  return std::nullopt;
}

VerificationOutcome verifyPath(const VerificationCase& config,
                               const ExploreLimits& limits) {
  VerificationOutcome outcome;
  outcome.config = config;
  outcome.spec = specFor(config.left, config.right);

  const ExploreResult graph =
      explorePath(config.left, config.right, config.flowlinks, limits);
  outcome.states = graph.states();
  outcome.transitions = graph.transitions;
  outcome.terminals = graph.terminals;
  outcome.bytes = graph.bytes_canonical;
  outcome.seconds = graph.seconds;
  outcome.stats = graph.stats;
  outcome.truncated = graph.truncated;

  // Under fault injection quiescent-but-unstable transients are expected
  // while a repair is pending; only terminal states must be stable.
  const auto safety = limits.fault_budget > 0 ? checkSafetyTerminal(graph)
                                              : checkSafety(graph);
  if (auto violation = safety) {
    outcome.safety_ok = false;
    std::ostringstream oss;
    oss << "safety: " << violation->description << " at state "
        << violation->witness_state << "; trace:";
    for (const auto& step : graph.traceTo(violation->witness_state)) {
      oss << ' ' << step;
    }
    outcome.failure = oss.str();
  } else {
    outcome.safety_ok = true;
  }

  if (auto violation = checkSpec(graph, outcome.spec)) {
    outcome.spec_ok = false;
    if (outcome.failure.empty()) {
      std::ostringstream oss;
      oss << "spec " << toString(outcome.spec) << ": " << violation->description
          << " at state " << violation->witness_state << "; trace:";
      for (const auto& step : graph.traceTo(violation->witness_state)) {
        oss << ' ' << step;
      }
      outcome.failure = oss.str();
    }
  } else {
    outcome.spec_ok = true;
  }
  return outcome;
}

}  // namespace cmc
