// Temporal-property checking over explored state graphs.
//
// The paper's path specifications (Section V) are all of shapes checkable
// by pure graph analysis on a finite state graph with stuttering terminals:
//
//   ◇□P   fails iff some reachable cycle contains a ¬P state
//   □◇P   fails iff some reachable cycle lies entirely within ¬P states
//   ◇□A ∨ □◇B   fails iff some reachable cycle avoids B everywhere and
//               contains a ¬A state (then ¬A recurs while B never does)
//
// (Terminal states carry virtual self-loops, so "stuck forever at s" is the
// cycle {s}.) All three reduce to one query: in the subgraph of ¬B states,
// is there a strongly connected component containing a cycle and a ¬A
// state? ◇□P is the query with A=P, B=false; □◇P with A=false, B=P.
//
// The SCC computation is an iterative Tarjan, safe for millions of states.
#pragma once

#include <functional>
#include <optional>

#include "mc/state_graph.hpp"

namespace cmc {

using StatePredicate = std::function<bool(const StateBits&)>;

struct TemporalViolation {
  std::uint32_t witness_state = 0;  // a state on the offending cycle
  std::string description;
};

// Core query: exists a cycle within {s : !B(s)} containing a state with
// !A(s)? Returns a witness if so.
[[nodiscard]] std::optional<TemporalViolation> findLassoViolation(
    const ExploreResult& graph, const StatePredicate& A, const StatePredicate& B);

// ◇□P — eventually always P.
[[nodiscard]] std::optional<TemporalViolation> checkEventuallyAlways(
    const ExploreResult& graph, const StatePredicate& P);

// □◇P — always eventually P.
[[nodiscard]] std::optional<TemporalViolation> checkAlwaysEventually(
    const ExploreResult& graph, const StatePredicate& P);

// (◇□A) ∨ (□◇B).
[[nodiscard]] std::optional<TemporalViolation> checkStableOrRecurrent(
    const ExploreResult& graph, const StatePredicate& A, const StatePredicate& B);

// Safety (paper Section VIII-A): every quiescent, fully-attached state has
// all slots closed or flowing; in particular every terminal state does.
// Returns a violating state if any.
[[nodiscard]] std::optional<TemporalViolation> checkSafety(
    const ExploreResult& graph);

// Safety under fault injection (docs/FAULTS.md): only *terminal* states
// must have all slots closed or flowing. A merely quiescent state may hold
// a slot in opening/closing whose answer was dropped — a legitimate
// transient that the (still-enabled) refresh action repairs, so the strict
// quiescent-state check would flag the fault itself rather than a protocol
// bug.
[[nodiscard]] std::optional<TemporalViolation> checkSafetyTerminal(
    const ExploreResult& graph);

}  // namespace cmc
