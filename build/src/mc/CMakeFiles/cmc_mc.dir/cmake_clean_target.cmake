file(REMOVE_RECURSE
  "libcmc_mc.a"
)
