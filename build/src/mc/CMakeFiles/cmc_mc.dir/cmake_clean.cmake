file(REMOVE_RECURSE
  "CMakeFiles/cmc_mc.dir/state_graph.cpp.o"
  "CMakeFiles/cmc_mc.dir/state_graph.cpp.o.d"
  "CMakeFiles/cmc_mc.dir/temporal.cpp.o"
  "CMakeFiles/cmc_mc.dir/temporal.cpp.o.d"
  "CMakeFiles/cmc_mc.dir/verification.cpp.o"
  "CMakeFiles/cmc_mc.dir/verification.cpp.o.d"
  "libcmc_mc.a"
  "libcmc_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmc_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
