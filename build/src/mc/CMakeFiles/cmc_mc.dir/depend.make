# Empty dependencies file for cmc_mc.
# This may be replaced when dependencies are built.
