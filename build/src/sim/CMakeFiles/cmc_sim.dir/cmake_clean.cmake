file(REMOVE_RECURSE
  "CMakeFiles/cmc_sim.dir/simulator.cpp.o"
  "CMakeFiles/cmc_sim.dir/simulator.cpp.o.d"
  "libcmc_sim.a"
  "libcmc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
