# Empty dependencies file for cmc_sim.
# This may be replaced when dependencies are built.
