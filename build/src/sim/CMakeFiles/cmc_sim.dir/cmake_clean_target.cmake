file(REMOVE_RECURSE
  "libcmc_sim.a"
)
