file(REMOVE_RECURSE
  "libcmc_sip.a"
)
