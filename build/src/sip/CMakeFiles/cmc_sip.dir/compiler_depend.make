# Empty compiler generated dependencies file for cmc_sip.
# This may be replaced when dependencies are built.
