file(REMOVE_RECURSE
  "CMakeFiles/cmc_sip.dir/agent.cpp.o"
  "CMakeFiles/cmc_sip.dir/agent.cpp.o.d"
  "CMakeFiles/cmc_sip.dir/b2bua.cpp.o"
  "CMakeFiles/cmc_sip.dir/b2bua.cpp.o.d"
  "libcmc_sip.a"
  "libcmc_sip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmc_sip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
