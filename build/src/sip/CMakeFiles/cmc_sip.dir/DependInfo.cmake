
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sip/agent.cpp" "src/sip/CMakeFiles/cmc_sip.dir/agent.cpp.o" "gcc" "src/sip/CMakeFiles/cmc_sip.dir/agent.cpp.o.d"
  "/root/repo/src/sip/b2bua.cpp" "src/sip/CMakeFiles/cmc_sip.dir/b2bua.cpp.o" "gcc" "src/sip/CMakeFiles/cmc_sip.dir/b2bua.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codec/CMakeFiles/cmc_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cmc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
