file(REMOVE_RECURSE
  "libcmc_codec.a"
)
