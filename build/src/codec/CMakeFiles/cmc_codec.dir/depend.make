# Empty dependencies file for cmc_codec.
# This may be replaced when dependencies are built.
