file(REMOVE_RECURSE
  "CMakeFiles/cmc_codec.dir/codec.cpp.o"
  "CMakeFiles/cmc_codec.dir/codec.cpp.o.d"
  "CMakeFiles/cmc_codec.dir/descriptor.cpp.o"
  "CMakeFiles/cmc_codec.dir/descriptor.cpp.o.d"
  "libcmc_codec.a"
  "libcmc_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmc_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
