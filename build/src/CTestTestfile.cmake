# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("codec")
subdirs("protocol")
subdirs("channel")
subdirs("net")
subdirs("core")
subdirs("sim")
subdirs("media")
subdirs("endpoints")
subdirs("apps")
subdirs("sip")
subdirs("mc")
