file(REMOVE_RECURSE
  "libcmc_util.a"
)
