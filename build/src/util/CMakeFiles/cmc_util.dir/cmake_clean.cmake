file(REMOVE_RECURSE
  "CMakeFiles/cmc_util.dir/log.cpp.o"
  "CMakeFiles/cmc_util.dir/log.cpp.o.d"
  "libcmc_util.a"
  "libcmc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
