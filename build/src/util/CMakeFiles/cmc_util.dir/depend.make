# Empty dependencies file for cmc_util.
# This may be replaced when dependencies are built.
