file(REMOVE_RECURSE
  "libcmc_net.a"
)
