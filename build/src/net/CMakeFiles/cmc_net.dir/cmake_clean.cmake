file(REMOVE_RECURSE
  "CMakeFiles/cmc_net.dir/tcp_transport.cpp.o"
  "CMakeFiles/cmc_net.dir/tcp_transport.cpp.o.d"
  "libcmc_net.a"
  "libcmc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
