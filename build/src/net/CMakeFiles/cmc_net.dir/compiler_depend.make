# Empty compiler generated dependencies file for cmc_net.
# This may be replaced when dependencies are built.
