file(REMOVE_RECURSE
  "CMakeFiles/cmc_core.dir/box.cpp.o"
  "CMakeFiles/cmc_core.dir/box.cpp.o.d"
  "CMakeFiles/cmc_core.dir/flowlink.cpp.o"
  "CMakeFiles/cmc_core.dir/flowlink.cpp.o.d"
  "CMakeFiles/cmc_core.dir/goals.cpp.o"
  "CMakeFiles/cmc_core.dir/goals.cpp.o.d"
  "CMakeFiles/cmc_core.dir/path.cpp.o"
  "CMakeFiles/cmc_core.dir/path.cpp.o.d"
  "libcmc_core.a"
  "libcmc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
