file(REMOVE_RECURSE
  "libcmc_core.a"
)
