
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/box.cpp" "src/core/CMakeFiles/cmc_core.dir/box.cpp.o" "gcc" "src/core/CMakeFiles/cmc_core.dir/box.cpp.o.d"
  "/root/repo/src/core/flowlink.cpp" "src/core/CMakeFiles/cmc_core.dir/flowlink.cpp.o" "gcc" "src/core/CMakeFiles/cmc_core.dir/flowlink.cpp.o.d"
  "/root/repo/src/core/goals.cpp" "src/core/CMakeFiles/cmc_core.dir/goals.cpp.o" "gcc" "src/core/CMakeFiles/cmc_core.dir/goals.cpp.o.d"
  "/root/repo/src/core/path.cpp" "src/core/CMakeFiles/cmc_core.dir/path.cpp.o" "gcc" "src/core/CMakeFiles/cmc_core.dir/path.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/channel/CMakeFiles/cmc_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/cmc_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/cmc_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cmc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
