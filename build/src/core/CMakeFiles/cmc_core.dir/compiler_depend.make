# Empty compiler generated dependencies file for cmc_core.
# This may be replaced when dependencies are built.
