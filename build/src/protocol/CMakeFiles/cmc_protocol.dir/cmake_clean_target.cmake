file(REMOVE_RECURSE
  "libcmc_protocol.a"
)
