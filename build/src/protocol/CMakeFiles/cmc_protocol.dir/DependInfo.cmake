
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocol/signal.cpp" "src/protocol/CMakeFiles/cmc_protocol.dir/signal.cpp.o" "gcc" "src/protocol/CMakeFiles/cmc_protocol.dir/signal.cpp.o.d"
  "/root/repo/src/protocol/slot_endpoint.cpp" "src/protocol/CMakeFiles/cmc_protocol.dir/slot_endpoint.cpp.o" "gcc" "src/protocol/CMakeFiles/cmc_protocol.dir/slot_endpoint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codec/CMakeFiles/cmc_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cmc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
