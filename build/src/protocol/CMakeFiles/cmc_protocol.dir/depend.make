# Empty dependencies file for cmc_protocol.
# This may be replaced when dependencies are built.
