file(REMOVE_RECURSE
  "CMakeFiles/cmc_protocol.dir/signal.cpp.o"
  "CMakeFiles/cmc_protocol.dir/signal.cpp.o.d"
  "CMakeFiles/cmc_protocol.dir/slot_endpoint.cpp.o"
  "CMakeFiles/cmc_protocol.dir/slot_endpoint.cpp.o.d"
  "libcmc_protocol.a"
  "libcmc_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmc_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
