file(REMOVE_RECURSE
  "CMakeFiles/cmc_channel.dir/channel.cpp.o"
  "CMakeFiles/cmc_channel.dir/channel.cpp.o.d"
  "CMakeFiles/cmc_channel.dir/meta.cpp.o"
  "CMakeFiles/cmc_channel.dir/meta.cpp.o.d"
  "libcmc_channel.a"
  "libcmc_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmc_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
