file(REMOVE_RECURSE
  "libcmc_channel.a"
)
