# Empty dependencies file for cmc_channel.
# This may be replaced when dependencies are built.
