# Empty compiler generated dependencies file for conference.
# This may be replaced when dependencies are built.
