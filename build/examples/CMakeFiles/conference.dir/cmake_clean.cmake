file(REMOVE_RECURSE
  "CMakeFiles/conference.dir/conference.cpp.o"
  "CMakeFiles/conference.dir/conference.cpp.o.d"
  "conference"
  "conference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
