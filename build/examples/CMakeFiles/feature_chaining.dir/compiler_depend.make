# Empty compiler generated dependencies file for feature_chaining.
# This may be replaced when dependencies are built.
