file(REMOVE_RECURSE
  "CMakeFiles/feature_chaining.dir/feature_chaining.cpp.o"
  "CMakeFiles/feature_chaining.dir/feature_chaining.cpp.o.d"
  "feature_chaining"
  "feature_chaining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_chaining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
