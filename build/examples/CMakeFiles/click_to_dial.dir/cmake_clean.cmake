file(REMOVE_RECURSE
  "CMakeFiles/click_to_dial.dir/click_to_dial.cpp.o"
  "CMakeFiles/click_to_dial.dir/click_to_dial.cpp.o.d"
  "click_to_dial"
  "click_to_dial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/click_to_dial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
