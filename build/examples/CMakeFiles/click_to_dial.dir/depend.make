# Empty dependencies file for click_to_dial.
# This may be replaced when dependencies are built.
