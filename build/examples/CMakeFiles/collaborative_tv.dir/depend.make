# Empty dependencies file for collaborative_tv.
# This may be replaced when dependencies are built.
