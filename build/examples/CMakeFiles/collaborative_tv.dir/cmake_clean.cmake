file(REMOVE_RECURSE
  "CMakeFiles/collaborative_tv.dir/collaborative_tv.cpp.o"
  "CMakeFiles/collaborative_tv.dir/collaborative_tv.cpp.o.d"
  "collaborative_tv"
  "collaborative_tv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collaborative_tv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
