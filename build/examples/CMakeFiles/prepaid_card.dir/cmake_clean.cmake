file(REMOVE_RECURSE
  "CMakeFiles/prepaid_card.dir/prepaid_card.cpp.o"
  "CMakeFiles/prepaid_card.dir/prepaid_card.cpp.o.d"
  "prepaid_card"
  "prepaid_card.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prepaid_card.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
