# Empty dependencies file for prepaid_card.
# This may be replaced when dependencies are built.
