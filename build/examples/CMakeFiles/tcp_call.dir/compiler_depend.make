# Empty compiler generated dependencies file for tcp_call.
# This may be replaced when dependencies are built.
