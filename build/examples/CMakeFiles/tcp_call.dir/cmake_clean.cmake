file(REMOVE_RECURSE
  "CMakeFiles/tcp_call.dir/tcp_call.cpp.o"
  "CMakeFiles/tcp_call.dir/tcp_call.cpp.o.d"
  "tcp_call"
  "tcp_call.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_call.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
