# Empty dependencies file for bench_ablation_naive.
# This may be replaced when dependencies are built.
