file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_naive.dir/bench_ablation_naive.cpp.o"
  "CMakeFiles/bench_ablation_naive.dir/bench_ablation_naive.cpp.o.d"
  "bench_ablation_naive"
  "bench_ablation_naive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_naive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
