# Empty dependencies file for bench_verification_table.
# This may be replaced when dependencies are built.
