file(REMOVE_RECURSE
  "CMakeFiles/bench_verification_table.dir/bench_verification_table.cpp.o"
  "CMakeFiles/bench_verification_table.dir/bench_verification_table.cpp.o.d"
  "bench_verification_table"
  "bench_verification_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_verification_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
