# Empty compiler generated dependencies file for bench_conference.
# This may be replaced when dependencies are built.
