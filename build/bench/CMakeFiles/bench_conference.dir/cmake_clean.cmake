file(REMOVE_RECURSE
  "CMakeFiles/bench_conference.dir/bench_conference.cpp.o"
  "CMakeFiles/bench_conference.dir/bench_conference.cpp.o.d"
  "bench_conference"
  "bench_conference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
