file(REMOVE_RECURSE
  "CMakeFiles/bench_latency_compositional.dir/bench_latency_compositional.cpp.o"
  "CMakeFiles/bench_latency_compositional.dir/bench_latency_compositional.cpp.o.d"
  "bench_latency_compositional"
  "bench_latency_compositional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_latency_compositional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
