# Empty dependencies file for bench_latency_compositional.
# This may be replaced when dependencies are built.
