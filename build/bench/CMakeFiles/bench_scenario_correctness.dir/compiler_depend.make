# Empty compiler generated dependencies file for bench_scenario_correctness.
# This may be replaced when dependencies are built.
