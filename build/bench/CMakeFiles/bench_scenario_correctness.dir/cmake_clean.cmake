file(REMOVE_RECURSE
  "CMakeFiles/bench_scenario_correctness.dir/bench_scenario_correctness.cpp.o"
  "CMakeFiles/bench_scenario_correctness.dir/bench_scenario_correctness.cpp.o.d"
  "bench_scenario_correctness"
  "bench_scenario_correctness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scenario_correctness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
