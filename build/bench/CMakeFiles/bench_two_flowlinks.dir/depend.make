# Empty dependencies file for bench_two_flowlinks.
# This may be replaced when dependencies are built.
