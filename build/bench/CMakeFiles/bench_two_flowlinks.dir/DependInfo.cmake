
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_two_flowlinks.cpp" "bench/CMakeFiles/bench_two_flowlinks.dir/bench_two_flowlinks.cpp.o" "gcc" "bench/CMakeFiles/bench_two_flowlinks.dir/bench_two_flowlinks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mc/CMakeFiles/cmc_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cmc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/cmc_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/cmc_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/cmc_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cmc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
