file(REMOVE_RECURSE
  "CMakeFiles/bench_two_flowlinks.dir/bench_two_flowlinks.cpp.o"
  "CMakeFiles/bench_two_flowlinks.dir/bench_two_flowlinks.cpp.o.d"
  "bench_two_flowlinks"
  "bench_two_flowlinks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_two_flowlinks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
