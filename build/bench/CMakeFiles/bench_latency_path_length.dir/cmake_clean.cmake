file(REMOVE_RECURSE
  "CMakeFiles/bench_latency_path_length.dir/bench_latency_path_length.cpp.o"
  "CMakeFiles/bench_latency_path_length.dir/bench_latency_path_length.cpp.o.d"
  "bench_latency_path_length"
  "bench_latency_path_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_latency_path_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
