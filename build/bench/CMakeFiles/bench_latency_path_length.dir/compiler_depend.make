# Empty compiler generated dependencies file for bench_latency_path_length.
# This may be replaced when dependencies are built.
