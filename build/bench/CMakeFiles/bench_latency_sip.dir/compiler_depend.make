# Empty compiler generated dependencies file for bench_latency_sip.
# This may be replaced when dependencies are built.
