file(REMOVE_RECURSE
  "CMakeFiles/bench_latency_sip.dir/bench_latency_sip.cpp.o"
  "CMakeFiles/bench_latency_sip.dir/bench_latency_sip.cpp.o.d"
  "bench_latency_sip"
  "bench_latency_sip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_latency_sip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
