# Empty dependencies file for bench_clipping.
# This may be replaced when dependencies are built.
