file(REMOVE_RECURSE
  "CMakeFiles/bench_clipping.dir/bench_clipping.cpp.o"
  "CMakeFiles/bench_clipping.dir/bench_clipping.cpp.o.d"
  "bench_clipping"
  "bench_clipping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_clipping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
