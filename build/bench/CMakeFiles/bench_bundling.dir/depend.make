# Empty dependencies file for bench_bundling.
# This may be replaced when dependencies are built.
