file(REMOVE_RECURSE
  "CMakeFiles/bench_bundling.dir/bench_bundling.cpp.o"
  "CMakeFiles/bench_bundling.dir/bench_bundling.cpp.o.d"
  "bench_bundling"
  "bench_bundling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bundling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
