# Empty dependencies file for bench_statespace_growth.
# This may be replaced when dependencies are built.
