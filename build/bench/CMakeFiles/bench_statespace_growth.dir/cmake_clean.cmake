file(REMOVE_RECURSE
  "CMakeFiles/bench_statespace_growth.dir/bench_statespace_growth.cpp.o"
  "CMakeFiles/bench_statespace_growth.dir/bench_statespace_growth.cpp.o.d"
  "bench_statespace_growth"
  "bench_statespace_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_statespace_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
