# Empty dependencies file for sim_internals_test.
# This may be replaced when dependencies are built.
