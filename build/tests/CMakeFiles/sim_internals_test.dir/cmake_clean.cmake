file(REMOVE_RECURSE
  "CMakeFiles/sim_internals_test.dir/sim_internals_test.cpp.o"
  "CMakeFiles/sim_internals_test.dir/sim_internals_test.cpp.o.d"
  "sim_internals_test"
  "sim_internals_test.pdb"
  "sim_internals_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_internals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
