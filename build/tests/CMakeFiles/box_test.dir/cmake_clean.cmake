file(REMOVE_RECURSE
  "CMakeFiles/box_test.dir/box_test.cpp.o"
  "CMakeFiles/box_test.dir/box_test.cpp.o.d"
  "box_test"
  "box_test.pdb"
  "box_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/box_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
