file(REMOVE_RECURSE
  "CMakeFiles/sip_b2bua_test.dir/sip_b2bua_test.cpp.o"
  "CMakeFiles/sip_b2bua_test.dir/sip_b2bua_test.cpp.o.d"
  "sip_b2bua_test"
  "sip_b2bua_test.pdb"
  "sip_b2bua_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sip_b2bua_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
