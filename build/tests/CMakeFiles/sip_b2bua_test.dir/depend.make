# Empty dependencies file for sip_b2bua_test.
# This may be replaced when dependencies are built.
