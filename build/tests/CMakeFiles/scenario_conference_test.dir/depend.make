# Empty dependencies file for scenario_conference_test.
# This may be replaced when dependencies are built.
