file(REMOVE_RECURSE
  "CMakeFiles/scenario_conference_test.dir/scenario_conference_test.cpp.o"
  "CMakeFiles/scenario_conference_test.dir/scenario_conference_test.cpp.o.d"
  "scenario_conference_test"
  "scenario_conference_test.pdb"
  "scenario_conference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_conference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
