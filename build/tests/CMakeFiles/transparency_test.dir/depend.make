# Empty dependencies file for transparency_test.
# This may be replaced when dependencies are built.
