file(REMOVE_RECURSE
  "CMakeFiles/transparency_test.dir/transparency_test.cpp.o"
  "CMakeFiles/transparency_test.dir/transparency_test.cpp.o.d"
  "transparency_test"
  "transparency_test.pdb"
  "transparency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transparency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
