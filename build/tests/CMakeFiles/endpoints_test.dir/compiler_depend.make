# Empty compiler generated dependencies file for endpoints_test.
# This may be replaced when dependencies are built.
