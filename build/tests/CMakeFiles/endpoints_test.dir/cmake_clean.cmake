file(REMOVE_RECURSE
  "CMakeFiles/endpoints_test.dir/endpoints_test.cpp.o"
  "CMakeFiles/endpoints_test.dir/endpoints_test.cpp.o.d"
  "endpoints_test"
  "endpoints_test.pdb"
  "endpoints_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/endpoints_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
