
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/media_test.cpp" "tests/CMakeFiles/media_test.dir/media_test.cpp.o" "gcc" "tests/CMakeFiles/media_test.dir/media_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cmc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cmc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/cmc_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/cmc_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/cmc_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cmc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
