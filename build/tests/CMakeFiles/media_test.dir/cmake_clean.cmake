file(REMOVE_RECURSE
  "CMakeFiles/media_test.dir/media_test.cpp.o"
  "CMakeFiles/media_test.dir/media_test.cpp.o.d"
  "media_test"
  "media_test.pdb"
  "media_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/media_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
