file(REMOVE_RECURSE
  "CMakeFiles/path_test.dir/path_test.cpp.o"
  "CMakeFiles/path_test.dir/path_test.cpp.o.d"
  "path_test"
  "path_test.pdb"
  "path_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
