file(REMOVE_RECURSE
  "CMakeFiles/path_property_test.dir/path_property_test.cpp.o"
  "CMakeFiles/path_property_test.dir/path_property_test.cpp.o.d"
  "path_property_test"
  "path_property_test.pdb"
  "path_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
