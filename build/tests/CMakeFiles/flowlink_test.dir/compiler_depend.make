# Empty compiler generated dependencies file for flowlink_test.
# This may be replaced when dependencies are built.
