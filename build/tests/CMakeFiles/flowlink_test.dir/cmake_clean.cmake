file(REMOVE_RECURSE
  "CMakeFiles/flowlink_test.dir/flowlink_test.cpp.o"
  "CMakeFiles/flowlink_test.dir/flowlink_test.cpp.o.d"
  "flowlink_test"
  "flowlink_test.pdb"
  "flowlink_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flowlink_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
