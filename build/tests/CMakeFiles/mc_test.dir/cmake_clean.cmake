file(REMOVE_RECURSE
  "CMakeFiles/mc_test.dir/mc_test.cpp.o"
  "CMakeFiles/mc_test.dir/mc_test.cpp.o.d"
  "mc_test"
  "mc_test.pdb"
  "mc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
