# Empty dependencies file for mc_test.
# This may be replaced when dependencies are built.
