file(REMOVE_RECURSE
  "CMakeFiles/sip_test.dir/sip_test.cpp.o"
  "CMakeFiles/sip_test.dir/sip_test.cpp.o.d"
  "sip_test"
  "sip_test.pdb"
  "sip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
