# Empty dependencies file for sip_test.
# This may be replaced when dependencies are built.
