file(REMOVE_RECURSE
  "CMakeFiles/multitunnel_test.dir/multitunnel_test.cpp.o"
  "CMakeFiles/multitunnel_test.dir/multitunnel_test.cpp.o.d"
  "multitunnel_test"
  "multitunnel_test.pdb"
  "multitunnel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multitunnel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
