# Empty compiler generated dependencies file for multitunnel_test.
# This may be replaced when dependencies are built.
