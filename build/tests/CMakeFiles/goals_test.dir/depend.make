# Empty dependencies file for goals_test.
# This may be replaced when dependencies are built.
