file(REMOVE_RECURSE
  "CMakeFiles/goals_test.dir/goals_test.cpp.o"
  "CMakeFiles/goals_test.dir/goals_test.cpp.o.d"
  "goals_test"
  "goals_test.pdb"
  "goals_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
