file(REMOVE_RECURSE
  "CMakeFiles/scenario_ctd_test.dir/scenario_ctd_test.cpp.o"
  "CMakeFiles/scenario_ctd_test.dir/scenario_ctd_test.cpp.o.d"
  "scenario_ctd_test"
  "scenario_ctd_test.pdb"
  "scenario_ctd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_ctd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
