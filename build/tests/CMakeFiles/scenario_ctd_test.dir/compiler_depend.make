# Empty compiler generated dependencies file for scenario_ctd_test.
# This may be replaced when dependencies are built.
