file(REMOVE_RECURSE
  "CMakeFiles/scenario_forwarding_test.dir/scenario_forwarding_test.cpp.o"
  "CMakeFiles/scenario_forwarding_test.dir/scenario_forwarding_test.cpp.o.d"
  "scenario_forwarding_test"
  "scenario_forwarding_test.pdb"
  "scenario_forwarding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_forwarding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
