# Empty dependencies file for scenario_forwarding_test.
# This may be replaced when dependencies are built.
