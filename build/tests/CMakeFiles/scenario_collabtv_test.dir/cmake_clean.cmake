file(REMOVE_RECURSE
  "CMakeFiles/scenario_collabtv_test.dir/scenario_collabtv_test.cpp.o"
  "CMakeFiles/scenario_collabtv_test.dir/scenario_collabtv_test.cpp.o.d"
  "scenario_collabtv_test"
  "scenario_collabtv_test.pdb"
  "scenario_collabtv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_collabtv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
