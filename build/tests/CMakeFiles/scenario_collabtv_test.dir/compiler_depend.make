# Empty compiler generated dependencies file for scenario_collabtv_test.
# This may be replaced when dependencies are built.
