file(REMOVE_RECURSE
  "CMakeFiles/modify_test.dir/modify_test.cpp.o"
  "CMakeFiles/modify_test.dir/modify_test.cpp.o.d"
  "modify_test"
  "modify_test.pdb"
  "modify_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
