# Empty dependencies file for modify_test.
# This may be replaced when dependencies are built.
