file(REMOVE_RECURSE
  "CMakeFiles/scenario_prepaid_test.dir/scenario_prepaid_test.cpp.o"
  "CMakeFiles/scenario_prepaid_test.dir/scenario_prepaid_test.cpp.o.d"
  "scenario_prepaid_test"
  "scenario_prepaid_test.pdb"
  "scenario_prepaid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_prepaid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
