# Empty compiler generated dependencies file for fig10_conformance_test.
# This may be replaced when dependencies are built.
