file(REMOVE_RECURSE
  "CMakeFiles/fig10_conformance_test.dir/fig10_conformance_test.cpp.o"
  "CMakeFiles/fig10_conformance_test.dir/fig10_conformance_test.cpp.o.d"
  "fig10_conformance_test"
  "fig10_conformance_test.pdb"
  "fig10_conformance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
