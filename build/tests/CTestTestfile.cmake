# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/codec_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_test[1]_include.cmake")
include("/root/repo/build/tests/channel_test[1]_include.cmake")
include("/root/repo/build/tests/goals_test[1]_include.cmake")
include("/root/repo/build/tests/flowlink_test[1]_include.cmake")
include("/root/repo/build/tests/path_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_prepaid_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_ctd_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_conference_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_collabtv_test[1]_include.cmake")
include("/root/repo/build/tests/mc_test[1]_include.cmake")
include("/root/repo/build/tests/sip_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/program_test[1]_include.cmake")
include("/root/repo/build/tests/media_test[1]_include.cmake")
include("/root/repo/build/tests/box_test[1]_include.cmake")
include("/root/repo/build/tests/path_property_test[1]_include.cmake")
include("/root/repo/build/tests/endpoints_test[1]_include.cmake")
include("/root/repo/build/tests/modify_test[1]_include.cmake")
include("/root/repo/build/tests/multitunnel_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_forwarding_test[1]_include.cmake")
include("/root/repo/build/tests/transparency_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/sim_internals_test[1]_include.cmake")
include("/root/repo/build/tests/fig10_conformance_test[1]_include.cmake")
include("/root/repo/build/tests/sip_b2bua_test[1]_include.cmake")
