// Parallel explorer tests: thread-count equivalence over the paper's 12
// models (identical state/transition/terminal counts and verification
// verdicts at 1, 2, and 8 workers), determinism of the sequential fallback,
// and coherence of ExploreStats under concurrency. These are the tests the
// ThreadSanitizer preset (cmake --preset tsan) is meant to exercise.
#include <gtest/gtest.h>

#include "mc/verification.hpp"

namespace cmc {
namespace {

using K = GoalKind;

ExploreLimits base() {
  ExploreLimits limits;
  limits.chaos_budget = 1;
  limits.modify_budget = 0;
  limits.max_states = 2'000'000;
  return limits;
}

// ------------------------------------ equivalence across thread counts

class ParallelEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ParallelEquivalence, CountsAndVerdictsMatchAcrossThreadCounts) {
  const auto suite = paperVerificationSuite();
  const auto config = suite[static_cast<std::size_t>(GetParam())];
  const PathSpec spec = specFor(config.left, config.right);

  ExploreLimits limits = base();
  limits.threads = 1;
  const auto baseline =
      explorePath(config.left, config.right, config.flowlinks, limits);
  ASSERT_FALSE(baseline.truncated);
  const bool base_safety = !checkSafety(baseline).has_value();
  const bool base_spec = !checkSpec(baseline, spec).has_value();

  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    limits.threads = threads;
    const auto graph =
        explorePath(config.left, config.right, config.flowlinks, limits);
    EXPECT_FALSE(graph.truncated) << threads << " threads";
    EXPECT_EQ(graph.states(), baseline.states()) << threads << " threads";
    EXPECT_EQ(graph.transitions, baseline.transitions) << threads << " threads";
    EXPECT_EQ(graph.terminals, baseline.terminals) << threads << " threads";
    EXPECT_EQ(!checkSafety(graph).has_value(), base_safety)
        << threads << " threads";
    EXPECT_EQ(!checkSpec(graph, spec).has_value(), base_spec)
        << threads << " threads";
    EXPECT_EQ(quiescentObservables(graph), quiescentObservables(baseline))
        << threads << " threads";
    EXPECT_EQ(graph.stats.threads, threads);
  }
}

INSTANTIATE_TEST_SUITE_P(PaperModels, ParallelEquivalence,
                         ::testing::Range(0, 12));

// ------------------------------------------------- sequential determinism

TEST(ParallelExplore, SingleThreadIsFullyDeterministic) {
  // threads == 1 must preserve the historical explorer's reproducibility:
  // not just counts, but state order, parents, and action labels — the
  // basis of stable counterexample traces.
  ExploreLimits limits = base();
  limits.threads = 1;
  const auto a = explorePath(K::openSlot, K::holdSlot, 0, limits);
  const auto b = explorePath(K::openSlot, K::holdSlot, 0, limits);
  ASSERT_EQ(a.states(), b.states());
  EXPECT_EQ(a.parent, b.parent);
  EXPECT_EQ(a.parent_action, b.parent_action);
  EXPECT_EQ(a.edges, b.edges);
}

// ----------------------------------------------- stats under concurrency

TEST(ParallelExplore, StatsStayCoherentUnderThreads) {
  ExploreLimits limits = base();
  limits.threads = 4;
  const auto graph = explorePath(K::openSlot, K::openSlot, 0, limits);
  const ExploreStats& stats = graph.stats;
  EXPECT_EQ(stats.threads, 4u);
  EXPECT_EQ(stats.states, graph.states());
  EXPECT_EQ(stats.transitions, graph.transitions);
  EXPECT_GT(stats.bytes_retained, 0u);
  EXPECT_GT(stats.frontier_depth, 0u);
  EXPECT_GE(stats.peak_frontier, 1u);
  EXPECT_GE(stats.dedupRatio(), 0.0);
  EXPECT_LE(stats.dedupRatio(), 1.0);
  // The non-stutter edge accounting must close exactly even with parallel
  // insertion: every edge found a new state or hit the dedup set.
  EXPECT_EQ(stats.dedup_hits + stats.states + stats.terminals,
            stats.transitions + 1);
}

TEST(ParallelExplore, CollisionSafetyHoldsUnderThreads) {
  // Coarse fingerprints force constant collisions while 8 workers insert
  // concurrently; byte verification must still keep every state distinct.
  ExploreLimits limits = base();
  const auto full = explorePath(K::openSlot, K::holdSlot, 0, limits);
  limits.threads = 8;
  limits.fingerprint_mask = 0xFF;
  const auto masked = explorePath(K::openSlot, K::holdSlot, 0, limits);
  EXPECT_GT(masked.stats.collisions, 0u);
  EXPECT_EQ(masked.states(), full.states());
  EXPECT_EQ(masked.transitions, full.transitions);
  EXPECT_EQ(masked.terminals, full.terminals);
}

TEST(ParallelExplore, TruncationIsExactUnderThreads) {
  // The budget is enforced by a single atomic allocator, so even 8 racing
  // workers can never overshoot max_states.
  ExploreLimits limits = base();
  limits.threads = 8;
  limits.max_states = 500;
  const auto graph = explorePath(K::openSlot, K::openSlot, 1, limits);
  EXPECT_TRUE(graph.truncated);
  EXPECT_EQ(graph.states(), 500u);
}

}  // namespace
}  // namespace cmc
