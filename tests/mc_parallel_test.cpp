// Parallel explorer tests: thread-count equivalence over the paper's 12
// models (identical state/transition/terminal counts and verification
// verdicts at 1, 2, and 8 workers), determinism of the sequential fallback,
// and coherence of ExploreStats under concurrency. These are the tests the
// ThreadSanitizer preset (cmake --preset tsan) is meant to exercise.
#include <gtest/gtest.h>

#include "mc/verification.hpp"
#include "util/bytes.hpp"

namespace cmc {
namespace {

using K = GoalKind;

// Deterministic digest of a sequentially-explored graph: folds every
// state's observable bits, parent index, and parent action label, then the
// edge totals. Only meaningful at threads==1, where state order is part of
// the explorer's contract.
std::uint64_t graphFingerprint(const ExploreResult& g) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= static_cast<std::uint8_t>(v >> (8 * i));
      h *= 0x100000001b3ULL;
    }
  };
  for (std::size_t i = 0; i < g.bits.size(); ++i) {
    mix(g.bits[i].observable());
    mix(g.parent[i]);
    const std::string& a = g.parent_action[i];
    h = fnv1a(reinterpret_cast<const std::uint8_t*>(a.data()), a.size(), h);
  }
  mix(g.transitions);
  mix(g.terminals);
  return h;
}

ExploreLimits base() {
  ExploreLimits limits;
  limits.chaos_budget = 1;
  limits.modify_budget = 0;
  limits.max_states = 2'000'000;
  return limits;
}

// ------------------------------------ equivalence across thread counts

class ParallelEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ParallelEquivalence, CountsAndVerdictsMatchAcrossThreadCounts) {
  const auto suite = paperVerificationSuite();
  const auto config = suite[static_cast<std::size_t>(GetParam())];
  const PathSpec spec = specFor(config.left, config.right);

  ExploreLimits limits = base();
  limits.threads = 1;
  const auto baseline =
      explorePath(config.left, config.right, config.flowlinks, limits);
  ASSERT_FALSE(baseline.truncated);
  const bool base_safety = !checkSafety(baseline).has_value();
  const bool base_spec = !checkSpec(baseline, spec).has_value();

  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    limits.threads = threads;
    const auto graph =
        explorePath(config.left, config.right, config.flowlinks, limits);
    EXPECT_FALSE(graph.truncated) << threads << " threads";
    EXPECT_EQ(graph.states(), baseline.states()) << threads << " threads";
    EXPECT_EQ(graph.transitions, baseline.transitions) << threads << " threads";
    EXPECT_EQ(graph.terminals, baseline.terminals) << threads << " threads";
    EXPECT_EQ(!checkSafety(graph).has_value(), base_safety)
        << threads << " threads";
    EXPECT_EQ(!checkSpec(graph, spec).has_value(), base_spec)
        << threads << " threads";
    EXPECT_EQ(quiescentObservables(graph), quiescentObservables(baseline))
        << threads << " threads";
    EXPECT_EQ(graph.stats.threads, threads);
  }
}

INSTANTIATE_TEST_SUITE_P(PaperModels, ParallelEquivalence,
                         ::testing::Range(0, 12));

// ------------------------------------------------- sequential determinism

TEST(ParallelExplore, SingleThreadIsFullyDeterministic) {
  // threads == 1 must preserve the historical explorer's reproducibility:
  // not just counts, but state order, parents, and action labels — the
  // basis of stable counterexample traces.
  ExploreLimits limits = base();
  limits.threads = 1;
  const auto a = explorePath(K::openSlot, K::holdSlot, 0, limits);
  const auto b = explorePath(K::openSlot, K::holdSlot, 0, limits);
  ASSERT_EQ(a.states(), b.states());
  EXPECT_EQ(a.parent, b.parent);
  EXPECT_EQ(a.parent_action, b.parent_action);
  EXPECT_EQ(a.edges, b.edges);
}

// ----------------------------------------------- stats under concurrency

TEST(ParallelExplore, StatsStayCoherentUnderThreads) {
  ExploreLimits limits = base();
  limits.threads = 4;
  const auto graph = explorePath(K::openSlot, K::openSlot, 0, limits);
  const ExploreStats& stats = graph.stats;
  EXPECT_EQ(stats.threads, 4u);
  EXPECT_EQ(stats.states, graph.states());
  EXPECT_EQ(stats.transitions, graph.transitions);
  EXPECT_GT(stats.bytes_retained, 0u);
  EXPECT_GT(stats.frontier_depth, 0u);
  EXPECT_GE(stats.peak_frontier, 1u);
  EXPECT_GE(stats.dedupRatio(), 0.0);
  EXPECT_LE(stats.dedupRatio(), 1.0);
  // The non-stutter edge accounting must close exactly even with parallel
  // insertion: every edge found a new state or hit the dedup set.
  EXPECT_EQ(stats.dedup_hits + stats.states + stats.terminals,
            stats.transitions + 1);
}

TEST(ParallelExplore, CollisionSafetyHoldsUnderThreads) {
  // Coarse fingerprints force constant collisions while 8 workers insert
  // concurrently; byte verification must still keep every state distinct.
  ExploreLimits limits = base();
  const auto full = explorePath(K::openSlot, K::holdSlot, 0, limits);
  limits.threads = 8;
  limits.fingerprint_mask = 0xFF;
  const auto masked = explorePath(K::openSlot, K::holdSlot, 0, limits);
  EXPECT_GT(masked.stats.collisions, 0u);
  EXPECT_EQ(masked.states(), full.states());
  EXPECT_EQ(masked.transitions, full.transitions);
  EXPECT_EQ(masked.terminals, full.terminals);
}

TEST(ParallelExplore, TruncationIsExactUnderThreads) {
  // The budget is enforced by a single atomic allocator, so even 8 racing
  // workers can never overshoot max_states.
  ExploreLimits limits = base();
  limits.threads = 8;
  limits.max_states = 500;
  const auto graph = explorePath(K::openSlot, K::openSlot, 1, limits);
  EXPECT_TRUE(graph.truncated);
  EXPECT_EQ(graph.states(), 500u);
}

// ------------------------------------------- behavior-transparency pins
//
// Recorded reference values for fixed seeds/limits. These pin the explorer's
// exact output — not just counts but the full state graph digest — so a
// refactor of any layer underneath (descriptor storage, event delivery,
// signal encoding) that perturbs behavior in the slightest shows up as a
// failed pin rather than a silently different model. Values recorded at the
// introduction of the interned-descriptor/pooled-event-loop memory model;
// they must never change without an intentional semantics change.

TEST(ExplorerPins, SmallModelsMatchRecordedFingerprints) {
  ExploreLimits limits;
  limits.chaos_budget = 1;
  limits.modify_budget = 0;
  limits.threads = 1;

  const auto hold = explorePath(K::openSlot, K::holdSlot, 0, limits);
  EXPECT_EQ(hold.states(), 326u);
  EXPECT_EQ(hold.transitions, 638u);
  EXPECT_EQ(graphFingerprint(hold), 0x1f09078d2397bfc4ULL);

  const auto linked = explorePath(K::openSlot, K::openSlot, 1, limits);
  EXPECT_EQ(linked.states(), 13660u);
  EXPECT_EQ(linked.transitions, 37151u);
  EXPECT_EQ(graphFingerprint(linked), 0x4eb9667e21b254f1ULL);
}

TEST(ExplorerPins, ReferenceModelMatchesRecordedFingerprint) {
  // The paper's openSlot+openSlot flat model with a modify budget — the
  // mid-size reference (13k states) explored sequentially for a full-graph
  // digest.
  ExploreLimits limits;
  limits.chaos_budget = 1;
  limits.modify_budget = 1;
  limits.max_states = 4'000'000;
  limits.threads = 1;
  const auto flat = explorePath(K::openSlot, K::openSlot, 0, limits);
  ASSERT_FALSE(flat.truncated);
  EXPECT_EQ(flat.states(), 13470u);
  EXPECT_EQ(flat.transitions, 31607u);
  EXPECT_EQ(flat.terminals, 64u);
  EXPECT_EQ(graphFingerprint(flat), 0x26fcade4cad75678ULL);
}

TEST(ExplorerPins, LargeReferenceModelMatchesRecordedCounts) {
  // The 782k-state flowlinked reference model. Counts are thread-order
  // independent, so explore in parallel for speed; the full-graph digest
  // would require threads==1 (~12s) and is covered above on the flat model.
  ExploreLimits limits;
  limits.chaos_budget = 1;
  limits.modify_budget = 1;
  limits.max_states = 4'000'000;
  limits.threads = 8;
  const auto linked = explorePath(K::openSlot, K::openSlot, 1, limits);
  ASSERT_FALSE(linked.truncated);
  EXPECT_EQ(linked.states(), 782915u);
  EXPECT_EQ(linked.transitions, 2320246u);
  EXPECT_EQ(linked.terminals, 128u);
}

}  // namespace
}  // namespace cmc
