// Transparency check (paper Section V): "A path of a given type can have
// any number of tunnels and flowlinks, as these should be transparent with
// respect to observable behavior."
//
// Formalized here as: the set of endpoint-observable fingerprints (endpoint
// protocol states + media-enabled flags + bothFlowing) over quiescent,
// fully-attached states is identical for 0, 1, and 2 flowlinks, for every
// path type. This is the semantic backbone of the paper's proposed
// inductive proof (Section VIII-B): interior elements add no observable
// endpoint behavior.
#include <gtest/gtest.h>

#include "mc/verification.hpp"

namespace cmc {
namespace {

using K = GoalKind;

ExploreLimits limitsFor(std::size_t flowlinks) {
  ExploreLimits limits;
  // Chaotic prefixes change what interior boxes can be mid-doing, so keep
  // them for 0/1 links; at 2 links drop chaos to stay fast (the quiescent
  // observables are already saturated by attach interleavings).
  limits.chaos_budget = flowlinks >= 2 ? 0 : 1;
  limits.modify_budget = 1;
  limits.max_states = 4'000'000;
  return limits;
}

class Transparency : public ::testing::TestWithParam<std::pair<K, K>> {};

TEST_P(Transparency, QuiescentObservablesIndependentOfFlowlinkCount) {
  auto [left, right] = GetParam();
  const auto flat_graph = explorePath(left, right, 0, limitsFor(0));
  const auto flat = quiescentObservables(flat_graph);
  const auto linked = quiescentObservables(
      explorePath(left, right, 1, limitsFor(1)));
  const auto doubled = quiescentObservables(
      explorePath(left, right, 2, limitsFor(2)));

  ASSERT_FALSE(flat.empty());
  // Every observable of the longer paths must already exist on the direct
  // path: flowlinks add NO new endpoint-visible behavior.
  for (std::uint32_t o : linked) {
    EXPECT_TRUE(flat.count(o)) << "1-flowlink path shows new observable " << o;
  }
  for (std::uint32_t o : doubled) {
    EXPECT_TRUE(flat.count(o)) << "2-flowlink path shows new observable " << o;
  }
  // And the longer paths lose none of the direct path's REST states: every
  // terminal observable of the flat path also appears with flowlinks.
  std::set<std::uint32_t> flat_terminals;
  for (const StateBits& bits : flat_graph.bits) {
    if (bits.terminal) flat_terminals.insert(bits.observable());
  }
  for (std::uint32_t o : flat_terminals) {
    EXPECT_TRUE(linked.count(o))
        << "1-flowlink path cannot reach rest observable " << o;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPathTypes, Transparency,
    ::testing::Values(std::pair{K::closeSlot, K::closeSlot},
                      std::pair{K::closeSlot, K::holdSlot},
                      std::pair{K::closeSlot, K::openSlot},
                      std::pair{K::openSlot, K::openSlot},
                      std::pair{K::openSlot, K::holdSlot},
                      std::pair{K::holdSlot, K::holdSlot}),
    [](const ::testing::TestParamInfo<std::pair<K, K>>& info) {
      return std::string(toString(info.param.first)) + "_" +
             std::string(toString(info.param.second));
    });

}  // namespace
}  // namespace cmc
