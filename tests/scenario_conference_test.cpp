// End-to-end tests for the conference server and bridge (paper Fig. 7),
// including the paper's three partial-muting scenarios: business meeting,
// emergency services (NENA), and whisper training.
#include <gtest/gtest.h>

#include "apps/conference.hpp"
#include "endpoints/bridge_box.hpp"
#include "endpoints/user_device.hpp"
#include "sim/simulator.hpp"

namespace cmc {
namespace {

using namespace literals;

class ConferenceScenario : public ::testing::Test {
 protected:
  ConferenceScenario()
      : sim_(TimingModel::paperDefaults(), 21),
        a_(sim_.addBox<UserDeviceBox>("A", sim_.mediaNetwork(), sim_.loop(),
                                      MediaAddress::parse("10.2.0.1", 5000))),
        b_(sim_.addBox<UserDeviceBox>("B", sim_.mediaNetwork(), sim_.loop(),
                                      MediaAddress::parse("10.2.0.2", 5000))),
        c_(sim_.addBox<UserDeviceBox>("C", sim_.mediaNetwork(), sim_.loop(),
                                      MediaAddress::parse("10.2.0.3", 5000))),
        bridge_(sim_.addBox<BridgeBox>("bridge", sim_.mediaNetwork(), sim_.loop(),
                                       MediaAddress::parse("10.2.0.100", 6000))),
        conf_(sim_.addBox<ConferenceServerBox>("conf", "bridge")) {}

  void assemble() {
    sim_.inject("conf", [](Box& b) {
      auto& conf = static_cast<ConferenceServerBox&>(b);
      conf.invite("A");
      conf.invite("B");
      conf.invite("C");
    });
    sim_.runFor(3_s);
  }

  void clearStats() {
    a_.media().resetStats();
    b_.media().resetStats();
    c_.media().resetStats();
  }

  // Audibility matrix row: does `listener` hear each of A, B, C?
  [[nodiscard]] std::array<bool, 3> hears(const UserDeviceBox& listener) const {
    return {listener.media().hears(a_.media().id()),
            listener.media().hears(b_.media().id()),
            listener.media().hears(c_.media().id())};
  }

  Simulator sim_;
  UserDeviceBox& a_;
  UserDeviceBox& b_;
  UserDeviceBox& c_;
  BridgeBox& bridge_;
  ConferenceServerBox& conf_;
};

TEST_F(ConferenceScenario, FullMeshEveryoneHearsEveryoneElse) {
  assemble();
  clearStats();
  sim_.runFor(1_s);
  EXPECT_EQ(hears(a_), (std::array<bool, 3>{false, true, true}));
  EXPECT_EQ(hears(b_), (std::array<bool, 3>{true, false, true}));
  EXPECT_EQ(hears(c_), (std::array<bool, 3>{true, true, false}));
}

TEST_F(ConferenceScenario, FullMuteSeparatesParticipantEntirely) {
  assemble();
  // Full muting: replace C's flowlink by two holdslots (paper Section IV-B).
  sim_.inject("conf", [](Box& b) {
    static_cast<ConferenceServerBox&>(b).muteParty("C");
  });
  sim_.runFor(1_s);
  clearStats();
  sim_.runFor(1_s);
  EXPECT_EQ(hears(a_), (std::array<bool, 3>{false, true, false}));
  EXPECT_EQ(hears(b_), (std::array<bool, 3>{true, false, false}));
  EXPECT_EQ(hears(c_), (std::array<bool, 3>{false, false, false}));
  // Unmute restores the full mix.
  sim_.inject("conf", [](Box& b) {
    static_cast<ConferenceServerBox&>(b).unmuteParty("C");
  });
  sim_.runFor(1_s);
  clearStats();
  sim_.runFor(1_s);
  EXPECT_EQ(hears(c_), (std::array<bool, 3>{true, true, false}));
  EXPECT_EQ(hears(a_), (std::array<bool, 3>{false, true, true}));
}

TEST_F(ConferenceScenario, BusinessMutingOnlySpeakerIsHeard) {
  assemble();
  // A is the speaker; B and C are listeners whose background noise must
  // not degrade the meeting.
  const auto legA = conf_.legOf("A");
  sim_.inject("conf", [legA](Box& b) {
    static_cast<ConferenceServerBox&>(b).setMode("business:" +
                                                 std::to_string(legA));
  });
  sim_.runFor(1_s);
  clearStats();
  sim_.runFor(1_s);
  EXPECT_EQ(hears(b_), (std::array<bool, 3>{true, false, false}));
  EXPECT_EQ(hears(c_), (std::array<bool, 3>{true, false, false}));
  EXPECT_EQ(hears(a_), (std::array<bool, 3>{false, false, false}));
}

TEST_F(ConferenceScenario, EmergencyMutingCallerCannotHearResponders) {
  assemble();
  // A = call-taker, B = emergency caller, C = responder: B's input is
  // retained, but B cannot hear what emergency personnel say (NENA).
  const auto legB = conf_.legOf("B");
  sim_.inject("conf", [legB](Box& b) {
    static_cast<ConferenceServerBox&>(b).setMode("emergency:" +
                                                 std::to_string(legB));
  });
  sim_.runFor(1_s);
  clearStats();
  sim_.runFor(1_s);
  // Everyone still hears the caller B.
  EXPECT_TRUE(a_.media().hears(b_.media().id()));
  EXPECT_TRUE(c_.media().hears(b_.media().id()));
  // B hears nothing.
  EXPECT_EQ(hears(b_), (std::array<bool, 3>{false, false, false}));
  // The personnel hear each other.
  EXPECT_TRUE(a_.media().hears(c_.media().id()));
  EXPECT_TRUE(c_.media().hears(a_.media().id()));
}

TEST_F(ConferenceScenario, WhisperTrainingMatrix) {
  assemble();
  // A = new agent, B = customer, C = supervisor/coach: A and B talk, C
  // hears both, B cannot hear C, A hears C's whisper.
  const auto agent = conf_.legOf("A");
  const auto customer = conf_.legOf("B");
  const auto coach = conf_.legOf("C");
  sim_.inject("conf", [=](Box& b) {
    static_cast<ConferenceServerBox&>(b).setMode(
        "whisper:" + std::to_string(agent) + "," + std::to_string(customer) +
        "," + std::to_string(coach));
  });
  sim_.runFor(1_s);
  clearStats();
  sim_.runFor(1_s);
  EXPECT_TRUE(a_.media().hears(b_.media().id()));   // agent hears customer
  EXPECT_TRUE(a_.media().hears(c_.media().id()));   // agent hears whisper
  EXPECT_TRUE(b_.media().hears(a_.media().id()));   // customer hears agent
  EXPECT_FALSE(b_.media().hears(c_.media().id()));  // customer can't hear coach
  EXPECT_TRUE(c_.media().hears(a_.media().id()));   // coach hears both
  EXPECT_TRUE(c_.media().hears(b_.media().id()));
}

TEST_F(ConferenceScenario, ParticipantHangupLeavesOthersTalking) {
  assemble();
  sim_.inject("C", [](Box& b) { static_cast<UserDeviceBox&>(b).hangUp(); });
  sim_.runFor(1_s);
  clearStats();
  sim_.runFor(1_s);
  EXPECT_TRUE(a_.media().hears(b_.media().id()));
  EXPECT_TRUE(b_.media().hears(a_.media().id()));
  EXPECT_FALSE(a_.media().hears(c_.media().id()));
  EXPECT_EQ(conf_.partyCount(), 2u);
}

}  // namespace
}  // namespace cmc
