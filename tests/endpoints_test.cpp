// Focused endpoint-box tests: device accept policies and busy handling,
// tone resource behavior, voice-resource re-arming across collection
// episodes, movie-server session control, and bridge meta parsing.
#include <gtest/gtest.h>

#include "endpoints/bridge_box.hpp"
#include "endpoints/movie_server.hpp"
#include "endpoints/resources.hpp"
#include "endpoints/user_device.hpp"
#include "sim/simulator.hpp"

namespace cmc {
namespace {

using namespace literals;

class EndpointFixture : public ::testing::Test {
 protected:
  EndpointFixture() : sim_(TimingModel::paperDefaults(), 3) {}

  UserDeviceBox& addPhone(const std::string& name, int octet,
                          UserDeviceBox::AcceptPolicy policy =
                              UserDeviceBox::AcceptPolicy::autoAccept) {
    return sim_.addBox<UserDeviceBox>(
        name, sim_.mediaNetwork(), sim_.loop(),
        MediaAddress::parse("10.7.0." + std::to_string(octet), 5000), policy);
  }

  Simulator sim_;
};

TEST_F(EndpointFixture, BusyDeviceRejectsWithUnavailable) {
  auto& a = addPhone("A", 1);
  auto& b = addPhone("B", 2);
  b.setBusy(true);
  bool got_unavailable = false;
  // A is the caller; sniff metas by watching A's channel go away along with
  // the call never connecting.
  sim_.inject("A", [](Box& bx) { static_cast<UserDeviceBox&>(bx).placeCall("B"); });
  sim_.runFor(2_s);
  EXPECT_FALSE(a.inCall());
  EXPECT_FALSE(b.inCall());
  (void)got_unavailable;
}

TEST_F(EndpointFixture, SecondCallWhileBusyDoesNotDisturbFirst) {
  auto& a = addPhone("A", 1);
  auto& b = addPhone("B", 2);
  auto& c = addPhone("C", 3);
  sim_.inject("A", [](Box& bx) { static_cast<UserDeviceBox&>(bx).placeCall("B"); });
  sim_.runFor(1_s);
  ASSERT_TRUE(a.inCall());
  sim_.inject("B", [](Box& bx) { static_cast<UserDeviceBox&>(bx).setBusy(true); });
  sim_.runFor(100_ms);
  sim_.inject("C", [](Box& bx) { static_cast<UserDeviceBox&>(bx).placeCall("B"); });
  sim_.runFor(2_s);
  EXPECT_FALSE(c.inCall());
  a.media().resetStats();
  sim_.runFor(1_s);
  EXPECT_TRUE(a.media().hears(b.media().id()));  // first call unharmed
}

TEST_F(EndpointFixture, ToneGeneratorOnlyTalks) {
  auto& a = addPhone("A", 1);
  auto& tone = sim_.addBox<ToneGeneratorBox>(
      "tone", sim_.mediaNetwork(), sim_.loop(),
      MediaAddress::parse("10.7.0.9", 5900));
  sim_.inject("A",
              [](Box& bx) { static_cast<UserDeviceBox&>(bx).placeCall("tone"); });
  sim_.runFor(2_s);
  EXPECT_TRUE(a.media().hears(tone.toneId()));
  // The tone generator's descriptor is noMedia (muteIn): A must not send.
  EXPECT_FALSE(a.media().sendingNow());
  EXPECT_EQ(tone.media().packetsReceived(), 0u);
}

TEST_F(EndpointFixture, VoiceResourceRearmsBetweenEpisodes) {
  addPhone("C", 3);
  auto& v = sim_.addBox<VoiceResourceBox>("V", sim_.mediaNetwork(), sim_.loop(),
                                          MediaAddress::parse("10.7.0.8", 5900));
  v.authorizeAfter = 500_ms;
  sim_.inject("C", [](Box& bx) { static_cast<UserDeviceBox&>(bx).placeCall("V"); });
  sim_.runFor(3_s);
  EXPECT_TRUE(v.authorized());
  EXPECT_EQ(v.authorizations(), 1);
  // Caller mutes (silence) long enough for the resource to re-arm...
  sim_.inject("C", [](Box& bx) {
    static_cast<UserDeviceBox&>(bx).setMute(false, /*muteOut=*/true);
  });
  sim_.runFor(2_s);
  EXPECT_FALSE(v.authorized());
  // ...then talks again: a second authorization fires.
  sim_.inject("C", [](Box& bx) {
    static_cast<UserDeviceBox&>(bx).setMute(false, false);
  });
  sim_.runFor(3_s);
  EXPECT_EQ(v.authorizations(), 2);
}

TEST_F(EndpointFixture, MovieServerSessionLifecycle) {
  auto& server = sim_.addBox<MovieServerBox>(
      "movies", sim_.mediaNetwork(), sim_.loop(),
      MediaAddress::parse("10.7.0.100", 7000));
  sim_.addBox<Box>("ctrl");
  const ChannelId ch = sim_.connect("ctrl", "movies", 2);
  auto meta = [&](const std::string& tag, const std::string& payload) {
    sim_.inject("ctrl", [ch, tag, payload](Box& bx) {
      bx.deliverMeta(ch, MetaSignal{MetaKind::custom, tag, payload});
      // Manually forward since a bare Box has no program: send as output.
    });
  };
  (void)meta;
  // Drive metas directly at the server (transport is exercised elsewhere).
  sim_.inject("movies", [ch](Box& bx) {
    bx.deliverMeta(ch, MetaSignal{MetaKind::custom, "load", "casablanca"});
    bx.deliverMeta(ch, MetaSignal{MetaKind::custom, "play", ""});
  });
  sim_.runFor(2_s);
  ASSERT_NE(server.session(ch), nullptr);
  EXPECT_EQ(server.session(ch)->movie, "casablanca");
  EXPECT_TRUE(server.session(ch)->playing);
  const double p1 = server.positionOf(ch);
  EXPECT_GT(p1, 1.5);
  sim_.inject("movies", [ch](Box& bx) {
    bx.deliverMeta(ch, MetaSignal{MetaKind::custom, "pause", ""});
  });
  sim_.runFor(1_s);
  const double p2 = server.positionOf(ch);
  sim_.runFor(1_s);
  EXPECT_DOUBLE_EQ(server.positionOf(ch), p2);
  sim_.inject("movies", [ch](Box& bx) {
    bx.deliverMeta(ch, MetaSignal{MetaKind::custom, "seek", "120.5"});
  });
  sim_.runFor(500_ms);
  EXPECT_DOUBLE_EQ(server.positionOf(ch), 120.5);
}

TEST_F(EndpointFixture, BridgeBoxIgnoresMalformedMixMeta) {
  auto& bridge = sim_.addBox<BridgeBox>("bridge", sim_.mediaNetwork(),
                                        sim_.loop(),
                                        MediaAddress::parse("10.7.0.50", 6000),
                                        4);
  sim_.inject("bridge", [](Box& bx) {
    bx.deliverMeta(ChannelId{1}, MetaSignal{MetaKind::custom, "mix", "garbage"});
    bx.deliverMeta(ChannelId{1}, MetaSignal{MetaKind::custom, "mix", "9,9,1"});
    bx.deliverMeta(ChannelId{1}, MetaSignal{MetaKind::custom, "mode", "bogus"});
    bx.deliverMeta(ChannelId{1},
                   MetaSignal{MetaKind::custom, "mode", "whisper:1"});
  });
  sim_.runFor(100_ms);
  // Survived; default mesh intact for valid legs.
  EXPECT_TRUE(bridge.bridge().audible(0, 1));
  EXPECT_FALSE(bridge.bridge().audible(0, 0));
}

TEST_F(EndpointFixture, DevicePlaceCallToUnknownBoxIsHarmless) {
  auto& a = addPhone("A", 1);
  sim_.inject("A", [](Box& bx) {
    static_cast<UserDeviceBox&>(bx).placeCall("nonexistent");
  });
  sim_.runFor(1_s);
  EXPECT_FALSE(a.inCall());
}

}  // namespace
}  // namespace cmc
