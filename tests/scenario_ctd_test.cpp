// End-to-end tests for the Click-to-Dial box (paper Fig. 6): happy path,
// busy callee with busy tone, ringback during alerting, caller giving up.
#include <gtest/gtest.h>

#include "apps/click_to_dial.hpp"
#include "endpoints/resources.hpp"
#include "endpoints/user_device.hpp"
#include "sim/simulator.hpp"

namespace cmc {
namespace {

using namespace literals;

class CtdScenario : public ::testing::Test {
 protected:
  CtdScenario()
      : sim_(TimingModel::paperDefaults(), 11),
        user1_(sim_.addBox<UserDeviceBox>("U1", sim_.mediaNetwork(), sim_.loop(),
                                          MediaAddress::parse("10.1.0.1", 5000))),
        user2_(sim_.addBox<UserDeviceBox>(
            "U2", sim_.mediaNetwork(), sim_.loop(),
            MediaAddress::parse("10.1.0.2", 5000),
            UserDeviceBox::AcceptPolicy::manual)),
        tone_(sim_.addBox<ToneGeneratorBox>("tone", sim_.mediaNetwork(),
                                            sim_.loop(),
                                            MediaAddress::parse("10.1.0.9", 5900))),
        ctd_(sim_.addBox<ClickToDialBox>("CTD", "tone", 10_s)) {}

  void click() {
    sim_.inject("CTD", [](Box& b) {
      static_cast<ClickToDialBox&>(b).click("U1", "U2");
    });
  }

  Simulator sim_;
  UserDeviceBox& user1_;
  UserDeviceBox& user2_;
  ToneGeneratorBox& tone_;
  ClickToDialBox& ctd_;
};

TEST_F(CtdScenario, HappyPathConnectsBothUsers) {
  click();
  sim_.runFor(1_s);
  // User 1 answered (auto-accept); CTD is now alerting user 2 via meta.
  EXPECT_TRUE(user2_.ringing());
  sim_.inject("U2", [](Box& b) { static_cast<UserDeviceBox&>(b).acceptCall(); });
  sim_.runFor(2_s);
  EXPECT_EQ(ctd_.state(), ClickToDialBox::State::connected);
  // The flowlink re-described both flowing slots: users talk directly.
  EXPECT_TRUE(user1_.media().hears(user2_.media().id()));
  EXPECT_TRUE(user2_.media().hears(user1_.media().id()));
  // And they no longer hear any tone.
  EXPECT_FALSE(user1_.media().hears(tone_.toneId()));
}

TEST_F(CtdScenario, RingbackPlaysWhileAlerting) {
  click();
  sim_.runFor(2_s);
  EXPECT_EQ(ctd_.state(), ClickToDialBox::State::ringback);
  // User 1 hears ringback from the tone resource while user 2's phone
  // rings; user 2 hears nothing yet.
  EXPECT_TRUE(user1_.media().hears(tone_.toneId()));
  EXPECT_FALSE(user2_.media().hears(user1_.media().id()));
}

TEST_F(CtdScenario, BusyCalleeYieldsBusyTone) {
  // Make user 2 decline immediately: the device reports unavailable.
  user2_.onUserEvent = [this](const std::string& event) {
    if (event == "ringing") {
      // handled by injecting decline below
    }
  };
  click();
  sim_.runFor(1_s);
  ASSERT_TRUE(user2_.ringing());
  sim_.inject("U2", [](Box& b) { static_cast<UserDeviceBox&>(b).declineCall(); });
  sim_.runFor(2_s);
  EXPECT_EQ(ctd_.state(), ClickToDialBox::State::busyTone);
  EXPECT_TRUE(user1_.media().hears(tone_.toneId()));
}

TEST_F(CtdScenario, User1NeverAnswersTimesOut) {
  // Replace user 1 with a manual-accept device that never answers.
  auto& silent = sim_.addBox<UserDeviceBox>(
      "U1s", sim_.mediaNetwork(), sim_.loop(),
      MediaAddress::parse("10.1.0.3", 5000), UserDeviceBox::AcceptPolicy::manual);
  (void)silent;
  sim_.inject("CTD", [](Box& b) {
    static_cast<ClickToDialBox&>(b).click("U1s", "U2");
  });
  sim_.runFor(15_s);  // answer timeout is 10 s
  EXPECT_EQ(ctd_.state(), ClickToDialBox::State::done);
}

TEST_F(CtdScenario, User1HangupDuringRingbackFoldsFeature) {
  click();
  sim_.runFor(2_s);
  ASSERT_EQ(ctd_.state(), ClickToDialBox::State::ringback);
  sim_.inject("U1", [](Box& b) { static_cast<UserDeviceBox&>(b).hangUp(); });
  sim_.runFor(2_s);
  EXPECT_EQ(ctd_.state(), ClickToDialBox::State::done);
  EXPECT_FALSE(user2_.inCall());
}

}  // namespace
}  // namespace cmc
