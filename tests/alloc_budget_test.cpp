// Allocation-regression gate for the signal hot path.
//
// The profiler's replacement operator new/delete charges every heap
// allocation to the innermost open profiling span, which makes allocation
// counts per site testable. This gate pins the hot-path allocation budget
// after the small-buffer/interning/pooled-event-loop refactor:
//
//   site                 before     budget
//   sim.deliver_tunnel   ~3.6/op    <= 1.0 allocs per delivered signal
//   sim.process_output   ~3.0/op    <= 1.0 allocs per output-processing run
//   loop.dispatch        ~1.5/op    <= 1.5 allocs per dispatched event
//
// "Before" numbers were measured on the same workload prior to the
// refactor (std::function event handlers, vector codec lists, string
// captures in delivery lambdas). If a future change reintroduces per-signal
// heap churn — a bigger capture than the event-node inline capacity, a
// string built per delivery, a descriptor clone — this test fails before
// the throughput regression reaches a release.
#include <gtest/gtest.h>

#include <string>

#include "load/sharded_runtime.hpp"
#include "load/workload.hpp"
#include "obs/profiler.hpp"

namespace cmc {
namespace {

struct SiteBudget {
  const char* site;
  double max_allocs_per_op;
};

// One profiled single-shard run, sized to amortize warm-up growth (slab,
// metric registries, route maps) across enough signals that steady-state
// behavior dominates.
obs::ProfileReport profiledRun() {
  load::WorkloadSpec w;
  w.master_seed = 7;
  w.calls = 200;
  w.arrivals_per_s = 200.0;
  w.flowlink_fraction = 0.5;

  load::LoadConfig cfg;
  cfg.shards = 1;
  cfg.profile = true;
  load::ShardedRuntime rt(cfg);
  rt.run(w);
  return rt.profileReport();
}

TEST(AllocBudget, HotPathSitesStayWithinBudget) {
  const obs::ProfileReport report = profiledRun();

  const SiteBudget budgets[] = {
      {"sim.deliver_tunnel", 1.0},
      {"sim.process_output", 1.0},
      {"loop.dispatch", 1.5},
  };

  for (const SiteBudget& budget : budgets) {
    std::uint64_t calls = 0;
    std::uint64_t allocs = 0;
    for (const auto& node : report.nodes()) {
      if (node.site == budget.site) {
        calls += node.calls;
        allocs += node.allocs;
      }
    }
    ASSERT_GT(calls, 0u) << "site " << budget.site
                         << " never hit — did the workload change?";
    const double per_op = static_cast<double>(allocs) /
                          static_cast<double>(calls);
    EXPECT_LE(per_op, budget.max_allocs_per_op)
        << "site " << budget.site << ": " << allocs << " allocs over "
        << calls << " calls = " << per_op
        << " allocs/op — hot-path allocation budget exceeded";
  }
}

TEST(AllocBudget, DeliveryVolumeIsRepresentative) {
  // Guard the gate itself: if a workload tweak quietly shrinks the number
  // of delivered signals, the budget above would be testing noise. Require
  // a minimum volume so per-op averages are meaningful.
  const obs::ProfileReport report = profiledRun();
  std::uint64_t deliveries = 0;
  for (const auto& node : report.nodes()) {
    if (node.site == "sim.deliver_tunnel") deliveries += node.calls;
  }
  EXPECT_GE(deliveries, 1000u);
}

}  // namespace
}  // namespace cmc
