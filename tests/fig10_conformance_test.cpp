// Conformance to the paper's Fig. 10: "Use of the protocol" — the
// canonical open / modify / close scenario on a single tunnel with no
// flowlinks, checked signal by signal.
//
//   L -> open(desc1) -> R
//   R -> oack(desc2), select(sel1 answering desc1) -> L
//   L -> select(sel2 answering desc2) -> R
//   R -> select(sel'2 answering desc2)      (codec change, same descriptor)
//   L -> describe(desc3) -> R               (modify; e.g. mute change)
//   R -> select(sel3 answering desc3) -> L
//   L -> close -> R
//   R -> closeack -> L
//
// The kind-level legality rules extracted from this scenario live in
// tests/conformance.hpp (TunnelOracle) so that other suites — notably the
// load tests, which capture traces from thousands of concurrent calls —
// check the same FSM. This file feeds the oracle alongside its exact
// sequence and payload assertions, keeping the oracle honest against the
// canonical run.
#include <gtest/gtest.h>

#include <deque>

#include "conformance.hpp"
#include "core/goal.hpp"

namespace cmc {
namespace {

// Two endpoints, one tunnel, hand-pumped FIFO queues: every signal on the
// wire is recorded and checked against Fig. 10.
class Fig10 : public ::testing::Test {
 protected:
  Fig10()
      : left_slot_{SlotId{1}, true},
        right_slot_{SlotId{2}, false},
        left_{Medium::audio,
              MediaIntent::endpoint(MediaAddress::parse("10.0.0.1", 5000),
                                    {Codec::g711u, Codec::g726}),
              DescriptorFactory{1}},
        right_{MediaIntent::endpoint(MediaAddress::parse("10.0.0.2", 5000),
                                     {Codec::g711u, Codec::g726}),
               DescriptorFactory{2}} {}

  struct Wire {
    bool to_right;
    Signal signal;
  };

  void pumpLeft(Outbox&& out) {
    for (auto& item : out.take()) {
      wire_.push_back(Wire{true, item.signal});
      trace_.push_back("L>" + std::string(toString(kindOf(item.signal))));
      oracle_.feed(/*from_left=*/true, toString(kindOf(item.signal)));
    }
  }
  void pumpRight(Outbox&& out) {
    for (auto& item : out.take()) {
      wire_.push_back(Wire{false, item.signal});
      trace_.push_back("R>" + std::string(toString(kindOf(item.signal))));
      oracle_.feed(/*from_left=*/false, toString(kindOf(item.signal)));
    }
  }

  // Every signal this fixture ever put on the wire must satisfy the
  // kind-level FSM; call at the end of a test.
  void expectConformant(bool expect_quiescent) {
    oracle_.finish(expect_quiescent);
    for (const auto& violation : oracle_.violations()) {
      ADD_FAILURE() << "signal " << violation.index << ": " << violation.what;
    }
  }

  void run() {
    while (!wire_.empty()) {
      Wire w = std::move(wire_.front());
      wire_.pop_front();
      Outbox out;
      if (w.to_right) {
        auto result = right_slot_.deliver(w.signal);
        if (result.autoReply) out.send(right_slot_.id(), *result.autoReply);
        right_.onEvent(right_slot_, result.event, out);
        pumpRight(std::move(out));
      } else {
        auto result = left_slot_.deliver(w.signal);
        if (result.autoReply) out.send(left_slot_.id(), *result.autoReply);
        left_.onEvent(left_slot_, result.event, out);
        pumpLeft(std::move(out));
      }
    }
  }

  SlotEndpoint left_slot_;
  SlotEndpoint right_slot_;
  OpenSlotGoal left_;
  HoldSlotGoal right_;
  std::deque<Wire> wire_;
  std::vector<std::string> trace_;
  conformance::TunnelOracle oracle_;
};

TEST_F(Fig10, FullScenarioSignalSequence) {
  // --- open ----------------------------------------------------------
  Outbox out;
  left_.attach(left_slot_, out);
  right_.attach(right_slot_, out);  // hold: silent
  pumpLeft(std::move(out));
  run();
  // open; oack + select(sel1); select(sel2).
  EXPECT_EQ(trace_, (std::vector<std::string>{"L>open", "R>oack", "R>select",
                                              "L>select"}));
  EXPECT_EQ(left_slot_.state(), ProtocolState::flowing);
  EXPECT_EQ(right_slot_.state(), ProtocolState::flowing);
  // sel1 answers desc1, sel2 answers desc2 (the numbered pairing of Fig. 10).
  EXPECT_EQ(left_slot_.lastSelectorReceived()->answersDescriptor,
            left_slot_.lastDescriptorSent());
  EXPECT_EQ(right_slot_.lastSelectorReceived()->answersDescriptor,
            right_slot_.lastDescriptorSent());
  trace_.clear();

  // --- select' (unilateral codec change, same descriptor) -------------
  Outbox out2;
  ASSERT_TRUE(right_.reselect(Codec::g726, right_slot_, out2));
  pumpRight(std::move(out2));
  run();
  EXPECT_EQ(trace_, (std::vector<std::string>{"R>select"}));
  EXPECT_EQ(left_slot_.lastSelectorReceived()->codec, Codec::g726);
  // Still answers the descriptor left most recently sent: no renegotiation.
  EXPECT_EQ(left_slot_.lastSelectorReceived()->answersDescriptor,
            left_slot_.lastDescriptorSent());
  trace_.clear();

  // --- describe / select (modify) --------------------------------------
  Outbox out3;
  left_.setMute(/*in=*/true, /*out=*/false, left_slot_, out3);
  pumpLeft(std::move(out3));
  run();
  EXPECT_EQ(trace_, (std::vector<std::string>{"L>describe", "R>select"}));
  // desc3 is noMedia; sel3 must answer it with noMedia.
  ASSERT_TRUE(left_slot_.lastSelectorReceived().has_value());
  EXPECT_TRUE(left_slot_.lastSelectorReceived()->isNoMedia());
  EXPECT_EQ(left_slot_.lastSelectorReceived()->answersDescriptor,
            left_slot_.lastDescriptorSent());
  trace_.clear();

  // --- close / closeack -------------------------------------------------
  Outbox out4;
  out4.send(left_slot_.id(), left_slot_.sendClose());
  pumpLeft(std::move(out4));
  run();
  EXPECT_EQ(trace_, (std::vector<std::string>{"L>close", "R>closeack"}));
  EXPECT_EQ(left_slot_.state(), ProtocolState::closed);
  EXPECT_EQ(right_slot_.state(), ProtocolState::closed);
  // The full scenario ran to quiescence; the extracted oracle must agree.
  expectConformant(/*expect_quiescent=*/true);
}

TEST_F(Fig10, ConcurrentDescribesDoNotConstrainEachOther) {
  // Section VI-C: "describe signals (and their answering selects) going in
  // opposite directions of the same tunnel do not constrain each other."
  Outbox out;
  left_.attach(left_slot_, out);
  right_.attach(right_slot_, out);
  pumpLeft(std::move(out));
  run();
  trace_.clear();

  // Both ends modify at the same instant; all four signals flow with no
  // ordering constraint or failure.
  Outbox lo, ro;
  left_.setMute(true, false, left_slot_, lo);
  right_.setMute(true, false, right_slot_, ro);
  pumpLeft(std::move(lo));
  pumpRight(std::move(ro));
  run();
  // Exactly: L describe, R describe, then each side's answering select.
  ASSERT_EQ(trace_.size(), 4u);
  EXPECT_EQ(trace_[0], "L>describe");
  EXPECT_EQ(trace_[1], "R>describe");
  EXPECT_EQ(left_slot_.lastSelectorReceived()->answersDescriptor,
            left_slot_.lastDescriptorSent());
  EXPECT_EQ(right_slot_.lastSelectorReceived()->answersDescriptor,
            right_slot_.lastDescriptorSent());
  // Still mid-session (flowing), so only the prefix-closed rules apply.
  expectConformant(/*expect_quiescent=*/false);
}

// The oracle itself must reject the mistakes it exists to catch.
TEST(TunnelOracle, FlagsProtocolViolations) {
  {
    conformance::TunnelOracle oracle;
    oracle.feed(true, "oack");  // nothing to answer
    EXPECT_FALSE(oracle.ok());
  }
  {
    conformance::TunnelOracle oracle;
    oracle.feed(true, "open");
    oracle.feed(true, "open");  // double open without an answer
    EXPECT_FALSE(oracle.ok());
  }
  {
    conformance::TunnelOracle oracle;
    oracle.feed(false, "closeack");  // no close outstanding
    EXPECT_FALSE(oracle.ok());
  }
  {
    conformance::TunnelOracle oracle;
    oracle.feed(true, "select");  // no descriptor ever sent
    EXPECT_FALSE(oracle.ok());
  }
  {
    conformance::TunnelOracle oracle;
    oracle.feed(true, "open");
    oracle.finish(/*expect_quiescent=*/true);  // open left unanswered
    EXPECT_FALSE(oracle.ok());
  }
  {
    // The close/open refusal loop of Section V is legal.
    conformance::TunnelOracle oracle;
    oracle.feed(true, "open");
    oracle.feed(false, "close");
    oracle.feed(true, "closeack");
    oracle.feed(true, "open");
    oracle.feed(false, "close");
    oracle.feed(true, "closeack");
    oracle.finish(/*expect_quiescent=*/true);
    EXPECT_TRUE(oracle.ok()) << oracle.violations().front().what;
  }
}

}  // namespace
}  // namespace cmc
