// Randomized-workload property suite: every completed call sampled from a
// sharded load run is replayed from its captured trace and checked against
// its §V path guarantee with the temporal machinery from mc/temporal.hpp.
//
// Replay means: filter the owning shard's trace down to the call's signal
// deliveries (box names carry the call id), reconstruct the two endpoints'
// Fig. 5 protocol states signal by signal, and emit the sequence as a
// linear ExploreResult — state i+1 follows delivery i, the last
// pre-teardown state carries the terminal self-loop. On that graph the
// paper's guarantees become the usual lasso queries:
//
//   open/open, open/hold    ◇□ bothFlowing   (settles flowing)
//   close/*, hold/hold      ◇□ bothClosed    (settles closed)
//   close/open              never flows, and the observed refusal cycle
//                           (made explicit with a back-edge over the last
//                           full retry) satisfies □◇ bothClosed while
//                           refuting ◇□ bothFlowing
//
// Runs twice: a clean workload and one with per-call fault plans — §V must
// hold either way (self-stabilization recovers inside the fault window,
// which closes before the call's hold expires).
//
// LOAD_FUZZ_CALLS overrides the number of randomized calls (default 60;
// the acceptance floor is 50), LOAD_FUZZ_SEED the master seed.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "load/sharded_runtime.hpp"
#include "load/workload.hpp"
#include "mc/temporal.hpp"

namespace cmc::load {
namespace {

std::size_t envCalls() {
  if (const char* env = std::getenv("LOAD_FUZZ_CALLS")) {
    return static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }
  return 60;
}

std::uint64_t envSeed() {
  if (const char* env = std::getenv("LOAD_FUZZ_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 0x5eedu;
}

enum class Side { closed, opening, flowing };

// One call's wire history, replayed into endpoint protocol states.
struct CallReplay {
  // Endpoint states after each delivery (index 0 = before any signal).
  std::vector<std::pair<Side, Side>> states{{Side::closed, Side::closed}};
  // Indices into `states` reached right after a closeack delivery (the
  // quiescent points of close/open refusal cycles).
  std::vector<std::size_t> after_closeack;
  std::size_t signals = 0;
};

CallReplay replayCall(const CallSpec& call,
                      const std::vector<obs::TraceEvent>& events,
                      std::int64_t until_us) {
  const std::string prefix = "c" + std::to_string(call.id) + ".";
  const std::string left = call.leftName();
  const std::string right = call.rightName();
  std::map<std::string, Side> side{{left, Side::closed},
                                   {right, Side::closed}};
  CallReplay replay;
  for (const obs::TraceEvent& ev : events) {
    if (ev.kind != obs::EventKind::signalRecv) continue;
    if (ev.ts_us >= until_us) continue;  // teardown signals are not §V
    // Both parties of an intra-call signal carry the call's name prefix.
    if (ev.actor.compare(0, prefix.size(), prefix) != 0) continue;
    ++replay.signals;
    // Fig. 5 transitions, sender's perspective (sender = aux, receiver =
    // actor; relay sides are tracked too but only endpoint states matter).
    Side& sender = side[ev.aux];
    Side& receiver = side[ev.actor];
    bool closeack = false;
    if (ev.name == "open") {
      sender = Side::opening;
    } else if (ev.name == "oack") {
      sender = Side::flowing;
      receiver = Side::flowing;
    } else if (ev.name == "close") {
      if (receiver == Side::opening) receiver = Side::closed;
      sender = Side::closed;
    } else if (ev.name == "closeack") {
      sender = Side::closed;
      closeack = true;
    }  // describe/select don't move the Fig. 5 state
    replay.states.emplace_back(side[left], side[right]);
    if (closeack) replay.after_closeack.push_back(replay.states.size() - 1);
  }
  return replay;
}

StateBits toBits(std::pair<Side, Side> s, bool terminal) {
  StateBits bits{};
  bits.bothClosed = s.first == Side::closed && s.second == Side::closed;
  bits.bothFlowing = s.first == Side::flowing && s.second == Side::flowing;
  bits.slotsStable =
      s.first != Side::opening && s.second != Side::opening;
  bits.terminal = terminal;
  bits.expanded = true;
  bits.left_state = static_cast<std::uint8_t>(s.first);
  bits.right_state = static_cast<std::uint8_t>(s.second);
  return bits;
}

// Linear graph over the replayed states; `loop_to`, when valid, turns the
// observed tail into an explicit cycle (close/open retry); otherwise the
// last state self-loops (settled call).
ExploreResult linearGraph(const CallReplay& replay, std::size_t loop_to,
                          bool has_loop) {
  ExploreResult graph;
  const std::size_t n = replay.states.size();
  graph.bits.reserve(n);
  graph.edges.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    graph.bits.push_back(toBits(replay.states[i], i + 1 == n && !has_loop));
    if (i + 1 < n) {
      graph.edges[i] = {static_cast<std::uint32_t>(i + 1)};
    } else {
      graph.edges[i] = {
          static_cast<std::uint32_t>(has_loop ? loop_to : i)};
    }
  }
  graph.transitions = n;
  graph.terminals = has_loop ? 0 : 1;
  return graph;
}

const StatePredicate kBothFlowing = [](const StateBits& b) {
  return b.bothFlowing;
};
const StatePredicate kBothClosed = [](const StateBits& b) {
  return b.bothClosed;
};

struct SuiteStats {
  std::size_t checked = 0;
  std::map<std::string, std::size_t> by_type;
};

void checkWorkload(const WorkloadSpec& workload, SuiteStats& stats) {
  LoadConfig config;
  config.shards = 4;
  config.capture_traces = true;
  config.trace_capacity = 1 << 19;
  ShardedRuntime runtime(config);
  runtime.run(workload);

  ASSERT_EQ(runtime.convergedCount(), workload.calls)
      << "every call must reach its rest state before replay makes sense";
  for (const ShardStats& shard : runtime.shardStats()) {
    ASSERT_EQ(shard.trace_dropped, 0u)
        << "ring overflow would truncate replays";
  }

  for (const CallOutcome& outcome : runtime.outcomes()) {
    const CallSpec& call = outcome.spec;
    const auto& events = runtime.shardTraces()[outcome.shard];
    const std::int64_t teardown_us =
        (call.arrival + runtime.config().setup_grace + call.hold)
            .sinceStart()
            .count();
    CallReplay replay = replayCall(call, events, teardown_us);

    const bool has_close = call.left == GoalKind::closeSlot ||
                           call.right == GoalKind::closeSlot;
    const bool has_open = call.left == GoalKind::openSlot ||
                          call.right == GoalKind::openSlot;
    SCOPED_TRACE("call " + std::to_string(call.id) + " (" + call.type_name +
                 ", " + std::to_string(call.flowlinks) + " flowlinks" +
                 (call.faulty ? ", faulty)" : ")"));

    if (has_open && has_close) {
      // close/open: the open end retries forever and is refused every
      // time. The replay must show at least one full refusal cycle; the
      // cycle (last closeack back to the previous one) is the lasso.
      ASSERT_GE(replay.after_closeack.size(), 2u)
          << "expected repeated open/close/closeack refusals";
      const std::size_t cycle_end = replay.after_closeack.back();
      const std::size_t cycle_start =
          replay.after_closeack[replay.after_closeack.size() - 2];
      CallReplay truncated = replay;
      truncated.states.resize(cycle_end + 1);
      const ExploreResult graph =
          linearGraph(truncated, cycle_start, /*has_loop=*/true);
      // □◇ bothClosed: the retry cycle keeps returning to closed/closed.
      auto recurrent = checkAlwaysEventually(graph, kBothClosed);
      EXPECT_FALSE(recurrent.has_value())
          << (recurrent ? recurrent->description : "");
      // ◇□ bothFlowing must be REFUTED: the call never settles flowing —
      // in fact it never flows at all.
      EXPECT_TRUE(checkEventuallyAlways(graph, kBothFlowing).has_value());
      for (const auto& s : replay.states) {
        EXPECT_FALSE(s.first == Side::flowing && s.second == Side::flowing)
            << "a close goal must refuse the open before media flows";
      }
    } else {
      const ExploreResult graph = linearGraph(replay, 0, /*has_loop=*/false);
      const StatePredicate& rest =
          (has_open && !has_close) ? kBothFlowing : kBothClosed;
      auto violation = checkEventuallyAlways(graph, rest);
      EXPECT_FALSE(violation.has_value())
          << (violation ? violation->description : "") << " after "
          << replay.signals << " signals";
      // Settled calls also satisfy the fault-mode safety check: the
      // terminal state holds no half-open slot.
      auto unsafe = checkSafetyTerminal(graph);
      EXPECT_FALSE(unsafe.has_value())
          << (unsafe ? unsafe->description : "");
      if (has_open) {
        EXPECT_GE(replay.signals, 2u) << "open pair with no open/oack?";
      }
    }
    ++stats.checked;
    ++stats.by_type[call.type_name];
  }
}

TEST(LoadProperty, SampledCallsSatisfySectionVClean) {
  WorkloadSpec workload;
  workload.master_seed = envSeed();
  workload.calls = envCalls();
  workload.arrivals_per_s = 100.0;
  workload.flowlink_fraction = 0.5;
  workload.fault_fraction = 0.0;

  SuiteStats stats;
  checkWorkload(workload, stats);
  EXPECT_GE(stats.checked, 50u);
  // The randomized draw must have exercised every §V pair type.
  EXPECT_EQ(stats.by_type.size(), callTypes().size());
}

TEST(LoadProperty, SampledCallsSatisfySectionVUnderFaults) {
  WorkloadSpec workload;
  workload.master_seed = envSeed() ^ 0xfa17u;
  workload.calls = envCalls();
  workload.arrivals_per_s = 100.0;
  workload.flowlink_fraction = 0.5;
  workload.fault_fraction = 0.35;

  std::size_t faulty = 0;
  for (const CallSpec& call : WorkloadGenerator(workload).generate()) {
    if (call.faulty) ++faulty;
  }
  ASSERT_GT(faulty, 0u) << "seed drew no faulty calls; widen the fraction";

  SuiteStats stats;
  checkWorkload(workload, stats);
  EXPECT_GE(stats.checked, 50u);
  EXPECT_EQ(stats.by_type.size(), callTypes().size());
}

}  // namespace
}  // namespace cmc::load
