// Failure-injection tests: teardown racing with setup, simultaneous
// hangups, devices vanishing mid-modification, and the logger under
// concurrent use. The specification only promises behavior for stable
// paths; these tests pin down that instability degrades *cleanly* — no
// stuck slots, no phantom media, no crashes.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "endpoints/user_device.hpp"
#include "sim/simulator.hpp"
#include "util/log.hpp"

namespace cmc {
namespace {

using namespace literals;

class FailureFixture : public ::testing::Test {
 protected:
  FailureFixture()
      : sim_(TimingModel::paperDefaults(), 43),
        a_(sim_.addBox<UserDeviceBox>("A", sim_.mediaNetwork(), sim_.loop(),
                                      MediaAddress::parse("10.8.1.1", 5000))),
        b_(sim_.addBox<UserDeviceBox>("B", sim_.mediaNetwork(), sim_.loop(),
                                      MediaAddress::parse("10.8.1.2", 5000))) {}

  Simulator sim_;
  UserDeviceBox& a_;
  UserDeviceBox& b_;
};

TEST_F(FailureFixture, HangupWhileOpenInFlight) {
  // A hangs up before its open even reaches B: B must not end up with a
  // half-open call.
  sim_.inject("A", [](Box& bx) { static_cast<UserDeviceBox&>(bx).placeCall("B"); });
  sim_.runFor(30_ms);  // open still in flight (n = 34 ms)
  sim_.inject("A", [](Box& bx) { static_cast<UserDeviceBox&>(bx).hangUp(); });
  sim_.runFor(2_s);
  EXPECT_FALSE(a_.inCall());
  EXPECT_FALSE(b_.inCall());
  EXPECT_FALSE(b_.media().sendingNow());
}

TEST_F(FailureFixture, SimultaneousHangup) {
  sim_.inject("A", [](Box& bx) { static_cast<UserDeviceBox&>(bx).placeCall("B"); });
  sim_.runFor(2_s);
  ASSERT_TRUE(a_.inCall());
  // Both tear down at the same instant: teardown metas cross in flight.
  sim_.inject("A", [](Box& bx) { static_cast<UserDeviceBox&>(bx).hangUp(); });
  sim_.inject("B", [](Box& bx) { static_cast<UserDeviceBox&>(bx).hangUp(); });
  sim_.runFor(2_s);
  EXPECT_FALSE(a_.inCall());
  EXPECT_FALSE(b_.inCall());
  EXPECT_FALSE(a_.media().sendingNow());
  EXPECT_FALSE(b_.media().sendingNow());
}

TEST_F(FailureFixture, HangupRacesWithMuteChange) {
  sim_.inject("A", [](Box& bx) { static_cast<UserDeviceBox&>(bx).placeCall("B"); });
  sim_.runFor(2_s);
  // B modifies just as A tears the channel down: the describe races the
  // teardown and must be dropped harmlessly.
  sim_.inject("B", [](Box& bx) {
    static_cast<UserDeviceBox&>(bx).setMute(true, true);
  });
  sim_.inject("A", [](Box& bx) { static_cast<UserDeviceBox&>(bx).hangUp(); });
  sim_.runFor(2_s);
  EXPECT_FALSE(a_.inCall());
  EXPECT_FALSE(b_.inCall());
}

TEST_F(FailureFixture, RapidRedial) {
  // Hang up and immediately redial, five times: each call must establish.
  for (int round = 0; round < 5; ++round) {
    sim_.inject("A",
                [](Box& bx) { static_cast<UserDeviceBox&>(bx).placeCall("B"); });
    sim_.runFor(1_s);
    EXPECT_TRUE(a_.inCall()) << "round " << round;
    sim_.inject("A", [](Box& bx) { static_cast<UserDeviceBox&>(bx).hangUp(); });
    sim_.runFor(500_ms);
  }
  EXPECT_FALSE(a_.inCall());
}

TEST_F(FailureFixture, MuteStorm) {
  // 20 rapid alternating mute toggles queued faster than the network can
  // carry them: idempotent describes/selects must converge to the last
  // setting.
  sim_.inject("A", [](Box& bx) { static_cast<UserDeviceBox&>(bx).placeCall("B"); });
  sim_.runFor(2_s);
  for (int i = 0; i < 20; ++i) {
    const bool mute = (i % 2) == 0;
    sim_.inject("A", [mute](Box& bx) {
      static_cast<UserDeviceBox&>(bx).setMute(mute, mute);
    });
  }
  sim_.runFor(3_s);  // last toggle: i=19 -> mute=false
  a_.media().resetStats();
  b_.media().resetStats();
  sim_.runFor(1_s);
  EXPECT_TRUE(a_.media().hears(b_.media().id()));
  EXPECT_TRUE(b_.media().hears(a_.media().id()));
}

// ---------------------------------------------------------------- logging

TEST(Logging, LevelsFilter) {
  std::ostringstream sink;
  log::setSink(&sink);
  log::setLevel(log::Level::warn);
  log::debug("t", "hidden");
  log::info("t", "hidden");
  log::warn("t", "visible-warn");
  log::error("t", "visible-error");
  log::setLevel(log::Level::none);
  log::setSink(nullptr);
  const std::string out = sink.str();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("visible-warn"), std::string::npos);
  EXPECT_NE(out.find("visible-error"), std::string::npos);
  EXPECT_NE(out.find("[WARN ]"), std::string::npos);
}

TEST(Logging, ConcurrentWritersDoNotInterleave) {
  std::ostringstream sink;
  log::setSink(&sink);
  log::setLevel(log::Level::info);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t]() {
      for (int i = 0; i < 50; ++i) {
        log::info("thread", "writer=", t, " line=", i, " payload=XXXXXXXX");
      }
    });
  }
  for (auto& thread : threads) thread.join();
  log::setLevel(log::Level::none);
  log::setSink(nullptr);
  // Every line is complete: timestamp, then the level tag, then payload.
  std::istringstream lines(sink.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.rfind("[", 0), 0u) << line;
    EXPECT_NE(line.find("[INFO ]"), std::string::npos) << line;
    EXPECT_NE(line.find("payload=XXXXXXXX"), std::string::npos) << line;
    ++count;
  }
  EXPECT_EQ(count, 200);
}

}  // namespace
}  // namespace cmc
