// Failure-injection tests: teardown racing with setup, simultaneous
// hangups, devices vanishing mid-modification, and the logger under
// concurrent use. The specification only promises behavior for stable
// paths; these tests pin down that instability degrades *cleanly* — no
// stuck slots, no phantom media, no crashes.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "endpoints/user_device.hpp"
#include "sim/simulator.hpp"
#include "util/log.hpp"

namespace cmc {
namespace {

using namespace literals;

class FailureFixture : public ::testing::Test {
 protected:
  FailureFixture()
      : sim_(TimingModel::paperDefaults(), 43),
        a_(sim_.addBox<UserDeviceBox>("A", sim_.mediaNetwork(), sim_.loop(),
                                      MediaAddress::parse("10.8.1.1", 5000))),
        b_(sim_.addBox<UserDeviceBox>("B", sim_.mediaNetwork(), sim_.loop(),
                                      MediaAddress::parse("10.8.1.2", 5000))) {}

  Simulator sim_;
  UserDeviceBox& a_;
  UserDeviceBox& b_;
};

TEST_F(FailureFixture, HangupWhileOpenInFlight) {
  // A hangs up before its open even reaches B: B must not end up with a
  // half-open call.
  sim_.inject("A", [](Box& bx) { static_cast<UserDeviceBox&>(bx).placeCall("B"); });
  sim_.runFor(30_ms);  // open still in flight (n = 34 ms)
  sim_.inject("A", [](Box& bx) { static_cast<UserDeviceBox&>(bx).hangUp(); });
  sim_.runFor(2_s);
  EXPECT_FALSE(a_.inCall());
  EXPECT_FALSE(b_.inCall());
  EXPECT_FALSE(b_.media().sendingNow());
}

TEST_F(FailureFixture, SimultaneousHangup) {
  sim_.inject("A", [](Box& bx) { static_cast<UserDeviceBox&>(bx).placeCall("B"); });
  sim_.runFor(2_s);
  ASSERT_TRUE(a_.inCall());
  // Both tear down at the same instant: teardown metas cross in flight.
  sim_.inject("A", [](Box& bx) { static_cast<UserDeviceBox&>(bx).hangUp(); });
  sim_.inject("B", [](Box& bx) { static_cast<UserDeviceBox&>(bx).hangUp(); });
  sim_.runFor(2_s);
  EXPECT_FALSE(a_.inCall());
  EXPECT_FALSE(b_.inCall());
  EXPECT_FALSE(a_.media().sendingNow());
  EXPECT_FALSE(b_.media().sendingNow());
}

TEST_F(FailureFixture, HangupRacesWithMuteChange) {
  sim_.inject("A", [](Box& bx) { static_cast<UserDeviceBox&>(bx).placeCall("B"); });
  sim_.runFor(2_s);
  // B modifies just as A tears the channel down: the describe races the
  // teardown and must be dropped harmlessly.
  sim_.inject("B", [](Box& bx) {
    static_cast<UserDeviceBox&>(bx).setMute(true, true);
  });
  sim_.inject("A", [](Box& bx) { static_cast<UserDeviceBox&>(bx).hangUp(); });
  sim_.runFor(2_s);
  EXPECT_FALSE(a_.inCall());
  EXPECT_FALSE(b_.inCall());
}

TEST_F(FailureFixture, RapidRedial) {
  // Hang up and immediately redial, five times: each call must establish.
  for (int round = 0; round < 5; ++round) {
    sim_.inject("A",
                [](Box& bx) { static_cast<UserDeviceBox&>(bx).placeCall("B"); });
    sim_.runFor(1_s);
    EXPECT_TRUE(a_.inCall()) << "round " << round;
    sim_.inject("A", [](Box& bx) { static_cast<UserDeviceBox&>(bx).hangUp(); });
    sim_.runFor(500_ms);
  }
  EXPECT_FALSE(a_.inCall());
}

TEST_F(FailureFixture, MuteStorm) {
  // 20 rapid alternating mute toggles queued faster than the network can
  // carry them: idempotent describes/selects must converge to the last
  // setting.
  sim_.inject("A", [](Box& bx) { static_cast<UserDeviceBox&>(bx).placeCall("B"); });
  sim_.runFor(2_s);
  for (int i = 0; i < 20; ++i) {
    const bool mute = (i % 2) == 0;
    sim_.inject("A", [mute](Box& bx) {
      static_cast<UserDeviceBox&>(bx).setMute(mute, mute);
    });
  }
  sim_.runFor(3_s);  // last toggle: i=19 -> mute=false
  a_.media().resetStats();
  b_.media().resetStats();
  sim_.runFor(1_s);
  EXPECT_TRUE(a_.media().hears(b_.media().id()));
  EXPECT_TRUE(b_.media().hears(a_.media().id()));
}

// ---------------------------------------------------- crash/restart faults
// Box crashes lose all volatile slot state (FaultPlan + Box::crashRestart,
// docs/FAULTS.md); configuration — channel wiring, goal annotations —
// survives. These pin down that a restarted box rejoins the path cleanly:
// no stuck slots, no phantom media from a peer still flowing into a box
// that has forgotten the call.

TEST_F(FailureFixture, CrashMidOpenRecovers) {
  FaultPlan plan(1);  // no message faults; one crash
  plan.addCrash(CrashEvent{"B", SimTime{} + 60_ms, 500_ms});
  sim_.installFaultPlan(&plan);
  sim_.inject("A", [](Box& bx) { static_cast<UserDeviceBox&>(bx).placeCall("B"); });
  sim_.runFor(15_s);
  EXPECT_EQ(plan.counters().crashes, 1u);
  EXPECT_TRUE(a_.inCall()) << "caller stuck after callee crashed mid-open";
  EXPECT_TRUE(b_.inCall());
  EXPECT_TRUE(a_.media().hears(b_.media().id()));
  EXPECT_TRUE(b_.media().hears(a_.media().id()));
}

// Relay with one flowlink joining its two statically configured channels.
class RelayBox : public Box {
 public:
  using Box::Box;

 protected:
  void onChannelUp(ChannelId channel, const std::string&) override { note(channel); }
  void onIncomingChannel(ChannelId channel, const std::string&) override {
    note(channel);
  }

 private:
  void note(ChannelId channel) {
    channels_.push_back(channel);
    if (channels_.size() == 2) {
      linkSlots(slotsOf(channels_[0])[0], slotsOf(channels_[1])[0]);
    }
  }
  std::vector<ChannelId> channels_;
};

TEST(CrashRestart, FlowlinkCrashWithHalfDescribedLinkRecovers) {
  Simulator sim(TimingModel::paperDefaults(), 43);
  auto& a = sim.addBox<UserDeviceBox>("A", sim.mediaNetwork(), sim.loop(),
                                      MediaAddress::parse("10.8.2.1", 5000));
  sim.addBox<RelayBox>("R");
  auto& b = sim.addBox<UserDeviceBox>("B", sim.mediaNetwork(), sim.loop(),
                                      MediaAddress::parse("10.8.2.2", 5000));
  sim.connect("A", "R");
  sim.connect("R", "B");

  FaultPlan plan(2);
  // ~170 ms in, the relay has B's descriptor but has not finished pushing
  // it toward A: the flowlink dies half-described.
  plan.addCrash(CrashEvent{"R", SimTime{} + 170_ms, 600_ms});
  sim.installFaultPlan(&plan);

  sim.inject("A", [](Box& bx) { static_cast<UserDeviceBox&>(bx).callOnLine(); });
  sim.runFor(20_s);
  EXPECT_EQ(plan.counters().crashes, 1u);
  EXPECT_TRUE(a.inCall()) << "left endpoint stuck after relay crash";
  EXPECT_TRUE(b.inCall()) << "right endpoint stuck after relay crash";
  EXPECT_TRUE(a.media().hears(b.media().id()));
  EXPECT_TRUE(b.media().hears(a.media().id()));
}

TEST_F(FailureFixture, RestartRefreshesDescriptorCaches) {
  sim_.inject("A", [](Box& bx) { static_cast<UserDeviceBox&>(bx).placeCall("B"); });
  sim_.runFor(2_s);
  ASSERT_TRUE(a_.inCall());

  // A crashes mid-call: its descriptor cache and slot state are gone, while
  // B sits converged-flowing with no reason to ever signal first. The
  // restart's close-probe forces B down; A's re-attached openSlot then
  // rebuilds the call with freshly exchanged descriptors.
  FaultPlan plan(3);
  plan.addCrash(CrashEvent{"A", SimTime{} + 2500_ms, 1_s});
  sim_.installFaultPlan(&plan);
  sim_.runFor(20_s);

  EXPECT_EQ(plan.counters().crashes, 1u);
  EXPECT_TRUE(a_.inCall()) << "call not re-established after caller restart";
  EXPECT_TRUE(b_.inCall());
  // Fresh descriptors made it across both ways: media is two-way again,
  // not phantom packets aimed at the pre-crash session.
  a_.media().resetStats();
  b_.media().resetStats();
  sim_.runFor(1_s);
  EXPECT_TRUE(a_.media().hears(b_.media().id()));
  EXPECT_TRUE(b_.media().hears(a_.media().id()));
}

// ---------------------------------------------------------------- logging

TEST(Logging, LevelsFilter) {
  std::ostringstream sink;
  log::setSink(&sink);
  log::setLevel(log::Level::warn);
  log::debug("t", "hidden");
  log::info("t", "hidden");
  log::warn("t", "visible-warn");
  log::error("t", "visible-error");
  log::setLevel(log::Level::none);
  log::setSink(nullptr);
  const std::string out = sink.str();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("visible-warn"), std::string::npos);
  EXPECT_NE(out.find("visible-error"), std::string::npos);
  EXPECT_NE(out.find("[WARN ]"), std::string::npos);
}

TEST(Logging, ConcurrentWritersDoNotInterleave) {
  std::ostringstream sink;
  log::setSink(&sink);
  log::setLevel(log::Level::info);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t]() {
      for (int i = 0; i < 50; ++i) {
        log::info("thread", "writer=", t, " line=", i, " payload=XXXXXXXX");
      }
    });
  }
  for (auto& thread : threads) thread.join();
  log::setLevel(log::Level::none);
  log::setSink(nullptr);
  // Every line is complete: timestamp, then the level tag, then payload.
  std::istringstream lines(sink.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.rfind("[", 0), 0u) << line;
    EXPECT_NE(line.find("[INFO ]"), std::string::npos) << line;
    EXPECT_NE(line.find("payload=XXXXXXXX"), std::string::npos) << line;
    ++count;
  }
  EXPECT_EQ(count, 200);
}

}  // namespace
}  // namespace cmc
