// Tests for the critical-path analyzer: per-hop attribution on synthetic
// event windows, and the headline acceptance check — on a 3-box signaling
// path the extracted critical path reproduces the paper's latency law
// p*n + (p+1)*c exactly, hop by hop, in virtual time.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "endpoints/user_device.hpp"
#include "obs/critical_path.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace cmc {
namespace {

using namespace literals;

obs::TraceEvent span(std::string actor, std::int64_t ts, std::int64_t dur,
                     std::uint64_t trace, std::uint64_t id,
                     std::uint64_t parent) {
  obs::TraceEvent ev;
  ev.kind = obs::EventKind::boxSpan;
  ev.name = "stimulus";
  ev.actor = std::move(actor);
  ev.ts_us = ts;
  ev.dur_us = dur;
  ev.trace_id = trace;
  ev.span_id = id;
  ev.parent_span = parent;
  return ev;
}

obs::TraceEvent arrival(std::string actor, std::int64_t ts, std::uint64_t trace,
                        std::uint64_t parent) {
  obs::TraceEvent ev;
  ev.kind = obs::EventKind::signalRecv;
  ev.name = "open";
  ev.actor = std::move(actor);
  ev.ts_us = ts;
  ev.trace_id = trace;
  ev.parent_span = parent;
  return ev;
}

TEST(CriticalPathTest, EmptyWindowYieldsEmptyReport) {
  const obs::CriticalPathReport report = obs::criticalPath({});
  EXPECT_EQ(report.hops.size(), 0u);
  EXPECT_EQ(report.total_us, 0);
  EXPECT_NE(report.json().find("\"hops\":[]"), std::string::npos);
}

TEST(CriticalPathTest, SyntheticChainSplitsTransitAndQueue) {
  // X processes [0,10), the signal arrives at Y at 25, but Y is busy until
  // 30: 15 us of wire transit, 5 us queueing, 5 us processing.
  std::vector<obs::TraceEvent> events;
  events.push_back(span("X", 0, 10, /*trace=*/1, /*id=*/1, /*parent=*/0));
  events.push_back(arrival("Y", 25, /*trace=*/1, /*parent=*/1));
  events.push_back(span("Y", 30, 5, /*trace=*/1, /*id=*/2, /*parent=*/1));

  const obs::CriticalPathReport report = obs::criticalPath(events);
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.trace, 1u);
  ASSERT_EQ(report.hops.size(), 2u);
  EXPECT_EQ(report.hops[0].box, "X");
  EXPECT_EQ(report.hops[0].proc_us, 10);
  EXPECT_EQ(report.hops[0].transit_us, 0);
  EXPECT_EQ(report.hops[1].box, "Y");
  EXPECT_EQ(report.hops[1].transit_us, 15);
  EXPECT_EQ(report.hops[1].queue_us, 5);
  EXPECT_EQ(report.hops[1].proc_us, 5);
  EXPECT_EQ(report.total_us, 35);
  EXPECT_EQ(report.proc_total_us, 15);
  EXPECT_EQ(report.transit_total_us, 15);
  EXPECT_EQ(report.queue_total_us, 5);
}

TEST(CriticalPathTest, TruncatedParentChainIsMarkedIncomplete) {
  std::vector<obs::TraceEvent> events;
  // The parent span (id 99) fell out of the retained ring.
  events.push_back(span("Y", 50, 10, /*trace=*/1, /*id=*/2, /*parent=*/99));
  const obs::CriticalPathReport report = obs::criticalPath(events);
  EXPECT_FALSE(report.complete);
  ASSERT_EQ(report.hops.size(), 1u);
  EXPECT_EQ(report.hops[0].box, "Y");
  EXPECT_NE(report.json().find("\"complete\":false"), std::string::npos);
}

TEST(CriticalPathTest, OptionsSelectTerminalSpan) {
  std::vector<obs::TraceEvent> events;
  events.push_back(span("X", 0, 10, /*trace=*/1, /*id=*/1, /*parent=*/0));
  events.push_back(span("Y", 20, 10, /*trace=*/1, /*id=*/2, /*parent=*/1));
  events.push_back(span("Z", 40, 10, /*trace=*/1, /*id=*/3, /*parent=*/1));
  obs::CriticalPathOptions opts;
  opts.end_actor = "Y";
  const obs::CriticalPathReport report = obs::criticalPath(events, opts);
  ASSERT_EQ(report.hops.size(), 2u);
  EXPECT_EQ(report.hops.back().box, "Y");

  obs::CriticalPathOptions cutoff;
  cutoff.end_at_us = 35;  // Z's span ends later than the cutoff
  const obs::CriticalPathReport early = obs::criticalPath(events, cutoff);
  ASSERT_EQ(early.hops.size(), 2u);
  EXPECT_EQ(early.hops.back().box, "Y");
}

// Acceptance check (paper §VIII-C): after the last flowlink of a 3-box path
// initializes, the causal chain to the farther endpoint B is p = 3 signaling
// hops. With the paper's constants (n = 34 ms, c = 20 ms, jitter-free) the
// critical path must attribute each hop exactly — transit n, processing c,
// zero queueing — and total p*n + (p+1)*c = 182 ms of virtual time.
TEST(CriticalPathTest, ThreeBoxPathReproducesLatencyLawPerHop) {
  constexpr std::size_t k = 3;
  Simulator sim(TimingModel::paperDefaults(), 3);
  obs::TraceRecorder rec;
  sim.attachTrace(&rec);
  sim.addBox<UserDeviceBox>("A", sim.mediaNetwork(), sim.loop(),
                            MediaAddress::parse("10.9.0.1", 5000));
  auto& b = sim.addBox<UserDeviceBox>("B", sim.mediaNetwork(), sim.loop(),
                                      MediaAddress::parse("10.9.0.2", 5000));
  std::vector<Box*> patches;
  for (std::size_t i = 0; i < k; ++i) {
    patches.push_back(&sim.addBox<Box>("P" + std::to_string(i + 1)));
  }
  std::vector<ChannelId> channels;
  channels.push_back(sim.connect("A", "P1"));
  for (std::size_t i = 0; i + 1 < k; ++i) {
    channels.push_back(
        sim.connect("P" + std::to_string(i + 1), "P" + std::to_string(i + 2)));
  }
  channels.push_back(sim.connect("P" + std::to_string(k), "B"));

  // Pre-link every box except P1 (see bench_latency_path_length.cpp): both
  // half-paths come up muted and wait on P1's flowlink.
  DescriptorFactory hold_ids{77};
  for (std::size_t i = 0; i < k; ++i) {
    Box& box = *patches[i];
    const SlotId left = box.slotsOf(channels[i]).front();
    const SlotId right = box.slotsOf(channels[i + 1]).front();
    if (i == 0) {
      box.setGoal(left, HoldSlotGoal{MediaIntent::server(), hold_ids});
      box.setGoal(right, HoldSlotGoal{MediaIntent::server(), hold_ids});
    } else {
      box.linkSlots(left, right);
    }
  }
  sim.inject("A", [](Box& bx) { static_cast<UserDeviceBox&>(bx).callOnLine(); });
  sim.inject("B", [](Box& bx) { static_cast<UserDeviceBox&>(bx).callOnLine(); });
  sim.runFor(20_s);

  // Record only the measured cascade: drop the setup phase, then trace the
  // final flowlink initialization with causal propagation on.
  rec.clear();
  rec.setPropagation(true);
  const MediaAddress a_addr =
      static_cast<UserDeviceBox&>(sim.box("A")).media().address();
  const std::int64_t armed_at = sim.nowUs();
  sim.probes().arm("path_p3", "path_p3", armed_at, [&b, a_addr]() {
    const auto& st = b.media().sendingState();
    return st && st->target == a_addr && !isNoMedia(st->codec);
  });
  sim.inject("P1", [&channels](Box& bx) {
    bx.linkSlots(bx.slotsOf(channels[0]).front(),
                 bx.slotsOf(channels[1]).front());
  });
  sim.runFor(30_s);

  const auto latency = sim.probes().latencyUs("path_p3");
  ASSERT_TRUE(latency.has_value());
  // p*n + (p+1)*c with p=3: 3*34ms + 4*20ms = 182 ms.
  EXPECT_EQ(*latency, 182'000);

  obs::CriticalPathOptions opts;
  opts.end_actor = "B";
  opts.end_at_us = armed_at + *latency;
  const obs::CriticalPathReport report = obs::criticalPath(rec.snapshot(), opts);
  EXPECT_TRUE(report.complete);
  ASSERT_EQ(report.hops.size(), k + 1);
  EXPECT_EQ(report.hops[0].box, "P1");
  EXPECT_EQ(report.hops[0].parent, 0u);
  const char* expected_boxes[] = {"P1", "P2", "P3", "B"};
  for (std::size_t i = 0; i < report.hops.size(); ++i) {
    const obs::CriticalPathHop& hop = report.hops[i];
    EXPECT_EQ(hop.box, expected_boxes[i]);
    EXPECT_EQ(hop.proc_us, 20'000) << "hop " << i;       // c
    EXPECT_EQ(hop.transit_us, i == 0 ? 0 : 34'000) << "hop " << i;  // n
    EXPECT_EQ(hop.queue_us, 0) << "hop " << i;
  }
  EXPECT_EQ(report.proc_total_us, 80'000);     // (p+1)*c
  EXPECT_EQ(report.transit_total_us, 102'000); // p*n
  EXPECT_EQ(report.queue_total_us, 0);
  EXPECT_EQ(report.total_us, *latency);
  EXPECT_EQ(report.total_us, report.end_us - report.start_us);
}

}  // namespace
}  // namespace cmc
