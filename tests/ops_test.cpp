// Live telemetry plane tests: raw framing, windowed snapshots/deltas, SLO
// watchdogs, and the ops endpoint's robustness contract (malformed input
// produces error responses or a dropped connection — never a crash or hang).
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/framed_rpc.hpp"
#include "net/framing.hpp"
#include "obs/metrics.hpp"
#include "obs/ops_server.hpp"
#include "obs/profiler.hpp"
#include "obs/slo.hpp"
#include "obs/snapshot.hpp"
#include "util/bytes.hpp"

namespace cmc {
namespace {

std::vector<std::uint8_t> bytesOf(std::string_view s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

// ---------------------------------------------------------------- raw frames

TEST(RawFrameTest, RoundTripsBodies) {
  net::RawFrameDecoder decoder;
  const std::vector<std::uint8_t> body = bytesOf("hello frames");
  const std::vector<std::uint8_t> wire = net::encodeRawFrame(body);
  decoder.feed(wire.data(), wire.size());
  auto out = decoder.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, body);
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_FALSE(decoder.error());
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(RawFrameTest, ReassemblesAcrossArbitrarySplits) {
  const std::vector<std::uint8_t> body = bytesOf("split me finely");
  const std::vector<std::uint8_t> wire = net::encodeRawFrame(body);
  net::RawFrameDecoder decoder;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    EXPECT_FALSE(decoder.next().has_value()) << "frame completed early at " << i;
    decoder.feed(&wire[i], 1);
  }
  auto out = decoder.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, body);
}

TEST(RawFrameTest, CorruptFrameIsSkippedAndCounted) {
  std::vector<std::uint8_t> bad = net::encodeRawFrame(bytesOf("first"));
  bad.back() ^= 0xFF;  // break the checksum
  const std::vector<std::uint8_t> good = net::encodeRawFrame(bytesOf("second"));
  net::RawFrameDecoder decoder;
  decoder.feed(bad.data(), bad.size());
  decoder.feed(good.data(), good.size());
  auto out = decoder.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, bytesOf("second"));
  EXPECT_EQ(decoder.corruptFrames(), 1u);
  EXPECT_FALSE(decoder.error());
}

TEST(RawFrameTest, AbsurdLengthPoisonsTheStream) {
  ByteWriter header;
  header.u32(net::RawFrameDecoder::kMaxFrame + 1);
  header.u32(0);
  net::RawFrameDecoder decoder;
  decoder.feed(header.bytes().data(), header.bytes().size());
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.error());
  // A poisoned decoder stays poisoned even for valid follow-up bytes.
  const std::vector<std::uint8_t> good = net::encodeRawFrame(bytesOf("x"));
  decoder.feed(good.data(), good.size());
  EXPECT_FALSE(decoder.next().has_value());
}

// ---------------------------------------------------------- snapshots/deltas

TEST(SnapshotTest, CapturesCountersGaugesHistograms) {
  obs::MetricsRegistry reg;
  reg.counter("c").add(3);
  reg.gauge("g").set(7);
  reg.gauge("g").set(4);
  reg.histogram("h").observe(100);
  reg.histogram("h").observe(200);
  const auto shot = obs::MetricsSnapshot::capture(reg, /*wall_ms=*/42);
  EXPECT_EQ(shot.wall_ms, 42);
  EXPECT_EQ(shot.counter("c"), 3u);
  ASSERT_EQ(shot.gauges.count("g"), 1u);
  EXPECT_EQ(shot.gauges.at("g").value, 4);
  EXPECT_EQ(shot.gauges.at("g").max, 7);
  const obs::HistogramSample* h = shot.histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_EQ(h->sum, 300);
  EXPECT_EQ(h->min, 100);
  EXPECT_EQ(h->max, 200);
}

TEST(SnapshotTest, EmptyWindowDeltaIsAllZeroes) {
  obs::MetricsRegistry reg;
  reg.counter("c").add(5);
  reg.histogram("h").observe(64);
  const auto a = obs::MetricsSnapshot::capture(reg, 100);
  const auto b = obs::MetricsSnapshot::capture(reg, 350);
  const obs::MetricsDelta d = obs::delta(a, b);
  EXPECT_EQ(d.window_ms, 250);
  EXPECT_EQ(d.counter("c"), 0u);
  const obs::HistogramSample* h = d.histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 0u);
  EXPECT_EQ(d.counterRate("c"), 0.0);
}

TEST(SnapshotTest, CounterDeltasNeverUnderflow) {
  // A counter that reads lower in the later snapshot (restarted source)
  // must clamp to a quiet window, not wrap to ~2^64.
  obs::MetricsSnapshot prev;
  prev.wall_ms = 0;
  prev.counters["c"] = 10;
  obs::MetricsSnapshot curr;
  curr.wall_ms = 1000;
  curr.counters["c"] = 4;
  const obs::MetricsDelta d = obs::delta(prev, curr);
  EXPECT_EQ(d.counter("c"), 0u);
}

TEST(SnapshotTest, WindowedQuantilesComeFromBucketDiffs) {
  obs::MetricsRegistry reg;
  for (int i = 0; i < 100; ++i) reg.histogram("h").observe(10);
  const auto before = obs::MetricsSnapshot::capture(reg, 0);
  // The new window holds only large observations; a cumulative quantile
  // would be dominated by the 100 old ones.
  for (int i = 0; i < 20; ++i) reg.histogram("h").observe(10'000);
  const auto after = obs::MetricsSnapshot::capture(reg, 1000);
  const obs::MetricsDelta d = obs::delta(before, after);
  const obs::HistogramSample* h = d.histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 20u);
  EXPECT_GT(h->quantile(0.50), 1000.0);
  // The cumulative view still says "mostly small".
  const obs::HistogramSample* cumulative = after.histogram("h");
  ASSERT_NE(cumulative, nullptr);
  EXPECT_LT(cumulative->quantile(0.50), 100.0);
}

TEST(SnapshotTest, MergeSumsAndApplyToRebuilds) {
  obs::MetricsRegistry a;
  a.counter("c").add(2);
  a.gauge("g").set(3);
  a.histogram("h").observe(50);
  obs::MetricsRegistry b;
  b.counter("c").add(5);
  b.gauge("g").set(4);
  b.histogram("h").observe(70);
  auto merged = obs::MetricsSnapshot::capture(a, 0);
  merged.mergeFrom(obs::MetricsSnapshot::capture(b, 0));
  EXPECT_EQ(merged.counter("c"), 7u);
  EXPECT_EQ(merged.gauges.at("g").value, 7);  // fleet total
  EXPECT_EQ(merged.histogram("h")->count, 2u);

  obs::MetricsRegistry rebuilt;
  merged.applyTo(rebuilt);
  EXPECT_EQ(rebuilt.findCounter("c")->value(), 7u);
  EXPECT_EQ(rebuilt.findHistogram("h")->count(), 2u);
  EXPECT_EQ(rebuilt.findHistogram("h")->min(), 50);
  EXPECT_EQ(rebuilt.findHistogram("h")->max(), 70);
}

TEST(SnapshotTest, SeriesIsBoundedAndTracksWindows) {
  obs::SnapshotSeries series(/*capacity=*/3);
  obs::MetricsRegistry reg;
  for (int i = 0; i < 5; ++i) {
    reg.counter("c").add(2);
    series.push(obs::MetricsSnapshot::capture(reg, i * 100));
  }
  EXPECT_EQ(series.size(), 3u);
  EXPECT_EQ(series.pushed(), 5u);
  ASSERT_NE(series.latest(), nullptr);
  EXPECT_EQ(series.latest()->counter("c"), 10u);
  ASSERT_NE(series.latestWindow(), nullptr);
  EXPECT_EQ(series.latestWindow()->counter("c"), 2u);
  EXPECT_EQ(series.latestWindow()->window_ms, 100);
  const std::string json = series.json(/*last_n=*/2);
  EXPECT_NE(json.find("\"windows\":["), std::string::npos);
  EXPECT_NE(json.find("\"evicted\":2"), std::string::npos);
}

TEST(SnapshotTest, PrometheusExpositionShape) {
  obs::MetricsRegistry reg;
  reg.counter("load.calls").add(12);
  reg.gauge("queue.depth").set(3);
  reg.histogram("probe.call_setup_us").observe(5);
  const auto shot = obs::MetricsSnapshot::capture(reg, 0);
  const std::string text = obs::prometheusText(shot);
  EXPECT_NE(text.find("# TYPE cmc_load_calls_total counter"), std::string::npos);
  EXPECT_NE(text.find("cmc_load_calls_total 12"), std::string::npos);
  EXPECT_NE(text.find("cmc_queue_depth 3"), std::string::npos);
  EXPECT_NE(text.find("cmc_queue_depth_max 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cmc_probe_call_setup_us histogram"),
            std::string::npos);
  EXPECT_NE(text.find("cmc_probe_call_setup_us_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("cmc_probe_call_setup_us_sum 5"), std::string::npos);
  EXPECT_NE(text.find("cmc_probe_call_setup_us_count 1"), std::string::npos);
}

// ------------------------------------------------------------ SLO watchdogs

obs::MetricsDelta windowWith(std::uint64_t counter_inc,
                             std::vector<std::int64_t> observations = {}) {
  obs::MetricsRegistry reg;
  const auto before = obs::MetricsSnapshot::capture(reg, 0);
  reg.counter("fault.dropped").add(counter_inc);
  for (std::int64_t v : observations) {
    reg.histogram("probe.call_setup_us").observe(v);
  }
  return obs::delta(before, obs::MetricsSnapshot::capture(reg, 1000));
}

TEST(SloTest, LatencyLawMatchesPaperConstants) {
  // §VIII-C, p = 2 hops with the paper's n = 34ms and c = 20ms.
  EXPECT_EQ(obs::latencyLawUs(2, 34'000, 20'000), 2 * 34'000 + 3 * 20'000);
}

TEST(SloTest, CounterRuleFiresOncePerExcursion) {
  obs::SloRule rule;
  rule.name = "fault_ceiling";
  rule.counter = "fault.dropped";
  rule.max_value = 2.0;
  obs::SloWatchdog dog({rule});
  int fires = 0;
  dog.setOnBreach([&](const obs::SloStatus&) { ++fires; });

  EXPECT_TRUE(dog.healthy());
  dog.evaluate(windowWith(1));
  EXPECT_TRUE(dog.healthy());
  dog.evaluate(windowWith(5));  // breach entry
  EXPECT_FALSE(dog.healthy());
  EXPECT_EQ(fires, 1);
  dog.evaluate(windowWith(9));  // still in breach: no re-fire
  EXPECT_EQ(fires, 1);
  dog.evaluate(windowWith(0));  // recovery re-arms
  EXPECT_TRUE(dog.healthy());
  dog.evaluate(windowWith(7));  // second excursion
  EXPECT_EQ(fires, 2);
  EXPECT_TRUE(dog.everBreached());
  EXPECT_EQ(dog.breaches(), 2u);
}

TEST(SloTest, HistogramRuleSkipsTinyWindows) {
  obs::SloRule rule;
  rule.name = "setup_p99";
  rule.histogram = "probe.call_setup_us";
  rule.max_value = 100.0;
  rule.min_count = 3;
  obs::SloWatchdog dog({rule});

  // Two huge samples: below min_count, verdict carried (healthy).
  dog.evaluate(windowWith(0, {50'000, 60'000}));
  EXPECT_TRUE(dog.healthy());
  EXPECT_FALSE(dog.last()[0].evaluated);
  // Three huge samples: evaluated, breached.
  dog.evaluate(windowWith(0, {50'000, 60'000, 70'000}));
  EXPECT_FALSE(dog.healthy());
  EXPECT_TRUE(dog.last()[0].evaluated);
  // A quiet window carries the breach verdict rather than silently healing.
  dog.evaluate(windowWith(0, {}));
  EXPECT_FALSE(dog.healthy());
  EXPECT_NE(dog.statusText().find("breached=1"), std::string::npos);
}

// ------------------------------------------------------------- ops endpoint

class OpsEndpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<obs::OpsServer>(/*port=*/0);
    ASSERT_TRUE(server_->ok());
    server_->handle("ping", "text/plain",
                    [](const std::string& args) { return "pong:" + args; });
    server_->handle("boom", "text/plain", [](const std::string&) -> std::string {
      throw std::runtime_error("kaboom");
    });
    server_->start();
  }

  std::unique_ptr<obs::OpsClient> client() {
    auto c = obs::OpsClient::connect("127.0.0.1", server_->port());
    EXPECT_NE(c, nullptr);
    return c;
  }

  std::unique_ptr<obs::OpsServer> server_;
};

TEST_F(OpsEndpointTest, RoundTripsVerbs) {
  auto c = client();
  auto r = c->request("ping", "abc");
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->ok);
  EXPECT_EQ(r->content_type, "text/plain");
  EXPECT_EQ(r->body, "pong:abc");
  // Same connection serves many requests.
  auto r2 = c->request("ping");
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->body, "pong:");
}

TEST_F(OpsEndpointTest, UnknownVerbIsAnErrorResponse) {
  auto c = client();
  auto r = c->request("nonsense");
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->ok);
  EXPECT_NE(r->body.find("unknown verb"), std::string::npos);
  EXPECT_GE(server_->errorsServed(), 1u);
}

TEST_F(OpsEndpointTest, MalformedBodyIsAnErrorResponse) {
  auto c = client();
  // A valid frame whose body is not str(verb)+str(args).
  ASSERT_TRUE(c->sendRaw(net::encodeRawFrame(bytesOf("\xFF\xFF garbage"))));
  auto r = c->readResponse();
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->ok);
  EXPECT_NE(r->body.find("malformed"), std::string::npos);
  // The connection survives for well-formed follow-ups.
  auto ok = c->request("ping", "x");
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(ok->ok);
}

TEST_F(OpsEndpointTest, TrailingBytesAfterRequestAreMalformed) {
  ByteWriter body;
  body.str("ping");
  body.str("args");
  body.u8(0xEE);  // one stray byte after a well-formed request
  auto c = client();
  ASSERT_TRUE(c->sendRaw(net::encodeRawFrame(body.bytes())));
  auto r = c->readResponse();
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->ok);
}

TEST_F(OpsEndpointTest, CorruptFrameIsDiscardedThenConnectionStillWorks) {
  ByteWriter body;
  body.str("ping");
  body.str("lost");
  std::vector<std::uint8_t> wire = net::encodeRawFrame(body.bytes());
  wire.back() ^= 0x55;  // fails the checksum: discarded as loss, no response
  auto c = client();
  ASSERT_TRUE(c->sendRaw(wire));
  auto r = c->request("ping", "after");
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->ok);
  EXPECT_EQ(r->body, "pong:after");
}

TEST_F(OpsEndpointTest, TruncatedFrameCompletesLater) {
  ByteWriter body;
  body.str("ping");
  body.str("slow");
  const std::vector<std::uint8_t> wire = net::encodeRawFrame(body.bytes());
  auto c = client();
  ASSERT_TRUE(c->sendRaw({wire.begin(), wire.begin() + 5}));
  ASSERT_TRUE(c->sendRaw({wire.begin() + 5, wire.end()}));
  auto r = c->readResponse();
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->ok);
  EXPECT_EQ(r->body, "pong:slow");
}

TEST_F(OpsEndpointTest, HostileLengthKillsConnectionButNotListener) {
  ByteWriter header;
  header.u32(0xFFFFFFFF);  // absurd length: stream is unrecoverable
  header.u32(0);
  auto victim = client();
  ASSERT_TRUE(victim->sendRaw(header.bytes()));
  EXPECT_FALSE(victim->readResponse().has_value());  // server dropped us
  // A fresh connection is served normally.
  auto fresh = client();
  auto r = fresh->request("ping", "alive");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->body, "pong:alive");
}

TEST_F(OpsEndpointTest, BareFramedConnSpeaksTheOpsProtocol) {
  // OpsClient is a thin layer over net::FramedConn — the same transport the
  // distributed load plane's worker links use. A bare FramedConn speaking
  // hand-built request frames must get the same service, which pins the
  // shared codepath: one framing implementation, two protocols on top.
  auto conn = net::FramedConn::connect("127.0.0.1", server_->port());
  ASSERT_NE(conn, nullptr);
  ByteWriter request;
  request.str("ping");
  request.str("rpc");
  ASSERT_TRUE(conn->sendFrame(request.bytes()));
  auto frame = conn->readFrame();
  ASSERT_TRUE(frame.has_value());
  ByteReader in(*frame);
  EXPECT_EQ(in.u8(), 0);  // status: ok
  EXPECT_EQ(in.str(), "text/plain");
  EXPECT_EQ(in.str(), "pong:rpc");
  EXPECT_TRUE(in.ok() && in.atEnd());
}

// ------------------------------------------------------------- profile verb
// The `profile` verb is registered the same way LiveTelemetry registers it:
// obs::profileResponse over a real report. It gets the full hostile-input
// treatment of the suites above — malformed frames, bad sub-verbs, and
// corruption must produce error responses or silent discards, never a dead
// listener.

class ProfileVerbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::setThreadProfiler(&table_);
    {
      CMC_PROF_SCOPE("serve");
      { CMC_PROF_SCOPE("nested"); }
    }
    obs::setThreadProfiler(nullptr);
    report_ = table_.report();

    server_ = std::make_unique<obs::OpsServer>(/*port=*/0);
    ASSERT_TRUE(server_->ok());
    server_->handle("profile", "application/json",
                    [this](const std::string& args) {
                      return obs::profileResponse(report_, args);
                    });
    server_->start();
  }

  std::unique_ptr<obs::OpsClient> client() {
    auto c = obs::OpsClient::connect("127.0.0.1", server_->port());
    EXPECT_NE(c, nullptr);
    return c;
  }

  obs::ProfileTable table_{"ops_test"};
  obs::ProfileReport report_;
  std::unique_ptr<obs::OpsServer> server_;
};

TEST_F(ProfileVerbTest, ServesAllThreeFormats) {
  auto c = client();
  auto json = c->request("profile");
  ASSERT_TRUE(json.has_value());
  EXPECT_TRUE(json->ok);
  EXPECT_EQ(json->content_type, "application/json");
  EXPECT_EQ(json->body, report_.json());
  auto collapsed = c->request("profile", "collapsed");
  ASSERT_TRUE(collapsed.has_value());
  EXPECT_TRUE(collapsed->ok);
  EXPECT_NE(collapsed->body.find("serve;nested"), std::string::npos);
  auto speedscope = c->request("profile", "speedscope");
  ASSERT_TRUE(speedscope.has_value());
  EXPECT_TRUE(speedscope->ok);
  EXPECT_NE(speedscope->body.find("\"type\":\"sampled\""), std::string::npos);
}

TEST_F(ProfileVerbTest, UnknownSubVerbIsAnErrorResponse) {
  auto c = client();
  auto r = c->request("profile", "xml");
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->ok);
  EXPECT_NE(r->body.find("unknown profile sub-verb"), std::string::npos);
  // Same connection keeps working.
  auto ok = c->request("profile", "json");
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(ok->ok);
}

TEST_F(ProfileVerbTest, CorruptFrameThenProfileStillServes) {
  ByteWriter body;
  body.str("profile");
  body.str("collapsed");
  std::vector<std::uint8_t> wire = net::encodeRawFrame(body.bytes());
  wire.back() ^= 0x55;  // checksum failure: discarded as loss, no response
  auto c = client();
  ASSERT_TRUE(c->sendRaw(wire));
  auto r = c->request("profile", "collapsed");
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->ok);
}

TEST_F(ProfileVerbTest, MalformedArgsBodyIsAnErrorResponse) {
  // A well-formed verb string followed by an args string whose declared
  // length runs past the frame: the request fails to decode.
  ByteWriter body;
  body.str("profile");
  body.u32(0xFFFF);  // args length with no bytes behind it
  auto c = client();
  ASSERT_TRUE(c->sendRaw(net::encodeRawFrame(body.bytes())));
  auto r = c->readResponse();
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->ok);
  // Listener survives for a fresh connection too.
  auto fresh = client();
  auto ok = fresh->request("profile");
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(ok->ok);
}

TEST_F(OpsEndpointTest, ThrowingHandlerBecomesErrorResponse) {
  auto c = client();
  auto r = c->request("boom");
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->ok);
  EXPECT_NE(r->body.find("kaboom"), std::string::npos);
  // Server is still healthy afterwards.
  auto ok = c->request("ping", "still-up");
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(ok->ok);
}

}  // namespace
}  // namespace cmc
