// Hot-path profiler tests: CCT structure, self/total accounting, allocation
// attribution, value sites, deterministic merge, export formats, and — the
// load-bearing contract — transparency: a profiled run computes exactly what
// the unprofiled run computes (mc state graphs and load rollups are
// byte-identical with the profiler on or off).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "load/sharded_runtime.hpp"
#include "load/workload.hpp"
#include "mc/state_graph.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/ops_server.hpp"
#include "obs/profiler.hpp"

namespace cmc {
namespace {

// Every test installs/uninstalls the thread profiler; keep the thread clean
// even when an assertion fails mid-test.
class ProfilerTest : public ::testing::Test {
 protected:
  void TearDown() override { obs::setThreadProfiler(nullptr); }
};

const obs::ProfileNode* findNode(const obs::ProfileReport& report,
                                 const std::string& site) {
  for (const obs::ProfileNode& n : report.nodes()) {
    if (n.site == site) return &n;
  }
  return nullptr;
}

TEST_F(ProfilerTest, OffModeIsInert) {
  EXPECT_EQ(obs::threadProfiler(), nullptr);
  {
    CMC_PROF_SCOPE("nobody.listens");
    CMC_PROF_VALUE("nobody.counts", 42);
  }
  obs::ProfileTable table("idle");
  EXPECT_TRUE(table.report().empty());
}

TEST_F(ProfilerTest, BuildsCallingContextTree) {
  obs::ProfileTable table;
  obs::setThreadProfiler(&table);
  EXPECT_EQ(obs::threadProfiler(), &table);
  for (int i = 0; i < 3; ++i) {
    CMC_PROF_SCOPE("outer");
    { CMC_PROF_SCOPE("inner"); }
    { CMC_PROF_SCOPE("inner"); }
  }
  {
    CMC_PROF_SCOPE("inner");  // different parent (root): a distinct node
  }
  obs::setThreadProfiler(nullptr);

  const obs::ProfileReport report = table.report();
  ASSERT_FALSE(report.empty());
  EXPECT_EQ(report.nodes()[0].site, "root");

  const obs::ProfileNode* outer = findNode(report, "outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->calls, 3u);
  EXPECT_EQ(outer->parent, 0);
  EXPECT_EQ(outer->depth, 1u);

  // "inner" appears twice: once under outer (6 calls), once under root.
  std::size_t inner_nodes = 0;
  for (std::size_t i = 0; i < report.nodes().size(); ++i) {
    const obs::ProfileNode& n = report.nodes()[i];
    if (n.site != "inner") continue;
    ++inner_nodes;
    if (report.nodes()[static_cast<std::size_t>(n.parent)].site == "outer") {
      EXPECT_EQ(n.calls, 6u);
      EXPECT_EQ(n.depth, 2u);
    } else {
      EXPECT_EQ(n.calls, 1u);
      EXPECT_EQ(n.depth, 1u);
    }
  }
  EXPECT_EQ(inner_nodes, 2u);
}

TEST_F(ProfilerTest, SelfTimeExcludesChildTime) {
  obs::ProfileTable table;
  obs::setThreadProfiler(&table);
  {
    CMC_PROF_SCOPE("parent");
    for (int i = 0; i < 200; ++i) {
      CMC_PROF_SCOPE("child");
      volatile int sink = 0;
      for (int j = 0; j < 50; ++j) sink = sink + j;
    }
  }
  obs::setThreadProfiler(nullptr);

  const obs::ProfileReport report = table.report();
  const obs::ProfileNode* parent = findNode(report, "parent");
  const obs::ProfileNode* child = findNode(report, "child");
  ASSERT_NE(parent, nullptr);
  ASSERT_NE(child, nullptr);
  EXPECT_GE(parent->total_ns, parent->self_ns);
  EXPECT_GE(parent->total_ns, child->total_ns);
  EXPECT_GE(child->min_ns, 0);
  EXPECT_GE(child->max_ns, child->min_ns);
  // total = self + sum(child totals) within calibration slack per span.
  const std::int64_t slack =
      (table.overheadNs() + 1) * static_cast<std::int64_t>(child->calls + 1);
  EXPECT_NEAR(static_cast<double>(parent->total_ns),
              static_cast<double>(parent->self_ns + child->total_ns),
              static_cast<double>(slack) + 0.25 *
                  static_cast<double>(parent->total_ns));
}

TEST_F(ProfilerTest, AttributesAllocationsToInnermostSite) {
  obs::ProfileTable table;
  obs::setThreadProfiler(&table);
  {
    CMC_PROF_SCOPE("quiet");
    {
      CMC_PROF_SCOPE("allocating");
      auto* p = new std::vector<char>(10'000);
      delete p;
    }
  }
  obs::setThreadProfiler(nullptr);

  const obs::ProfileReport report = table.report();
  const obs::ProfileNode* site = findNode(report, "allocating");
  ASSERT_NE(site, nullptr);
  EXPECT_GE(site->allocs, 2u);  // the vector object + its buffer
  EXPECT_GE(site->alloc_bytes, 10'000u);
  EXPECT_GE(site->frees, 2u);
  EXPECT_GE(site->free_bytes, 10'000u);  // sized deletes report bytes
  // The enclosing site sees only the profiler's own node-creation
  // allocations (charged to the node open when enter() runs), never the
  // 10KB attributed to the inner site.
  const obs::ProfileNode* quiet = findNode(report, "quiet");
  ASSERT_NE(quiet, nullptr);
  EXPECT_LT(quiet->alloc_bytes, 10'000u);
}

TEST_F(ProfilerTest, ValueSitesRecordDistributionsNotTime) {
  obs::ProfileTable table;
  obs::setThreadProfiler(&table);
  CMC_PROF_VALUE("depth", 3);
  CMC_PROF_VALUE("depth", 9);
  CMC_PROF_VALUE("depth", 1);
  {
    CMC_PROF_SCOPE("span");
  }
  obs::setThreadProfiler(nullptr);

  const obs::ProfileReport report = table.report();
  const obs::ProfileNode* depth = findNode(report, "depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_TRUE(depth->is_value);
  EXPECT_EQ(depth->calls, 3u);
  EXPECT_EQ(depth->total_ns, 13);  // sum of values
  EXPECT_EQ(depth->self_ns, 0);
  EXPECT_EQ(depth->min_ns, 1);
  EXPECT_EQ(depth->max_ns, 9);
  // Value sites are excluded from the span totals.
  const obs::ProfileTotals totals = report.totals();
  EXPECT_EQ(totals.span_calls, 1u);
}

TEST_F(ProfilerTest, MergeIsDeterministicAndAdditive) {
  obs::ProfileTable a("shard0");
  obs::setThreadProfiler(&a);
  {
    CMC_PROF_SCOPE("run");
    { CMC_PROF_SCOPE("zeta"); }
    { CMC_PROF_SCOPE("alpha"); }
  }
  obs::setThreadProfiler(nullptr);

  // Same shape grown in a different order, plus one extra child.
  obs::ProfileTable b("shard1");
  obs::setThreadProfiler(&b);
  {
    CMC_PROF_SCOPE("run");
    { CMC_PROF_SCOPE("alpha"); }
    { CMC_PROF_SCOPE("zeta"); }
    { CMC_PROF_SCOPE("mid"); }
  }
  obs::setThreadProfiler(nullptr);

  const obs::ProfileReport merged = obs::mergeTables({&a, &b});
  const obs::ProfileNode* run = findNode(merged, "run");
  ASSERT_NE(run, nullptr);
  EXPECT_EQ(run->calls, 2u);

  // Children of "run" come out sorted by site name regardless of creation
  // order, so the merged structure is identical run to run.
  std::vector<std::string> kids;
  for (std::size_t i = 0; i < merged.nodes().size(); ++i) {
    const obs::ProfileNode& n = merged.nodes()[i];
    if (n.parent >= 0 &&
        merged.nodes()[static_cast<std::size_t>(n.parent)].site == "run") {
      kids.push_back(n.site);
    }
  }
  EXPECT_EQ(kids, (std::vector<std::string>{"alpha", "mid", "zeta"}));

  // Structure (sites, parents, kinds) is byte-stable under merge order of
  // equal tables: merging [a,b] twice gives identical JSON.
  EXPECT_EQ(obs::mergeTables({&a, &b}).json(), merged.json());
}

TEST_F(ProfilerTest, ExportsAreWellFormed) {
  obs::ProfileTable table;
  obs::setThreadProfiler(&table);
  {
    CMC_PROF_SCOPE("a");
    {
      CMC_PROF_SCOPE("b");
      volatile int sink = 0;
      for (int j = 0; j < 1000; ++j) sink = sink + j;
    }
  }
  CMC_PROF_VALUE("v", 7);
  obs::setThreadProfiler(nullptr);
  const obs::ProfileReport report = table.report();

  const std::string json = report.json();
  EXPECT_NE(json.find("\"nodes\":["), std::string::npos);
  EXPECT_NE(json.find("\"site\":\"a\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"value\""), std::string::npos);

  // Collapsed stacks: "a;b self_ns" lines, no root, no value sites.
  const std::string collapsed = report.collapsed();
  std::istringstream lines(collapsed);
  std::string line;
  bool saw_nested = false;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_EQ(line.find("root"), std::string::npos) << line;
    EXPECT_EQ(line.find('v'), std::string::npos) << line;
    EXPECT_GT(std::stoll(line.substr(space + 1)), 0) << line;
    if (line.compare(0, space, "a;b") == 0) saw_nested = true;
  }
  EXPECT_TRUE(saw_nested) << collapsed;

  const std::string speedscope = report.speedscope("unit");
  EXPECT_NE(speedscope.find("speedscope.app/file-format-schema.json"),
            std::string::npos);
  EXPECT_NE(speedscope.find("\"type\":\"sampled\""), std::string::npos);
  EXPECT_NE(speedscope.find("\"unit\":\"nanoseconds\""), std::string::npos);

  const std::string attribution = report.attributionJson(1'000'000);
  EXPECT_NE(attribution.find("\"coverage\":"), std::string::npos);
  EXPECT_NE(attribution.find("\"ns_per_call\":"), std::string::npos);
  EXPECT_NE(attribution.find("\"allocs_per_call\":"), std::string::npos);

  // The ops-verb payload shares these exact serializations.
  EXPECT_EQ(obs::profileResponse(report, ""), json);
  EXPECT_EQ(obs::profileResponse(report, "json"), json);
  EXPECT_EQ(obs::profileResponse(report, "collapsed"), collapsed);
  EXPECT_EQ(obs::profileResponse(report, "speedscope"),
            report.speedscope("cmc"));
  EXPECT_THROW((void)obs::profileResponse(report, "bogus"),
               std::runtime_error);
}

// ------------------------------------------------------------- transparency

TEST_F(ProfilerTest, ExplorerComputesIdenticalGraphProfiled) {
  ExploreLimits limits;
  limits.chaos_budget = 1;
  limits.modify_budget = 0;

  const ExploreResult plain =
      explorePath(GoalKind::openSlot, GoalKind::openSlot, 1, limits);

  obs::ProfileTable table;
  obs::setThreadProfiler(&table);
  const ExploreResult profiled =
      explorePath(GoalKind::openSlot, GoalKind::openSlot, 1, limits);
  obs::setThreadProfiler(nullptr);

  EXPECT_EQ(profiled.states(), plain.states());
  EXPECT_EQ(profiled.transitions, plain.transitions);
  EXPECT_EQ(profiled.terminals, plain.terminals);
  std::multiset<std::uint32_t> plain_obs, profiled_obs;
  for (const StateBits& s : plain.bits) plain_obs.insert(s.observable());
  for (const StateBits& s : profiled.bits) profiled_obs.insert(s.observable());
  EXPECT_EQ(profiled_obs, plain_obs);

  // And the profiled run actually attributed the explorer's hot sites.
  const obs::ProfileReport report = table.report();
  EXPECT_NE(findNode(report, "mc.expand"), nullptr);
  EXPECT_NE(findNode(report, "mc.canonicalize"), nullptr);
  EXPECT_NE(findNode(report, "mc.fingerprint"), nullptr);
}

TEST_F(ProfilerTest, LoadRollupByteIdenticalWithProfilingOn) {
  load::WorkloadSpec workload;
  workload.master_seed = 11;
  workload.calls = 48;
  workload.arrivals_per_s = 400.0;
  workload.flowlink_fraction = 0.5;

  auto rollup = [&](std::size_t shards, bool profile) {
    load::LoadConfig config;
    config.shards = shards;
    config.profile = profile;
    load::ShardedRuntime runtime(config);
    runtime.run(workload);
    EXPECT_EQ(runtime.convergedCount(), workload.calls);
    return runtime.metricsJson();
  };

  const std::string plain_1 = rollup(1, false);
  EXPECT_EQ(rollup(1, true), plain_1);
  EXPECT_EQ(rollup(8, true), plain_1);
  EXPECT_EQ(rollup(8, false), plain_1);
}

TEST_F(ProfilerTest, ProfiledLoadRunAttributesShardSites) {
  load::WorkloadSpec workload;
  workload.master_seed = 11;
  workload.calls = 32;
  workload.arrivals_per_s = 400.0;
  workload.flowlink_fraction = 0.5;

  load::LoadConfig config;
  config.shards = 2;
  config.profile = true;
  load::ShardedRuntime runtime(config);
  runtime.run(workload);

  ASSERT_TRUE(runtime.profiled());
  const obs::ProfileReport& report = runtime.profileReport();
  ASSERT_FALSE(report.empty());
  const obs::ProfileNode* run = findNode(report, "shard.run");
  ASSERT_NE(run, nullptr);
  EXPECT_EQ(run->calls, 2u);  // one per shard, merged rank-order
  EXPECT_NE(findNode(report, "shard.schedule"), nullptr);
  EXPECT_NE(findNode(report, "shard.drain"), nullptr);
  EXPECT_NE(findNode(report, "loop.dispatch"), nullptr);
  EXPECT_NE(findNode(report, "slot.deliver"), nullptr);
  EXPECT_NE(findNode(report, "loop.queue_depth"), nullptr);
}

TEST_F(ProfilerTest, ProfileDirWritesAllThreeExports) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "cmc_profiler_test_exports";
  std::filesystem::remove_all(dir);

  load::WorkloadSpec workload;
  workload.master_seed = 3;
  workload.calls = 16;
  workload.arrivals_per_s = 400.0;

  load::LoadConfig config;
  config.shards = 2;
  config.profile_dir = dir.string();  // implies profile
  load::ShardedRuntime runtime(config);
  runtime.run(workload);
  EXPECT_TRUE(runtime.profiled());

  for (const char* name :
       {"profile.json", "profile.collapsed", "profile.speedscope.json"}) {
    const std::filesystem::path file = dir / name;
    ASSERT_TRUE(std::filesystem::exists(file)) << file;
    EXPECT_GT(std::filesystem::file_size(file), 0u) << file;
  }
  std::ifstream json(dir / "profile.json");
  std::string body((std::istreambuf_iterator<char>(json)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(body.find("\"site\":\"shard.run\""), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST_F(ProfilerTest, FlightDumpCarriesProfileSection) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "cmc_profiler_test_flight";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  obs::ProfileTable table;
  obs::setThreadProfiler(&table);
  {
    CMC_PROF_SCOPE("work");
  }
  obs::setThreadProfiler(nullptr);

  obs::FlightRecorder recorder(
      obs::FlightRecorder::Config{dir.string(), "prof", 4});
  recorder.setProfileSource([&table]() { return table.report().json(); });
  const std::string path = recorder.dump("test");
  ASSERT_FALSE(path.empty());
  std::ifstream in(path);
  std::string body((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(body.find("\"profile\":{"), std::string::npos);
  EXPECT_NE(body.find("\"site\":\"work\""), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST_F(ProfilerTest, ProfileVerbServesMergedReportEndToEnd) {
  load::WorkloadSpec workload;
  workload.master_seed = 5;
  workload.calls = 16;
  workload.arrivals_per_s = 400.0;

  load::LoadConfig config;
  config.shards = 2;
  config.profile = true;
  config.ops_port = 0;
  load::ShardedRuntime runtime(config);
  ASSERT_NE(runtime.telemetry(), nullptr);
  ASSERT_TRUE(runtime.telemetry()->ok());
  runtime.run(workload);

  // The endpoint serves the retained merged profile after the run drains.
  auto client = obs::OpsClient::connect("127.0.0.1", runtime.opsPort());
  ASSERT_NE(client, nullptr);
  auto json = client->request("profile");
  ASSERT_TRUE(json.has_value());
  EXPECT_TRUE(json->ok);
  EXPECT_EQ(json->content_type, "application/json");
  EXPECT_NE(json->body.find("\"site\":\"shard.run\""), std::string::npos);
  EXPECT_EQ(json->body, runtime.profileReport().json());

  auto collapsed = client->request("profile", "collapsed");
  ASSERT_TRUE(collapsed.has_value());
  EXPECT_TRUE(collapsed->ok);
  EXPECT_NE(collapsed->body.find("shard.run"), std::string::npos);

  auto speedscope = client->request("profile", "speedscope");
  ASSERT_TRUE(speedscope.has_value());
  EXPECT_TRUE(speedscope->ok);
  EXPECT_NE(speedscope->body.find("speedscope.app"), std::string::npos);

  // Unknown sub-verb: error response, connection and listener survive.
  auto bad = client->request("profile", "flamethrower");
  ASSERT_TRUE(bad.has_value());
  EXPECT_FALSE(bad->ok);
  auto again = client->request("profile", "json");
  ASSERT_TRUE(again.has_value());
  EXPECT_TRUE(again->ok);
}

TEST_F(ProfilerTest, ProfileVerbWithoutProfilerIsErrorResponse) {
  load::WorkloadSpec workload;
  workload.master_seed = 5;
  workload.calls = 8;
  workload.arrivals_per_s = 400.0;

  load::LoadConfig config;
  config.shards = 1;
  config.ops_port = 0;  // telemetry on, profiler off
  load::ShardedRuntime runtime(config);
  ASSERT_NE(runtime.telemetry(), nullptr);
  runtime.run(workload);

  auto client = obs::OpsClient::connect("127.0.0.1", runtime.opsPort());
  ASSERT_NE(client, nullptr);
  auto r = client->request("profile");
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->ok);
  EXPECT_NE(r->body.find("no profiler"), std::string::npos);
}

}  // namespace
}  // namespace cmc
